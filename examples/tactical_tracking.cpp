// Tactical multi-flow network with Erlang-dimensioned privacy delays.
//
// Four forward observation posts report through the paper's Figure-1
// topology. Instead of one network-wide mean delay, each node's delay is
// dimensioned from the §4 queueing analysis: given its aggregated traffic
// λᵢ (flows superpose toward the sink) and its k buffer slots, the node
// uses the largest mean delay 1/µᵢ that keeps its predicted Erlang-loss
// preemption probability at α — maximum temporal privacy per node within a
// fixed buffer-pressure budget.
//
// The example wires the queueing module into a custom DisciplineFactory
// (per-node parameters, not just per-hop-count), runs both adversaries of
// the paper, and reports per-flow privacy and latency.

#include <iostream>
#include <memory>
#include <vector>

#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/disciplines.h"
#include "crypto/payload.h"
#include "metrics/table.h"
#include "net/network.h"
#include "net/routing.h"
#include "queueing/dimensioning.h"
#include "sim/simulator.h"
#include "workload/source.h"

int main() {
  using namespace tempriv;

  constexpr double kSourceRate = 0.5;   // one report every 2 time units
  constexpr std::size_t kSlots = 10;    // Mica-2-sized buffers
  constexpr double kTargetLoss = 0.1;   // per-node preemption budget
  constexpr std::uint32_t kPackets = 1000;

  // Build the topology first so the dimensioning can see the routing tree.
  auto built = net::Topology::paper_figure1();
  const net::RoutingTable routing(built.topology);

  queueing::RoutingTree tree;
  tree.parent.resize(built.topology.node_count());
  std::vector<double> source_rates(built.topology.node_count(), 0.0);
  for (net::NodeId id = 0; id < built.topology.node_count(); ++id) {
    const net::NodeId next = routing.next_hop(id);
    tree.parent[id] = next == net::kInvalidNode
                          ? queueing::kNoParent
                          : static_cast<std::size_t>(next);
  }
  for (const net::NodeId source : built.sources) {
    source_rates[source] = kSourceRate;
  }
  const auto node_rates = queueing::aggregate_rates(tree, source_rates);
  const auto node_mus =
      queueing::dimension_mu_for_loss(node_rates, kSlots, kTargetLoss);

  std::cout << "Erlang-dimensioned per-node delays (alpha = " << kTargetLoss
            << ", k = " << kSlots << "):\n"
            << "  branch nodes (lambda = 0.5): 1/mu = "
            << metrics::format_number(1.0 / node_mus[built.sources[0]], 1)
            << "\n  trunk nodes  (lambda = 2.0): 1/mu = "
            << metrics::format_number(
                   1.0 / node_mus[routing.next_hop(
                             routing.path_to_sink(built.sources[0])
                                 [routing.hops_to_sink(built.sources[0]) - 3])],
                   1)
            << "\n  expected buffered packets network-wide: "
            << metrics::format_number(
                   queueing::expected_network_buffering(node_rates, node_mus), 1)
            << "\n\n";

  // Per-node RCAD disciplines from the dimensioned µ values.
  sim::Simulator sim;
  net::DisciplineFactory factory =
      [&node_mus, kSlots](net::NodeId id, std::uint16_t)
      -> std::unique_ptr<net::ForwardingDiscipline> {
    if (node_mus[id] <= 0.0) {
      return std::make_unique<core::ImmediateForwarding>();
    }
    return std::make_unique<core::RcadDiscipline>(
        std::make_unique<core::ExponentialDelay>(1.0 / node_mus[id]), kSlots);
  };
  net::Network network(sim, built.topology, factory, {},
                       sim::RandomStream(404));

  crypto::Speck64_128::Key key{};
  key.fill(0xCD);
  crypto::PayloadCodec codec(key);

  // The adversaries know the *average* per-hop delay along S1's path
  // (Kerckhoff: the dimensioning rule is public).
  double mean_delay_s1 = 0.0;
  const auto path = routing.path_to_sink(built.sources[0]);
  for (const net::NodeId node : path) {
    if (node != built.topology.sink()) mean_delay_s1 += 1.0 / node_mus[node];
  }
  mean_delay_s1 /= static_cast<double>(routing.hops_to_sink(built.sources[0]));

  adversary::BaselineAdversary baseline(1.0, mean_delay_s1);
  adversary::AdaptiveAdversary adaptive({1.0, mean_delay_s1, kSlots, 0.1});
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&baseline);
  network.add_sink_observer(&adaptive);
  network.add_sink_observer(&truth);

  std::vector<std::unique_ptr<workload::PeriodicSource>> sources;
  sim::RandomStream root(808);
  for (std::size_t i = 0; i < built.sources.size(); ++i) {
    sources.push_back(std::make_unique<workload::PeriodicSource>(
        network, codec, built.sources[i], root.split(i), 1.0 / kSourceRate,
        kPackets));
    sources.back()->start(0.25 * static_cast<double>(i));
  }
  sim.run();

  metrics::Table table({"flow", "hops", "MSE (baseline adv)",
                        "MSE (adaptive adv)", "mean latency", "max latency"});
  for (std::size_t i = 0; i < built.sources.size(); ++i) {
    const net::NodeId source = built.sources[i];
    table.add_row(
        {"S" + std::to_string(i + 1),
         std::to_string(routing.hops_to_sink(source)),
         metrics::format_number(truth.score_flow(baseline, source).mse(), 1),
         metrics::format_number(truth.score_flow(adaptive, source).mse(), 1),
         metrics::format_number(truth.latency(source).mean(), 1),
         metrics::format_number(truth.latency(source).max(), 1)});
  }
  table.print(std::cout);

  std::cout << "\npreemptions: " << network.total_preemptions()
            << ", drops: " << network.total_drops() << ", delivered "
            << network.packets_delivered() << "/"
            << network.packets_originated() << "\n";
  return 0;
}
