// Habitat monitoring — the paper's §1 motivating scenario, end to end.
//
// An endangered animal roams a field instrumented with a 12x12 sensor
// grid. Whenever a sensing epoch elapses, the nearest sensor reports the
// observation (encrypted) to the sink. A hunter eavesdropping at the sink
// knows every sensor's position (deployment-aware) and sees which sensor a
// packet came from, so if he can also pin down *when* the packet was
// created he knows where the animal was at that moment and can predict
// where it is now.
//
// We quantify the hunter's power as his *spatial tracking error*: the
// distance between the animal's true position at the packet's estimated
// creation time and its true position at the actual creation time. With no
// privacy delays the estimate is exact and the error is zero; RCAD's
// temporal ambiguity converts directly into spatial ambiguity (error grows
// with the animal's speed times the adversary's time error, saturating at
// the field scale).

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/mobile_asset.h"
#include "workload/scenario.h"

namespace {

using namespace tempriv;

// The animal's true position at time t, from the recorded track (nearest
// sample; the track is sampled every sense epoch, so this is accurate to
// one epoch of movement).
net::Position asset_position_at(
    const std::vector<workload::MobileAssetWorkload::TrackPoint>& track,
    double t) {
  const workload::MobileAssetWorkload::TrackPoint* best = &track.front();
  for (const auto& point : track) {
    if (std::fabs(point.time - t) < std::fabs(best->time - t)) best = &point;
  }
  return {best->x, best->y};
}

struct HuntOutcome {
  double mean_time_error = 0.0;
  double mean_spatial_error = 0.0;
  double delivered = 0.0;
};

HuntOutcome run_hunt(const net::DisciplineFactory& factory,
                     double known_mean_delay) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::grid(12, 12, 2.0), factory, {},
                       sim::RandomStream(2026));

  crypto::Speck64_128::Key key{};
  key.fill(0xAB);
  crypto::PayloadCodec codec(key);

  adversary::BaselineAdversary hunter(1.0, known_mean_delay);
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&hunter);
  network.add_sink_observer(&truth);

  workload::MobileAssetWorkload::Config config;
  config.field_side = 22.0;  // matches the 12x12 grid at spacing 2
  config.speed = 0.4;
  config.sense_interval = 4.0;
  config.duration = 4000.0;
  workload::MobileAssetWorkload animal(network, codec, config,
                                       sim::RandomStream(7));
  animal.start();
  sim.run();

  HuntOutcome outcome;
  metrics::StreamingStats time_error;
  metrics::StreamingStats spatial_error;
  for (const auto& estimate : hunter.estimates()) {
    const auto* record = truth.find(estimate.uid);
    time_error.add(std::fabs(estimate.estimated_creation - record->creation));
    const net::Position truth_pos =
        asset_position_at(animal.track(), record->creation);
    const net::Position guessed_pos =
        asset_position_at(animal.track(), estimate.estimated_creation);
    spatial_error.add(std::hypot(truth_pos.x - guessed_pos.x,
                                 truth_pos.y - guessed_pos.y));
  }
  outcome.mean_time_error = time_error.mean();
  outcome.mean_spatial_error = spatial_error.mean();
  outcome.delivered = static_cast<double>(truth.delivered());
  return outcome;
}

}  // namespace

int main() {
  std::cout << "Habitat monitoring: a hunter tracking an animal through the\n"
               "arrival times of (encrypted) sensor reports.\n\n";

  constexpr double kMeanDelay = 30.0;
  constexpr std::size_t kSlots = 10;

  metrics::Table table({"scheme", "mean |time error|", "mean spatial error",
                        "packets"});
  struct Case {
    const char* name;
    net::DisciplineFactory factory;
    double known_mean;
  };
  const Case cases[] = {
      {"no-delay", core::immediate_factory(), 0.0},
      {"unlimited Exp(30)", core::unlimited_exponential_factory(kMeanDelay),
       kMeanDelay},
      {"RCAD Exp(30), k=10",
       core::rcad_exponential_factory(kMeanDelay, kSlots), kMeanDelay},
  };
  for (const Case& c : cases) {
    const HuntOutcome outcome = run_hunt(c.factory, c.known_mean);
    table.add_row({c.name, metrics::format_number(outcome.mean_time_error, 2),
                   metrics::format_number(outcome.mean_spatial_error, 2),
                   metrics::format_number(outcome.delivered, 0)});
  }
  table.print(std::cout);

  std::cout << "\nTemporal ambiguity becomes spatial ambiguity: the hunter's\n"
               "position error grows with his creation-time error, so the\n"
               "delaying schemes blur the animal's track.\n";
  return 0;
}
