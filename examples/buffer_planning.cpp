// Buffer planning walkthrough — the paper's §3/§4 analysis as a design
// tool, no simulation involved.
//
// Given a deployment (per-source report rate, buffer slots per mote, a
// tolerable preemption/drop budget), this example computes:
//   1. the mean privacy delay 1/µ each traffic level can afford (Erlang
//      dimensioning, Eq. 5),
//   2. the buffer occupancy that choice implies (M/M/∞ law),
//   3. the information leaked to the adversary over an n-packet stream
//      (Anantharam–Verdú bound, Eq. 4), and
//   4. how the leakage falls as the delay budget grows — the paper's
//      privacy/buffering trade-off, quantified.

#include <iostream>

#include "infotheory/entropy.h"
#include "metrics/table.h"
#include "queueing/erlang.h"

int main() {
  using namespace tempriv;

  std::cout << "Temporal-privacy buffer planning (analytic; no simulation)\n\n";

  // 1/2: what delay can a node afford at drop budget alpha, and what does
  // it cost in buffer occupancy?
  metrics::Table afford({"traffic lambda", "slots k", "drop budget alpha",
                         "max mean delay 1/mu", "E[N] if unbounded (rho)"});
  for (const double lambda : {0.1, 0.5, 2.0}) {
    for (const std::size_t k : {std::size_t{5}, std::size_t{10}}) {
      for (const double alpha : {0.01, 0.1}) {
        const double mu = queueing::mu_for_target_loss(lambda, k, alpha);
        afford.add_numeric_row({lambda, static_cast<double>(k), alpha,
                                1.0 / mu, lambda / mu},
                               3);
      }
    }
  }
  afford.print(std::cout);

  // 3/4: leakage over a 1000-packet stream as the delay budget grows.
  std::cout << "\nLeakage bound for a Poisson(0.5) source over 1000 packets\n"
               "(Eq. 4: I(X^n;Z^n) <= sum_j ln(1 + j*mu/lambda), nats):\n\n";
  metrics::Table leak({"mean delay 1/mu", "bound (nats)", "per packet",
                       "h(Y) per hop (nats)"});
  constexpr double kLambda = 0.5;
  constexpr std::uint64_t kPackets = 1000;
  for (const double mean_delay : {1.0, 5.0, 15.0, 30.0, 60.0, 120.0}) {
    const double bound = infotheory::av_leakage_bound_sum(
        kPackets, 1.0 / mean_delay, kLambda);
    leak.add_numeric_row({mean_delay, bound,
                          bound / static_cast<double>(kPackets),
                          infotheory::exponential_entropy(mean_delay)},
                         3);
  }
  leak.print(std::cout);

  std::cout << "\nReading the tables together: doubling the mean privacy\n"
               "delay roughly halves the adversary's per-packet information\n"
               "(Eq. 4 is ~ln(1 + j*mu/lambda)) but doubles the expected\n"
               "buffer occupancy rho = lambda/mu - temporal privacy and\n"
               "buffer utilization are conflicting objectives (paper, S4),\n"
               "and RCAD is what keeps the conflict safe when the budget\n"
               "is exceeded at run time.\n";
  return 0;
}
