// Quickstart: the temporal-privacy problem and RCAD in ~60 lines.
//
// We run the paper's evaluation scenario (Figure 1 topology: four periodic
// sources, hop counts 15/22/9/11, per-hop tx delay 1) under the three
// schemes of §5.3 and print the two headline metrics for flow S1:
// the adversary's mean square error when estimating packet-creation times
// (higher = more temporal privacy) and the mean delivery latency (lower =
// cheaper). RCAD delivers high privacy at a fraction of the latency cost of
// unlimited buffering.

#include <iostream>

#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  std::cout << "Temporal privacy quickstart -- paper scenario at high traffic\n"
            << "(1/lambda = 2, 1/mu = 30, k = 10 buffer slots, 1000 pkts/src)\n\n";

  metrics::Table table({"scheme", "S1 adversary MSE", "S1 mean latency",
                        "preemptions", "drops"});

  for (workload::Scheme scheme :
       {workload::Scheme::kNoDelay, workload::Scheme::kUnlimitedDelay,
        workload::Scheme::kRcad}) {
    workload::PaperScenario scenario;
    scenario.interarrival = 2.0;  // the paper's highest traffic rate
    scenario.scheme = scheme;
    const workload::ScenarioResult result = run_paper_scenario(scenario);
    const workload::FlowResult& s1 = result.flows.front();
    table.add_row({to_string(scheme), metrics::format_number(s1.mse_baseline, 1),
                   metrics::format_number(s1.mean_latency, 1),
                   std::to_string(result.preemptions),
                   std::to_string(result.drops)});
  }

  table.print(std::cout);
  std::cout << "\nHigher MSE = better temporal privacy; RCAD combines high MSE\n"
               "with far lower latency than unlimited buffering.\n";
  return 0;
}
