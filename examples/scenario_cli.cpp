// scenario_cli — run any variant of the paper's evaluation scenario from
// the command line; prints the per-flow privacy/latency table and can dump
// CSV for plotting.
//
//   scenario_cli --scheme rcad --interarrival 2 --packets 1000
//                --mean-delay 30 --buffer 10 --victim shortest
//                --hops 15,22,9,11 --shared-tail 3 --seed 42
//
// Run with --help for the full flag list.

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/table.h"
#include "workload/scenario.h"

namespace {

using namespace tempriv;

[[noreturn]] void usage(int exit_code) {
  std::cout <<
      "usage: scenario_cli [options]\n"
      "  --scheme S        no-delay | unlimited | drop-tail | rcad (default rcad)\n"
      "  --interarrival X  source inter-arrival time 1/lambda (default 2)\n"
      "  --packets N       packets per source (default 1000)\n"
      "  --mean-delay X    mean privacy delay 1/mu (default 30)\n"
      "  --buffer K        buffer slots per node (default 10)\n"
      "  --victim V        shortest | longest | random | oldest (default shortest)\n"
      "  --hops LIST       comma-separated per-flow hop counts (default 15,22,9,11)\n"
      "  --shared-tail T   hops shared by all flows before the sink (default 3)\n"
      "  --sink-weighting W  0..1, delay profile bias away from the sink (default 0)\n"
      "  --source S        periodic | poisson | bursty (default periodic)\n"
      "  --jitter J        per-hop MAC jitter, uniform [0,J) (default 0)\n"
      "  --tx-delay T      per-hop transmission delay tau (default 1)\n"
      "  --seed S          RNG seed (default paper seed)\n"
      "  --csv FILE        also write the per-flow table as CSV\n"
      "  --help            this text\n";
  std::exit(exit_code);
}

workload::SourceKind parse_source(const std::string& name) {
  if (name == "periodic") return workload::SourceKind::kPeriodic;
  if (name == "poisson") return workload::SourceKind::kPoisson;
  if (name == "bursty") return workload::SourceKind::kBursty;
  std::cerr << "unknown source kind: " << name << "\n";
  usage(2);
}

workload::Scheme parse_scheme(const std::string& name) {
  if (name == "no-delay") return workload::Scheme::kNoDelay;
  if (name == "unlimited") return workload::Scheme::kUnlimitedDelay;
  if (name == "drop-tail") return workload::Scheme::kDropTail;
  if (name == "rcad") return workload::Scheme::kRcad;
  std::cerr << "unknown scheme: " << name << "\n";
  usage(2);
}

core::VictimPolicy parse_victim(const std::string& name) {
  if (name == "shortest") return core::VictimPolicy::kShortestRemaining;
  if (name == "longest") return core::VictimPolicy::kLongestRemaining;
  if (name == "random") return core::VictimPolicy::kRandom;
  if (name == "oldest") return core::VictimPolicy::kOldest;
  std::cerr << "unknown victim policy: " << name << "\n";
  usage(2);
}

std::vector<std::uint16_t> parse_hops(const std::string& list) {
  std::vector<std::uint16_t> hops;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int value = std::stoi(item);
    if (value <= 0 || value > 0xFFFF) {
      std::cerr << "bad hop count: " << item << "\n";
      usage(2);
    }
    hops.push_back(static_cast<std::uint16_t>(value));
  }
  if (hops.empty()) {
    std::cerr << "--hops needs at least one flow\n";
    usage(2);
  }
  return hops;
}

}  // namespace

int main(int argc, char** argv) {
  workload::PaperScenario scenario;
  std::string csv_path;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << flag << " needs a value\n";
        usage(2);
      }
      return args[++i];
    };
    try {
      if (flag == "--help" || flag == "-h") {
        usage(0);
      } else if (flag == "--scheme") {
        scenario.scheme = parse_scheme(value());
      } else if (flag == "--interarrival") {
        scenario.interarrival = std::stod(value());
      } else if (flag == "--packets") {
        scenario.packets_per_source = static_cast<std::uint32_t>(std::stoul(value()));
      } else if (flag == "--mean-delay") {
        scenario.mean_delay = std::stod(value());
      } else if (flag == "--buffer") {
        scenario.buffer_slots = std::stoul(value());
      } else if (flag == "--victim") {
        scenario.victim = parse_victim(value());
      } else if (flag == "--hops") {
        scenario.hop_counts = parse_hops(value());
      } else if (flag == "--shared-tail") {
        scenario.shared_tail = static_cast<std::uint16_t>(std::stoul(value()));
      } else if (flag == "--sink-weighting") {
        scenario.sink_weighting = std::stod(value());
      } else if (flag == "--source") {
        scenario.source = parse_source(value());
      } else if (flag == "--jitter") {
        scenario.hop_jitter = std::stod(value());
      } else if (flag == "--tx-delay") {
        scenario.hop_tx_delay = std::stod(value());
      } else if (flag == "--seed") {
        scenario.seed = std::stoull(value());
      } else if (flag == "--csv") {
        csv_path = value();
      } else {
        std::cerr << "unknown flag: " << flag << "\n";
        usage(2);
      }
    } catch (const std::invalid_argument&) {
      std::cerr << "bad value for " << flag << "\n";
      usage(2);
    }
  }

  try {
    const workload::ScenarioResult result = run_paper_scenario(scenario);

    std::cout << "scheme: " << to_string(scenario.scheme)
              << "   source: " << to_string(scenario.source)
              << "   1/lambda: " << scenario.interarrival
              << "   1/mu: " << scenario.mean_delay
              << "   k: " << scenario.buffer_slots << "\n\n";

    metrics::Table table({"flow", "hops", "delivered", "MSE baseline-adv",
                          "MSE adaptive-adv", "MSE path-aware-adv",
                          "mean latency", "max latency"});
    for (std::size_t i = 0; i < result.flows.size(); ++i) {
      const workload::FlowResult& flow = result.flows[i];
      table.add_row({"S" + std::to_string(i + 1), std::to_string(flow.hops),
                     std::to_string(flow.delivered),
                     metrics::format_number(flow.mse_baseline, 1),
                     metrics::format_number(flow.mse_adaptive, 1),
                     metrics::format_number(flow.mse_path_aware, 1),
                     metrics::format_number(flow.mean_latency, 1),
                     metrics::format_number(flow.max_latency, 1)});
    }
    table.print(std::cout);
    std::cout << "\noriginated " << result.originated << ", delivered "
              << result.delivered << ", preemptions " << result.preemptions
              << ", drops " << result.drops << ", sim end t = "
              << metrics::format_number(result.sim_end_time, 1) << "\n";
    if (!csv_path.empty()) {
      table.save_csv(csv_path);
      std::cout << "per-flow CSV written to " << csv_path << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
