#!/usr/bin/env bash
# End-to-end CLI test for the sharded campaign pipeline:
#
#   1. usage errors (malformed --jobs/--reps/--seed, bad --shard) exit 2;
#   2. a small grid run as 3 shards + tempriv-merge reproduces the serial
#      JSONL / stats / CSV byte for byte;
#   3. tempriv-merge --check passes a clean shard set and reports a
#      corrupted one (tampered header, missing shard) with exit 1;
#   4. --shard auto:2 (fork supervisor + auto-merge) matches serial too;
#   5. --telemetry writes a snapshot in every mode without perturbing any
#      result byte (works in OFF builds too: all-zero snapshot), and
#      tempriv-merge --telemetry combines shard snapshots / fails when a
#      sibling is missing.
#
# Usage: campaign_cli_test.sh <tempriv-campaign> <tempriv-merge>

set -u

CAMPAIGN=${1:?usage: campaign_cli_test.sh <tempriv-campaign> <tempriv-merge>}
MERGE=${2:?usage: campaign_cli_test.sh <tempriv-campaign> <tempriv-merge>}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FAILURES=0
note_failure() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

expect_exit() {
  # expect_exit <wanted-code> <description> <cmd...>
  local wanted=$1 what=$2
  shift 2
  "$@" >"$WORK/out.log" 2>"$WORK/err.log"
  local got=$?
  if [ "$got" -ne "$wanted" ]; then
    echo "--- stderr ---" >&2
    cat "$WORK/err.log" >&2
    note_failure "$what: expected exit $wanted, got $got"
  fi
}

expect_same() {
  # expect_same <description> <file-a> <file-b>
  if ! cmp -s "$2" "$3"; then
    note_failure "$1: $2 and $3 differ"
    diff "$2" "$3" | head -5 >&2
  fi
}

# --- 1. usage errors exit 2 with a friendly message ----------------------

expect_exit 2 "malformed --jobs" "$CAMPAIGN" fig2a --jobs 4x --quiet
expect_exit 2 "malformed --reps" "$CAMPAIGN" fig2a --reps 1.5 --quiet
expect_exit 2 "negative --seed" "$CAMPAIGN" fig2a --seed -1 --quiet
expect_exit 2 "empty --jobs" "$CAMPAIGN" fig2a --jobs '' --quiet
expect_exit 2 "overflowing --seed" "$CAMPAIGN" fig2a --seed 99999999999999999999 --quiet
expect_exit 2 "bad shard index" "$CAMPAIGN" fig2a --shard 3/2 --quiet
expect_exit 2 "bad shard syntax" "$CAMPAIGN" fig2a --shard 1:2 --quiet
expect_exit 2 "zero auto shards" "$CAMPAIGN" fig2a --shard auto:0 --quiet
expect_exit 2 "unknown sweep" "$CAMPAIGN" nosuchsweep --quiet
expect_exit 2 "unknown option" "$CAMPAIGN" fig2a --frobnicate --quiet
expect_exit 2 "missing value" "$CAMPAIGN" fig2a --jobs
expect_exit 0 "--help" "$CAMPAIGN" --help
if ! grep -q "wants a non-negative integer" "$WORK/err.log" 2>/dev/null; then
  "$CAMPAIGN" fig2a --jobs 4x --quiet 2>"$WORK/err.log"
  grep -q "wants a non-negative integer" "$WORK/err.log" ||
    note_failure "malformed --jobs: friendly message missing"
fi

# --- 2. serial vs 3 shards + merge, byte for byte ------------------------

GRID_ARGS=(grid --interarrival 2,4 --scheme rcad,droptail --packets 80 --reps 2 --quiet)

expect_exit 0 "serial grid run" \
  "$CAMPAIGN" "${GRID_ARGS[@]}" --out "$WORK/serial"
for i in 0 1 2; do
  expect_exit 0 "shard $i/3 run" \
    "$CAMPAIGN" "${GRID_ARGS[@]}" --out "$WORK/shards" --shard "$i/3"
done

SHARDS=("$WORK"/shards/campaign_grid.shard-*-of-3.jsonl)
expect_exit 0 "merge --check (clean)" "$MERGE" --check "${SHARDS[@]}"
expect_exit 0 "merge" "$MERGE" --out "$WORK/merged" "${SHARDS[@]}"

for f in campaign_grid.jsonl campaign_grid.stats.json campaign_grid.csv; do
  expect_same "merge vs serial ($f)" "$WORK/serial/$f" "$WORK/merged/$f"
done

# --- 3. --check on corrupted shard sets ----------------------------------

# Missing shard: only two of the three artifacts.
expect_exit 1 "merge --check (missing shard)" \
  "$MERGE" --check "${SHARDS[0]}" "${SHARDS[1]}"

# Tampered header: flip the base seed in shard 1's header line.
mkdir -p "$WORK/corrupt"
for i in 0 1 2; do
  cp "$WORK/shards/campaign_grid.shard-$i-of-3.jsonl" \
     "$WORK/shards/campaign_grid.shard-$i-of-3.stats.json" "$WORK/corrupt/"
done
sed -i '1s/"base_seed":[0-9]*/"base_seed":424242/' \
  "$WORK/corrupt/campaign_grid.shard-1-of-3.jsonl"
expect_exit 1 "merge --check (tampered base seed)" \
  "$MERGE" --check "$WORK/corrupt"/campaign_grid.shard-*-of-3.jsonl
"$MERGE" --check "$WORK/corrupt"/campaign_grid.shard-*-of-3.jsonl \
  2>"$WORK/check.log"
grep -q "base_seed" "$WORK/check.log" ||
  note_failure "--check did not name the tampered base_seed"

# Duplicate shard: the same index twice.
expect_exit 1 "merge --check (duplicate shard)" \
  "$MERGE" --check "${SHARDS[0]}" "${SHARDS[0]}" "${SHARDS[1]}" "${SHARDS[2]}"

# --check writes nothing even when the set is clean.
[ ! -e "$WORK/shards/campaign_grid.jsonl" ] ||
  note_failure "--check wrote an output file"

# --- 4. --shard auto:2 supervisor matches serial -------------------------

expect_exit 0 "auto:2 supervised run" \
  "$CAMPAIGN" "${GRID_ARGS[@]}" --out "$WORK/auto" --shard auto:2
for f in campaign_grid.jsonl campaign_grid.stats.json campaign_grid.csv; do
  expect_same "auto:2 vs serial ($f)" "$WORK/serial/$f" "$WORK/auto/$f"
done

# --- 5. --telemetry snapshots: present, well-formed, result-neutral ------

# Serial run with telemetry: snapshot written, results byte-identical to
# the telemetry-free serial run of section 2.
expect_exit 0 "serial run with --telemetry" \
  "$CAMPAIGN" "${GRID_ARGS[@]}" --out "$WORK/tserial" \
  --telemetry "$WORK/tserial/grid.telemetry.json"
for f in campaign_grid.jsonl campaign_grid.stats.json campaign_grid.csv; do
  expect_same "--telemetry vs plain serial ($f)" \
    "$WORK/serial/$f" "$WORK/tserial/$f"
done
grep -q '"eq.schedule_heap"' "$WORK/tserial/grid.telemetry.json" ||
  note_failure "serial telemetry snapshot lacks the event-queue counters"
grep -q '"spans"' "$WORK/tserial/grid.telemetry.json" ||
  note_failure "serial telemetry snapshot lacks the spans section"

# Two explicit shards writing .telemetry.json siblings, then a merge that
# combines them. The sibling paths follow the shard JSONL naming so
# tempriv-merge finds them by convention.
for i in 0 1; do
  expect_exit 0 "shard $i/2 run with --telemetry" \
    "$CAMPAIGN" "${GRID_ARGS[@]}" --out "$WORK/tshards" --shard "$i/2" \
    --telemetry "$WORK/tshards/campaign_grid.shard-$i-of-2.telemetry.json"
done
expect_exit 0 "merge with --telemetry" \
  "$MERGE" --out "$WORK/tmerged" \
  --telemetry "$WORK/tmerged/grid.telemetry.json" \
  "$WORK"/tshards/campaign_grid.shard-*-of-2.jsonl
for f in campaign_grid.jsonl campaign_grid.stats.json campaign_grid.csv; do
  expect_same "telemetry merge vs serial ($f)" \
    "$WORK/serial/$f" "$WORK/tmerged/$f"
done
grep -q '"telemetry"' "$WORK/tmerged/grid.telemetry.json" ||
  note_failure "merged telemetry snapshot missing or malformed"

# A shard set without telemetry siblings cannot honor --telemetry.
expect_exit 1 "merge --telemetry without siblings" \
  "$MERGE" --out "$WORK/tfail" --telemetry "$WORK/tfail/grid.telemetry.json" \
  "${SHARDS[@]}"

# auto:2 fork supervisor: merged snapshot at PATH, per-shard siblings next
# to the shard JSONLs, results still byte-identical to serial.
expect_exit 0 "auto:2 run with --telemetry" \
  "$CAMPAIGN" "${GRID_ARGS[@]}" --out "$WORK/tauto" --shard auto:2 \
  --telemetry "$WORK/tauto/grid.telemetry.json"
for f in campaign_grid.jsonl campaign_grid.stats.json campaign_grid.csv; do
  expect_same "auto:2 --telemetry vs serial ($f)" \
    "$WORK/serial/$f" "$WORK/tauto/$f"
done
grep -q '"eq.schedule_heap"' "$WORK/tauto/grid.telemetry.json" ||
  note_failure "auto:2 merged telemetry snapshot lacks event-queue counters"
for i in 0 1; do
  [ -f "$WORK/tauto/campaign_grid.shard-$i-of-2.telemetry.json" ] ||
    note_failure "auto:2 shard $i telemetry sibling missing"
done

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES failure(s)" >&2
  exit 1
fi
echo "campaign CLI test: all checks passed"
