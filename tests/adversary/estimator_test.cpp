#include "adversary/estimator.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempriv::adversary {
namespace {

net::Packet make_packet(net::NodeId origin, std::uint16_t hops,
                        std::uint64_t uid) {
  net::Packet packet;
  packet.header.origin = origin;
  packet.header.hop_count = hops;
  packet.uid = uid;
  return packet;
}

TEST(BaselineAdversary, EstimateIsArrivalMinusKnownDelays) {
  // x̂ = z − h·τ − h/µ with τ = 1, 1/µ = 30, h = 15 (paper flow S1).
  BaselineAdversary adversary(1.0, 30.0);
  adversary.on_delivery(make_packet(7, 15, 0), 500.0);
  ASSERT_EQ(adversary.estimates().size(), 1u);
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].estimated_creation,
                   500.0 - 15.0 * 1.0 - 15.0 * 30.0);
  EXPECT_EQ(adversary.estimates()[0].flow, 7u);
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].arrival, 500.0);
}

TEST(BaselineAdversary, NoDelayNetworkEstimateIsExact) {
  BaselineAdversary adversary(1.0, 0.0);
  adversary.on_delivery(make_packet(2, 5, 0), 105.0);
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].estimated_creation, 100.0);
}

TEST(BaselineAdversary, ValidatesKnowledge) {
  EXPECT_THROW(BaselineAdversary(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BaselineAdversary(1.0, -5.0), std::invalid_argument);
}

TEST(Adversary, TracksFlowsSeparately) {
  BaselineAdversary adversary(1.0, 0.0);
  adversary.on_delivery(make_packet(1, 5, 0), 10.0);
  adversary.on_delivery(make_packet(2, 7, 1), 11.0);
  adversary.on_delivery(make_packet(1, 5, 2), 12.0);
  EXPECT_EQ(adversary.flows_observed(), 2u);
  EXPECT_EQ(adversary.estimates_for_flow(1).size(), 2u);
  EXPECT_EQ(adversary.estimates_for_flow(2).size(), 1u);
  EXPECT_TRUE(adversary.estimates_for_flow(9).empty());
}

TEST(AdaptiveAdversary, UsesBaselineRuleAtLowTraffic) {
  // Slow flow: λ̂ small, Erlang loss below threshold -> per-hop delay 1/µ.
  AdaptiveAdversary adversary({1.0, 30.0, 10, 0.1});
  double arrival = 0.0;
  for (int i = 0; i < 5; ++i) {
    arrival += 100.0;  // λ̂ = 0.01 -> ρ = 0.3, E(0.3, 10) ≈ 0
    adversary.on_delivery(make_packet(1, 15, i), arrival);
  }
  EXPECT_FALSE(adversary.in_preemption_regime());
  const auto& last = adversary.estimates().back();
  EXPECT_DOUBLE_EQ(last.estimated_creation,
                   arrival - 15.0 * 1.0 - 15.0 * 30.0);
}

TEST(AdaptiveAdversary, SwitchesToPreemptionRuleAtHighTraffic) {
  // Fast flow: λ̂ ≈ 0.5, ρ = 15 with k = 10 -> E ≈ 0.36 > 0.1 threshold.
  AdaptiveAdversary adversary({1.0, 30.0, 10, 0.1});
  double arrival = 0.0;
  for (int i = 0; i < 20; ++i) {
    arrival += 2.0;
    adversary.on_delivery(make_packet(1, 15, i), arrival);
  }
  EXPECT_TRUE(adversary.in_preemption_regime());
  // Per-hop delay estimate becomes k/λ̂ = 10/0.5 = 20.
  const auto& last = adversary.estimates().back();
  EXPECT_NEAR(last.estimated_creation, arrival - 15.0 * 1.0 - 15.0 * 20.0, 1.0);
}

TEST(AdaptiveAdversary, AggregateVariantUsesTotalRateForTheTest) {
  // Each flow alone is below threshold, but their superposition is not —
  // the paper's literal λtot reading ("n sources converging one hop prior
  // to the sink"), enabled via aggregate_rate_test.
  AdaptiveAdversary adversary({1.0, 30.0, 10, 0.1, true});
  double arrival = 0.0;
  for (int i = 0; i < 30; ++i) {
    arrival += 5.0;  // per-flow λ̂ ≈ 0.2/0.2 interleaved below
    adversary.on_delivery(make_packet(1, 15, 2 * i), arrival);
    adversary.on_delivery(make_packet(2, 9, 2 * i + 1), arrival + 1.0);
  }
  // λ̂tot ≈ 0.4 -> ρ = 12 -> E(12, 10) ≈ 0.2 > 0.1.
  EXPECT_TRUE(adversary.in_preemption_regime());
}

TEST(AdaptiveAdversary, PerFlowVariantIgnoresOtherFlowsInTheTest) {
  // Same traffic as above, but the self-consistent per-flow test sees only
  // ρ = 0.2 * 30 = 6 per flow, E(6, 10) ≈ 0.04 < 0.1 -> baseline rule.
  AdaptiveAdversary adversary({1.0, 30.0, 10, 0.1});
  double arrival = 0.0;
  for (int i = 0; i < 30; ++i) {
    arrival += 5.0;
    adversary.on_delivery(make_packet(1, 15, 2 * i), arrival);
    adversary.on_delivery(make_packet(2, 9, 2 * i + 1), arrival + 1.0);
  }
  EXPECT_FALSE(adversary.in_preemption_regime());
}

TEST(AdaptiveAdversary, FirstPacketFallsBackToBaseline) {
  // With a single observation there is no rate estimate yet.
  AdaptiveAdversary adversary({1.0, 30.0, 10, 0.1});
  adversary.on_delivery(make_packet(1, 10, 0), 50.0);
  EXPECT_FALSE(adversary.in_preemption_regime());
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].estimated_creation,
                   50.0 - 10.0 - 300.0);
}

TEST(AdaptiveAdversary, ZeroConfiguredDelayActsLikeNoDelayBaseline) {
  AdaptiveAdversary adversary({1.0, 0.0, 10, 0.1});
  adversary.on_delivery(make_packet(1, 4, 0), 10.0);
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].estimated_creation, 6.0);
}

TEST(AdaptiveAdversary, ValidatesConfig) {
  EXPECT_THROW(AdaptiveAdversary({-1.0, 30.0, 10, 0.1}), std::invalid_argument);
  EXPECT_THROW(AdaptiveAdversary({1.0, 30.0, 0, 0.1}), std::invalid_argument);
  EXPECT_THROW(AdaptiveAdversary({1.0, 30.0, 10, 0.0}), std::invalid_argument);
  EXPECT_THROW(AdaptiveAdversary({1.0, 30.0, 10, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::adversary
