#include "adversary/ground_truth.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempriv::adversary {
namespace {

crypto::Speck64_128::Key test_key() {
  return {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6};
}

net::Packet make_packet(const crypto::PayloadCodec& codec, net::NodeId origin,
                        double creation, std::uint32_t seq, std::uint64_t uid,
                        std::uint16_t hops = 5) {
  net::Packet packet;
  packet.header.origin = origin;
  packet.header.hop_count = hops;
  packet.uid = uid;
  packet.payload = codec.seal({1.0, seq, creation}, origin);
  return packet;
}

TEST(GroundTruthRecorder, DecryptsAndRecords) {
  crypto::PayloadCodec codec(test_key());
  GroundTruthRecorder recorder(codec);
  recorder.on_delivery(make_packet(codec, 3, 10.0, 0, 42), 25.0);
  ASSERT_NE(recorder.find(42), nullptr);
  EXPECT_DOUBLE_EQ(recorder.find(42)->creation, 10.0);
  EXPECT_DOUBLE_EQ(recorder.find(42)->arrival, 25.0);
  EXPECT_EQ(recorder.find(42)->flow, 3u);
  EXPECT_EQ(recorder.find(42)->app_seq, 0u);
  EXPECT_EQ(recorder.delivered(), 1u);
  EXPECT_EQ(recorder.find(99), nullptr);
}

TEST(GroundTruthRecorder, TracksLatencyPerFlow) {
  crypto::PayloadCodec codec(test_key());
  GroundTruthRecorder recorder(codec);
  recorder.on_delivery(make_packet(codec, 1, 0.0, 0, 0), 10.0);
  recorder.on_delivery(make_packet(codec, 1, 5.0, 1, 1), 25.0);
  recorder.on_delivery(make_packet(codec, 2, 0.0, 0, 2), 4.0);
  EXPECT_DOUBLE_EQ(recorder.latency(1).mean(), 15.0);
  EXPECT_DOUBLE_EQ(recorder.latency(2).mean(), 4.0);
  EXPECT_DOUBLE_EQ(recorder.total_latency().mean(), (10.0 + 20.0 + 4.0) / 3.0);
  EXPECT_THROW(recorder.latency(9), std::out_of_range);
}

TEST(GroundTruthRecorder, RejectsCorruptedPayloads) {
  crypto::PayloadCodec codec(test_key());
  GroundTruthRecorder recorder(codec);
  net::Packet packet = make_packet(codec, 1, 0.0, 0, 0);
  packet.payload.tag ^= 1;
  EXPECT_THROW(recorder.on_delivery(packet, 1.0), std::runtime_error);
}

TEST(GroundTruthRecorder, ScoresAdversaryPerFlow) {
  crypto::PayloadCodec codec(test_key());
  GroundTruthRecorder recorder(codec);
  BaselineAdversary adversary(1.0, 0.0);

  // Two flows; flow 1's packets arrive exactly h·τ late (no privacy delay)
  // so the adversary is exact; flow 2's packet is delayed 7 extra units.
  net::Packet p1 = make_packet(codec, 1, 0.0, 0, 0, 5);
  recorder.on_delivery(p1, 5.0);
  adversary.on_delivery(p1, 5.0);
  net::Packet p2 = make_packet(codec, 2, 0.0, 0, 1, 5);
  recorder.on_delivery(p2, 12.0);
  adversary.on_delivery(p2, 12.0);

  EXPECT_DOUBLE_EQ(recorder.score_flow(adversary, 1).mse(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.score_flow(adversary, 2).mse(), 49.0);
  EXPECT_DOUBLE_EQ(recorder.score_all(adversary).mse(), 24.5);
}

TEST(GroundTruthRecorder, ScoreFailsOnUnseenEstimate) {
  crypto::PayloadCodec codec(test_key());
  GroundTruthRecorder recorder(codec);
  BaselineAdversary adversary(1.0, 0.0);
  // The adversary saw a packet the recorder did not — impossible in a real
  // run, and flagged loudly as harness misuse.
  adversary.on_delivery(make_packet(codec, 1, 0.0, 0, 7), 5.0);
  EXPECT_THROW(recorder.score_all(adversary), std::logic_error);
}

TEST(GroundTruthRecorder, ScoringEmptyFlowGivesEmptyAccumulator) {
  crypto::PayloadCodec codec(test_key());
  GroundTruthRecorder recorder(codec);
  BaselineAdversary adversary(1.0, 0.0);
  const auto acc = recorder.score_flow(adversary, 5);
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mse(), 0.0);
}

}  // namespace
}  // namespace tempriv::adversary
