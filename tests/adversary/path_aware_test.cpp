#include "adversary/path_aware.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "queueing/erlang.h"

namespace tempriv::adversary {
namespace {

struct Fixture {
  net::ConvergingPaths built = net::Topology::converging_paths({15, 22, 9, 11}, 3);
  net::RoutingTable routing{built.topology};
};

net::Packet make_packet(net::NodeId origin, std::uint16_t hops,
                        std::uint64_t uid) {
  net::Packet packet;
  packet.header.origin = origin;
  packet.header.hop_count = hops;
  packet.uid = uid;
  return packet;
}

TEST(PathAwareAdversary, BaselineBehaviorAtLowTraffic) {
  Fixture f;
  PathAwareAdversary adversary({1.0, 30.0, 10, 0.1}, f.built.topology,
                               f.routing);
  // One slow flow: every node on the path stays below the Erlang threshold,
  // so the estimate is the plain x̂ = z − h(τ + 1/µ).
  double arrival = 0.0;
  for (int i = 0; i < 5; ++i) {
    arrival += 200.0;
    adversary.on_delivery(make_packet(f.built.sources[0], 15, i), arrival);
  }
  EXPECT_DOUBLE_EQ(adversary.estimates().back().estimated_creation,
                   arrival - 15.0 * 31.0);
}

TEST(PathAwareAdversary, DiscriminatesTrunkFromBranchAtHighTraffic) {
  Fixture f;
  PathAwareAdversary adversary({1.0, 30.0, 10, 0.1}, f.built.topology,
                               f.routing);
  // All four flows at λ = 0.5 each: branch nodes carry 0.5 (k/λ = 20),
  // trunk nodes carry 2.0 (k/λtot = 5). S1's path = 12 branch + 3 trunk:
  // estimated total delay = 15τ + 12*20 + 3*5 = 270.
  double arrival = 0.0;
  for (int i = 0; i < 80; ++i) {
    arrival += 2.0;  // per-flow inter-arrival 2 => λ = 0.5 per flow
    for (std::size_t s = 0; s < 4; ++s) {
      adversary.on_delivery(
          make_packet(f.built.sources[s], f.routing.hops_to_sink(f.built.sources[s]),
                      4 * i + s),
          arrival + 0.1 * static_cast<double>(s));
    }
  }
  const auto estimates = adversary.estimates_for_flow(f.built.sources[0]);
  ASSERT_FALSE(estimates.empty());
  const auto& last = estimates.back();
  // Interleaved arrivals: per-flow rate ≈ 0.5 (one packet each 2 units);
  // allow slack for the windowed rate estimate.
  EXPECT_NEAR(last.arrival - last.estimated_creation, 270.0, 15.0);
}

TEST(PathAwareAdversary, PathAwareEstimateIsBelowFlatAdaptiveEstimate) {
  Fixture f;
  PathAwareAdversary path_aware({1.0, 30.0, 10, 0.1}, f.built.topology,
                                f.routing);
  AdaptiveAdversary flat({1.0, 30.0, 10, 0.1});
  double arrival = 0.0;
  for (int i = 0; i < 80; ++i) {
    arrival += 2.0;
    path_aware.on_delivery(make_packet(f.built.sources[0], 15, i), arrival);
    flat.on_delivery(make_packet(f.built.sources[0], 15, i), arrival);
  }
  // Single flow at λ = 0.5: flat adaptive estimates every hop at k/λ = 20;
  // path-aware agrees on branch nodes but sees the trunk at the same rate
  // here (only one flow), so the two coincide.
  EXPECT_NEAR(path_aware.estimates().back().estimated_creation,
              flat.estimates().back().estimated_creation, 1e-6);
}

TEST(PathAwareAdversary, NoDelayNetworkFallsBackToTauOnly) {
  Fixture f;
  PathAwareAdversary adversary({1.0, 0.0, 10, 0.1}, f.built.topology, f.routing);
  adversary.on_delivery(make_packet(f.built.sources[2], 9, 0), 9.0);
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].estimated_creation, 0.0);
}

// The incremental per-node rate attribution plus the certified Erlang
// predicate must reproduce, bit for bit, a from-scratch reference that
// re-sums every flow's windowed rate in ascending origin order and calls
// erlang_loss directly — across an irregular interleaving of all four
// flows (bursts, gaps, rate changes) that keeps crossing the regime
// boundary on trunk and branch nodes.
TEST(PathAwareAdversary, IncrementalAttributionMatchesFullResum) {
  Fixture f;
  const PathAwareAdversary::Config cfg{1.0, 30.0, 10, 0.1};
  PathAwareAdversary adversary(cfg, f.built.topology, f.routing);

  std::map<net::NodeId, std::vector<double>> arrivals_by_flow;
  const auto windowed_rate = [&](net::NodeId flow) {
    const auto& a = arrivals_by_flow[flow];
    const std::size_t window = std::min<std::size_t>(a.size(), 64);
    if (a.size() < 2) return 0.0;
    if (window < 2) return 0.0;
    const double span = a.back() - a[a.size() - window];
    if (span <= 0.0) {
      const double full = a.back() - a.front();
      if (full <= 0.0) return 0.0;
      return static_cast<double>(a.size() - 1) / full;
    }
    return static_cast<double>(window - 1) / span;
  };
  const auto reference_estimate = [&](net::NodeId origin, double arrival,
                                      std::uint16_t hops) {
    // Full sweep: per-node rates from every flow, ascending origin order.
    std::map<net::NodeId, double> rates;
    for (const auto& [flow, a] : arrivals_by_flow) {
      const double rate = windowed_rate(flow);
      if (rate <= 0.0) continue;
      for (const net::NodeId node : f.routing.path_to_sink(flow)) {
        if (node != f.built.topology.sink()) rates[node] += rate;
      }
    }
    const double mu = 1.0 / cfg.mean_delay_per_hop;
    double total = 0.0;
    for (const net::NodeId node : f.routing.path_to_sink(origin)) {
      if (node == f.built.topology.sink()) continue;
      total += cfg.hop_tx_delay;
      double node_delay = cfg.mean_delay_per_hop;
      const auto it = rates.find(node);
      if (it != rates.end() && it->second > 0.0 &&
          queueing::erlang_loss(it->second / mu, cfg.buffer_slots) >
              cfg.loss_threshold) {
        node_delay = std::min(cfg.mean_delay_per_hop,
                              static_cast<double>(cfg.buffer_slots) /
                                  it->second);
      }
      total += node_delay;
    }
    (void)hops;
    return arrival - total;
  };

  std::uint64_t state = 12345;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  double now = 0.0;
  std::uint64_t uid = 0;
  for (int step = 0; step < 400; ++step) {
    now += 0.05 + static_cast<double>(next() % 100) / 25.0;  // 0.05..4.05
    const std::size_t s = next() % 4;
    const net::NodeId origin = f.built.sources[s];
    const std::uint16_t hops = f.routing.hops_to_sink(origin);
    arrivals_by_flow[origin].push_back(now);
    adversary.on_delivery(make_packet(origin, hops, uid++), now);
    const double expected = reference_estimate(origin, now, hops);
    ASSERT_EQ(adversary.estimates().back().estimated_creation, expected)
        << "step " << step << " origin " << origin;
  }
}

TEST(PathAwareAdversary, ValidatesConfig) {
  Fixture f;
  EXPECT_THROW(PathAwareAdversary({-1.0, 30.0, 10, 0.1}, f.built.topology,
                                  f.routing),
               std::invalid_argument);
  EXPECT_THROW(PathAwareAdversary({1.0, 30.0, 0, 0.1}, f.built.topology,
                                  f.routing),
               std::invalid_argument);
  EXPECT_THROW(PathAwareAdversary({1.0, 30.0, 10, 1.5}, f.built.topology,
                                  f.routing),
               std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::adversary
