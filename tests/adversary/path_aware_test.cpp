#include "adversary/path_aware.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempriv::adversary {
namespace {

struct Fixture {
  net::ConvergingPaths built = net::Topology::converging_paths({15, 22, 9, 11}, 3);
  net::RoutingTable routing{built.topology};
};

net::Packet make_packet(net::NodeId origin, std::uint16_t hops,
                        std::uint64_t uid) {
  net::Packet packet;
  packet.header.origin = origin;
  packet.header.hop_count = hops;
  packet.uid = uid;
  return packet;
}

TEST(PathAwareAdversary, BaselineBehaviorAtLowTraffic) {
  Fixture f;
  PathAwareAdversary adversary({1.0, 30.0, 10, 0.1}, f.built.topology,
                               f.routing);
  // One slow flow: every node on the path stays below the Erlang threshold,
  // so the estimate is the plain x̂ = z − h(τ + 1/µ).
  double arrival = 0.0;
  for (int i = 0; i < 5; ++i) {
    arrival += 200.0;
    adversary.on_delivery(make_packet(f.built.sources[0], 15, i), arrival);
  }
  EXPECT_DOUBLE_EQ(adversary.estimates().back().estimated_creation,
                   arrival - 15.0 * 31.0);
}

TEST(PathAwareAdversary, DiscriminatesTrunkFromBranchAtHighTraffic) {
  Fixture f;
  PathAwareAdversary adversary({1.0, 30.0, 10, 0.1}, f.built.topology,
                               f.routing);
  // All four flows at λ = 0.5 each: branch nodes carry 0.5 (k/λ = 20),
  // trunk nodes carry 2.0 (k/λtot = 5). S1's path = 12 branch + 3 trunk:
  // estimated total delay = 15τ + 12*20 + 3*5 = 270.
  double arrival = 0.0;
  for (int i = 0; i < 80; ++i) {
    arrival += 2.0;  // per-flow inter-arrival 2 => λ = 0.5 per flow
    for (std::size_t s = 0; s < 4; ++s) {
      adversary.on_delivery(
          make_packet(f.built.sources[s], f.routing.hops_to_sink(f.built.sources[s]),
                      4 * i + s),
          arrival + 0.1 * static_cast<double>(s));
    }
  }
  const auto estimates = adversary.estimates_for_flow(f.built.sources[0]);
  ASSERT_FALSE(estimates.empty());
  const auto& last = estimates.back();
  // Interleaved arrivals: per-flow rate ≈ 0.5 (one packet each 2 units);
  // allow slack for the windowed rate estimate.
  EXPECT_NEAR(last.arrival - last.estimated_creation, 270.0, 15.0);
}

TEST(PathAwareAdversary, PathAwareEstimateIsBelowFlatAdaptiveEstimate) {
  Fixture f;
  PathAwareAdversary path_aware({1.0, 30.0, 10, 0.1}, f.built.topology,
                                f.routing);
  AdaptiveAdversary flat({1.0, 30.0, 10, 0.1});
  double arrival = 0.0;
  for (int i = 0; i < 80; ++i) {
    arrival += 2.0;
    path_aware.on_delivery(make_packet(f.built.sources[0], 15, i), arrival);
    flat.on_delivery(make_packet(f.built.sources[0], 15, i), arrival);
  }
  // Single flow at λ = 0.5: flat adaptive estimates every hop at k/λ = 20;
  // path-aware agrees on branch nodes but sees the trunk at the same rate
  // here (only one flow), so the two coincide.
  EXPECT_NEAR(path_aware.estimates().back().estimated_creation,
              flat.estimates().back().estimated_creation, 1e-6);
}

TEST(PathAwareAdversary, NoDelayNetworkFallsBackToTauOnly) {
  Fixture f;
  PathAwareAdversary adversary({1.0, 0.0, 10, 0.1}, f.built.topology, f.routing);
  adversary.on_delivery(make_packet(f.built.sources[2], 9, 0), 9.0);
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].estimated_creation, 0.0);
}

TEST(PathAwareAdversary, ValidatesConfig) {
  Fixture f;
  EXPECT_THROW(PathAwareAdversary({-1.0, 30.0, 10, 0.1}, f.built.topology,
                                  f.routing),
               std::invalid_argument);
  EXPECT_THROW(PathAwareAdversary({1.0, 30.0, 0, 0.1}, f.built.topology,
                                  f.routing),
               std::invalid_argument);
  EXPECT_THROW(PathAwareAdversary({1.0, 30.0, 10, 1.5}, f.built.topology,
                                  f.routing),
               std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::adversary
