#include "adversary/sequence_leak.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace tempriv::adversary {
namespace {

crypto::PayloadCodec& codec() {
  static crypto::PayloadCodec instance(crypto::Speck64_128::Key{
      1, 9, 8, 4, 1, 9, 8, 4, 2, 0, 0, 7, 2, 0, 0, 7});
  return instance;
}

SequenceLeakAdversary::SequenceLeak leak_oracle() {
  return [](const net::Packet& packet) {
    return codec().open(packet.payload)->app_seq;
  };
}

TEST(SequenceLeakAdversary, RecoversPeriodOfPeriodicSource) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(8),
                       core::unlimited_exponential_factory(20.0), {},
                       sim::RandomStream(1));
  SequenceLeakAdversary adversary(1.0, 20.0, leak_oracle());
  network.add_sink_observer(&adversary);
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(2),
                                  4.0, 300);
  source.start(0.0);
  sim.run();
  EXPECT_NEAR(adversary.period_estimate(0), 4.0, 0.05);
}

TEST(SequenceLeakAdversary, DefeatsDelayingOnPeriodicTraffic) {
  // The headline: with the sequence number leaked, even heavy random
  // delaying leaves almost no temporal privacy for periodic sources.
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(8),
                       core::unlimited_exponential_factory(30.0), {},
                       sim::RandomStream(3));
  SequenceLeakAdversary leaky(1.0, 30.0, leak_oracle());
  BaselineAdversary sealed(1.0, 30.0);  // the paper's design: seq encrypted
  GroundTruthRecorder truth(codec());
  network.add_sink_observer(&leaky);
  network.add_sink_observer(&sealed);
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(4),
                                  2.0, 1000);
  source.start(0.0);
  sim.run();

  // Against unlimited delaying the sealed baseline is unbiased but keeps
  // the full per-packet delay variance h/µ² = 7·900; the leak averages it
  // away (the residual is the regression's convergence transient).
  const auto leaky_score = truth.score_estimates(leaky.estimates());
  const auto sealed_score = truth.score_all(sealed);
  EXPECT_LT(leaky_score.mse(), sealed_score.mse() / 4.0);
  const double centered_leaky =
      leaky_score.mse() - leaky_score.bias() * leaky_score.bias();
  const double centered_sealed =
      sealed_score.mse() - sealed_score.bias() * sealed_score.bias();
  EXPECT_LT(centered_leaky, centered_sealed / 4.0);
}

TEST(SequenceLeakAdversary, FallsBackBeforeTwoPackets) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(4), core::immediate_factory(),
                       {}, sim::RandomStream(5));
  SequenceLeakAdversary adversary(1.0, 0.0, leak_oracle());
  network.add_sink_observer(&adversary);
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(6),
                                  10.0, 1);
  source.start(0.0);
  sim.run();
  ASSERT_EQ(adversary.estimates().size(), 1u);
  // Single packet, no-delay network: fallback z − h·τ is exact.
  EXPECT_DOUBLE_EQ(adversary.estimates()[0].estimated_creation, 0.0);
  EXPECT_DOUBLE_EQ(adversary.period_estimate(0), 0.0);
}

TEST(SequenceLeakAdversary, TracksFlowsIndependently) {
  sim::Simulator sim;
  const auto built = net::Topology::converging_paths({5, 5}, 1);
  net::Network network(sim, built.topology,
                       core::unlimited_exponential_factory(10.0), {},
                       sim::RandomStream(7));
  SequenceLeakAdversary adversary(1.0, 10.0, leak_oracle());
  network.add_sink_observer(&adversary);
  workload::PeriodicSource fast(network, codec(), built.sources[0],
                                sim::RandomStream(8), 2.0, 200);
  workload::PeriodicSource slow(network, codec(), built.sources[1],
                                sim::RandomStream(9), 7.0, 200);
  fast.start(0.0);
  slow.start(0.0);
  sim.run();
  EXPECT_NEAR(adversary.period_estimate(built.sources[0]), 2.0, 0.05);
  EXPECT_NEAR(adversary.period_estimate(built.sources[1]), 7.0, 0.05);
}

TEST(SequenceLeakAdversary, ValidatesArguments) {
  EXPECT_THROW(SequenceLeakAdversary(-1.0, 0.0, leak_oracle()),
               std::invalid_argument);
  EXPECT_THROW(SequenceLeakAdversary(1.0, -2.0, leak_oracle()),
               std::invalid_argument);
  EXPECT_THROW(SequenceLeakAdversary(1.0, 0.0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::adversary
