#include "adversary/eavesdropper.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace tempriv::adversary {
namespace {

crypto::PayloadCodec& codec() {
  static crypto::PayloadCodec instance(crypto::Speck64_128::Key{
      8, 6, 7, 5, 3, 0, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  return instance;
}

TEST(InNetworkEavesdropper, ExactOnNoDelayNetwork) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(6), core::immediate_factory(),
                       {}, sim::RandomStream(1));
  // Listening on node 2 (3 hops from source 0's origin? node 2 is mid-path).
  InNetworkEavesdropper eve({1.0, 0.0}, network, {2});
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(2),
                                  10.0, 5);
  source.start(0.0);
  sim.run();
  ASSERT_EQ(eve.packets_heard(), 5u);
  EXPECT_EQ(eve.flows_heard(), 1u);
  for (const Estimate& est : eve.estimates()) {
    // Creation at 10*i; overheard leaving node 2 at creation + 2 (two link
    // traversals, zero holding) with hop_count = 3; estimate = t − 2τ = x.
    const double creation = est.arrival - 2.0;
    EXPECT_DOUBLE_EQ(est.estimated_creation, creation);
  }
}

TEST(InNetworkEavesdropper, HearsOnlyFlowsInRange) {
  sim::Simulator sim;
  const auto built = net::Topology::converging_paths({6, 6}, 2);
  net::Network network(sim, built.topology, core::immediate_factory(), {},
                       sim::RandomStream(1));
  const auto path_a = network.routing().path_to_sink(built.sources[0]);
  // Listen on a branch node of flow A only (not the shared trunk).
  InNetworkEavesdropper eve({1.0, 0.0}, network, {path_a[1]});
  workload::PeriodicSource src_a(network, codec(), built.sources[0],
                                 sim::RandomStream(2), 5.0, 10);
  workload::PeriodicSource src_b(network, codec(), built.sources[1],
                                 sim::RandomStream(3), 5.0, 10);
  src_a.start(0.0);
  src_b.start(0.0);
  sim.run();
  EXPECT_EQ(eve.flows_heard(), 1u);
  EXPECT_EQ(eve.packets_heard(), 10u);  // only flow A
}

TEST(InNetworkEavesdropper, SinkRangeHearsEverything) {
  sim::Simulator sim;
  const auto built = net::Topology::converging_paths({6, 6}, 2);
  net::Network network(sim, built.topology, core::immediate_factory(), {},
                       sim::RandomStream(1));
  // The node one hop from the sink transmits every packet in the network.
  const auto path = network.routing().path_to_sink(built.sources[0]);
  const net::NodeId last_hop = path[path.size() - 2];
  InNetworkEavesdropper eve({1.0, 0.0}, network, {last_hop});
  workload::PeriodicSource src_a(network, codec(), built.sources[0],
                                 sim::RandomStream(2), 5.0, 10);
  workload::PeriodicSource src_b(network, codec(), built.sources[1],
                                 sim::RandomStream(3), 5.0, 10);
  src_a.start(0.0);
  src_b.start(0.0);
  sim.run();
  EXPECT_EQ(eve.flows_heard(), 2u);
  EXPECT_EQ(eve.packets_heard(), 20u);
}

TEST(InNetworkEavesdropper, EarlyPlacementBeatsSinkOnCoveredFlow) {
  // Under delaying, a branch eavesdropper inverts fewer random delays than
  // the sink adversary, so its MSE on the covered flow is smaller.
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(12),
                       core::unlimited_exponential_factory(20.0), {},
                       sim::RandomStream(4));
  const auto path = network.routing().path_to_sink(0);
  InNetworkEavesdropper early({1.0, 20.0}, network, {path[2]});
  BaselineAdversary sink_adv(1.0, 20.0);
  GroundTruthRecorder truth(codec());
  network.add_sink_observer(&sink_adv);
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(5),
                                  5.0, 800);
  source.start(0.0);
  sim.run();
  const double mse_early = truth.score_estimates(early.estimates()).mse();
  const double mse_sink = truth.score_all(sink_adv).mse();
  EXPECT_LT(mse_early, mse_sink);
  EXPECT_GT(mse_early, 0.0);
}

TEST(InNetworkEavesdropper, DeduplicatesRetransmissionsOfSamePacket) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(6), core::immediate_factory(),
                       {}, sim::RandomStream(1));
  // Range covers two consecutive nodes: each packet is heard twice but
  // estimated once (at the first, earlier, overhearing).
  InNetworkEavesdropper eve({1.0, 0.0}, network, {1, 2});
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(2),
                                  5.0, 7);
  source.start(0.0);
  sim.run();
  EXPECT_EQ(eve.packets_heard(), 7u);
}

TEST(InNetworkEavesdropper, ValidatesArguments) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(3), core::immediate_factory(),
                       {}, sim::RandomStream(1));
  EXPECT_THROW(InNetworkEavesdropper({1.0, 0.0}, network, {}),
               std::invalid_argument);
  EXPECT_THROW(InNetworkEavesdropper({-1.0, 0.0}, network, {0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::adversary
