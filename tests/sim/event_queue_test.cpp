#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tempriv::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto event = q.pop()) event->action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopOnEmptyReturnsNullopt) {
  EventQueue q;
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(i, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, ManyInterleavedCancelsStayConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i % 37), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), 500u);
  std::size_t popped = 0;
  double last = -1.0;
  while (auto event = q.pop()) {
    EXPECT_GE(event->at, last);
    last = event->at;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

TEST(EventQueue, ClearResetsPoolForReuse) {
  // Regression: clear() must reset the slot pool and tombstone state so the
  // queue is immediately reusable — schedule -> clear -> reschedule.
  EventQueue q;
  std::vector<EventId> old_ids;
  for (int i = 0; i < 64; ++i) {
    old_ids.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  // Leave tombstones in the heap so clear() also has to discard those.
  for (std::size_t i = 0; i < old_ids.size(); i += 3) q.cancel(old_ids[i]);
  q.clear();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);

  int fired = 0;
  q.schedule(7.0, [&] { ++fired; });
  const EventId later = q.schedule(9.0, [&] { ++fired; });
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  // Handles from before clear() are dead and must not cancel the new
  // events now occupying their recycled slots.
  for (const EventId id : old_ids) EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(later));
  auto event = q.pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_DOUBLE_EQ(event->at, 7.0);
  event->action();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, ReservePreallocatesSlots) {
  EventQueue q;
  q.reserve(2500);
  EXPECT_EQ(q.slot_count(), 0u);  // reserve allocates chunks, not occupants
  std::vector<EventId> ids;
  for (int i = 0; i < 2500; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  EXPECT_EQ(q.size(), 2500u);
  EXPECT_EQ(q.slot_count(), 2500u);
  double last = -1.0;
  while (auto event = q.pop()) {
    EXPECT_GT(event->at, last);
    last = event->at;
  }
}

TEST(EventQueue, StaleHandleNeverCancelsSlotReuser) {
  // Fire an event, then recycle its pool slot many times; the original
  // handle must stay dead (sequence numbers make handles globally unique).
  EventQueue q;
  const EventId original = q.schedule(1.0, [] {});
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.cancel(original));
  for (int round = 0; round < 100; ++round) {
    const EventId reuse = q.schedule(1.0, [] {});
    EXPECT_NE(reuse, original);
    EXPECT_FALSE(q.cancel(original));
    ASSERT_TRUE(q.pop().has_value());
  }
}

TEST(EventQueue, EventIdsAreUnique) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  const EventId b = q.schedule(1.0, [] {});
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(EventId{}.valid());
}

}  // namespace
}  // namespace tempriv::sim
