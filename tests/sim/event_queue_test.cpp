#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tempriv::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto event = q.pop()) event->action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopOnEmptyReturnsNullopt) {
  EventQueue q;
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(i, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, ManyInterleavedCancelsStayConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i % 37), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.size(), 500u);
  std::size_t popped = 0;
  double last = -1.0;
  while (auto event = q.pop()) {
    EXPECT_GE(event->at, last);
    last = event->at;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

TEST(EventQueue, EventIdsAreUnique) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  const EventId b = q.schedule(1.0, [] {});
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(EventId{}.valid());
}

}  // namespace
}  // namespace tempriv::sim
