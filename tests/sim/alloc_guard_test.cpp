// Proves the event kernel's zero-allocation contract: once the queue's heap
// and slot pool are warm, schedule/pop (and cancel) never touch the global
// heap. Lives in its own test binary because it replaces the global
// operator new/delete with counting versions.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <optional>
#include <vector>

#include "core/delay_buffer.h"
#include "core/discipline_spec.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "net/network.h"
#include "net/packet_pool.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// GCC flags malloc-backed replacement allocators as mismatched new/delete
// pairs; the pairing is correct here since every path goes through these.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tempriv::sim {
namespace {

std::size_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocGuard, WarmScheduleAndPopAllocatesNothing) {
  RandomStream rng(11);
  EventQueue queue;
  queue.reserve(512);
  // Warm-up: visit every reserved slot once so the freelist is populated.
  for (int i = 0; i < 512; ++i) {
    queue.schedule(rng.uniform(0.0, 100.0), [] {});
  }
  while (queue.pop()) {
  }

  double sink = 0.0;
  const std::size_t before = allocations();
  for (int round = 0; round < 20000; ++round) {
    // A capture the size of the simulator's hot-path closures.
    const double at = rng.uniform(0.0, 100.0);
    queue.schedule(at, [&sink, at] { sink += at; });
    if (round % 3 == 0) {
      auto event = queue.pop();
      if (event) event->action();
    }
    while (queue.size() >= 500) {
      auto event = queue.pop();
      if (event) event->action();
    }
  }
  while (auto event = queue.pop()) {
    event->action();
  }
  const std::size_t after = allocations();
  EXPECT_EQ(after - before, 0u) << "event kernel allocated on the hot path";
  EXPECT_GT(sink, 0.0);
}

TEST(AllocGuard, WarmCancelAllocatesNothing) {
  RandomStream rng(12);
  EventQueue queue;
  queue.reserve(1024);
  std::vector<EventId> ids;
  ids.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(queue.schedule(rng.uniform(0.0, 100.0), [] {}));
  }
  const std::size_t before = allocations();
  for (std::size_t i = 0; i < ids.size(); i += 2) queue.cancel(ids[i]);
  while (queue.pop()) {
  }
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(AllocGuard, HotPathClosuresFitInline) {
  // The closures the simulator schedules per event must stay within the
  // InlineCallback budget, or every event costs a heap allocation again.
  Simulator* sim = nullptr;
  std::uint64_t remaining = 0;
  // Simulator event-chain shape (pointer + countdown pointer).
  auto chain = [&sim, &remaining] { (void)sim, (void)remaining; };
  // DelayBuffer::release shape: this + slot + uid + context reference.
  void* self = nullptr;
  std::uint32_t slot = 0;
  std::uint64_t uid = 0;
  auto release = [self, slot, uid, &remaining] {
    (void)self, (void)slot, (void)uid, (void)remaining;
  };
  EXPECT_TRUE(EventQueue::Callback::fits_inline<decltype(chain)>());
  EXPECT_TRUE(EventQueue::Callback::fits_inline<decltype(release)>());
  // Network link-traversal shape: network reference + destination + pooled
  // packet handle. This closure replaced one that captured the whole Packet
  // (which outgrows the inline budget and heap-allocated on every hop).
  net::Network* net = nullptr;
  net::NodeId next = 0;
  net::PacketPool::Handle handle;
  auto link = [net, next, handle] { (void)net, (void)next, (void)handle; };
  EXPECT_TRUE(EventQueue::Callback::fits_inline<decltype(link)>());
}

TEST(AllocGuard, WarmForwardedPacketAllocatesNothing) {
  // The end-to-end acceptance bar for the zero-allocation packet path:
  // sealing a payload, injecting it, and forwarding it across every hop of
  // a warm network must not touch the heap — with immediate forwarding
  // (every packet transits every layer: seal, originate, pool, event
  // kernel, per-hop header updates, sink delivery) and no tracer attached.
  Simulator simulator;
  constexpr std::size_t kHops = 16;
  net::Network network(simulator, net::Topology::line(kHops + 1),
                       core::immediate_factory(), {}, RandomStream(21));
  network.reserve(8);
  simulator.reserve(64);
  const crypto::PayloadCodec codec(
      crypto::Speck64_128::Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                               15, 16});
  std::uint32_t seq = 0;
  auto send_one = [&] {
    network.originate(0, codec.seal({1.0, seq, simulator.now()}, 0));
    ++seq;
    simulator.run();
  };
  // Warm-up: populate the pool slots, event-queue slots, and sink path.
  for (int i = 0; i < 8; ++i) send_one();

  const std::size_t before = allocations();
  for (int round = 0; round < 2000; ++round) send_one();
  EXPECT_EQ(allocations() - before, 0u)
      << "packet path allocated while sealing/forwarding a packet";
  EXPECT_EQ(network.packets_delivered(), 2008u);
}

TEST(AllocGuard, WarmDelayedForwardingAllocatesNothing) {
  // Same bar for the paper's actual configuration: RCAD disciplines delay
  // and preempt inside their slot-pooled buffers on the way to the sink.
  Simulator simulator;
  net::Network network(simulator, net::Topology::line(6),
                       core::rcad_exponential_factory(
                           5.0, 8, core::VictimPolicy::kShortestRemaining),
                       {}, RandomStream(22));
  network.reserve(16);
  simulator.reserve(256);
  const crypto::PayloadCodec codec(
      crypto::Speck64_128::Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                               15, 16});
  RandomStream rng(23);
  std::uint32_t seq = 0;
  // Warm-up: a first wave fills every buffer slot at least once.
  for (int i = 0; i < 64; ++i) {
    network.originate(0, codec.seal({1.0, seq, simulator.now()}, 0));
    ++seq;
    simulator.run_until(simulator.now() + rng.uniform(0.5, 2.0));
  }
  simulator.run();

  const std::size_t before = allocations();
  for (int round = 0; round < 500; ++round) {
    network.originate(0, codec.seal({1.0, seq, simulator.now()}, 0));
    ++seq;
    simulator.run_until(simulator.now() + rng.uniform(0.5, 2.0));
  }
  simulator.run();
  EXPECT_EQ(allocations() - before, 0u)
      << "delayed forwarding allocated on the steady-state path";
  EXPECT_EQ(network.packets_delivered(), network.packets_originated());
}

TEST(AllocGuard, WarmPopBatchAllocatesNothing) {
  // The batch drain path — pop_batch into a warm vector, take() per id,
  // restore() of an unclaimed suffix — must match pop()'s zero-allocation
  // contract once the heap, slot pool, and batch vector are warm.
  RandomStream rng(14);
  EventQueue queue;
  queue.reserve(512);
  std::vector<EventId> batch;
  batch.reserve(512);
  // Warm-up: populate slots and the batch vector with equal-time cohorts.
  for (int i = 0; i < 512; ++i) {
    queue.schedule(std::floor(rng.uniform(0.0, 32.0)), [] {});
  }
  while (queue.pop_batch(batch) != kTimeInfinity) {
    for (const EventId id : batch) {
      auto action = queue.take(id);
      if (action) (*action)();
    }
  }

  double sink = 0.0;
  const std::size_t before = allocations();
  for (int round = 0; round < 2000; ++round) {
    // Ties on an integer grid force multi-event batches every drain.
    for (int j = 0; j < 16; ++j) {
      const double at = std::floor(rng.uniform(0.0, 8.0));
      queue.schedule(at, [&sink, at] { sink += at; });
    }
    const Time at = queue.pop_batch(batch);
    ASSERT_NE(at, kTimeInfinity);
    // Claim the first half, hand the rest back, then drain everything.
    const std::size_t half = batch.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      auto action = queue.take(batch[i]);
      if (action) (*action)();
    }
    queue.restore(at, {batch.data() + half, batch.size() - half});
    while (queue.pop_batch(batch) != kTimeInfinity) {
      for (const EventId id : batch) {
        auto action = queue.take(id);
        if (action) (*action)();
      }
    }
  }
  EXPECT_EQ(allocations() - before, 0u) << "pop_batch allocated when warm";
  EXPECT_GT(sink, 0.0);
}

TEST(AllocGuard, WarmBatchSealAndOriginateAllocatesNothing) {
  // The batched crypto path end to end: sampling a burst, batch-sealing it
  // in lane groups, injecting it with originate_batch, forwarding every
  // packet to the sink — plus a direct seal_batch/open_batch round trip —
  // on a warm network must never touch the heap.
  Simulator simulator;
  constexpr std::size_t kBurst = 24;
  net::Network network(simulator, net::Topology::line(9),
                       core::immediate_factory(), {}, RandomStream(31));
  network.reserve(kBurst + 8);
  simulator.reserve(256);
  const crypto::PayloadCodec codec(
      crypto::Speck64_128::Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                               15, 16});
  std::array<crypto::SensorPayload, kBurst> burst{};
  std::array<crypto::SealedPayload, kBurst> sealed{};
  std::array<std::optional<crypto::SensorPayload>, kBurst> opened{};
  std::uint32_t seq = 0;
  auto send_burst = [&] {
    for (auto& p : burst) p = {1.0, seq++, simulator.now()};
    network.originate_batch(0, codec, burst);
    simulator.run();
  };
  // Warm-up: populate pool slots, event-queue slots, and the sink path.
  for (int i = 0; i < 8; ++i) send_burst();

  const std::size_t before = allocations();
  for (int round = 0; round < 500; ++round) {
    send_burst();
    codec.seal_batch(burst, 0, sealed);
    codec.open_batch(sealed, opened);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "batched seal/originate allocated on the warm path";
  EXPECT_EQ(network.packets_delivered(), 508u * kBurst);
  for (const auto& payload : opened) ASSERT_TRUE(payload.has_value());
}

TEST(AllocGuard, TopologyAndRoutingAllocationsScaleWithArraysNotNodes) {
  // The million-node contract: building a geometric topology, its CSR
  // index, the routing table, and a spec-constructed network must cost a
  // bounded number of allocations (one per flat array plus geometric
  // vector growth), never one-or-more per node. With per-node objects this
  // count was >= n; the bound below leaves two orders of magnitude of
  // headroom at n = 20000.
  constexpr std::size_t kNodes = 20000;
  RandomStream rng(41);
  const std::size_t before_build = allocations();
  const net::Topology topo = net::Topology::random_geometric_multi_sink(
      kNodes, 141.4, 1.8, 8, rng);  // unit density, mean degree ~10
  topo.edge_count();                // force the CSR build
  const net::RoutingTable routing(topo);
  const std::size_t graph_allocs = allocations() - before_build;
  EXPECT_LT(graph_allocs, 200u)
      << "topology/routing construction allocates per node";
  // Mean degree ~10 at unit density: the giant component covers the graph.
  EXPECT_LT(routing.unreachable_count(), kNodes / 10);

  Simulator simulator;
  const std::size_t before_net = allocations();
  const net::Network network(simulator, topo,
                             core::DisciplineSpec::rcad_exponential(30.0, 10),
                             {}, RandomStream(42));
  const std::size_t net_allocs = allocations() - before_net;
  // Flat arrays plus one DelayBuffer slot-pool + heap reserve per
  // forwarding node: ~2 allocations per node, never the 4+ the per-object
  // NodeShell/discipline/distribution layout cost.
  EXPECT_LT(net_allocs, 3 * kNodes)
      << "network construction regressed to per-node object allocation";
  EXPECT_GT(network.memory_bytes(), kNodes * sizeof(std::uint32_t));
}

TEST(AllocGuard, WarmDelayBufferChurnAllocatesNothing) {
  // The full RCAD inner loop — admit, release event, preempt — on a warm
  // buffer. Packet payloads are plain structs, so nothing here may allocate.
  Simulator simulator;
  RandomStream rng(13);

  class NullContext final : public net::NodeContext {
   public:
    NullContext(Simulator& sim, RandomStream& rng) : sim_(sim), rng_(rng) {}
    Simulator& simulator() noexcept override { return sim_; }
    RandomStream& rng() noexcept override { return rng_; }
    net::NodeId id() const noexcept override { return 0; }
    std::uint16_t hops_to_sink() const noexcept override { return 1; }
    void transmit(net::Packet&&) override {}

   private:
    Simulator& sim_;
    RandomStream& rng_;
  };

  NullContext ctx(simulator, rng);
  core::DelayBuffer buffer(std::make_unique<core::ExponentialDelay>(5.0),
                           core::VictimPolicy::kShortestRemaining);
  constexpr std::size_t kCapacity = 32;
  buffer.reserve(kCapacity);
  simulator.reserve(kCapacity + 8);
  auto make_packet = [](std::uint64_t uid) {
    net::Packet packet;
    packet.uid = uid;
    return packet;
  };
  std::uint64_t uid = 0;
  // Warm-up: fill to capacity once so every slot and heap cell exists.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    buffer.admit(make_packet(uid++), ctx);
  }
  const std::size_t before = allocations();
  for (int round = 0; round < 5000; ++round) {
    if (buffer.size() >= kCapacity) buffer.preempt(ctx);
    buffer.admit(make_packet(uid++), ctx);
    simulator.run_until(simulator.now() + 0.2);
  }
  simulator.run();
  EXPECT_EQ(allocations() - before, 0u)
      << "RCAD buffer allocated on the steady-state path";
}

}  // namespace
}  // namespace tempriv::sim
