// The monotone FIFO lane (schedule_monotone): ordering against heap-lane
// events, cancellation, the non-monotone fallback, cross-lane batch drains,
// and cross-lane singleton detection.

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"

namespace tempriv::sim {
namespace {

TEST(EventQueueFifo, MonotoneEventsPopInOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule_monotone(static_cast<double>(i), [&order, i] {
      order.push_back(i);
    });
  }
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueFifo, InterleavesWithHeapLaneByTimeThenInsertion) {
  // Events at the same time must pop in insertion order regardless of which
  // lane each went through — the cross-lane merge compares aux words.
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(0); });           // heap
  q.schedule_monotone(2.0, [&] { order.push_back(1); });  // fifo, same time
  q.schedule(1.0, [&] { order.push_back(2); });           // heap, earlier
  q.schedule_monotone(3.0, [&] { order.push_back(3); });  // fifo, later
  q.schedule(2.0, [&] { order.push_back(4); });           // heap, tie again
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 4, 3}));
}

TEST(EventQueueFifo, CancelWorksOnFifoLaneEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_monotone(1.0, [&] { order.push_back(1); });
  const EventId doomed = q.schedule_monotone(2.0, [&] { order.push_back(2); });
  q.schedule_monotone(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(doomed));
  EXPECT_FALSE(q.cancel(doomed));
  EXPECT_EQ(q.size(), 2u);
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueFifo, NextTimeSkipsCancelledFifoHead) {
  EventQueue q;
  const EventId head = q.schedule_monotone(1.0, [] {});
  q.schedule_monotone(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(head));
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueFifo, NonMonotoneTimeFallsBackToHeap) {
  // A time below the ring's tail must still execute, and in correct order —
  // the lane diverts it through the heap rather than breaking sortedness.
  EventQueue q;
  std::vector<int> order;
  q.schedule_monotone(5.0, [&] { order.push_back(5); });
  q.schedule_monotone(9.0, [&] { order.push_back(9); });
  const EventId early = q.schedule_monotone(1.0, [&] { order.push_back(1); });
  q.schedule_monotone(9.5, [&] { order.push_back(95); });
  EXPECT_TRUE(early.valid());
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 5, 9, 95}));
}

TEST(EventQueueFifo, FallbackEventIsCancellable) {
  EventQueue q;
  bool fired = false;
  q.schedule_monotone(5.0, [] {});
  const EventId early = q.schedule_monotone(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(early));
  auto event = q.pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_DOUBLE_EQ(event->at, 5.0);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueueFifo, PopBatchMergesEqualTimeCohortAcrossLanes) {
  // An equal-time cohort spanning both lanes drains in insertion order.
  EventQueue q;
  q.schedule(4.0, [] {});           // seq 1, heap
  q.schedule_monotone(4.0, [] {});  // seq 2, fifo
  q.schedule(4.0, [] {});           // seq 3, heap
  q.schedule_monotone(4.0, [] {});  // seq 4, fifo
  q.schedule_monotone(6.0, [] {});  // later; must stay behind
  std::vector<EventId> batch;
  const Time at = q.pop_batch(batch);
  EXPECT_DOUBLE_EQ(at, 4.0);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    // aux words carry the global sequence number in their high bits.
    EXPECT_LT(batch[i - 1].value(), batch[i].value());
  }
  for (const EventId id : batch) EXPECT_TRUE(q.take(id).has_value());
  EXPECT_DOUBLE_EQ(q.next_time(), 6.0);
}

TEST(EventQueueFifo, PopBatchSkipsFifoTombstonesInsideCohort) {
  EventQueue q;
  q.schedule_monotone(4.0, [] {});
  const EventId doomed = q.schedule_monotone(4.0, [] {});
  q.schedule(4.0, [] {});
  EXPECT_TRUE(q.cancel(doomed));
  std::vector<EventId> batch;
  const Time at = q.pop_batch(batch);
  EXPECT_DOUBLE_EQ(at, 4.0);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(EventQueueFifo, PopIfSingleRejectsCrossLaneTie) {
  EventQueue q;
  q.schedule(3.0, [] {});
  q.schedule_monotone(3.0, [] {});
  EventQueue::Event event;
  // The head cohort spans both lanes: the fast path must decline so the
  // batch path can merge the tie in insertion order.
  EXPECT_FALSE(q.pop_if_single(event));
  std::vector<EventId> batch;
  q.pop_batch(batch);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(EventQueueFifo, PopIfSingleRejectsFifoInternalTie) {
  EventQueue q;
  q.schedule_monotone(3.0, [] {});
  q.schedule_monotone(3.0, [] {});
  EventQueue::Event event;
  EXPECT_FALSE(q.pop_if_single(event));
  std::vector<EventId> batch;
  q.pop_batch(batch);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(EventQueueFifo, PopIfSingleTakesEarlierLaneHead) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.schedule_monotone(1.0, [] {});
  EventQueue::Event event;
  ASSERT_TRUE(q.pop_if_single(event));
  EXPECT_DOUBLE_EQ(event.at, 1.0);  // fifo head precedes heap head
  ASSERT_TRUE(q.pop_if_single(event));
  EXPECT_DOUBLE_EQ(event.at, 2.0);
  EXPECT_FALSE(q.pop_if_single(event));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueFifo, DispatchIfSingleRunsCallbackInPlace) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_monotone(1.5, [&] { ++fired; });
  bool dispatched = q.dispatch_if_single(
      [&](Time at, EventId seen, EventQueue::Callback& action) {
        EXPECT_DOUBLE_EQ(at, 1.5);
        EXPECT_EQ(seen, id);
        action();
      });
  EXPECT_TRUE(dispatched);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  // The handle died when the event fired.
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueFifo, DispatchIfSingleAllowsSchedulingFromCallback) {
  // The dispatched callback may schedule and cancel freely — the slot it
  // runs from is released only after it returns.
  EventQueue q;
  std::vector<int> order;
  q.schedule_monotone(1.0, [&] {
    order.push_back(1);
    q.schedule_monotone(2.0, [&] { order.push_back(2); });
    const EventId doomed = q.schedule(1.5, [&] { order.push_back(-1); });
    q.cancel(doomed);
  });
  const auto dispatch = [&](Time, EventId, EventQueue::Callback& action) {
    action();
  };
  while (q.dispatch_if_single(dispatch)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueFifo, ClearResetsFifoLane) {
  EventQueue q;
  for (int i = 0; i < 100; ++i) {
    q.schedule_monotone(static_cast<double>(i), [] {});
  }
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInfinity);
  // The lane's tail-key state must reset too: a fresh monotone stream
  // starting from zero belongs in the ring, and ordering must hold.
  std::vector<int> order;
  q.schedule_monotone(0.5, [&] { order.push_back(1); });
  q.schedule_monotone(0.75, [&] { order.push_back(2); });
  while (auto event = q.pop()) event->action();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueFifo, RingGrowthPreservesOrder) {
  // Push far past the initial ring capacity with live wrap-around: pop half,
  // push more, so fifo_grow() has to relocate a wrapped window.
  EventQueue q;
  std::vector<int> order;
  int next = 0;
  for (int i = 0; i < 96; ++i) {
    q.schedule_monotone(static_cast<double>(next),
                        [&order, next] { order.push_back(next); });
    ++next;
  }
  for (int i = 0; i < 48; ++i) {
    auto event = q.pop();
    ASSERT_TRUE(event.has_value());
    event->action();
  }
  for (int i = 0; i < 200; ++i) {
    q.schedule_monotone(static_cast<double>(next),
                        [&order, next] { order.push_back(next); });
    ++next;
  }
  while (auto event = q.pop()) event->action();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_EQ(order[i], i);
}

// Randomized cross-lane check against a reference model: mixed
// schedule/schedule_monotone/cancel/pop must match a sorted multimap on
// (time, insertion seq) exactly. The monotone stream uses its own
// non-decreasing clock; occasional below-tail times exercise the fallback.
TEST(EventQueueFifo, MixedLanesMatchReferenceModel) {
  for (const std::uint64_t seed : {11u, 29u, 4242u}) {
    RandomStream rng(seed);
    EventQueue q;
    std::map<std::pair<double, std::uint64_t>, EventId> model;
    std::vector<std::pair<std::pair<double, std::uint64_t>, EventId>> live;
    std::uint64_t seq = 0;
    double clock = 0.0;

    for (int op = 0; op < 4000; ++op) {
      const double dice = rng.uniform01();
      if (dice < 0.35) {
        // Monotone stream; every 16th draw dips below the current clock to
        // hit the heap fallback, every 8th repeats the clock to make ties.
        double at;
        if (op % 16 == 15) {
          at = clock * rng.uniform01();
        } else if (op % 8 == 7) {
          at = clock;
        } else {
          at = (clock += rng.uniform(0.0, 1.0));
        }
        const EventId id = q.schedule_monotone(at, [] {});
        model.emplace(std::make_pair(at, seq), id);
        live.push_back({{at, seq}, id});
        ++seq;
      } else if (dice < 0.55) {
        const double at = rng.uniform(0.0, clock + 10.0);
        const EventId id = q.schedule(at, [] {});
        model.emplace(std::make_pair(at, seq), id);
        live.push_back({{at, seq}, id});
        ++seq;
      } else if (dice < 0.7 && !live.empty()) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_index(live.size()));
        const auto [key, id] = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        ASSERT_TRUE(q.cancel(id));
        ASSERT_EQ(model.erase(key), 1u);
      } else if (!model.empty()) {
        const auto expected = model.begin();
        ASSERT_DOUBLE_EQ(q.next_time(), expected->first.first);
        const auto event = q.pop();
        ASSERT_TRUE(event.has_value());
        ASSERT_EQ(event->id, expected->second);
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (live[i].second == expected->second) {
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        model.erase(expected);
      }
      ASSERT_EQ(q.size(), model.size());
    }

    while (!model.empty()) {
      const auto expected = model.begin();
      const auto event = q.pop();
      ASSERT_TRUE(event.has_value());
      ASSERT_EQ(event->id, expected->second);
      model.erase(expected);
    }
    ASSERT_FALSE(q.pop().has_value());
  }
}

}  // namespace
}  // namespace tempriv::sim
