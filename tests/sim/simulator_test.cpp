#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tempriv::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_at(5.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(2.5, [&] { seen.push_back(sim.now()); });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(seen, (std::vector<double>{2.5, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 13.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
}

TEST(Simulator, SchedulingAtCurrentTimeIsAllowed) {
  Simulator sim;
  bool nested_ran = false;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(5.0, [&] { nested_ran = true; });
  });
  sim.run();
  EXPECT_TRUE(nested_ran);
}

TEST(Simulator, NonFiniteTimesThrow) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(kTimeInfinity, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(std::nan(""), [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_until(5.5), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);  // clock rests at the deadline
  EXPECT_EQ(sim.pending_events(), 5u);
  EXPECT_EQ(sim.run_until(100.0), 5u);
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A fresh run() resumes with the remaining events.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsExecutedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NextEventTimeReflectsQueue) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), kTimeInfinity);
  sim.schedule_at(4.0, [] {});
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 4.0);
}

TEST(Simulator, CascadedEventsKeepVirtualTimeCausal) {
  // Events scheduling events: time must be non-decreasing throughout.
  Simulator sim;
  std::vector<double> times;
  std::function<void(int)> chain = [&](int depth) {
    times.push_back(sim.now());
    if (depth > 0) {
      sim.schedule_after(0.5, [&chain, depth] { chain(depth - 1); });
    }
  };
  sim.schedule_at(1.0, [&] { chain(20); });
  sim.run();
  ASSERT_EQ(times.size(), 21u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

}  // namespace
}  // namespace tempriv::sim
