#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace tempriv::sim {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownReferenceValues) {
  // Reference outputs for seed 1234567 from the public-domain splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(Xoshiro256pp, IsDeterministicForSeed) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256pp, ZeroSeedStillProducesOutput) {
  // SplitMix seeding guarantees a non-degenerate state even for seed 0.
  Xoshiro256pp rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 90u);
}

TEST(Xoshiro256pp, SplitStreamsAreDecorrelated) {
  Xoshiro256pp root(99);
  Xoshiro256pp a = root.split(0);
  Xoshiro256pp b = root.split(1);
  int matches = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++matches;
  }
  EXPECT_EQ(matches, 0);
}

TEST(Xoshiro256pp, SplitIsStableAcrossCalls) {
  Xoshiro256pp root(99);
  Xoshiro256pp a1 = root.split(5);
  Xoshiro256pp a2 = root.split(5);  // same id, same parent state
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.next(), a2.next());
}

TEST(Xoshiro256pp, SplitDoesNotPerturbParent) {
  Xoshiro256pp a(123);
  Xoshiro256pp b(123);
  (void)a.split(17);  // splitting must not advance the parent
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256pp, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256pp::min() == 0);
  static_assert(Xoshiro256pp::max() == ~0ULL);
  Xoshiro256pp rng(5);
  EXPECT_NE(rng(), rng());
}

TEST(Xoshiro256pp, BitsLookBalanced) {
  Xoshiro256pp rng(2024);
  int ones = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) ones += __builtin_popcountll(rng.next());
  const double fraction = static_cast<double>(ones) / (64.0 * kSamples);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

}  // namespace
}  // namespace tempriv::sim
