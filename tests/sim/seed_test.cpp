#include "sim/seed.h"

#include <gtest/gtest.h>

#include <set>

namespace tempriv::sim {
namespace {

TEST(SeedDerivationTest, DeterministicAndConstexpr) {
  static_assert(derive_seed(42, 1) == derive_seed(42, 1));
  EXPECT_EQ(derive_seed(0x7e3970c1, 3), derive_seed(0x7e3970c1, 3));
}

TEST(SeedDerivationTest, DistinctAcrossStreamsAndRoots) {
  // A campaign grid's worth of (root, stream) pairs must not collide —
  // replications with equal seeds would be duplicated samples, not
  // independent ones.
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ULL, 1ULL, 2ULL, 0x7e3970c1ULL, ~0ULL}) {
    for (std::uint64_t stream = 0; stream < 1000; ++stream) {
      seen.insert(derive_seed(root, stream));
    }
  }
  EXPECT_EQ(seen.size(), 5u * 1000u);
}

TEST(SeedDerivationTest, RelatedRootsDiverge) {
  // Adjacent roots (users pick 1, 2, 3...) must yield unrelated streams.
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_NE(derive_seed(1, 0) ^ derive_seed(1, 1),
            derive_seed(2, 0) ^ derive_seed(2, 1));
}

}  // namespace
}  // namespace tempriv::sim
