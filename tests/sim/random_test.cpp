#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "metrics/stats.h"

namespace tempriv::sim {
namespace {

constexpr int kSamples = 200000;

TEST(RandomStream, Uniform01InHalfOpenUnitInterval) {
  RandomStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, Uniform01OpenLeftNeverZero) {
  RandomStream rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.uniform01_open_left(), 0.0);
    EXPECT_LE(rng.uniform01_open_left(), 1.0);
  }
}

TEST(RandomStream, Uniform01MeanAndVariance) {
  RandomStream rng(3);
  metrics::StreamingStats stats;
  for (int i = 0; i < kSamples; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);
}

TEST(RandomStream, UniformRespectsBounds) {
  RandomStream rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(RandomStream, UniformIndexCoversRangeWithoutBias) {
  RandomStream rng(5);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    const double expected = static_cast<double>(kSamples) / kBuckets;
    EXPECT_NEAR(counts[b], expected, expected * 0.05) << "bucket " << b;
  }
}

TEST(RandomStream, UniformIndexOfOneIsAlwaysZero) {
  RandomStream rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(RandomStream, BernoulliMatchesProbability) {
  RandomStream rng(7);
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(RandomStream, ExponentialMeanAndVariance) {
  RandomStream rng(8);
  metrics::StreamingStats stats;
  constexpr double kMean = 30.0;  // the paper's 1/mu
  for (int i = 0; i < kSamples; ++i) stats.add(rng.exponential_mean(kMean));
  EXPECT_NEAR(stats.mean(), kMean, kMean * 0.02);
  EXPECT_NEAR(stats.variance(), kMean * kMean, kMean * kMean * 0.05);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RandomStream, ExponentialRateMatchesMeanForm) {
  RandomStream a(9);
  RandomStream b(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(a.exponential_rate(0.5), b.exponential_mean(2.0));
  }
}

TEST(RandomStream, ParetoSupportAndMean) {
  RandomStream rng(10);
  constexpr double kXm = 2.0;
  constexpr double kAlpha = 3.0;
  metrics::StreamingStats stats;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.pareto(kXm, kAlpha);
    EXPECT_GE(x, kXm);
    stats.add(x);
  }
  const double expected_mean = kAlpha * kXm / (kAlpha - 1.0);
  EXPECT_NEAR(stats.mean(), expected_mean, expected_mean * 0.03);
}

TEST(RandomStream, NormalMomentsMatch) {
  RandomStream rng(11);
  metrics::StreamingStats stats;
  for (int i = 0; i < kSamples; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.03);
}

TEST(RandomStream, ErlangIsSumOfExponentials) {
  RandomStream rng(12);
  metrics::StreamingStats stats;
  constexpr unsigned kStages = 4;
  constexpr double kRate = 0.5;
  for (int i = 0; i < kSamples; ++i) stats.add(rng.erlang(kStages, kRate));
  EXPECT_NEAR(stats.mean(), kStages / kRate, 0.1);
  EXPECT_NEAR(stats.variance(), kStages / (kRate * kRate), 0.5);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceEqualLambda) {
  const double mean = GetParam();
  RandomStream rng(13 + static_cast<std::uint64_t>(mean * 10));
  metrics::StreamingStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.poisson(mean)));
  }
  EXPECT_NEAR(stats.mean(), mean, std::max(0.05, mean * 0.03));
  EXPECT_NEAR(stats.variance(), mean, std::max(0.1, mean * 0.06));
}

// Covers both the Knuth regime (< 30) and the recursive-split regime.
INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.5, 3.0, 12.0, 29.9, 45.0, 120.0));

TEST(RandomStream, PoissonZeroMeanIsZero) {
  RandomStream rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RandomStream, SplitProducesIndependentStreams) {
  RandomStream root(15);
  RandomStream a = root.split(1);
  RandomStream b = root.split(2);
  // Correlation of two supposedly-independent uniform streams should be ~0.
  double sum_ab = 0.0;
  double sum_a = 0.0;
  double sum_b = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = a.uniform01();
    const double y = b.uniform01();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
  }
  const double cov = sum_ab / kN - (sum_a / kN) * (sum_b / kN);
  EXPECT_NEAR(cov, 0.0, 0.005);
}

}  // namespace
}  // namespace tempriv::sim
