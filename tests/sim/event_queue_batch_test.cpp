// pop_batch/take/restore: unit coverage for the equal-time drain contract,
// a model-based fuzz of randomized schedule/cancel/pop_batch interleavings
// against the one-at-a-time reference (pop), and the Simulator-level batch
// semantics (stop mid-batch, cancel inside a batch, exception unwind).

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace tempriv::sim {
namespace {

TEST(EventQueueBatch, EmptyQueueYieldsEmptyBatchAtInfinity) {
  EventQueue queue;
  std::vector<EventId> batch;
  EXPECT_EQ(queue.pop_batch(batch), kTimeInfinity);
  EXPECT_TRUE(batch.empty());
}

TEST(EventQueueBatch, DrainsEqualTimeCohortInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  const EventId a = queue.schedule(5.0, [&] { order.push_back(1); });
  const EventId b = queue.schedule(5.0, [&] { order.push_back(2); });
  queue.schedule(7.0, [&] { order.push_back(99); });
  const EventId c = queue.schedule(5.0, [&] { order.push_back(3); });

  std::vector<EventId> batch;
  EXPECT_DOUBLE_EQ(queue.pop_batch(batch), 5.0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], a);
  EXPECT_EQ(batch[1], b);
  EXPECT_EQ(batch[2], c);
  // The 7.0 event is untouched; drained events still count as pending.
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_DOUBLE_EQ(queue.next_time(), 7.0);

  for (const EventId id : batch) {
    auto action = queue.take(id);
    ASSERT_TRUE(action.has_value());
    (*action)();
  }
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueBatch, TakeReturnsNulloptForCancelledDrainedEvent) {
  EventQueue queue;
  const EventId a = queue.schedule(1.0, [] {});
  const EventId b = queue.schedule(1.0, [] {});
  std::vector<EventId> batch;
  queue.pop_batch(batch);
  ASSERT_EQ(batch.size(), 2u);

  // Cancel between drain and claim — exactly what a batch callback that
  // cancels a later equal-time event does.
  EXPECT_TRUE(queue.cancel(b));
  EXPECT_FALSE(queue.cancel(b));
  EXPECT_TRUE(queue.take(a).has_value());
  EXPECT_FALSE(queue.take(b).has_value());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueBatch, RestoreRequeuesUnclaimedInOriginalOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(2.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(2.0, [&] { order.push_back(3); });

  std::vector<EventId> batch;
  const Time at = queue.pop_batch(batch);
  ASSERT_EQ(batch.size(), 3u);
  (*queue.take(batch[0]))();

  // Stop-style handback of the unrun tail, then a new event at the same
  // time: the restored events keep their original precedence.
  queue.restore(at, {batch.data() + 1, 2});
  queue.schedule(2.0, [&] { order.push_back(4); });
  EXPECT_EQ(queue.size(), 3u);

  std::vector<EventId> again;
  EXPECT_DOUBLE_EQ(queue.pop_batch(again), 2.0);
  ASSERT_EQ(again.size(), 3u);
  for (const EventId id : again) (*queue.take(id))();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueBatch, RestoreSkipsCancelledAndTakenIds) {
  EventQueue queue;
  const EventId a = queue.schedule(1.0, [] {});
  const EventId b = queue.schedule(1.0, [] {});
  const EventId c = queue.schedule(1.0, [] {});
  std::vector<EventId> batch;
  const Time at = queue.pop_batch(batch);
  ASSERT_EQ(batch.size(), 3u);

  (void)queue.take(a);
  queue.cancel(b);
  queue.restore(at, batch);  // only c has anything left to restore
  EXPECT_EQ(queue.size(), 1u);
  const auto event = queue.pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->id, c);
}

TEST(EventQueueBatch, SkipsTombstonesInsideEqualTimeRun) {
  EventQueue queue;
  const EventId a = queue.schedule(3.0, [] {});
  const EventId b = queue.schedule(3.0, [] {});
  const EventId c = queue.schedule(3.0, [] {});
  // Cancel the middle event while it is buried in the heap.
  EXPECT_TRUE(queue.cancel(b));
  std::vector<EventId> batch;
  EXPECT_DOUBLE_EQ(queue.pop_batch(batch), 3.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], a);
  EXPECT_EQ(batch[1], c);
  (void)queue.take(a);
  (void)queue.take(c);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueBatch, CancelOfHeapEventWhileBatchOutstandingSweepsHead) {
  // Regression guard for the tombstone fast path: with drained events
  // outstanding, heap size and live count diverge, and a cancel of an
  // in-heap event must still be detected as a tombstone at the head.
  EventQueue queue;
  queue.schedule(1.0, [] {});
  const EventId later = queue.schedule(2.0, [] {});
  queue.schedule(3.0, [] {});

  std::vector<EventId> batch;
  queue.pop_batch(batch);  // drains the 1.0 event; heap holds 2.0, 3.0
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(queue.cancel(later));
  EXPECT_DOUBLE_EQ(queue.next_time(), 3.0);
  (void)queue.take(batch[0]);
  const auto event = queue.pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_DOUBLE_EQ(event->at, 3.0);
  EXPECT_TRUE(queue.empty());
}

// Model-based fuzz: randomized schedule/cancel/pop_batch(+take/restore)
// against the one-at-a-time reference model. The drain must always return
// the model's earliest cohort in insertion order, under slot churn,
// tombstones inside cohorts, mid-batch cancels, and partial restores.
class EventQueueBatchFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EventQueueBatchFuzzTest, MatchesOneAtATimeReferenceModel) {
  RandomStream rng(GetParam());
  EventQueue queue;
  std::map<std::pair<double, std::uint64_t>, EventId> model;
  std::uint64_t seq = 0;
  std::vector<std::pair<std::pair<double, std::uint64_t>, EventId>> live;
  double last_at = 0.0;

  const auto forget = [&](EventId id) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].second == id) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  };

  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.uniform01();
    if (dice < 0.55) {
      // Schedule from a coarse grid so equal-time cohorts are common.
      const double at =
          op % 4 == 3
              ? last_at
              : (last_at = static_cast<double>(rng.uniform_index(40)) * 0.5);
      const EventId id = queue.schedule(at, [] {});
      model.emplace(std::make_pair(at, seq), id);
      live.push_back({{at, seq}, id});
      ++seq;
    } else if (dice < 0.70 && !live.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_index(live.size()));
      const auto [key, id] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      ASSERT_TRUE(queue.cancel(id));
      ASSERT_EQ(model.erase(key), 1u);
    } else if (!model.empty()) {
      // Drain one cohort and compare against the model's earliest entries.
      std::vector<EventId> batch;
      const Time at = queue.pop_batch(batch);
      const double expected_at = model.begin()->first.first;
      ASSERT_DOUBLE_EQ(at, expected_at);
      std::size_t expected_size = 0;
      for (auto it = model.begin();
           it != model.end() && it->first.first == expected_at; ++it) {
        ASSERT_LT(expected_size, batch.size());
        ASSERT_EQ(batch[expected_size], it->second);
        ++expected_size;
      }
      ASSERT_EQ(batch.size(), expected_size);
      ASSERT_EQ(queue.size(), model.size());  // drained still pending

      // Claim a prefix; maybe cancel one of the rest mid-batch; restore the
      // remainder (the stop()-mid-batch path).
      const std::size_t claim =
          static_cast<std::size_t>(rng.uniform_index(batch.size() + 1));
      for (std::size_t i = 0; i < claim; ++i) {
        ASSERT_TRUE(queue.take(batch[i]).has_value());
        model.erase(model.begin());  // batch[i] IS the model's earliest
        forget(batch[i]);
      }
      if (claim < batch.size() && rng.uniform01() < 0.3) {
        const std::size_t victim =
            claim + static_cast<std::size_t>(
                        rng.uniform_index(batch.size() - claim));
        ASSERT_TRUE(queue.cancel(batch[victim]));
        ASSERT_FALSE(queue.take(batch[victim]).has_value());
        // Erase from the model by id.
        for (auto it = model.begin(); it != model.end(); ++it) {
          if (it->second == batch[victim]) {
            model.erase(it);
            break;
          }
        }
        forget(batch[victim]);
      }
      queue.restore(at, {batch.data() + claim, batch.size() - claim});
    }
    ASSERT_EQ(queue.size(), model.size());
    ASSERT_DOUBLE_EQ(queue.next_time(), model.empty()
                                            ? kTimeInfinity
                                            : model.begin()->first.first);
  }

  // Drain the rest one at a time: restores must have preserved exact order.
  while (!model.empty()) {
    const auto expected = model.begin();
    const auto event = queue.pop();
    ASSERT_TRUE(event.has_value());
    ASSERT_EQ(event->id, expected->second);
    ASSERT_DOUBLE_EQ(event->at, expected->first.first);
    model.erase(expected);
  }
  ASSERT_FALSE(queue.pop().has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueBatchFuzzTest,
                         ::testing::Values(7u, 21u, 301u, 9999u));

TEST(SimulatorBatch, EqualTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(SimulatorBatch, CallbackCancellingLaterEqualTimeEventSuppressesIt) {
  Simulator sim;
  bool ran = false;
  EventId doomed;
  sim.schedule_at(1.0, [&] { sim.cancel(doomed); });
  doomed = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorBatch, CallbackSchedulingAtSameTimeRunsAfterCohort) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(9); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 9}));
}

TEST(SimulatorBatch, StopMidBatchLeavesRemainderPending) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.stop();
  });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 1.0);

  // Resuming runs the rest in the original order.
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorBatch, ExceptionMidBatchRequeuesRemainder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { throw std::runtime_error("boom"); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  EXPECT_THROW(sim.run(), std::runtime_error);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorBatch, RunUntilHonorsDeadlineAcrossBatches) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(2.0, [&] { order.push_back(3); });
  sim.schedule_at(3.0, [&] { order.push_back(4); });
  EXPECT_EQ(sim.run_until(2.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

}  // namespace
}  // namespace tempriv::sim
