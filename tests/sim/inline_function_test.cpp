#include "sim/inline_function.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

namespace tempriv::sim {
namespace {

TEST(InlineFunction, DefaultConstructedIsEmpty) {
  InlineFunction<int(int), 32> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, InvokesWithArgumentsAndReturn) {
  InlineFunction<int(int, int), 32> fn = [](int a, int b) { return a * b; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(6, 7), 42);
}

TEST(InlineFunction, SmallCaptureStaysInline) {
  struct Small {
    std::uint64_t a = 1, b = 2;
    std::uint64_t operator()() const { return a + b; }
  };
  EXPECT_TRUE((InlineFunction<std::uint64_t(), 32>::fits_inline<Small>()));
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapAndStillWorks) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > 32-byte buffer
  big[0] = 11;
  big[15] = 31;
  auto lambda = [big] { return big[0] + big[15]; };
  EXPECT_FALSE(
      (InlineFunction<std::uint64_t(), 32>::fits_inline<decltype(lambda)>()));
  InlineFunction<std::uint64_t(), 32> fn = std::move(lambda);
  EXPECT_EQ(fn(), 42u);
}

TEST(InlineFunction, MovePreservesInlineState) {
  int hits = 0;
  InlineFunction<void(), 48> a = [&hits] { ++hits; };
  InlineFunction<void(), 48> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, MovePreservesHeapState) {
  std::array<std::uint64_t, 16> big{};
  big[3] = 5;
  InlineFunction<std::uint64_t(), 16> a = [big] { return big[3]; };
  InlineFunction<std::uint64_t(), 16> b = std::move(a);
  InlineFunction<std::uint64_t(), 16> c;
  c = std::move(b);
  EXPECT_EQ(c(), 5u);
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  EXPECT_EQ(counter.use_count(), 1);
  InlineFunction<void(), 48> fn = [counter] {};
  EXPECT_EQ(counter.use_count(), 2);
  fn = InlineFunction<void(), 48>([] {});
  EXPECT_EQ(counter.use_count(), 1);  // old capture released
}

TEST(InlineFunction, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    InlineFunction<void(), 48> fn = [counter] {};
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFunction, EmplaceReplacesCallableInPlace) {
  InlineFunction<int(), 32> fn = [] { return 1; };
  fn.emplace([] { return 2; });
  EXPECT_EQ(fn(), 2);
}

TEST(InlineFunction, ForwardsMoveOnlyArguments) {
  InlineFunction<int(std::unique_ptr<int>), 32> fn =
      [](std::unique_ptr<int> p) { return *p; };
  EXPECT_EQ(fn(std::make_unique<int>(9)), 9);
}

TEST(InlineFunction, ReferenceArgumentsWriteThrough) {
  InlineFunction<void(std::string&), 32> fn =
      [](std::string& s) { s += "!"; };
  std::string text = "hop";
  fn(text);
  EXPECT_EQ(text, "hop!");
}

}  // namespace
}  // namespace tempriv::sim
