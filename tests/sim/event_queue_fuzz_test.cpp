// Model-based randomized test: the EventQueue against a trivially-correct
// reference model (a sorted multimap), across thousands of interleaved
// schedule/cancel/pop operations.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"

namespace tempriv::sim {
namespace {

class EventQueueFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzzTest, MatchesReferenceModel) {
  RandomStream rng(GetParam());
  EventQueue queue;
  // Reference: (time, insertion seq) -> id; mirrors the tie-break contract.
  std::map<std::pair<double, std::uint64_t>, EventId> model;
  std::uint64_t seq = 0;
  std::vector<std::pair<std::pair<double, std::uint64_t>, EventId>> live;
  // Handles whose events fired, were cancelled, or were dropped by clear().
  // Slots recycle aggressively under this churn, so these exercise the
  // stale-handle guarantee: a dead id must never alias a newer event.
  std::vector<EventId> dead;
  double last_at = 0.0;

  for (int op = 0; op < 5000; ++op) {
    const double dice = rng.uniform01();
    if (dice < 0.5) {
      // Schedule; every 8th event reuses the previous draw so exact time
      // ties (broken by insertion order) stay exercised.
      const double at =
          op % 8 == 7 ? last_at : (last_at = rng.uniform(0.0, 100.0));
      const EventId id = queue.schedule(at, [] {});
      model.emplace(std::make_pair(at, seq), id);
      live.push_back({{at, seq}, id});
      ++seq;
    } else if (dice < 0.75 && !live.empty()) {
      // Cancel a random live event.
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_index(live.size()));
      const auto [key, id] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      ASSERT_TRUE(queue.cancel(id));
      ASSERT_EQ(model.erase(key), 1u);
      // Double-cancel must fail.
      ASSERT_FALSE(queue.cancel(id));
      dead.push_back(id);
    } else if (dice < 0.99 && !model.empty()) {
      // Pop: must match the model's earliest (time, seq) entry.
      const auto expected = model.begin();
      ASSERT_DOUBLE_EQ(queue.next_time(), expected->first.first);
      const auto event = queue.pop();
      ASSERT_TRUE(event.has_value());
      ASSERT_EQ(event->id, expected->second);
      ASSERT_DOUBLE_EQ(event->at, expected->first.first);
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].second == expected->second) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      model.erase(expected);
      // Cancelling after the event fired must fail, now and forever.
      ASSERT_FALSE(queue.cancel(event->id));
      dead.push_back(event->id);
    } else if (dice >= 0.99) {
      // Rare full reset: everything pending dies, handles included.
      queue.clear();
      for (const auto& entry : live) dead.push_back(entry.second);
      live.clear();
      model.clear();
    }
    if (!dead.empty()) {
      // A recycled slot must never resurrect an old handle.
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_index(dead.size()));
      ASSERT_FALSE(queue.cancel(dead[pick]));
    }
    ASSERT_EQ(queue.size(), model.size());
  }

  // Drain: remaining events come out in exact model order.
  while (!model.empty()) {
    const auto expected = model.begin();
    const auto event = queue.pop();
    ASSERT_TRUE(event.has_value());
    ASSERT_EQ(event->id, expected->second);
    model.erase(expected);
  }
  ASSERT_FALSE(queue.pop().has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

}  // namespace
}  // namespace tempriv::sim
