// Cross-cutting robustness properties: routing invariants on randomized
// topologies, crypto key-domain separation, and end-to-end runs on the
// non-paper topologies.

#include <gtest/gtest.h>

#include <set>

#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace tempriv {
namespace {

class RandomTopologyRoutingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyRoutingTest, BfsInvariantsHoldOnRandomGeometricGraphs) {
  sim::RandomStream rng(GetParam());
  const net::Topology topo =
      net::Topology::random_geometric(60, 10.0, 2.5, rng);
  const net::RoutingTable routing(topo);
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    if (!routing.reachable(id)) continue;
    if (id == topo.sink()) {
      EXPECT_EQ(routing.hops_to_sink(id), 0);
      continue;
    }
    // Next hop is a neighbor and strictly closer to the sink.
    const net::NodeId next = routing.next_hop(id);
    ASSERT_NE(next, net::kInvalidNode);
    EXPECT_TRUE(topo.has_edge(id, next));
    EXPECT_EQ(routing.hops_to_sink(id), routing.hops_to_sink(next) + 1);
    // BFS optimality: no neighbor is more than one hop closer.
    for (const net::NodeId nbr : topo.neighbors(id)) {
      if (!routing.reachable(nbr)) continue;
      EXPECT_GE(routing.hops_to_sink(nbr) + 1, routing.hops_to_sink(id));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyRoutingTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(CryptoDomainSeparation, CtrAndMacSubkeysDiffer) {
  // Sealing with the CTR subkey misused as a MAC key must not verify:
  // check indirectly by ensuring a codec with a master key whose derived
  // subkeys were swapped cannot open the original's output. (We can't
  // reach the subkeys directly — the public contract is that two codecs
  // agree iff their master keys agree.)
  crypto::Speck64_128::Key key_a{};
  key_a.fill(0x01);
  crypto::Speck64_128::Key key_b{};
  key_b.fill(0x01);
  key_b[15] ^= 0x80;
  crypto::PayloadCodec codec_a(key_a);
  crypto::PayloadCodec codec_b(key_b);
  const auto sealed = codec_a.seal({1.0, 2, 3.0}, 4);
  EXPECT_TRUE(codec_a.open(sealed).has_value());
  EXPECT_FALSE(codec_b.open(sealed).has_value());
}

TEST(EndToEnd, StarTopologyAggregatesAllFlowsAtTheHubSink) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::star(8),
                       core::rcad_exponential_factory(10.0, 4), {},
                       sim::RandomStream(3));
  crypto::Speck64_128::Key key{};
  key.fill(0x77);
  crypto::PayloadCodec codec(key);
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&truth);
  std::vector<std::unique_ptr<workload::PeriodicSource>> sources;
  for (net::NodeId leaf = 1; leaf <= 8; ++leaf) {
    sources.push_back(std::make_unique<workload::PeriodicSource>(
        network, codec, leaf, sim::RandomStream(100 + leaf), 3.0, 50));
    sources.back()->start(0.1 * leaf);
  }
  sim.run();
  EXPECT_EQ(network.packets_delivered(), 8u * 50u);
  EXPECT_EQ(truth.delivered(), 400u);
}

TEST(EndToEnd, BinaryTreeLeavesAllReachTheRoot) {
  sim::Simulator sim;
  const net::Topology topo = net::Topology::binary_tree(4);  // 31 nodes
  net::Network network(sim, topo, core::unlimited_exponential_factory(5.0),
                       {}, sim::RandomStream(4));
  crypto::Speck64_128::Key key{};
  key.fill(0x12);
  crypto::PayloadCodec codec(key);
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&truth);
  std::vector<std::unique_ptr<workload::PeriodicSource>> sources;
  std::uint32_t injected = 0;
  for (net::NodeId leaf = 15; leaf <= 30; ++leaf) {  // the 16 leaves
    sources.push_back(std::make_unique<workload::PeriodicSource>(
        network, codec, leaf, sim::RandomStream(200 + leaf), 10.0, 20));
    sources.back()->start(0.0);
    injected += 20;
  }
  sim.run();
  EXPECT_EQ(network.packets_delivered(), injected);
  // Every leaf is 4 hops deep: latency >= 4τ plus four delay stages.
  for (net::NodeId leaf = 15; leaf <= 30; ++leaf) {
    EXPECT_GE(truth.latency(leaf).min(), 4.0);
    EXPECT_GT(truth.latency(leaf).mean(), 10.0);
  }
}

TEST(EndToEnd, InterleavedSchemesOnSameSimulatorDoNotInterfere) {
  // Two independent networks sharing one simulator — the kernel must keep
  // their event streams correctly interleaved.
  sim::Simulator sim;
  crypto::Speck64_128::Key key{};
  key.fill(0x09);
  crypto::PayloadCodec codec(key);

  net::Network fast_net(sim, net::Topology::line(4), core::immediate_factory(),
                        {}, sim::RandomStream(5));
  net::Network slow_net(sim, net::Topology::line(4),
                        core::unlimited_factory(core::ConstantDelay(50.0)), {},
                        sim::RandomStream(6));
  adversary::GroundTruthRecorder fast_truth(codec);
  adversary::GroundTruthRecorder slow_truth(codec);
  fast_net.add_sink_observer(&fast_truth);
  slow_net.add_sink_observer(&slow_truth);

  workload::PeriodicSource fast_src(fast_net, codec, 0, sim::RandomStream(7),
                                    5.0, 100);
  workload::PeriodicSource slow_src(slow_net, codec, 0, sim::RandomStream(8),
                                    5.0, 100);
  fast_src.start(0.0);
  slow_src.start(0.0);
  sim.run();
  EXPECT_DOUBLE_EQ(fast_truth.latency(0).mean(), 3.0);
  EXPECT_DOUBLE_EQ(slow_truth.latency(0).mean(), 3.0 + 3 * 50.0);
}

}  // namespace
}  // namespace tempriv
