// Validates the §4 queueing analysis against the event-driven simulator:
// the M/M/∞ occupancy law, the Erlang-loss drop rate of M/M/k/k nodes, and
// Burke's theorem (Poisson in -> Poisson out) that justifies analyzing the
// tandem/tree network node by node.

#include <gtest/gtest.h>

#include <memory>

#include "core/disciplines.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "net/network.h"
#include "queueing/erlang.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace tempriv {
namespace {

crypto::PayloadCodec& codec() {
  static crypto::PayloadCodec instance(crypto::Speck64_128::Key{
      2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5});
  return instance;
}

// Source node 0 forwards immediately; node 1 is the queue under test.
net::DisciplineFactory single_queue_factory(
    std::function<std::unique_ptr<net::ForwardingDiscipline>()> make_queue) {
  return [make_queue = std::move(make_queue)](net::NodeId id, std::uint16_t)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    if (id == 1) return make_queue();
    return std::make_unique<core::ImmediateForwarding>();
  };
}

TEST(QueueingValidation, MmInfOccupancyIsPoissonWithMeanRho) {
  // Poisson(λ = 0.4) arrivals, Exp(1/µ = 10) delays: ρ = 4.
  constexpr double kLambda = 0.4;
  constexpr double kMeanDelay = 10.0;
  const double rho = kLambda * kMeanDelay;

  sim::Simulator sim;
  net::Network network(
      sim, net::Topology::line(3),
      single_queue_factory([=] {
        return std::make_unique<core::UnlimitedDelaying>(
            std::make_unique<core::ExponentialDelay>(kMeanDelay));
      }),
      {}, sim::RandomStream(31));

  metrics::TimeWeightedOccupancy occupancy;
  network.set_occupancy_probe(
      [&](net::NodeId node, sim::Time now, std::size_t occ) {
        if (node == 1) occupancy.record(now, occ);
      });

  workload::PoissonSource source(network, codec(), 0, sim::RandomStream(32),
                                 kLambda, 40000);
  source.start(0.0);
  sim.run();
  occupancy.finish(sim.now());

  // E[N] = ρ.
  EXPECT_NEAR(occupancy.mean_level(), rho, rho * 0.05);
  // Stationary distribution is Poisson(ρ): check the body of the PMF.
  for (std::uint64_t k = 0; k <= 8; ++k) {
    EXPECT_NEAR(occupancy.fraction_at(k), queueing::poisson_pmf(rho, k), 0.02)
        << "occupancy level " << k;
  }
}

TEST(QueueingValidation, DropTailLossMatchesErlangFormula) {
  // M/M/k/k: λ = 0.5, 1/µ = 10 => ρ = 5, k = 5 slots.
  constexpr double kLambda = 0.5;
  constexpr double kMeanDelay = 10.0;
  constexpr std::size_t kSlots = 5;
  const double rho = kLambda * kMeanDelay;

  sim::Simulator sim;
  net::Network network(
      sim, net::Topology::line(3),
      single_queue_factory([=] {
        return std::make_unique<core::DropTailDelaying>(
            std::make_unique<core::ExponentialDelay>(kMeanDelay), kSlots);
      }),
      {}, sim::RandomStream(33));

  workload::PoissonSource source(network, codec(), 0, sim::RandomStream(34),
                                 kLambda, 60000);
  source.start(0.0);
  sim.run();

  const double measured_loss =
      static_cast<double>(network.total_drops()) /
      static_cast<double>(network.packets_originated());
  const double predicted = queueing::erlang_loss(rho, kSlots);
  EXPECT_NEAR(measured_loss, predicted, predicted * 0.05);
}

TEST(QueueingValidation, RcadPreemptionRateExceedsErlangLoss) {
  // Each arrival that finds the buffer full triggers exactly one
  // preemption. Unlike drop-tail, preempting the shortest-remaining packet
  // and admitting a fresh Exp(µ) delay *refreshes* the residual holding
  // times, so the buffer stays full longer than the M/M/k/k model predicts:
  // the preemption rate upper-bounds — and at overload clearly exceeds —
  // the Erlang loss E(ρ, k).
  constexpr double kLambda = 0.5;
  constexpr double kMeanDelay = 10.0;
  constexpr std::size_t kSlots = 5;
  const double rho = kLambda * kMeanDelay;

  sim::Simulator sim;
  net::Network network(
      sim, net::Topology::line(3),
      single_queue_factory([=] {
        return std::make_unique<core::RcadDiscipline>(
            std::make_unique<core::ExponentialDelay>(kMeanDelay), kSlots);
      }),
      {}, sim::RandomStream(35));

  workload::PoissonSource source(network, codec(), 0, sim::RandomStream(36),
                                 kLambda, 60000);
  source.start(0.0);
  sim.run();

  const double measured =
      static_cast<double>(network.total_preemptions()) /
      static_cast<double>(network.packets_originated());
  const double predicted = queueing::erlang_loss(rho, kSlots);
  EXPECT_GT(measured, predicted);
  EXPECT_LT(measured, 1.0);
  EXPECT_EQ(network.total_drops(), 0u);
  EXPECT_EQ(network.packets_delivered(), network.packets_originated());
}

TEST(QueueingValidation, BurkeTheoremPoissonInPoissonOut) {
  // Departures of the M/M/∞ node (arrivals at the sink) must again be
  // Poisson(λ): exponential inter-arrivals with mean 1/λ and squared
  // coefficient of variation 1.
  constexpr double kLambda = 0.4;

  sim::Simulator sim;
  net::Network network(
      sim, net::Topology::line(3),
      single_queue_factory([=] {
        return std::make_unique<core::UnlimitedDelaying>(
            std::make_unique<core::ExponentialDelay>(25.0));
      }),
      {}, sim::RandomStream(37));

  struct ArrivalRecorder final : net::SinkObserver {
    metrics::StreamingStats gaps;
    double last = -1.0;
    void on_delivery(const net::Packet&, sim::Time arrival) override {
      if (last >= 0.0) gaps.add(arrival - last);
      last = arrival;
    }
  } recorder;
  network.add_sink_observer(&recorder);

  workload::PoissonSource source(network, codec(), 0, sim::RandomStream(38),
                                 kLambda, 40000);
  source.start(0.0);
  sim.run();

  EXPECT_NEAR(recorder.gaps.mean(), 1.0 / kLambda, 0.05);
  const double scv = recorder.gaps.variance() /
                     (recorder.gaps.mean() * recorder.gaps.mean());
  EXPECT_NEAR(scv, 1.0, 0.05);  // exponential gaps -> SCV = 1
}

TEST(QueueingValidation, TandemQueuesEachHoldRho) {
  // Two delaying nodes in series with different µ: by Burke both see
  // Poisson(λ) input, so total expected buffering is ρ1 + ρ2 (§4's
  // node-by-node analysis of the routing tree).
  constexpr double kLambda = 0.3;
  constexpr double kMean1 = 8.0;
  constexpr double kMean2 = 16.0;

  sim::Simulator sim;
  net::Network network(
      sim, net::Topology::line(4),
      [&](net::NodeId id, std::uint16_t) -> std::unique_ptr<net::ForwardingDiscipline> {
        if (id == 1) {
          return std::make_unique<core::UnlimitedDelaying>(
              std::make_unique<core::ExponentialDelay>(kMean1));
        }
        if (id == 2) {
          return std::make_unique<core::UnlimitedDelaying>(
              std::make_unique<core::ExponentialDelay>(kMean2));
        }
        return std::make_unique<core::ImmediateForwarding>();
      },
      {}, sim::RandomStream(39));

  metrics::TimeWeightedOccupancy occ1;
  metrics::TimeWeightedOccupancy occ2;
  network.set_occupancy_probe(
      [&](net::NodeId node, sim::Time now, std::size_t occ) {
        if (node == 1) occ1.record(now, occ);
        if (node == 2) occ2.record(now, occ);
      });

  workload::PoissonSource source(network, codec(), 0, sim::RandomStream(40),
                                 kLambda, 40000);
  source.start(0.0);
  sim.run();
  occ1.finish(sim.now());
  occ2.finish(sim.now());

  EXPECT_NEAR(occ1.mean_level(), kLambda * kMean1, kLambda * kMean1 * 0.08);
  EXPECT_NEAR(occ2.mean_level(), kLambda * kMean2, kLambda * kMean2 * 0.08);
}

}  // namespace
}  // namespace tempriv
