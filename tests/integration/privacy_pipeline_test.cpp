// End-to-end properties of the privacy pipeline that cut across modules:
// the adversary's structural blindness to payload contents, conservation of
// packets under every discipline, and the §3.3 delay-decomposition option.

#include <gtest/gtest.h>

#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/scenario.h"
#include "workload/source.h"

namespace tempriv {
namespace {

TEST(PrivacyPipeline, AdversaryEstimatesAreIndependentOfPayloadKey) {
  // Structural blindness: re-running the identical scenario with a network
  // that seals payloads under a different key must give the adversary the
  // exact same observations and estimates, because everything it uses is
  // cleartext. (The key used inside run_paper_scenario is fixed, so here we
  // drive the network manually with two codecs.)
  auto run_with_key = [](std::uint8_t key_byte) {
    sim::Simulator sim;
    crypto::Speck64_128::Key key{};
    key.fill(key_byte);
    crypto::PayloadCodec codec(key);
    net::Network network(sim, net::Topology::line(8),
                         core::rcad_exponential_factory(20.0, 5), {},
                         sim::RandomStream(51));
    adversary::BaselineAdversary adv(1.0, 20.0);
    network.add_sink_observer(&adv);
    workload::PeriodicSource source(network, codec, 0, sim::RandomStream(52),
                                    3.0, 200);
    source.start(0.0);
    sim.run();
    return adv.estimates();
  };

  const auto estimates_a = run_with_key(0x11);
  const auto estimates_b = run_with_key(0x77);
  ASSERT_EQ(estimates_a.size(), estimates_b.size());
  for (std::size_t i = 0; i < estimates_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(estimates_a[i].arrival, estimates_b[i].arrival);
    EXPECT_DOUBLE_EQ(estimates_a[i].estimated_creation,
                     estimates_b[i].estimated_creation);
  }
}

TEST(PrivacyPipeline, EveryDisciplineConservesOrAccountsForAllPackets) {
  for (const workload::Scheme scheme :
       {workload::Scheme::kNoDelay, workload::Scheme::kUnlimitedDelay,
        workload::Scheme::kDropTail, workload::Scheme::kRcad}) {
    workload::PaperScenario scenario;
    scenario.scheme = scheme;
    scenario.interarrival = 2.0;
    scenario.packets_per_source = 100;
    const auto result = run_paper_scenario(scenario);
    EXPECT_EQ(result.delivered + result.drops, result.originated)
        << to_string(scheme);
  }
}

TEST(PrivacyPipeline, AllVictimPoliciesDeliverEverything) {
  for (const core::VictimPolicy policy :
       {core::VictimPolicy::kShortestRemaining,
        core::VictimPolicy::kLongestRemaining, core::VictimPolicy::kRandom,
        core::VictimPolicy::kOldest}) {
    workload::PaperScenario scenario;
    scenario.scheme = workload::Scheme::kRcad;
    scenario.victim = policy;
    scenario.interarrival = 2.0;
    scenario.packets_per_source = 100;
    const auto result = run_paper_scenario(scenario);
    EXPECT_EQ(result.delivered, result.originated) << to_string(policy);
    EXPECT_GT(result.preemptions, 0u) << to_string(policy);
  }
}

TEST(PrivacyPipeline, ShortestRemainingVictimStaysClosestToIntendedDelays) {
  // The paper's rationale for the victim rule: preempting the packet with
  // the shortest remaining delay perturbs the realized delay distribution
  // least. Its mean end-to-end latency must therefore sit closest to (and
  // below) the configured profile compared with longest-remaining.
  auto run_policy = [](core::VictimPolicy policy) {
    workload::PaperScenario scenario;
    scenario.scheme = workload::Scheme::kRcad;
    scenario.victim = policy;
    scenario.interarrival = 4.0;
    scenario.packets_per_source = 300;
    return run_paper_scenario(scenario);
  };
  const auto shortest = run_policy(core::VictimPolicy::kShortestRemaining);
  const auto longest = run_policy(core::VictimPolicy::kLongestRemaining);
  // Preempting long-remaining packets truncates the delay tail harder, so
  // its realized latency drops further below the intended distribution.
  EXPECT_GT(shortest.flows[0].mean_latency, longest.flows[0].mean_latency);
}

TEST(PrivacyPipeline, SinkWeightingShiftsBufferLoadAwayFromTrunk) {
  // §3.3: pushing delay toward the far-from-sink nodes relieves the shared
  // trunk, where flows superpose. Compare trunk preemption counts.
  auto run_weighting = [](double weighting) {
    workload::PaperScenario scenario;
    scenario.scheme = workload::Scheme::kRcad;
    scenario.sink_weighting = weighting;
    scenario.interarrival = 3.0;
    scenario.packets_per_source = 300;
    return run_paper_scenario(scenario);
  };
  const auto uniform = run_weighting(0.0);
  const auto weighted = run_weighting(1.0);
  // Both deliver everything; the weighted variant must not be *worse* in
  // delivery, and it redistributes preemptions.
  EXPECT_EQ(uniform.delivered, uniform.originated);
  EXPECT_EQ(weighted.delivered, weighted.originated);
  EXPECT_NE(uniform.preemptions, weighted.preemptions);
}

TEST(PrivacyPipeline, LongerFlowsEnjoyMorePrivacyUnderUnlimitedDelay) {
  // With per-hop i.i.d. delays the estimator variance grows with hop count:
  // MSE(S2, 22 hops) > MSE(S3, 9 hops).
  workload::PaperScenario scenario;
  scenario.scheme = workload::Scheme::kUnlimitedDelay;
  scenario.interarrival = 5.0;
  scenario.packets_per_source = 400;
  const auto result = run_paper_scenario(scenario);
  EXPECT_GT(result.flows[1].mse_baseline, result.flows[2].mse_baseline);
}

TEST(PrivacyPipeline, GroundTruthLatencyEqualsArrivalMinusCreation) {
  // Cross-check the recorder against first principles for a no-delay run.
  sim::Simulator sim;
  crypto::Speck64_128::Key key{};
  key.fill(0x42);
  crypto::PayloadCodec codec(key);
  net::Network network(sim, net::Topology::line(5), core::immediate_factory(),
                       {}, sim::RandomStream(61));
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec, 0, sim::RandomStream(62),
                                  10.0, 50);
  source.start(0.0);
  sim.run();
  EXPECT_EQ(truth.delivered(), 50u);
  EXPECT_DOUBLE_EQ(truth.latency(0).mean(), 4.0);
  EXPECT_DOUBLE_EQ(truth.latency(0).max(), 4.0);
}

}  // namespace
}  // namespace tempriv
