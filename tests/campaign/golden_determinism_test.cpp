// Byte-level determinism gate for the paper figures: every named sweep,
// run in-process on the campaign engine at the default seed, must render a
// CSV byte-identical to the golden files committed in tests/golden/ (which
// were captured before the event-kernel rewrite). Any change to event
// ordering, RNG draw order, or victim selection trips this immediately.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "campaign/sweeps.h"

#ifndef TEMPRIV_GOLDEN_DIR
#error "TEMPRIV_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace tempriv::campaign {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    ADD_FAILURE() << "cannot open golden file " << path;
    return {};
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

class GoldenDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenDeterminism, SweepCsvMatchesGoldenBytes) {
  const Sweep sweep = make_named_sweep(GetParam());
  const std::string golden =
      read_file(std::string(TEMPRIV_GOLDEN_DIR) + "/" + sweep.tag + ".csv");
  ASSERT_FALSE(golden.empty());
  // Two workers: the merge valve guarantees thread-count independence, so
  // this also cross-checks parallel == serial while checking the bytes.
  const SweepRun run =
      run_sweep(sweep, RunnerOptions{.threads = 2, .progress = nullptr});
  std::ostringstream rendered;
  run.table.write_csv(rendered);
  EXPECT_EQ(rendered.str(), golden)
      << "sweep '" << sweep.name << "' diverged from tests/golden/"
      << sweep.tag << ".csv";
}

INSTANTIATE_TEST_SUITE_P(NamedSweeps, GoldenDeterminism,
                         ::testing::Values("fig2a", "fig2b", "fig3", "buffer"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace tempriv::campaign
