#include "campaign/shard.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "workload/scenario.h"

namespace tempriv::campaign {
namespace {

std::vector<workload::PaperScenario> two_points() {
  workload::PaperScenario a;
  a.interarrival = 2.0;
  workload::PaperScenario b;
  b.interarrival = 6.0;
  b.scheme = workload::Scheme::kDropTail;
  return {a, b};
}

TEST(ShardSpecTest, ParseAcceptsWellFormedSpecs) {
  const ShardSpec all = parse_shard_spec("0/1");
  EXPECT_EQ(all.index, 0u);
  EXPECT_EQ(all.count, 1u);
  EXPECT_TRUE(all.is_all());

  const ShardSpec mid = parse_shard_spec("3/8");
  EXPECT_EQ(mid.index, 3u);
  EXPECT_EQ(mid.count, 8u);
  EXPECT_FALSE(mid.is_all());
}

TEST(ShardSpecTest, ParseRejectsMalformedSpecs) {
  for (const char* bad : {"", "3", "3/", "/8", "3/0", "8/8", "9/8", "a/8",
                          "3/b", "-1/8", "3/8/2", "3 /8", "3/ 8", "0x3/8"}) {
    EXPECT_THROW(parse_shard_spec(bad), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

TEST(ShardSpecTest, OwnershipPartitionsEveryJobExactlyOnce) {
  // For any N, the shards' owned sets must partition [0, total): this is the
  // invariant that makes merge(shard 0..N-1) == serial.
  const std::size_t total = 23;
  for (const std::uint32_t count : {1u, 2u, 3u, 8u, 23u, 40u}) {
    std::size_t owned_total = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const ShardSpec spec{i, count};
      std::size_t owned = 0;
      for (std::size_t job = 0; job < total; ++job) {
        if (spec.owns(job)) ++owned;
      }
      EXPECT_EQ(owned, shard_jobs_owned(total, spec))
          << "shard " << i << "/" << count;
      owned_total += owned;
    }
    EXPECT_EQ(owned_total, total) << "count " << count;
    for (std::size_t job = 0; job < total; ++job) {
      std::uint32_t owners = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (ShardSpec{i, count}.owns(job)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "job " << job << " with count " << count;
    }
  }
}

TEST(ShardSpecTest, ShardedExpandKeepsGlobalIndicesAndSeeds) {
  const std::vector<workload::PaperScenario> points = two_points();
  const std::vector<JobSpec> all = CampaignRunner::expand(points, 3);
  const ShardSpec spec{1, 2};
  const std::vector<JobSpec> owned = CampaignRunner::expand(points, 3, spec);
  ASSERT_EQ(owned.size(), shard_jobs_owned(all.size(), spec));
  for (const JobSpec& job : owned) {
    EXPECT_TRUE(spec.owns(job.index));
    // The sharded job is the identical job the serial expansion produced —
    // same index, same point, same derived seed.
    const JobSpec& serial = all.at(job.index);
    EXPECT_EQ(job.point, serial.point);
    EXPECT_EQ(job.replication, serial.replication);
    EXPECT_EQ(job.scenario.seed, serial.scenario.seed);
  }
}

TEST(ShardHeaderTest, JsonRoundTripsExactly) {
  ShardHeader header;
  header.manifest =
      make_manifest("fig2a", "fig2a_mse", 4, two_points());
  header.shard = ShardSpec{2, 5};
  header.jobs_owned = shard_jobs_owned(header.manifest.total_jobs, header.shard);

  const std::string line = shard_header_json(header);
  const ShardHeader parsed = parse_shard_header(line, "test");
  EXPECT_EQ(parsed.manifest.schema, header.manifest.schema);
  EXPECT_EQ(parsed.manifest.sweep, "fig2a");
  EXPECT_EQ(parsed.manifest.tag, "fig2a_mse");
  EXPECT_EQ(parsed.manifest.base_seed, header.manifest.base_seed);
  EXPECT_EQ(parsed.manifest.reps, 4u);
  EXPECT_EQ(parsed.manifest.points, 2u);
  EXPECT_EQ(parsed.manifest.total_jobs, 8u);
  EXPECT_EQ(parsed.manifest.config_hash, header.manifest.config_hash);
  EXPECT_EQ(parsed.shard.index, 2u);
  EXPECT_EQ(parsed.shard.count, 5u);
  EXPECT_EQ(parsed.jobs_owned, header.jobs_owned);
  // Re-serializing the parsed header reproduces the exact line.
  EXPECT_EQ(shard_header_json(parsed), line);
}

TEST(ShardHeaderTest, ParseRejectsNonHeaders) {
  EXPECT_THROW(parse_shard_header("", "t"), std::runtime_error);
  EXPECT_THROW(parse_shard_header("{}", "t"), std::runtime_error);
  EXPECT_THROW(parse_shard_header("{\"job\":0}", "t"), std::runtime_error);
  EXPECT_THROW(parse_shard_header("not json", "t"), std::runtime_error);
}

TEST(ConfigHashTest, SensitiveToEveryRelevantParameter) {
  const std::vector<workload::PaperScenario> base = two_points();
  const std::uint64_t hash = campaign_config_hash("tag", 2, base);

  // Same inputs, same hash (the hash is a pure function).
  EXPECT_EQ(campaign_config_hash("tag", 2, base), hash);

  // Each knob moves the hash: reps, tag, and any scenario field.
  EXPECT_NE(campaign_config_hash("tag", 3, base), hash);
  EXPECT_NE(campaign_config_hash("other", 2, base), hash);

  auto mutated = base;
  mutated[0].interarrival += 1.0;
  EXPECT_NE(campaign_config_hash("tag", 2, mutated), hash);

  mutated = base;
  mutated[1].seed += 1;
  EXPECT_NE(campaign_config_hash("tag", 2, mutated), hash);

  mutated = base;
  mutated[0].buffer_slots += 1;
  EXPECT_NE(campaign_config_hash("tag", 2, mutated), hash);

  mutated = base;
  mutated[1].scheme = workload::Scheme::kNoDelay;
  EXPECT_NE(campaign_config_hash("tag", 2, mutated), hash);

  // Point order matters too (the jobs would land on different indices).
  auto swapped = base;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(campaign_config_hash("tag", 2, swapped), hash);
}

TEST(ConfigHashTest, HexRenderingIsSixteenLowerHexDigits) {
  const std::string hex = config_hash_hex(0x0123456789abcdefull);
  EXPECT_EQ(hex, "0123456789abcdef");
  EXPECT_EQ(config_hash_hex(0).size(), 16u);
}

TEST(ShardArtifactTest, StemEncodesShardAndCount) {
  EXPECT_EQ(shard_artifact_stem("fig2a_mse", ShardSpec{2, 8}),
            "fig2a_mse.shard-2-of-8");
}

}  // namespace
}  // namespace tempriv::campaign
