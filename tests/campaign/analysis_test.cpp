// The thread-pool KSG overload promises bit-identical results to the serial
// estimator at *every* worker count. These tests pin that promise at the
// thread counts named in the acceptance criteria (1, 2, 8) on corpora that
// include the duplicate/tie traps, and under repeated evaluation on one
// pool (chunk boundaries must not leak state between calls).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "campaign/analysis.h"
#include "campaign/thread_pool.h"
#include "infotheory/estimators.h"
#include "infotheory/reference.h"
#include "sim/random.h"

namespace tempriv::campaign {
namespace {

std::vector<double> correlated(std::vector<double>& xs, std::size_t n,
                               sim::RandomStream& rng) {
  xs.resize(n);
  std::vector<double> zs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(0.0, 100.0);
    zs[i] = xs[i] + rng.exponential_mean(30.0);
  }
  return zs;
}

TEST(ParallelKsg, BitIdenticalToSerialAtEveryThreadCount) {
  sim::RandomStream rng(7001);
  std::vector<double> xs;
  const std::vector<double> zs = correlated(xs, 5000, rng);
  const double serial = infotheory::mutual_information_ksg(xs, zs, 4);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(parallel_mutual_information_ksg(pool, xs, zs, 4), serial)
        << "threads=" << threads;
  }
}

TEST(ParallelKsg, MatchesBruteForceReferenceOnTieHeavyInput) {
  sim::RandomStream rng(7002);
  std::vector<double> xs(600);
  std::vector<double> zs(600);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::floor(rng.uniform(0.0, 12.0));
    zs[i] = 0.5 * static_cast<double>(rng.uniform_index(10));
  }
  const double brute = infotheory::reference::mutual_information_ksg_brute(
      xs, zs, 3);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(parallel_mutual_information_ksg(pool, xs, zs, 3), brute)
        << "threads=" << threads;
  }
}

TEST(ParallelKsg, RepeatedCallsOnOnePoolAreStable) {
  sim::RandomStream rng(7003);
  std::vector<double> xs;
  const std::vector<double> zs = correlated(xs, 3000, rng);
  ThreadPool pool(8);
  const double first = parallel_mutual_information_ksg(pool, xs, zs, 3);
  EXPECT_EQ(first, infotheory::mutual_information_ksg(xs, zs, 3));
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(parallel_mutual_information_ksg(pool, xs, zs, 3), first);
  }
}

TEST(ParallelKsg, SmallInputsBelowOneChunkStillWork) {
  // n < chunk size exercises the single-task path.
  sim::RandomStream rng(7004);
  std::vector<double> xs;
  const std::vector<double> zs = correlated(xs, 40, rng);
  ThreadPool pool(8);
  EXPECT_EQ(parallel_mutual_information_ksg(pool, xs, zs, 3),
            infotheory::mutual_information_ksg(xs, zs, 3));
}

TEST(ParallelKsg, ValidatesLikeSerial) {
  ThreadPool pool(2);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> bad{1.0};
  EXPECT_THROW(parallel_mutual_information_ksg(pool, xs, bad, 1),
               std::invalid_argument);
  EXPECT_THROW(parallel_mutual_information_ksg(pool, xs, xs, 0),
               std::invalid_argument);
  EXPECT_THROW(parallel_mutual_information_ksg(pool, xs, xs, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::campaign
