#include "campaign/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace tempriv::campaign {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 100; ++i) {
      futures.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 21; });
  auto b = pool.submit([] { return 2.0; });
  EXPECT_EQ(a.get() * static_cast<int>(b.get()), 42);
}

TEST(ThreadPoolTest, ExceptionInJobDoesNotDeadlockPool) {
  std::atomic<int> completed{0};
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  // Tasks submitted after the throwing one still run to completion: the
  // exception is captured in the future, not unwound through the worker.
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&completed] { ++completed; }));
  }
  EXPECT_THROW(bad.get(), std::runtime_error);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready)
        << "pool deadlocked after a throwing job";
    f.get();
  }
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  // Destroying the pool while the queue still holds work must neither hang
  // nor drop tasks: submitted work runs to completion before the join.
  std::atomic<int> started{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 4; ++i) {
      pool.submit([&started] {
        ++started;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
    }
  }
  EXPECT_EQ(started.load(), 4);
}

TEST(ThreadPoolTest, ResolveThreadsClampsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(8), 8u);
  EXPECT_EQ(ThreadPool(3).thread_count(), 3u);
}

}  // namespace
}  // namespace tempriv::campaign
