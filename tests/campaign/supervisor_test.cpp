#include "campaign/supervisor.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tempriv::campaign {
namespace {

/// Parent-side aggregate of everything the shard pipes delivered. Progress
/// delivery is at-least-once-per-written-line and in-order per pipe, so the
/// totals below are exact when every child exits cleanly.
class CountingListener : public ProgressListener {
 public:
  void job_done(std::uint64_t sim_events) override {
    ++jobs_;
    events_ += sim_events;
  }
  std::uint64_t jobs() const { return jobs_; }
  std::uint64_t events() const { return events_; }

 private:
  std::uint64_t jobs_ = 0;
  std::uint64_t events_ = 0;
};

TEST(SupervisorTest, AggregatesProgressAcrossAllShards) {
  CountingListener listener;
  std::string error;
  const int rc = run_shard_fleet(
      3, &listener,
      [](const ShardSpec& shard, int progress_fd) {
        PipeProgress progress(progress_fd);
        for (int j = 0; j < 5; ++j) progress.job_done(100 + shard.index);
        return 0;
      },
      &error);
  EXPECT_EQ(rc, 0) << error;
  EXPECT_EQ(listener.jobs(), 15u);
  EXPECT_EQ(listener.events(), 5u * (100 + 101 + 102));
}

TEST(SupervisorTest, NonzeroChildExitFailsTheFleet) {
  std::string error;
  const int rc = run_shard_fleet(
      3, nullptr,
      [](const ShardSpec& shard, int) { return shard.index == 1 ? 7 : 0; },
      &error);
  EXPECT_NE(rc, 0);
  EXPECT_NE(error.find("shard 1/3"), std::string::npos) << error;
  EXPECT_NE(error.find("7"), std::string::npos) << error;
}

TEST(SupervisorTest, ThrowingChildFailsTheFleet) {
  std::string error;
  const int rc = run_shard_fleet(
      2, nullptr,
      [](const ShardSpec& shard, int) -> int {
        if (shard.index == 0) throw std::runtime_error("boom");
        return 0;
      },
      &error);
  EXPECT_NE(rc, 0);
  EXPECT_NE(error.find("shard 0/2"), std::string::npos) << error;
}

TEST(SupervisorTest, SignaledChildIsDescribed) {
  std::string error;
  const int rc = run_shard_fleet(
      2, nullptr,
      [](const ShardSpec& shard, int) {
        if (shard.index == 1) ::raise(SIGKILL);
        return 0;
      },
      &error);
  EXPECT_NE(rc, 0);
  EXPECT_NE(error.find("signal"), std::string::npos) << error;
}

TEST(SupervisorTest, ZeroShardsIsRejected) {
  std::string error;
  EXPECT_NE(run_shard_fleet(0, nullptr,
                            [](const ShardSpec&, int) { return 0; }, &error),
            0);
}

}  // namespace
}  // namespace tempriv::campaign
