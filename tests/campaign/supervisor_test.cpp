#include "campaign/supervisor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include <unistd.h>

namespace tempriv::campaign {
namespace {

/// Parent-side aggregate of everything the shard pipes delivered. Progress
/// delivery is at-least-once-per-written-line and in-order per pipe, so the
/// totals below are exact when every child exits cleanly.
class CountingListener : public ProgressListener {
 public:
  void job_done(std::uint64_t sim_events) override {
    ++jobs_;
    events_ += sim_events;
  }
  void shard_heartbeat(std::uint32_t shard, std::uint64_t events) override {
    std::uint64_t& seen = shard_events_[shard];
    if (events > seen) seen = events;
  }
  std::uint64_t jobs() const { return jobs_; }
  std::uint64_t events() const { return events_; }
  std::uint64_t shard_events(std::uint32_t shard) const {
    const auto it = shard_events_.find(shard);
    return it == shard_events_.end() ? 0 : it->second;
  }

 private:
  std::uint64_t jobs_ = 0;
  std::uint64_t events_ = 0;
  std::map<std::uint32_t, std::uint64_t> shard_events_;
};

TEST(SupervisorTest, AggregatesProgressAcrossAllShards) {
  CountingListener listener;
  std::string error;
  const int rc = run_shard_fleet(
      3, &listener,
      [](const ShardSpec& shard, int progress_fd) {
        PipeProgress progress(progress_fd);
        for (int j = 0; j < 5; ++j) progress.job_done(100 + shard.index);
        return 0;
      },
      &error);
  EXPECT_EQ(rc, 0) << error;
  EXPECT_EQ(listener.jobs(), 15u);
  EXPECT_EQ(listener.events(), 5u * (100 + 101 + 102));
}

TEST(SupervisorTest, NonzeroChildExitFailsTheFleet) {
  std::string error;
  const int rc = run_shard_fleet(
      3, nullptr,
      [](const ShardSpec& shard, int) { return shard.index == 1 ? 7 : 0; },
      &error);
  EXPECT_NE(rc, 0);
  EXPECT_NE(error.find("shard 1/3"), std::string::npos) << error;
  EXPECT_NE(error.find("7"), std::string::npos) << error;
}

TEST(SupervisorTest, ThrowingChildFailsTheFleet) {
  std::string error;
  const int rc = run_shard_fleet(
      2, nullptr,
      [](const ShardSpec& shard, int) -> int {
        if (shard.index == 0) throw std::runtime_error("boom");
        return 0;
      },
      &error);
  EXPECT_NE(rc, 0);
  EXPECT_NE(error.find("shard 0/2"), std::string::npos) << error;
}

TEST(SupervisorTest, SignaledChildIsDescribed) {
  std::string error;
  const int rc = run_shard_fleet(
      2, nullptr,
      [](const ShardSpec& shard, int) {
        if (shard.index == 1) ::raise(SIGKILL);
        return 0;
      },
      &error);
  EXPECT_NE(rc, 0);
  EXPECT_NE(error.find("signal"), std::string::npos) << error;
}

TEST(SupervisorTest, JobRecordsDriveShardHeartbeats) {
  CountingListener listener;
  std::string error;
  const int rc = run_shard_fleet(
      2, &listener,
      [](const ShardSpec& shard, int progress_fd) {
        PipeProgress progress(progress_fd);
        for (int j = 0; j < 3; ++j) progress.job_done(10 * (shard.index + 1));
        return 0;
      },
      &error);
  EXPECT_EQ(rc, 0) << error;
  // The cumulative per-shard tallies arrive via shard_heartbeat alongside
  // the aggregate job_done stream.
  EXPECT_EQ(listener.shard_events(0), 30u);
  EXPECT_EQ(listener.shard_events(1), 60u);
}

TEST(SupervisorTest, IdleHeartbeatsReachTheListener) {
  CountingListener listener;
  std::string error;
  const int rc = run_shard_fleet(
      1, &listener,
      [](const ShardSpec&, int progress_fd) {
        // A heartbeat-enabled listener with a short interval: report one
        // job, then idle long enough for at least one "H" line to flow.
        PipeProgress progress(progress_fd, std::chrono::milliseconds(20));
        progress.job_done(42);
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        return 0;
      },
      &error);
  EXPECT_EQ(rc, 0) << error;
  EXPECT_EQ(listener.jobs(), 1u);
  EXPECT_EQ(listener.shard_events(0), 42u);
}

TEST(SupervisorTest, SilentShardIsReportedAsStalled) {
  std::ostringstream log;
  FleetOptions options;
  options.stall_after = std::chrono::milliseconds(200);
  options.stall_log = &log;
  std::string error;
  const int rc = run_shard_fleet(
      1, nullptr,
      [](const ShardSpec&, int) {
        // No PipeProgress at all: total silence, well past the threshold.
        std::this_thread::sleep_for(std::chrono::milliseconds(700));
        return 0;
      },
      &error, options);
  EXPECT_EQ(rc, 0) << error;  // stalls warn, they do not fail the fleet
  const std::string text = log.str();
  EXPECT_NE(text.find("shard 0/1 stalled"), std::string::npos) << text;
  EXPECT_NE(text.find("no heartbeat for"), std::string::npos) << text;
  EXPECT_NE(text.find("events executed: 0"), std::string::npos) << text;
}

TEST(SupervisorTest, HeartbeatingShardIsNotReportedAsStalled) {
  std::ostringstream log;
  FleetOptions options;
  options.stall_after = std::chrono::milliseconds(300);
  options.stall_log = &log;
  std::string error;
  const int rc = run_shard_fleet(
      1, nullptr,
      [](const ShardSpec&, int progress_fd) {
        PipeProgress progress(progress_fd, std::chrono::milliseconds(50));
        std::this_thread::sleep_for(std::chrono::milliseconds(700));
        return 0;
      },
      &error, options);
  EXPECT_EQ(rc, 0) << error;
  EXPECT_EQ(log.str(), "") << log.str();
}

TEST(SupervisorTest, FailureMessageCarriesLastHeartbeatContext) {
  std::string error;
  const int rc = run_shard_fleet(
      1, nullptr,
      [](const ShardSpec&, int progress_fd) {
        PipeProgress progress(progress_fd);
        progress.job_done(42);
        return 3;
      },
      &error);
  EXPECT_NE(rc, 0);
  EXPECT_NE(error.find("shard 0/1"), std::string::npos) << error;
  EXPECT_NE(error.find("status 3"), std::string::npos) << error;
  EXPECT_NE(error.find("events executed: 42"), std::string::npos) << error;
  EXPECT_NE(error.find("last heartbeat"), std::string::npos) << error;
}

TEST(SupervisorTest, ZeroShardsIsRejected) {
  std::string error;
  EXPECT_NE(run_shard_fleet(0, nullptr,
                            [](const ShardSpec&, int) { return 0; }, &error),
            0);
}

}  // namespace
}  // namespace tempriv::campaign
