#include "campaign/merge.h"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "campaign/sweeps.h"

namespace tempriv::campaign {
namespace {

// A 4-point grid (2 rates x 2 schemes) at 60 packets per source: small
// enough that the full serial-vs-sharded matrix below runs in well under a
// second, but crossing schemes so different points exercise different code.
Sweep small_sweep() {
  GridSpec spec;
  spec.interarrivals = {2.0, 6.0};
  spec.schemes = {workload::Scheme::kRcad, workload::Scheme::kDropTail};
  spec.base.packets_per_source = 60;
  return grid_sweep(spec);
}

struct SerialOutput {
  std::string jsonl;
  std::string stats_json;
  std::string csv;
};

SerialOutput run_serial(const Sweep& sweep, std::uint32_t reps) {
  std::ostringstream jsonl_os;
  JsonlSink jsonl(jsonl_os);
  MergedStatsSink stats(sweep.points.size());
  const SweepRun run =
      run_sweep(sweep, {.threads = 2, .progress = nullptr}, reps,
                {&jsonl, &stats});
  const CampaignManifest manifest =
      make_manifest(sweep.name, sweep.tag, reps, sweep.points);
  std::ostringstream stats_os;
  write_campaign_stats_json(stats_os, manifest, nullptr, stats);
  std::ostringstream csv_os;
  run.table.write_csv(csv_os);
  return {jsonl_os.str(), stats_os.str(), csv_os.str()};
}

struct ShardText {
  std::string jsonl;
  std::string stats;
};

ShardText run_shard_to_text(const Sweep& sweep, std::uint32_t reps,
                            const ShardSpec& spec, std::size_t threads = 2) {
  std::ostringstream jsonl_os, stats_os;
  run_sweep_shard(sweep, {.threads = threads, .progress = nullptr}, reps, spec,
                  jsonl_os, stats_os);
  return {jsonl_os.str(), stats_os.str()};
}

ShardInput input_from_text(const ShardText& text, const std::string& label) {
  std::istringstream jsonl_in(text.jsonl);
  ShardInput input = read_shard_jsonl(jsonl_in, label);
  std::istringstream stats_in(text.stats);
  read_shard_stats(stats_in, label + ".stats", input);
  return input;
}

std::vector<ShardInput> make_shards(const Sweep& sweep, std::uint32_t reps,
                                    std::uint32_t count) {
  std::vector<ShardInput> shards;
  for (std::uint32_t i = 0; i < count; ++i) {
    shards.push_back(
        input_from_text(run_shard_to_text(sweep, reps, ShardSpec{i, count}),
                        "shard-" + std::to_string(i)));
  }
  return shards;
}

/// Rewrites the header line of a shard JSONL through a mutation — the
/// corruption vector for the --check tests.
ShardText with_mutated_header(ShardText text,
                              const std::function<void(ShardHeader&)>& mutate) {
  const std::size_t nl = text.jsonl.find('\n');
  ShardHeader header =
      parse_shard_header(text.jsonl.substr(0, nl), "mutate");
  mutate(header);
  text.jsonl = shard_header_json(header) + text.jsonl.substr(nl);
  return text;
}

TEST(MergeTest, MergedOutputsAreByteIdenticalToSerial) {
  const Sweep sweep = small_sweep();
  const std::uint32_t reps = 2;
  const SerialOutput serial = run_serial(sweep, reps);
  ASSERT_FALSE(serial.jsonl.empty());

  for (const std::uint32_t count : {1u, 2u, 3u}) {
    const MergedCampaign merged =
        merge_shards(make_shards(sweep, reps, count));
    EXPECT_EQ(merged.jsonl, serial.jsonl) << count << " shards";
    EXPECT_EQ(merged.stats_json, serial.stats_json) << count << " shards";
    std::ostringstream csv_os;
    merged.table.write_csv(csv_os);
    EXPECT_EQ(csv_os.str(), serial.csv) << count << " shards";
  }
}

TEST(MergeTest, ShardOrderDoesNotMatter) {
  const Sweep sweep = small_sweep();
  std::vector<ShardInput> shards = make_shards(sweep, 2, 3);
  std::swap(shards[0], shards[2]);
  const MergedCampaign merged = merge_shards(shards);
  EXPECT_EQ(merged.jsonl, run_serial(sweep, 2).jsonl);
}

TEST(MergeTest, ShardWorkerCountDoesNotChangeShardBytes) {
  // Inside a shard the runner already guarantees thread-count invariance;
  // spot-check it holds through the shard artifact path too.
  const Sweep sweep = small_sweep();
  const ShardSpec spec{1, 3};
  const ShardText one = run_shard_to_text(sweep, 2, spec, /*threads=*/1);
  const ShardText four = run_shard_to_text(sweep, 2, spec, /*threads=*/4);
  EXPECT_EQ(one.jsonl, four.jsonl);
  EXPECT_EQ(one.stats, four.stats);
}

TEST(MergeCheckTest, CleanShardSetPasses) {
  const MergeCheck check = check_shards(make_shards(small_sweep(), 2, 3));
  EXPECT_TRUE(check.ok()) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(MergeCheckTest, MissingShardIsReported) {
  std::vector<ShardInput> shards = make_shards(small_sweep(), 2, 3);
  shards.erase(shards.begin() + 1);
  const MergeCheck check = check_shards(shards);
  ASSERT_FALSE(check.ok());
  bool mentions_missing = false;
  for (const std::string& error : check.errors) {
    if (error.find("missing") != std::string::npos) mentions_missing = true;
  }
  EXPECT_TRUE(mentions_missing);
}

TEST(MergeCheckTest, DuplicateShardIsReported) {
  std::vector<ShardInput> shards = make_shards(small_sweep(), 2, 2);
  shards.push_back(shards[0]);
  const MergeCheck check = check_shards(shards);
  ASSERT_FALSE(check.ok());
  bool mentions_duplicate = false;
  for (const std::string& error : check.errors) {
    if (error.find("duplicate") != std::string::npos) mentions_duplicate = true;
  }
  EXPECT_TRUE(mentions_duplicate);
}

TEST(MergeCheckTest, WrongBaseSeedIsReported) {
  const Sweep sweep = small_sweep();
  std::vector<ShardInput> shards;
  shards.push_back(input_from_text(
      run_shard_to_text(sweep, 2, ShardSpec{0, 2}), "shard-0"));
  ShardText tampered = with_mutated_header(
      run_shard_to_text(sweep, 2, ShardSpec{1, 2}),
      [](ShardHeader& h) { h.manifest.base_seed += 1; });
  // The tampered stats sibling still matches the original header, so load
  // only the JSONL (has_stats=false adds its own error, which is fine —
  // the seed mismatch must be among the reported problems).
  std::istringstream jsonl_in(tampered.jsonl);
  shards.push_back(read_shard_jsonl(jsonl_in, "shard-1"));
  const MergeCheck check = check_shards(shards);
  ASSERT_FALSE(check.ok());
  bool mentions_seed = false;
  for (const std::string& error : check.errors) {
    if (error.find("base_seed") != std::string::npos) mentions_seed = true;
  }
  EXPECT_TRUE(mentions_seed);
  EXPECT_THROW(merge_shards(shards), std::runtime_error);
}

TEST(MergeCheckTest, MismatchedShardCountsAreReported) {
  const Sweep sweep = small_sweep();
  std::vector<ShardInput> shards;
  shards.push_back(input_from_text(
      run_shard_to_text(sweep, 2, ShardSpec{0, 2}), "shard-0of2"));
  shards.push_back(input_from_text(
      run_shard_to_text(sweep, 2, ShardSpec{0, 3}), "shard-0of3"));
  const MergeCheck check = check_shards(shards);
  ASSERT_FALSE(check.ok());
}

TEST(MergeCheckTest, TruncatedShardIsReported) {
  const Sweep sweep = small_sweep();
  ShardText text = run_shard_to_text(sweep, 2, ShardSpec{0, 2});
  // Drop the last job line (and its newline): simulates a crashed shard.
  const std::size_t last_nl = text.jsonl.rfind('\n', text.jsonl.size() - 2);
  text.jsonl.resize(last_nl + 1);
  std::istringstream jsonl_in(text.jsonl);
  ShardInput truncated = read_shard_jsonl(jsonl_in, "truncated");
  std::vector<ShardInput> shards = {truncated};
  shards.push_back(input_from_text(
      run_shard_to_text(sweep, 2, ShardSpec{1, 2}), "shard-1"));
  const MergeCheck check = check_shards(shards);
  ASSERT_FALSE(check.ok());
}

TEST(MergeCheckTest, MissingStatsSiblingIsReported) {
  const Sweep sweep = small_sweep();
  const ShardText text = run_shard_to_text(sweep, 2, ShardSpec{0, 1});
  std::istringstream jsonl_in(text.jsonl);
  const ShardInput no_stats = read_shard_jsonl(jsonl_in, "no-stats");
  EXPECT_FALSE(no_stats.has_stats);
  const MergeCheck check = check_shards({no_stats});
  ASSERT_FALSE(check.ok());
}

TEST(MergeTest, JobRecordRoundTripsThroughJsonl) {
  // Every field the stats replay and the figure tables read must survive the
  // JSONL round trip bit-exactly.
  const Sweep sweep = small_sweep();
  std::ostringstream jsonl_os;
  JsonlSink jsonl(jsonl_os);
  const SweepRun run = run_sweep(sweep, {.threads = 1, .progress = nullptr},
                                 1, {&jsonl});
  std::istringstream lines(jsonl_os.str());
  std::string line;
  std::size_t i = 0;
  while (std::getline(lines, line)) {
    const JobRecord record = parse_job_record(line, "roundtrip");
    const JobResult& expected = run.jobs.at(i);
    EXPECT_EQ(record.spec.index, expected.spec.index);
    EXPECT_EQ(record.spec.scenario.seed, expected.spec.scenario.seed);
    EXPECT_EQ(record.result.events_executed, expected.result.events_executed);
    EXPECT_EQ(record.result.mean_latency_all, expected.result.mean_latency_all);
    ASSERT_EQ(record.result.flows.size(), expected.result.flows.size());
    for (std::size_t f = 0; f < record.result.flows.size(); ++f) {
      EXPECT_EQ(record.result.flows[f].mse_baseline,
                expected.result.flows[f].mse_baseline);
      EXPECT_EQ(record.result.flows[f].mean_latency,
                expected.result.flows[f].mean_latency);
    }
    ++i;
  }
  EXPECT_EQ(i, run.jobs.size());
}

}  // namespace
}  // namespace tempriv::campaign
