#include "campaign/runner.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/sweeps.h"
#include "sim/seed.h"

namespace tempriv::campaign {
namespace {

// A small but non-trivial campaign: 3 traffic rates x 2 schemes, 2
// replications each (12 jobs), shrunk to 80 packets per source so the whole
// grid simulates in well under a second.
std::vector<workload::PaperScenario> test_grid() {
  std::vector<workload::PaperScenario> points;
  for (const double interarrival : {2.0, 6.0, 12.0}) {
    for (const workload::Scheme scheme :
         {workload::Scheme::kRcad, workload::Scheme::kDropTail}) {
      workload::PaperScenario scenario;
      scenario.interarrival = interarrival;
      scenario.scheme = scheme;
      scenario.packets_per_source = 80;
      points.push_back(scenario);
    }
  }
  return points;
}

struct CampaignOutput {
  std::string jsonl;
  CampaignStats total;
  std::vector<JobResult> results;
};

CampaignOutput run_with_threads(std::size_t threads) {
  const std::vector<workload::PaperScenario> points = test_grid();
  const std::vector<JobSpec> jobs = CampaignRunner::expand(points, 2);
  std::ostringstream jsonl_stream;
  JsonlSink jsonl(jsonl_stream);
  MergedStatsSink stats(points.size());
  CampaignRunner runner({.threads = threads, .progress = nullptr});
  CampaignOutput out;
  out.results = runner.run(jobs, {&jsonl, &stats});
  out.jsonl = jsonl_stream.str();
  out.total = stats.total();
  return out;
}

void expect_identical(const CampaignOutput& a, const CampaignOutput& b) {
  // Byte-identical JSONL log...
  EXPECT_EQ(a.jsonl, b.jsonl);
  // ...and bit-identical merged statistics (the merge order is fixed by job
  // index, so even floating-point rounding agrees).
  EXPECT_EQ(a.total.jobs, b.total.jobs);
  EXPECT_EQ(a.total.sim_events, b.total.sim_events);
  EXPECT_EQ(a.total.flow_latency.mean(), b.total.flow_latency.mean());
  EXPECT_EQ(a.total.flow_latency.variance(), b.total.flow_latency.variance());
  EXPECT_EQ(a.total.flow_mse_baseline.mean(), b.total.flow_mse_baseline.mean());
  EXPECT_EQ(a.total.flow_mse_baseline.variance(),
            b.total.flow_mse_baseline.variance());
  EXPECT_EQ(a.total.preemptions_per_packet.mean(),
            b.total.preemptions_per_packet.mean());
  ASSERT_EQ(a.total.latency_hist.bin_count(), b.total.latency_hist.bin_count());
  for (std::size_t i = 0; i < a.total.latency_hist.bin_count(); ++i) {
    EXPECT_EQ(a.total.latency_hist.bin(i), b.total.latency_hist.bin(i));
  }
}

TEST(CampaignRunnerTest, SameOutputFor1And2And8Threads) {
  const CampaignOutput serial = run_with_threads(1);
  ASSERT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.total.jobs, 12u);
  expect_identical(serial, run_with_threads(2));
  expect_identical(serial, run_with_threads(8));
}

TEST(CampaignRunnerTest, ResultsOrderedByJobIndex) {
  const CampaignOutput out = run_with_threads(8);
  ASSERT_EQ(out.results.size(), 12u);
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    EXPECT_EQ(out.results[i].spec.index, i);
  }
  // point-major, replication-minor expansion
  EXPECT_EQ(out.results[3].spec.point, 1u);
  EXPECT_EQ(out.results[3].spec.replication, 1u);
}

TEST(CampaignRunnerTest, ReplicationSeedsDeriveFromPointSeed) {
  const std::vector<workload::PaperScenario> points = test_grid();
  const std::vector<JobSpec> jobs = CampaignRunner::expand(points, 3);
  ASSERT_EQ(jobs.size(), points.size() * 3);
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_EQ(jobs[p * 3 + 0].scenario.seed, points[p].seed)
        << "replication 0 must keep the serial seed";
    EXPECT_EQ(jobs[p * 3 + 1].scenario.seed,
              sim::derive_seed(points[p].seed, 1));
    EXPECT_EQ(jobs[p * 3 + 2].scenario.seed,
              sim::derive_seed(points[p].seed, 2));
    EXPECT_NE(jobs[p * 3 + 1].scenario.seed, jobs[p * 3 + 2].scenario.seed);
  }
}

TEST(CampaignRunnerTest, JobExceptionPropagatesWithoutHanging) {
  workload::PaperScenario bad;
  bad.interarrival = -1.0;  // run_paper_scenario rejects this
  workload::PaperScenario good;
  good.packets_per_source = 10;
  const std::vector<JobSpec> jobs =
      CampaignRunner::expand({good, bad, good}, 1);
  CampaignRunner runner({.threads = 4, .progress = nullptr});
  EXPECT_THROW(runner.run(jobs), std::invalid_argument);
}

TEST(CampaignRunnerTest, SweepTableMatchesDirectScenarioRuns) {
  // The campaign path must compute exactly what a hand-rolled serial loop
  // computes: compare a fig3-style table cell against run_paper_scenario.
  Sweep sweep = fig3_sweep();
  sweep.points.resize(2);
  for (workload::PaperScenario& point : sweep.points) {
    point.packets_per_source = 60;
  }
  const SweepRun run = run_sweep(sweep, {.threads = 4, .progress = nullptr});
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const workload::ScenarioResult direct =
        workload::run_paper_scenario(sweep.points[i]);
    EXPECT_EQ(run.jobs[i].result.flows.front().mse_baseline,
              direct.flows.front().mse_baseline);
    EXPECT_EQ(run.jobs[i].result.events_executed, direct.events_executed);
  }
}

TEST(CampaignRunnerTest, ExpandRejectsZeroReplications) {
  EXPECT_THROW(CampaignRunner::expand(test_grid(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::campaign
