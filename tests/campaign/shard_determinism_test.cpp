// The sharding byte-identity gate: for every named sweep, running the
// campaign as N shards (each with its own worker pool) and merging must
// reproduce the serial run's JSONL log, stats artifact, and figure CSV
// byte for byte, for N in {1, 2, 3, 8} — and inside each shard the worker
// count (1 vs 4) must not matter. This is the contract that makes
// `tempriv-campaign --shard i/N` + `tempriv-merge` a drop-in replacement
// for the serial run.
//
// Sweeps run with packets_per_source shrunk so the whole matrix (4 sweeps
// x 4 shard counts x 2 worker counts) finishes in a few seconds; the
// byte-identity property is load-independent, so nothing is lost.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "campaign/merge.h"
#include "campaign/sweeps.h"

namespace tempriv::campaign {
namespace {

constexpr std::uint32_t kReps = 2;

Sweep reduced_sweep(const std::string& name) {
  Sweep sweep = make_named_sweep(name);
  for (workload::PaperScenario& point : sweep.points) {
    point.packets_per_source = 50;
  }
  return sweep;
}

struct CampaignBytes {
  std::string jsonl;
  std::string stats_json;
  std::string csv;
};

CampaignBytes serial_bytes(const Sweep& sweep) {
  std::ostringstream jsonl_os;
  JsonlSink jsonl(jsonl_os);
  MergedStatsSink stats(sweep.points.size());
  const SweepRun run = run_sweep(
      sweep, {.threads = 2, .progress = nullptr}, kReps, {&jsonl, &stats});
  const CampaignManifest manifest =
      make_manifest(sweep.name, sweep.tag, kReps, sweep.points);
  std::ostringstream stats_os;
  write_campaign_stats_json(stats_os, manifest, nullptr, stats);
  std::ostringstream csv_os;
  run.table.write_csv(csv_os);
  return {jsonl_os.str(), stats_os.str(), csv_os.str()};
}

CampaignBytes sharded_bytes(const Sweep& sweep, std::uint32_t count,
                            std::size_t threads) {
  std::vector<ShardInput> shards;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::ostringstream jsonl_os, stats_os;
    run_sweep_shard(sweep, {.threads = threads, .progress = nullptr}, kReps,
                    ShardSpec{i, count}, jsonl_os, stats_os);
    std::istringstream jsonl_in(jsonl_os.str());
    const std::string label = "shard-" + std::to_string(i);
    ShardInput input = read_shard_jsonl(jsonl_in, label);
    std::istringstream stats_in(stats_os.str());
    read_shard_stats(stats_in, label + ".stats", input);
    shards.push_back(std::move(input));
  }
  const MergedCampaign merged = merge_shards(shards);
  std::ostringstream csv_os;
  merged.table.write_csv(csv_os);
  return {merged.jsonl, merged.stats_json, csv_os.str()};
}

class ShardDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardDeterminism, MergedShardsMatchSerialBytes) {
  const Sweep sweep = reduced_sweep(GetParam());
  const CampaignBytes serial = serial_bytes(sweep);
  ASSERT_FALSE(serial.jsonl.empty());
  ASSERT_FALSE(serial.stats_json.empty());

  for (const std::uint32_t count : {1u, 2u, 3u, 8u}) {
    // 1 worker per shard and 4 workers per shard must both reproduce the
    // serial bytes: shard membership fixes which jobs run, worker count
    // only fixes who runs them.
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const CampaignBytes merged = sharded_bytes(sweep, count, threads);
      EXPECT_EQ(merged.jsonl, serial.jsonl)
          << GetParam() << ": " << count << " shards, " << threads
          << " threads";
      EXPECT_EQ(merged.stats_json, serial.stats_json)
          << GetParam() << ": " << count << " shards, " << threads
          << " threads";
      EXPECT_EQ(merged.csv, serial.csv)
          << GetParam() << ": " << count << " shards, " << threads
          << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NamedSweeps, ShardDeterminism,
                         ::testing::Values("fig2a", "fig2b", "fig3", "buffer"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace tempriv::campaign
