#include "campaign/progress.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

namespace tempriv::campaign {
namespace {

using std::chrono::milliseconds;

// Pass sim_events = 0 so the events/s clause stays away (rate 0 is not
// printed) and line shapes are deterministic.

TEST(ProgressReporterTest, PrintsCountAndEta) {
  std::ostringstream os;
  ProgressReporter progress(os, 3, milliseconds(0));
  progress.job_done(0);
  const std::string line = os.str();
  EXPECT_EQ(line.rfind("[campaign] 1/3 jobs", 0), 0u) << line;
  EXPECT_NE(line.find("ETA "), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n') << line;
}

TEST(ProgressReporterTest, FinalJobOmitsEta) {
  std::ostringstream os;
  ProgressReporter progress(os, 1, milliseconds(0));
  progress.job_done(0);
  const std::string line = os.str();
  EXPECT_EQ(line.rfind("[campaign] 1/1 jobs", 0), 0u) << line;
  EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
}

TEST(ProgressReporterTest, ThrottleSuppressesMidRunLines) {
  std::ostringstream os;
  // The first job always prints (the throttle window starts expired); a
  // huge min_interval then suppresses later mid-run jobs.
  ProgressReporter progress(os, 3, milliseconds(1000000));
  progress.job_done(0);
  const std::string first = os.str();
  EXPECT_EQ(first.rfind("[campaign] 1/3 jobs", 0), 0u) << first;
  progress.job_done(0);
  EXPECT_EQ(os.str(), first);  // throttled: nothing new
}

TEST(ProgressReporterTest, FinishPrintsClosingSummary) {
  std::ostringstream os;
  ProgressReporter progress(os, 2, milliseconds(0));
  progress.job_done(0);
  os.str("");
  progress.finish();
  const std::string line = os.str();
  EXPECT_EQ(line.rfind("[campaign] 1/2 jobs", 0), 0u) << line;
  EXPECT_NE(line.find("done in "), std::string::npos) << line;
  EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
}

TEST(ProgressReporterTest, RateClauseAppearsWithEvents) {
  std::ostringstream os;
  ProgressReporter progress(os, 2, milliseconds(0));
  progress.job_done(1000000);
  EXPECT_NE(os.str().find("M events/s"), std::string::npos) << os.str();
}

TEST(ProgressReporterTest, CountsDoneJobs) {
  std::ostringstream os;
  ProgressReporter progress(os, 5, milliseconds(1000000));
  EXPECT_EQ(progress.done(), 0u);
  progress.job_done(10);
  progress.job_done(20);
  EXPECT_EQ(progress.done(), 2u);
}

TEST(ProgressReporterTest, TracksLastHeartbeatPerShard) {
  std::ostringstream os;
  ProgressReporter progress(os, 4, milliseconds(1000000));
  EXPECT_FALSE(progress.last_heartbeat(0).has_value());

  progress.shard_heartbeat(0, 100);
  progress.shard_heartbeat(1, 250);
  ASSERT_TRUE(progress.last_heartbeat(0).has_value());
  EXPECT_EQ(progress.last_heartbeat(0)->events, 100u);
  EXPECT_EQ(progress.last_heartbeat(1)->events, 250u);
  EXPECT_FALSE(progress.last_heartbeat(2).has_value());

  // Cumulative counts only move forward, even if records race out of order.
  const auto before = progress.last_heartbeat(0)->at;
  progress.shard_heartbeat(0, 50);
  EXPECT_EQ(progress.last_heartbeat(0)->events, 100u);
  EXPECT_GE(progress.last_heartbeat(0)->at, before);
  progress.shard_heartbeat(0, 300);
  EXPECT_EQ(progress.last_heartbeat(0)->events, 300u);
}

}  // namespace
}  // namespace tempriv::campaign
