#include "metrics/table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tempriv::metrics {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, CsvOutputIsWellFormed) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, NumericRowsUsePrecision) {
  Table t({"v"});
  t.add_numeric_row(std::vector<double>{1.23456}, 2);
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_EQ(oss.str(), "v\n1.23\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"long-entry", "1"});
  t.add_row({"x", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  // Header, separator, and both rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("long-entry"), std::string::npos);
  // Each line ends without trailing separator confusion: 4 newlines total.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(FormatNumber, FixedForModerateMagnitudes) {
  EXPECT_EQ(format_number(1.5, 2), "1.50");
  EXPECT_EQ(format_number(0.0, 2), "0.00");
  EXPECT_EQ(format_number(-12.125, 3), "-12.125");
}

TEST(FormatNumber, ScientificForExtremes) {
  const std::string big = format_number(1.23e9, 2);
  EXPECT_NE(big.find('e'), std::string::npos);
  const std::string small = format_number(1.23e-7, 2);
  EXPECT_NE(small.find('e'), std::string::npos);
}

TEST(Table, SaveCsvWritesFile) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/tempriv_table_test.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

TEST(Table, SaveCsvThrowsOnBadPath) {
  Table t({"a"});
  EXPECT_THROW(t.save_csv("/nonexistent-dir/impossible/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace tempriv::metrics
