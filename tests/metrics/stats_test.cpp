#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tempriv::metrics {
namespace {

TEST(StreamingStats, EmptyIsAllZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(StreamingStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 0.0, 7.75, -1.25};
  StreamingStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), ss / xs.size(), 1e-12);
  EXPECT_NEAR(s.sample_variance(), ss / (xs.size() - 1), 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(ss / xs.size()), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.75);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(StreamingStats, IsNumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, tiny variance.
  StreamingStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(StreamingStats, MergeEqualsSequential) {
  StreamingStats a;
  StreamingStats b;
  StreamingStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 40 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats a;
  StreamingStats empty;
  a.add(1.0);
  a.add(3.0);
  StreamingStats a_copy = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a_copy);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(MseAccumulator, ComputesPaperMetric) {
  // MSE = Σ (x̂ − x)² / m, §2.1.
  MseAccumulator acc;
  acc.add(/*estimate=*/10.0, /*truth=*/7.0);   // err 3 -> 9
  acc.add(/*estimate=*/5.0, /*truth=*/9.0);    // err -4 -> 16
  acc.add(/*estimate=*/1.0, /*truth=*/1.0);    // err 0
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_NEAR(acc.mse(), (9.0 + 16.0 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(acc.rmse(), std::sqrt(25.0 / 3.0), 1e-12);
  EXPECT_NEAR(acc.bias(), (3.0 - 4.0 + 0.0) / 3.0, 1e-12);
}

TEST(MseAccumulator, PerfectEstimatorHasZeroMse) {
  MseAccumulator acc;
  for (int i = 0; i < 10; ++i) acc.add(i, i);
  EXPECT_DOUBLE_EQ(acc.mse(), 0.0);
  EXPECT_DOUBLE_EQ(acc.bias(), 0.0);
}

TEST(Percentile, NearestRankDefinition) {
  const std::vector<double> xs{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.9), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, ValidatesInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::metrics
