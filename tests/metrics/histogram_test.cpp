#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempriv::metrics {
namespace {

TEST(Histogram, ValidatesConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  h.add(5.5);   // bin 5
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, TracksUnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.5);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, FrequencyAndDensityNormalize) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 3; ++i) h.add(0.5);
  h.add(1.5);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.75);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.25);
  // Density integrates to 1: sum(density * width) == 1.
  EXPECT_DOUBLE_EQ(h.density(0) * h.bin_width() + h.density(1) * h.bin_width(),
                   1.0);
}

TEST(Histogram, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 15.0);
}

TEST(Histogram, MergeCombinesCountsAndOutOfRangeTallies) {
  Histogram a(0.0, 10.0, 10);
  a.add(0.5);
  a.add(5.0);
  a.add(-1.0);
  Histogram b(0.0, 10.0, 10);
  b.add(5.5);
  b.add(11.0);
  a.merge(b);
  EXPECT_EQ(a.bin(0), 1u);
  EXPECT_EQ(a.bin(5), 2u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
  // Merging an accumulator equals accumulating: same frequencies either way.
  EXPECT_DOUBLE_EQ(a.frequency(5), 2.0 / 3.0);
}

TEST(Histogram, MergeRejectsIncompatibleBinning) {
  Histogram a(0.0, 10.0, 10);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 11.0, 10)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 20.0, 10)), std::invalid_argument);
  EXPECT_NO_THROW(a.merge(Histogram(0.0, 10.0, 10)));
}

TEST(IntegerHistogram, MergeGrowsToCoverBothDomains) {
  IntegerHistogram a;
  a.add(1);
  a.add(3);
  IntegerHistogram b;
  b.add(3);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.count(3), 2u);
  EXPECT_EQ(a.count(9), 1u);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.max_value(), 9u);
  // Merging into the larger side works too.
  IntegerHistogram c;
  c.add(0);
  a.merge(c);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(IntegerHistogram, CountsAndGrows) {
  IntegerHistogram h;
  h.add(0);
  h.add(3);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 1u);
  EXPECT_EQ(h.count(100), 0u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.max_value(), 7u);
}

TEST(IntegerHistogram, PmfAndMean) {
  IntegerHistogram h;
  for (int i = 0; i < 3; ++i) h.add(2);
  h.add(6);
  EXPECT_DOUBLE_EQ(h.pmf(2), 0.75);
  EXPECT_DOUBLE_EQ(h.pmf(6), 0.25);
  EXPECT_DOUBLE_EQ(h.mean(), (3 * 2 + 6) / 4.0);
}

TEST(IntegerHistogram, EmptyIsSafe) {
  IntegerHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max_value(), 0u);
}

TEST(TimeWeightedOccupancy, WeighsByDuration) {
  TimeWeightedOccupancy occ;
  occ.record(0.0, 2);   // level 2 from t=0
  occ.record(4.0, 5);   // level 2 held for 4
  occ.record(6.0, 0);   // level 5 held for 2
  occ.finish(10.0);     // level 0 held for 4
  EXPECT_DOUBLE_EQ(occ.total_time(), 10.0);
  EXPECT_DOUBLE_EQ(occ.fraction_at(2), 0.4);
  EXPECT_DOUBLE_EQ(occ.fraction_at(5), 0.2);
  EXPECT_DOUBLE_EQ(occ.fraction_at(0), 0.4);
  EXPECT_DOUBLE_EQ(occ.mean_level(), (2 * 4 + 5 * 2 + 0 * 4) / 10.0);
  EXPECT_EQ(occ.max_level(), 5u);
}

TEST(TimeWeightedOccupancy, EmptyWindowIsSafe) {
  TimeWeightedOccupancy occ;
  EXPECT_DOUBLE_EQ(occ.total_time(), 0.0);
  EXPECT_DOUBLE_EQ(occ.fraction_at(0), 0.0);
  EXPECT_DOUBLE_EQ(occ.mean_level(), 0.0);
}

TEST(TimeWeightedOccupancy, RepeatedSameLevelAccumulates) {
  TimeWeightedOccupancy occ;
  occ.record(0.0, 1);
  occ.record(2.0, 1);
  occ.finish(5.0);
  EXPECT_DOUBLE_EQ(occ.fraction_at(1), 1.0);
}

}  // namespace
}  // namespace tempriv::metrics
