#include "telemetry/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

#include "campaign/telemetry_io.h"
#include "core/delay_buffer.h"
#include "telemetry/metrics.h"

namespace tempriv::telemetry {
namespace {

TEST(HistBucketTest, PowerOfTwoGeometry) {
  EXPECT_EQ(hist_bucket(0), 0u);
  EXPECT_EQ(hist_bucket(1), 1u);
  EXPECT_EQ(hist_bucket(2), 2u);
  EXPECT_EQ(hist_bucket(3), 2u);
  EXPECT_EQ(hist_bucket(4), 3u);
  EXPECT_EQ(hist_bucket(7), 3u);
  EXPECT_EQ(hist_bucket(8), 4u);
  EXPECT_EQ(hist_bucket((1ull << 29)), 30u);
  // Everything at least 2^30 lands in the last bucket.
  EXPECT_EQ(hist_bucket(1ull << 30), kHistBuckets - 1);
  EXPECT_EQ(hist_bucket(~0ull), kHistBuckets - 1);
}

// The DelayBuffer probe maps core::VictimPolicy to its counter by index;
// pin the correspondence so an enum reorder on either side fails here, not
// silently in the snapshot.
TEST(MetricsTest, PreemptCounterMatchesVictimPolicyOrder) {
  using core::VictimPolicy;
  EXPECT_EQ(
      preempt_counter(static_cast<std::uint32_t>(VictimPolicy::kShortestRemaining)),
      Counter::kBufPreemptShortest);
  EXPECT_EQ(
      preempt_counter(static_cast<std::uint32_t>(VictimPolicy::kLongestRemaining)),
      Counter::kBufPreemptLongest);
  EXPECT_EQ(preempt_counter(static_cast<std::uint32_t>(VictimPolicy::kRandom)),
            Counter::kBufPreemptRandom);
  EXPECT_EQ(preempt_counter(static_cast<std::uint32_t>(VictimPolicy::kOldest)),
            Counter::kBufPreemptOldest);
}

TEST(MetricsTest, EveryMetricHasADistinctName) {
  std::set<std::string> names;
  for (std::uint32_t c = 0; c < kCounterCount; ++c) {
    names.insert(name(static_cast<Counter>(c)));
  }
  for (std::uint32_t g = 0; g < kGaugeCount; ++g) {
    names.insert(name(static_cast<Gauge>(g)));
  }
  for (std::uint32_t h = 0; h < kHistCount; ++h) {
    names.insert(name(static_cast<Hist>(h)));
  }
  EXPECT_EQ(names.size(), kCounterCount + kGaugeCount + kHistCount);
  EXPECT_EQ(names.count("unknown"), 0u);
}

Snapshot make(std::uint64_t counter, std::uint64_t gauge,
              std::uint64_t bucket3, std::uint64_t span_nanos) {
  Snapshot s;
  s.enabled = true;
  s.counters["eq.schedule_heap"] = counter;
  s.gauges["eq.peak_depth"] = gauge;
  s.histograms["buf.occupancy"].buckets[3] = bucket3;
  s.spans["job/simulate"] = SpanStat{1, span_nanos};
  return s;
}

TEST(SnapshotTest, MergeSemantics) {
  Snapshot a = make(10, 5, 2, 100);
  const Snapshot b = make(32, 9, 4, 250);
  a.merge(b);
  EXPECT_EQ(a.counters["eq.schedule_heap"], 42u);  // counters sum
  EXPECT_EQ(a.gauges["eq.peak_depth"], 9u);        // gauges take the max
  EXPECT_EQ(a.histograms["buf.occupancy"].buckets[3], 6u);  // buckets sum
  EXPECT_EQ(a.spans["job/simulate"].count, 2u);    // spans sum both fields
  EXPECT_EQ(a.spans["job/simulate"].nanos, 350u);
}

TEST(SnapshotTest, MergeUnionsDisjointKeys) {
  Snapshot a;
  a.counters["only.in.a"] = 1;
  Snapshot b;
  b.enabled = true;
  b.counters["only.in.b"] = 2;
  a.merge(b);
  EXPECT_TRUE(a.enabled);  // enabled ORs
  EXPECT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters["only.in.a"], 1u);
  EXPECT_EQ(a.counters["only.in.b"], 2u);
}

TEST(SnapshotTest, MergeIsAssociative) {
  const Snapshot a = make(1, 100, 7, 11);
  const Snapshot b = make(20, 50, 8, 13);
  Snapshot c = make(300, 75, 9, 17);
  c.counters["extra"] = 4;  // a key the others lack

  Snapshot left = a;  // (a . b) . c
  {
    Snapshot ab = a;
    ab.merge(b);
    left = ab;
    left.merge(c);
  }
  Snapshot right = a;  // a . (b . c)
  {
    Snapshot bc = b;
    bc.merge(c);
    right = a;
    right.merge(bc);
  }
  EXPECT_EQ(left, right);
  // Byte-level associativity is the actual shard contract: any merge order
  // must produce the identical snapshot file.
  EXPECT_EQ(snapshot_to_json(left), snapshot_to_json(right));
}

TEST(SnapshotTest, MergeIsCommutative) {
  const Snapshot a = make(1, 100, 7, 11);
  const Snapshot b = make(20, 50, 8, 13);
  Snapshot ab = a;
  ab.merge(b);
  Snapshot ba = b;
  ba.merge(a);
  EXPECT_EQ(snapshot_to_json(ab), snapshot_to_json(ba));
}

TEST(SnapshotTest, CollectCarriesEveryKnownMetric) {
  const Snapshot snap = collect();
  EXPECT_EQ(snap.enabled, compiled_in());
  for (std::uint32_t c = 0; c < kCounterCount; ++c) {
    EXPECT_EQ(snap.counters.count(name(static_cast<Counter>(c))), 1u)
        << name(static_cast<Counter>(c));
  }
  for (std::uint32_t g = 0; g < kGaugeCount; ++g) {
    EXPECT_EQ(snap.gauges.count(name(static_cast<Gauge>(g))), 1u)
        << name(static_cast<Gauge>(g));
  }
  for (std::uint32_t h = 0; h < kHistCount; ++h) {
    EXPECT_EQ(snap.histograms.count(name(static_cast<Hist>(h))), 1u)
        << name(static_cast<Hist>(h));
  }
}

TEST(SnapshotTest, JsonRoundTripsThroughCampaignParser) {
  Snapshot original = make(123456789012345ull, 42, 9, 987654321);
  original.counters["net.forward.rcad"] = 7;
  original.spans["merge"] = SpanStat{3, 1500};
  const std::string json = snapshot_to_json(original);
  const Snapshot parsed = campaign::parse_telemetry_json(json);
  EXPECT_EQ(parsed, original);
  EXPECT_EQ(snapshot_to_json(parsed), json);
}

TEST(SnapshotTest, ParserRejectsGarbage) {
  EXPECT_THROW(campaign::parse_telemetry_json("{}"), std::runtime_error);
  EXPECT_THROW(campaign::parse_telemetry_json("not json"),
               std::runtime_error);
  EXPECT_THROW(campaign::parse_telemetry_json(
                   "{\"telemetry\": {\"schema\": 2, \"enabled\": false, "
                   "\"counters\": {}, \"gauges\": {}, \"histograms\": {}, "
                   "\"spans\": {}}}"),
               std::runtime_error);
}

TEST(TelemetryIoTest, ShardTelemetryPathMirrorsStatsPath) {
  EXPECT_EQ(campaign::shard_telemetry_path("out/fig2a.shard-0-of-2.jsonl"),
            "out/fig2a.shard-0-of-2.telemetry.json");
  EXPECT_EQ(campaign::shard_telemetry_path("weird.log"),
            "weird.log.telemetry.json");
}

}  // namespace
}  // namespace tempriv::telemetry
