#include "workload/trace_source.h"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "core/factories.h"

namespace tempriv::workload {
namespace {

struct Fixture {
  sim::Simulator sim;
  crypto::PayloadCodec codec{crypto::Speck64_128::Key{
      7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5, 2}};
  net::Network net{sim, net::Topology::line(4), core::immediate_factory(),
                   {}, sim::RandomStream(13)};

  struct Recorder final : net::SinkObserver {
    std::vector<double> creations;
    const crypto::PayloadCodec& codec;
    explicit Recorder(const crypto::PayloadCodec& c) : codec(c) {}
    void on_delivery(const net::Packet& packet, sim::Time) override {
      creations.push_back(codec.open(packet.payload)->creation_time);
    }
  } recorder{codec};

  Fixture() { net.add_sink_observer(&recorder); }
};

TEST(TraceSource, ReplaysExactCreationTimes) {
  Fixture f;
  TraceSource source(f.net, f.codec, 0, sim::RandomStream(1),
                     {0.0, 1.5, 1.5, 7.25, 40.0});
  source.start(10.0);
  f.sim.run();
  ASSERT_EQ(f.recorder.creations.size(), 5u);
  EXPECT_DOUBLE_EQ(f.recorder.creations[0], 10.0);
  EXPECT_DOUBLE_EQ(f.recorder.creations[1], 11.5);
  EXPECT_DOUBLE_EQ(f.recorder.creations[2], 11.5);
  EXPECT_DOUBLE_EQ(f.recorder.creations[3], 17.25);
  EXPECT_DOUBLE_EQ(f.recorder.creations[4], 50.0);
  EXPECT_EQ(source.trace_length(), 5u);
}

TEST(TraceSource, RejectsUnsortedOrNegativeTraces) {
  Fixture f;
  EXPECT_THROW(
      TraceSource(f.net, f.codec, 0, sim::RandomStream(1), {2.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      TraceSource(f.net, f.codec, 0, sim::RandomStream(1), {-1.0, 1.0}),
      std::invalid_argument);
}

TEST(TraceSource, EmptyTraceIsAllowed) {
  Fixture f;
  TraceSource source(f.net, f.codec, 0, sim::RandomStream(1), {});
  source.start(0.0);
  f.sim.run();
  EXPECT_TRUE(f.recorder.creations.empty());
}

TEST(LoadTraceCsv, ParsesHeaderCommentsAndValues) {
  const std::string path = ::testing::TempDir() + "/tempriv_trace.csv";
  {
    std::ofstream out(path);
    out << "time\n# a comment\n0.5\n\n  2.25\n10 # trailing comment\n";
  }
  const auto times = load_trace_csv(path);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 2.25);
  EXPECT_DOUBLE_EQ(times[2], 10.0);
}

TEST(LoadTraceCsv, ErrorsAreSpecific) {
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/tempriv_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "0.5\nnot-a-number\n";
  }
  EXPECT_THROW(load_trace_csv(path), std::invalid_argument);
}

TEST(TraceSource, RoundTripsThroughCsv) {
  const std::string path = ::testing::TempDir() + "/tempriv_trace_rt.csv";
  {
    std::ofstream out(path);
    out << "1.0\n2.0\n4.0\n";
  }
  Fixture f;
  TraceSource source(f.net, f.codec, 0, sim::RandomStream(1),
                     load_trace_csv(path));
  source.start(0.0);
  f.sim.run();
  EXPECT_EQ(f.recorder.creations.size(), 3u);
}

}  // namespace
}  // namespace tempriv::workload
