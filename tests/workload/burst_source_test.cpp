#include "workload/burst_source.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/factories.h"
#include "metrics/stats.h"

namespace tempriv::workload {
namespace {

struct Fixture {
  sim::Simulator sim;
  crypto::PayloadCodec codec{crypto::Speck64_128::Key{
      6, 6, 6, 2, 2, 2, 9, 9, 9, 4, 4, 4, 8, 8, 8, 1}};
  net::Network net{sim, net::Topology::line(3), core::immediate_factory(),
                   {}, sim::RandomStream(77)};

  struct Recorder final : net::SinkObserver {
    std::vector<double> creations;
    const crypto::PayloadCodec& codec;
    explicit Recorder(const crypto::PayloadCodec& c) : codec(c) {}
    void on_delivery(const net::Packet& packet, sim::Time) override {
      creations.push_back(codec.open(packet.payload)->creation_time);
    }
  } recorder{codec};

  Fixture() { net.add_sink_observer(&recorder); }
};

BurstSource::Config default_config() {
  BurstSource::Config config;
  config.burst_rate = 2.0;
  config.mean_on_time = 10.0;
  config.mean_off_time = 40.0;
  config.count = 3000;
  return config;
}

TEST(BurstSource, EmitsExactlyCountPackets) {
  Fixture f;
  BurstSource source(f.net, f.codec, 0, sim::RandomStream(1), default_config());
  source.start(0.0);
  f.sim.run();
  EXPECT_EQ(source.packets_created(), 3000u);
  EXPECT_EQ(f.recorder.creations.size(), 3000u);
  EXPECT_GT(source.bursts_started(), 10u);
}

TEST(BurstSource, LongRunRateMatchesConfig) {
  Fixture f;
  const BurstSource::Config config = default_config();
  BurstSource source(f.net, f.codec, 0, sim::RandomStream(2), config);
  source.start(0.0);
  f.sim.run();
  const double span = f.recorder.creations.back() - f.recorder.creations.front();
  const double measured_rate = static_cast<double>(f.recorder.creations.size() - 1) / span;
  EXPECT_NEAR(measured_rate, config.average_rate(), config.average_rate() * 0.15);
}

TEST(BurstSource, TrafficIsActuallyBursty) {
  // The squared coefficient of variation of inter-creation gaps must be
  // well above 1 (Poisson); the OFF periods create the heavy gap tail.
  Fixture f;
  BurstSource source(f.net, f.codec, 0, sim::RandomStream(3), default_config());
  source.start(0.0);
  f.sim.run();
  metrics::StreamingStats gaps;
  for (std::size_t i = 1; i < f.recorder.creations.size(); ++i) {
    gaps.add(f.recorder.creations[i] - f.recorder.creations[i - 1]);
  }
  const double scv = gaps.variance() / (gaps.mean() * gaps.mean());
  EXPECT_GT(scv, 3.0);
}

TEST(BurstSource, WithinBurstGapsAreShort) {
  Fixture f;
  BurstSource source(f.net, f.codec, 0, sim::RandomStream(4), default_config());
  source.start(0.0);
  f.sim.run();
  // At burst_rate = 2 most in-burst gaps are < 2 time units; the median
  // gap must be in-burst-sized even though the mean is inflated by OFF
  // periods.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < f.recorder.creations.size(); ++i) {
    gaps.push_back(f.recorder.creations[i] - f.recorder.creations[i - 1]);
  }
  EXPECT_LT(metrics::percentile(gaps, 0.5), 2.0);
  EXPECT_GT(metrics::percentile(gaps, 0.99), 5.0);
}

TEST(BurstSource, AverageRateHelper) {
  BurstSource::Config config;
  config.burst_rate = 2.0;
  config.mean_on_time = 10.0;
  config.mean_off_time = 30.0;
  EXPECT_DOUBLE_EQ(config.average_rate(), 0.5);
}

TEST(BurstSource, ValidatesConfig) {
  Fixture f;
  BurstSource::Config bad = default_config();
  bad.burst_rate = 0.0;
  EXPECT_THROW(BurstSource(f.net, f.codec, 0, sim::RandomStream(5), bad),
               std::invalid_argument);
}

TEST(BurstSource, ZeroCountEmitsNothing) {
  Fixture f;
  BurstSource::Config config = default_config();
  config.count = 0;
  BurstSource source(f.net, f.codec, 0, sim::RandomStream(6), config);
  source.start(0.0);
  f.sim.run();
  EXPECT_TRUE(f.recorder.creations.empty());
}

}  // namespace
}  // namespace tempriv::workload
