#include "workload/mobile_asset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/factories.h"

namespace tempriv::workload {
namespace {

struct Fixture {
  sim::Simulator sim;
  crypto::PayloadCodec codec{crypto::Speck64_128::Key{
      3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}};
  // 5x5 grid with spacing 2.5 covers a 10x10 field; sink at (0,0).
  net::Network net{sim, net::Topology::grid(5, 5, 2.5),
                   core::immediate_factory(), {}, sim::RandomStream(21)};

  struct Recorder final : net::SinkObserver {
    std::size_t count = 0;
    void on_delivery(const net::Packet&, sim::Time) override { ++count; }
  } recorder;

  Fixture() { net.add_sink_observer(&recorder); }
};

MobileAssetWorkload::Config default_config() {
  MobileAssetWorkload::Config config;
  config.field_side = 10.0;
  config.speed = 0.5;
  config.sense_interval = 5.0;
  config.duration = 300.0;
  return config;
}

TEST(MobileAssetWorkload, GeneratesOneObservationPerEpoch) {
  Fixture f;
  MobileAssetWorkload workload(f.net, f.codec, default_config(),
                               sim::RandomStream(1));
  workload.start();
  f.sim.run();
  // duration / sense_interval epochs, first at t = interval.
  EXPECT_EQ(workload.track().size(), 60u);
  EXPECT_EQ(f.recorder.count, 60u);
}

TEST(MobileAssetWorkload, TrackStaysInsideField) {
  Fixture f;
  MobileAssetWorkload workload(f.net, f.codec, default_config(),
                               sim::RandomStream(2));
  workload.start();
  f.sim.run();
  for (const auto& point : workload.track()) {
    EXPECT_GE(point.x, 0.0);
    EXPECT_LE(point.x, 10.0);
    EXPECT_GE(point.y, 0.0);
    EXPECT_LE(point.y, 10.0);
  }
}

TEST(MobileAssetWorkload, MovementRespectsSpeedLimit) {
  Fixture f;
  MobileAssetWorkload::Config config = default_config();
  config.speed = 0.3;
  MobileAssetWorkload workload(f.net, f.codec, config, sim::RandomStream(3));
  workload.start();
  f.sim.run();
  const auto& track = workload.track();
  for (std::size_t i = 1; i < track.size(); ++i) {
    const double dist = std::hypot(track[i].x - track[i - 1].x,
                                   track[i].y - track[i - 1].y);
    const double dt = track[i].time - track[i - 1].time;
    EXPECT_LE(dist, config.speed * dt + 1e-9);
  }
}

TEST(MobileAssetWorkload, ReportsNearestSensor) {
  Fixture f;
  MobileAssetWorkload workload(f.net, f.codec, default_config(),
                               sim::RandomStream(4));
  workload.start();
  f.sim.run();
  const net::Topology& topo = f.net.topology();
  for (const auto& point : workload.track()) {
    ASSERT_NE(point.sensor, net::kInvalidNode);
    ASSERT_NE(point.sensor, topo.sink());
    const double claimed = std::hypot(topo.position(point.sensor).x - point.x,
                                      topo.position(point.sensor).y - point.y);
    for (net::NodeId other = 0; other < topo.node_count(); ++other) {
      if (other == topo.sink()) continue;
      const double d = std::hypot(topo.position(other).x - point.x,
                                  topo.position(other).y - point.y);
      EXPECT_GE(d + 1e-9, claimed);
    }
  }
}

TEST(MobileAssetWorkload, AssetActuallyMoves) {
  Fixture f;
  MobileAssetWorkload workload(f.net, f.codec, default_config(),
                               sim::RandomStream(5));
  workload.start();
  f.sim.run();
  const auto& track = workload.track();
  ASSERT_GE(track.size(), 2u);
  double total_distance = 0.0;
  for (std::size_t i = 1; i < track.size(); ++i) {
    total_distance += std::hypot(track[i].x - track[i - 1].x,
                                 track[i].y - track[i - 1].y);
  }
  EXPECT_GT(total_distance, 10.0);
}

TEST(MobileAssetWorkload, DifferentSeedsDifferentTracks) {
  Fixture f;
  MobileAssetWorkload a(f.net, f.codec, default_config(), sim::RandomStream(6));
  MobileAssetWorkload b(f.net, f.codec, default_config(), sim::RandomStream(7));
  a.start();
  b.start();
  f.sim.run();
  ASSERT_EQ(a.track().size(), b.track().size());
  bool diverged = false;
  for (std::size_t i = 0; i < a.track().size(); ++i) {
    if (a.track()[i].x != b.track()[i].x) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(MobileAssetWorkload, ValidatesConfig) {
  Fixture f;
  MobileAssetWorkload::Config bad = default_config();
  bad.speed = 0.0;
  EXPECT_THROW(MobileAssetWorkload(f.net, f.codec, bad, sim::RandomStream(8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::workload
