#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempriv::workload {
namespace {

// Small packet counts keep these integration tests fast; the bench
// harness runs the paper's full 1000-packet configuration.
PaperScenario fast_scenario(Scheme scheme, double interarrival) {
  PaperScenario scenario;
  scenario.scheme = scheme;
  scenario.interarrival = interarrival;
  scenario.packets_per_source = 150;
  return scenario;
}

TEST(PaperScenario, NoDelayDeliversEverythingAtHopLatency) {
  const auto result = run_paper_scenario(fast_scenario(Scheme::kNoDelay, 5.0));
  EXPECT_EQ(result.originated, 4u * 150u);
  EXPECT_EQ(result.delivered, result.originated);
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_EQ(result.drops, 0u);
  ASSERT_EQ(result.flows.size(), 4u);
  // Latency is exactly hops * tau and MSE is (numerically) zero.
  EXPECT_DOUBLE_EQ(result.flows[0].mean_latency, 15.0);
  EXPECT_DOUBLE_EQ(result.flows[1].mean_latency, 22.0);
  EXPECT_DOUBLE_EQ(result.flows[2].mean_latency, 9.0);
  EXPECT_DOUBLE_EQ(result.flows[3].mean_latency, 11.0);
  for (const auto& flow : result.flows) {
    EXPECT_NEAR(flow.mse_baseline, 0.0, 1e-15);
    EXPECT_EQ(flow.delivered, 150u);
  }
}

TEST(PaperScenario, UnlimitedDelayLatencyMatchesTheory) {
  const auto result =
      run_paper_scenario(fast_scenario(Scheme::kUnlimitedDelay, 5.0));
  EXPECT_EQ(result.delivered, result.originated);
  EXPECT_EQ(result.preemptions, 0u);
  // E[latency] = h(tau + 1/mu) = 15 * 31 = 465 for S1; allow sampling slack.
  EXPECT_NEAR(result.flows[0].mean_latency, 465.0, 465.0 * 0.10);
  // MSE ~ h / mu^2 = 15 * 900 = 13500 (variance of the summed delays).
  EXPECT_NEAR(result.flows[0].mse_baseline, 13500.0, 13500.0 * 0.35);
}

TEST(PaperScenario, RcadDeliversEverythingDespiteFullBuffers) {
  const auto result = run_paper_scenario(fast_scenario(Scheme::kRcad, 2.0));
  EXPECT_EQ(result.delivered, result.originated);
  EXPECT_EQ(result.drops, 0u);
  EXPECT_GT(result.preemptions, 0u);
}

TEST(PaperScenario, DropTailLosesPacketsAtOverload) {
  const auto result = run_paper_scenario(fast_scenario(Scheme::kDropTail, 2.0));
  EXPECT_GT(result.drops, 0u);
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_LT(result.delivered, result.originated);
}

TEST(PaperScenario, Figure2aOrdering_RcadBeatsBothBaselinesAtHighRate) {
  // The qualitative content of Fig. 2(a) at 1/lambda = 2: case 3 (RCAD)
  // MSE dwarfs cases 1 and 2.
  const auto no_delay = run_paper_scenario(fast_scenario(Scheme::kNoDelay, 2.0));
  const auto unlimited =
      run_paper_scenario(fast_scenario(Scheme::kUnlimitedDelay, 2.0));
  const auto rcad = run_paper_scenario(fast_scenario(Scheme::kRcad, 2.0));
  EXPECT_LT(no_delay.flows[0].mse_baseline, 1e-9);
  EXPECT_GT(rcad.flows[0].mse_baseline, 2.0 * unlimited.flows[0].mse_baseline);
}

TEST(PaperScenario, Figure2bOrdering_LatencyNoDelayBelowRcadBelowUnlimited) {
  const auto no_delay = run_paper_scenario(fast_scenario(Scheme::kNoDelay, 2.0));
  const auto unlimited =
      run_paper_scenario(fast_scenario(Scheme::kUnlimitedDelay, 2.0));
  const auto rcad = run_paper_scenario(fast_scenario(Scheme::kRcad, 2.0));
  EXPECT_LT(no_delay.flows[0].mean_latency, rcad.flows[0].mean_latency);
  EXPECT_LT(rcad.flows[0].mean_latency, unlimited.flows[0].mean_latency);
}

TEST(PaperScenario, Figure3_AdaptiveAdversaryReducesButDoesNotEliminateError) {
  // Needs enough packets for the adversary's windowed rate estimate to
  // converge past the startup transient (the bench uses the paper's 1000).
  auto scenario = fast_scenario(Scheme::kRcad, 2.0);
  scenario.packets_per_source = 600;
  const auto rcad = run_paper_scenario(scenario);
  EXPECT_LT(rcad.flows[0].mse_adaptive, 0.7 * rcad.flows[0].mse_baseline);
  EXPECT_GT(rcad.flows[0].mse_adaptive, 0.0);
}

TEST(PaperScenario, PreemptionsVanishAtLowTraffic) {
  // At 1/lambda = 20 per flow the buffers barely fill (rho ~ 1.5 per branch
  // node) and RCAD behaves like unlimited delaying.
  const auto slow = run_paper_scenario(fast_scenario(Scheme::kRcad, 20.0));
  const auto fast = run_paper_scenario(fast_scenario(Scheme::kRcad, 2.0));
  EXPECT_LT(slow.preemptions, fast.preemptions / 5);
}

TEST(PaperScenario, DeterministicForFixedSeed) {
  const auto a = run_paper_scenario(fast_scenario(Scheme::kRcad, 3.0));
  const auto b = run_paper_scenario(fast_scenario(Scheme::kRcad, 3.0));
  EXPECT_DOUBLE_EQ(a.flows[0].mse_baseline, b.flows[0].mse_baseline);
  EXPECT_DOUBLE_EQ(a.flows[0].mean_latency, b.flows[0].mean_latency);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST(PaperScenario, SeedChangesResultButNotShape) {
  auto s1 = fast_scenario(Scheme::kRcad, 3.0);
  auto s2 = fast_scenario(Scheme::kRcad, 3.0);
  s2.seed = 999;
  const auto a = run_paper_scenario(s1);
  const auto b = run_paper_scenario(s2);
  EXPECT_NE(a.flows[0].mse_baseline, b.flows[0].mse_baseline);
  // Same order of magnitude though.
  EXPECT_GT(b.flows[0].mse_baseline, a.flows[0].mse_baseline / 10.0);
  EXPECT_LT(b.flows[0].mse_baseline, a.flows[0].mse_baseline * 10.0);
}

TEST(PaperScenario, SinkWeightedDecompositionRuns) {
  auto scenario = fast_scenario(Scheme::kRcad, 5.0);
  scenario.sink_weighting = 1.0;
  const auto result = run_paper_scenario(scenario);
  EXPECT_EQ(result.delivered, result.originated);
  EXPECT_GT(result.flows[0].mean_latency, 15.0);
}

TEST(PaperScenario, SinkWeightingRejectsDropTail) {
  auto scenario = fast_scenario(Scheme::kDropTail, 5.0);
  scenario.sink_weighting = 0.5;
  EXPECT_THROW(run_paper_scenario(scenario), std::invalid_argument);
}

TEST(PaperScenario, ValidatesConfig) {
  auto bad_rate = fast_scenario(Scheme::kRcad, 0.0);
  EXPECT_THROW(run_paper_scenario(bad_rate), std::invalid_argument);
  auto no_flows = fast_scenario(Scheme::kRcad, 2.0);
  no_flows.hop_counts.clear();
  EXPECT_THROW(run_paper_scenario(no_flows), std::invalid_argument);
}

TEST(PaperScenario, PoissonSourcesMatchAnalyticLatency) {
  auto scenario = fast_scenario(Scheme::kUnlimitedDelay, 5.0);
  scenario.source = SourceKind::kPoisson;
  scenario.packets_per_source = 400;
  const auto result = run_paper_scenario(scenario);
  EXPECT_EQ(result.delivered, result.originated);
  EXPECT_NEAR(result.flows[0].mean_latency, 465.0, 465.0 * 0.10);
}

TEST(PaperScenario, BurstySourcesPreemptMoreAtEqualAverageRate) {
  auto periodic = fast_scenario(Scheme::kRcad, 5.0);
  periodic.packets_per_source = 400;
  auto bursty = periodic;
  bursty.source = SourceKind::kBursty;
  const auto result_p = run_paper_scenario(periodic);
  const auto result_b = run_paper_scenario(bursty);
  EXPECT_EQ(result_b.delivered, result_b.originated);
  EXPECT_GT(result_b.preemptions, result_p.preemptions);
}

TEST(PaperScenario, HopJitterGivesCaseOneASmallNonzeroMse) {
  auto scenario = fast_scenario(Scheme::kNoDelay, 5.0);
  scenario.hop_jitter = 0.5;  // adversary knows tau + jitter/2
  const auto result = run_paper_scenario(scenario);
  // h * jitter^2 / 12 = 15 * 0.25/12 ≈ 0.31 for S1.
  EXPECT_GT(result.flows[0].mse_baseline, 0.1);
  EXPECT_LT(result.flows[0].mse_baseline, 1.0);
}

TEST(SourceKindNames, AreHumanReadable) {
  EXPECT_STREQ(to_string(SourceKind::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(SourceKind::kPoisson), "poisson");
  EXPECT_STREQ(to_string(SourceKind::kBursty), "bursty");
}

TEST(SchemeNames, AreHumanReadable) {
  EXPECT_STREQ(to_string(Scheme::kNoDelay), "no-delay");
  EXPECT_STREQ(to_string(Scheme::kUnlimitedDelay), "delay+unlimited-buffers");
  EXPECT_STREQ(to_string(Scheme::kDropTail), "delay+drop-tail");
  EXPECT_STREQ(to_string(Scheme::kRcad), "delay+limited-buffers(RCAD)");
}

}  // namespace
}  // namespace tempriv::workload
