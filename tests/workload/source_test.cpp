#include "workload/source.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/factories.h"
#include "metrics/stats.h"

namespace tempriv::workload {
namespace {

struct Fixture {
  sim::Simulator sim;
  crypto::PayloadCodec codec{crypto::Speck64_128::Key{
      1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 121, 98, 76}};
  net::Network net{sim, net::Topology::line(4), core::immediate_factory(),
                   {}, sim::RandomStream(11)};

  struct Recorder final : net::SinkObserver {
    std::vector<std::pair<double, net::Packet>> deliveries;
    void on_delivery(const net::Packet& packet, sim::Time arrival) override {
      deliveries.emplace_back(arrival, packet);
    }
  } recorder;

  Fixture() { net.add_sink_observer(&recorder); }
};

TEST(PeriodicSource, EmitsExactlyCountPacketsAtExactIntervals) {
  Fixture f;
  PeriodicSource source(f.net, f.codec, 0, sim::RandomStream(1), 5.0, 10);
  source.start(2.0);
  f.sim.run();
  EXPECT_EQ(source.packets_created(), 10u);
  ASSERT_EQ(f.recorder.deliveries.size(), 10u);
  // Creation i at 2 + 5i; delivery 3 hops later (tau = 1).
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(f.recorder.deliveries[i].first, 2.0 + 5.0 * i + 3.0);
  }
}

TEST(PeriodicSource, PayloadCarriesEncryptedCreationTimeAndSeq) {
  Fixture f;
  PeriodicSource source(f.net, f.codec, 0, sim::RandomStream(2), 4.0, 3);
  source.start(0.0);
  f.sim.run();
  ASSERT_EQ(f.recorder.deliveries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto opened = f.codec.open(f.recorder.deliveries[i].second.payload);
    ASSERT_TRUE(opened.has_value());
    EXPECT_DOUBLE_EQ(opened->creation_time, 4.0 * i);
    EXPECT_EQ(opened->app_seq, i);
  }
}

TEST(PeriodicSource, ZeroCountEmitsNothing) {
  Fixture f;
  PeriodicSource source(f.net, f.codec, 0, sim::RandomStream(3), 1.0, 0);
  source.start(0.0);
  f.sim.run();
  EXPECT_TRUE(f.recorder.deliveries.empty());
}

TEST(PeriodicSource, ValidatesInterval) {
  Fixture f;
  EXPECT_THROW(PeriodicSource(f.net, f.codec, 0, sim::RandomStream(4), 0.0, 1),
               std::invalid_argument);
}

TEST(PoissonSource, EmitsCountPacketsWithExponentialGaps) {
  Fixture f;
  PoissonSource source(f.net, f.codec, 0, sim::RandomStream(5), 0.5, 2000);
  source.start(0.0);
  f.sim.run();
  EXPECT_EQ(source.packets_created(), 2000u);
  ASSERT_EQ(f.recorder.deliveries.size(), 2000u);
  // Inter-creation gaps must average 1/rate = 2 with variance 4.
  metrics::StreamingStats gaps;
  double prev = 0.0;
  for (const auto& [arrival, packet] : f.recorder.deliveries) {
    const auto opened = f.codec.open(packet.payload);
    ASSERT_TRUE(opened.has_value());
    if (opened->app_seq > 0) gaps.add(opened->creation_time - prev);
    prev = opened->creation_time;
  }
  EXPECT_NEAR(gaps.mean(), 2.0, 0.15);
  EXPECT_NEAR(gaps.variance(), 4.0, 0.6);
}

TEST(PoissonSource, ValidatesRate) {
  Fixture f;
  EXPECT_THROW(PoissonSource(f.net, f.codec, 0, sim::RandomStream(6), 0.0, 1),
               std::invalid_argument);
}

TEST(Source, DistinctSeedsGiveDistinctReadings) {
  Fixture f;
  PeriodicSource a(f.net, f.codec, 0, sim::RandomStream(7), 1.0, 1);
  PeriodicSource b(f.net, f.codec, 1, sim::RandomStream(8), 1.0, 1);
  a.start(0.0);
  b.start(0.0);
  f.sim.run();
  ASSERT_EQ(f.recorder.deliveries.size(), 2u);
  const auto ra = f.codec.open(f.recorder.deliveries[0].second.payload);
  const auto rb = f.codec.open(f.recorder.deliveries[1].second.payload);
  EXPECT_NE(ra->reading, rb->reading);
}

}  // namespace
}  // namespace tempriv::workload
