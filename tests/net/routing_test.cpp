#include "net/routing.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempriv::net {
namespace {

TEST(RoutingTable, RequiresSink) {
  Topology topo;
  topo.add_node();
  EXPECT_THROW(RoutingTable{topo}, std::invalid_argument);
}

TEST(RoutingTable, LineRoutesTowardSink) {
  const Topology topo = Topology::line(6);  // sink = 5
  const RoutingTable routing(topo);
  for (NodeId id = 0; id < 5; ++id) {
    EXPECT_EQ(routing.next_hop(id), id + 1);
    EXPECT_EQ(routing.hops_to_sink(id), 5 - id);
  }
  EXPECT_EQ(routing.next_hop(5), kInvalidNode);
  EXPECT_EQ(routing.hops_to_sink(5), 0);
  EXPECT_TRUE(routing.fully_connected());
}

TEST(RoutingTable, GridUsesManhattanDistances) {
  const Topology topo = Topology::grid(4, 4);  // sink at (0,0)
  const RoutingTable routing(topo);
  // Node (3,3) has id 15 and Manhattan distance 6.
  EXPECT_EQ(routing.hops_to_sink(15), 6);
  EXPECT_EQ(routing.hops_to_sink(1), 1);
  EXPECT_EQ(routing.hops_to_sink(4), 1);
}

TEST(RoutingTable, PathToSinkIsConsistent) {
  const Topology topo = Topology::grid(5, 5);
  const RoutingTable routing(topo);
  const auto path = routing.path_to_sink(24);
  EXPECT_EQ(path.front(), 24u);
  EXPECT_EQ(path.back(), topo.sink());
  EXPECT_EQ(path.size(), routing.hops_to_sink(24) + 1u);
  // Every consecutive pair must be an edge, and hop counts must decrease.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(topo.has_edge(path[i], path[i + 1]));
    EXPECT_EQ(routing.hops_to_sink(path[i]), routing.hops_to_sink(path[i + 1]) + 1);
  }
}

TEST(RoutingTable, DisconnectedNodesAreUnreachable) {
  Topology topo = Topology::line(3);
  const NodeId island = topo.add_node();
  const RoutingTable routing(topo);
  EXPECT_FALSE(routing.reachable(island));
  EXPECT_FALSE(routing.fully_connected());
  EXPECT_THROW(routing.hops_to_sink(island), std::out_of_range);
  EXPECT_THROW(routing.path_to_sink(island), std::out_of_range);
  EXPECT_TRUE(routing.reachable(0));
}

TEST(RoutingTable, DeterministicParentSelection) {
  // Diamond: 0 and 1 both one hop from sink 3; node 2 connects to both.
  // BFS with sorted neighbor order must always pick the smaller parent.
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_node();
  topo.set_sink(3);
  topo.add_edge(3, 0);
  topo.add_edge(3, 1);
  topo.add_edge(0, 2);
  topo.add_edge(1, 2);
  const RoutingTable a(topo);
  const RoutingTable b(topo);
  EXPECT_EQ(a.next_hop(2), 0u);
  EXPECT_EQ(a.next_hop(2), b.next_hop(2));
  EXPECT_EQ(a.hops_to_sink(2), 2);
}

TEST(RoutingTable, ValidatesIds) {
  const Topology topo = Topology::line(2);
  const RoutingTable routing(topo);
  EXPECT_THROW(routing.next_hop(9), std::out_of_range);
  EXPECT_THROW(routing.hops_to_sink(9), std::out_of_range);
  EXPECT_THROW(routing.reachable(9), std::out_of_range);
}

}  // namespace
}  // namespace tempriv::net
