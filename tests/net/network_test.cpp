#include "net/network.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/factories.h"
#include "crypto/payload.h"

namespace tempriv::net {
namespace {

crypto::PayloadCodec& test_codec() {
  static crypto::PayloadCodec codec(crypto::Speck64_128::Key{
      1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  return codec;
}

crypto::SealedPayload sealed_at(double creation, NodeId origin,
                                std::uint32_t seq = 0) {
  return test_codec().seal({1.0, seq, creation}, origin);
}

struct RecordingObserver final : SinkObserver {
  struct Delivery {
    Packet packet;
    sim::Time arrival;
  };
  std::vector<Delivery> deliveries;
  void on_delivery(const Packet& packet, sim::Time arrival) override {
    deliveries.push_back({packet, arrival});
  }
};

TEST(Network, ImmediateForwardingDeliversAtHopCountTimesTau) {
  sim::Simulator sim;
  const Topology topo = Topology::line(6);  // node 0 is 5 hops from the sink
  Network net(sim, topo, core::immediate_factory(), {.hop_tx_delay = 1.0},
              sim::RandomStream(1));
  RecordingObserver observer;
  net.add_sink_observer(&observer);
  net.originate(0, sealed_at(0.0, 0));
  sim.run();
  ASSERT_EQ(observer.deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(observer.deliveries[0].arrival, 5.0);
  EXPECT_EQ(observer.deliveries[0].packet.header.hop_count, 5);
  EXPECT_EQ(observer.deliveries[0].packet.header.origin, 0u);
  EXPECT_EQ(observer.deliveries[0].packet.header.prev_hop, 4u);
}

TEST(Network, CustomTauScalesLatency) {
  sim::Simulator sim;
  const Topology topo = Topology::line(4);
  Network net(sim, topo, core::immediate_factory(), {.hop_tx_delay = 2.5},
              sim::RandomStream(1));
  RecordingObserver observer;
  net.add_sink_observer(&observer);
  net.originate(0, sealed_at(0.0, 0));
  sim.run();
  ASSERT_EQ(observer.deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(observer.deliveries[0].arrival, 3 * 2.5);
}

TEST(Network, RejectsNonPositiveTau) {
  sim::Simulator sim;
  EXPECT_THROW(Network(sim, Topology::line(2), core::immediate_factory(),
                       {.hop_tx_delay = 0.0}, sim::RandomStream(1)),
               std::invalid_argument);
}

TEST(Network, RejectsBadOrigins) {
  sim::Simulator sim;
  Topology topo = Topology::line(3);
  const NodeId island = topo.add_node();
  Network net(sim, topo, core::immediate_factory(), {}, sim::RandomStream(1));
  EXPECT_THROW(net.originate(topo.sink(), sealed_at(0.0, 2)),
               std::invalid_argument);
  EXPECT_THROW(net.originate(island, sealed_at(0.0, island)),
               std::invalid_argument);
  EXPECT_THROW(net.originate(99, sealed_at(0.0, 99)), std::invalid_argument);
}

TEST(Network, PayloadArrivesIntactAndDecryptable) {
  sim::Simulator sim;
  Network net(sim, Topology::line(3), core::immediate_factory(), {},
              sim::RandomStream(1));
  RecordingObserver observer;
  net.add_sink_observer(&observer);
  net.originate(0, sealed_at(123.25, 0, 77));
  sim.run();
  ASSERT_EQ(observer.deliveries.size(), 1u);
  const auto opened = test_codec().open(observer.deliveries[0].packet.payload);
  ASSERT_TRUE(opened.has_value());
  EXPECT_DOUBLE_EQ(opened->creation_time, 123.25);
  EXPECT_EQ(opened->app_seq, 77u);
}

TEST(Network, MultipleObserversAllSeeEveryDelivery) {
  sim::Simulator sim;
  Network net(sim, Topology::line(3), core::immediate_factory(), {},
              sim::RandomStream(1));
  RecordingObserver a;
  RecordingObserver b;
  net.add_sink_observer(&a);
  net.add_sink_observer(&b);
  net.originate(0, sealed_at(0.0, 0));
  net.originate(1, sealed_at(0.0, 1, 1));
  sim.run();
  EXPECT_EQ(a.deliveries.size(), 2u);
  EXPECT_EQ(b.deliveries.size(), 2u);
  EXPECT_THROW(net.add_sink_observer(nullptr), std::invalid_argument);
}

TEST(Network, UidsAreUniqueAndCountersTrack) {
  sim::Simulator sim;
  Network net(sim, Topology::line(4), core::immediate_factory(), {},
              sim::RandomStream(1));
  RecordingObserver observer;
  net.add_sink_observer(&observer);
  const std::uint64_t a = net.originate(0, sealed_at(0.0, 0, 0));
  const std::uint64_t b = net.originate(0, sealed_at(0.0, 0, 1));
  EXPECT_NE(a, b);
  sim.run();
  EXPECT_EQ(net.packets_originated(), 2u);
  EXPECT_EQ(net.packets_delivered(), 2u);
  EXPECT_NE(observer.deliveries[0].packet.uid, observer.deliveries[1].packet.uid);
}

TEST(Network, FailedOriginateDoesNotCountAsOriginated) {
  // Regression: packets_originated used to report the uid counter, which
  // only moved on success — but a rejected originate must leave the tally
  // alone and must not burn a uid either.
  sim::Simulator sim;
  Topology topo = Topology::line(3);
  const NodeId island = topo.add_node();
  Network net(sim, topo, core::immediate_factory(), {}, sim::RandomStream(1));
  EXPECT_THROW(net.originate(topo.sink(), sealed_at(0.0, 2)),
               std::invalid_argument);
  EXPECT_THROW(net.originate(island, sealed_at(0.0, island)),
               std::invalid_argument);
  EXPECT_EQ(net.packets_originated(), 0u);
  const std::uint64_t uid = net.originate(0, sealed_at(0.0, 0));
  EXPECT_EQ(uid, 0u);  // rejected attempts consumed no uids
  EXPECT_EQ(net.packets_originated(), 1u);
  sim.run();
  EXPECT_EQ(net.packets_delivered(), 1u);
}

TEST(Network, InFlightCountTracksLinkTraversals) {
  sim::Simulator sim;
  Network net(sim, Topology::line(4), core::immediate_factory(), {},
              sim::RandomStream(1));
  net.reserve(8);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  net.originate(0, sealed_at(0.0, 0));
  EXPECT_EQ(net.packets_in_flight(), 1u);  // parked for the first hop
  sim.run();
  EXPECT_EQ(net.packets_in_flight(), 0u);  // pool drains by run end
}

TEST(Network, HopCountCountsActualPathNotTopologySize) {
  sim::Simulator sim;
  const auto built = Topology::converging_paths({7, 4}, 2);
  Network net(sim, built.topology, core::immediate_factory(), {},
              sim::RandomStream(1));
  RecordingObserver observer;
  net.add_sink_observer(&observer);
  net.originate(built.sources[0], sealed_at(0.0, built.sources[0]));
  net.originate(built.sources[1], sealed_at(0.0, built.sources[1]));
  sim.run();
  ASSERT_EQ(observer.deliveries.size(), 2u);
  // Shorter path arrives first with tau = 1.
  EXPECT_EQ(observer.deliveries[0].packet.header.hop_count, 4);
  EXPECT_EQ(observer.deliveries[1].packet.header.hop_count, 7);
}

TEST(Network, OccupancyProbeFiresOnArrivalsAndTransmissions) {
  sim::Simulator sim;
  Network net(sim, Topology::line(3), core::immediate_factory(), {},
              sim::RandomStream(1));
  int probes = 0;
  std::size_t max_seen = 0;
  net.set_occupancy_probe([&](NodeId, sim::Time, std::size_t occ) {
    ++probes;
    max_seen = std::max(max_seen, occ);
  });
  net.originate(0, sealed_at(0.0, 0));
  sim.run();
  EXPECT_GT(probes, 0);
  EXPECT_EQ(max_seen, 0u);  // immediate forwarding never buffers
}

TEST(Network, PerNodeStatAccessorsExposeStats) {
  sim::Simulator sim;
  Network net(sim, Topology::line(3), core::immediate_factory(), {},
              sim::RandomStream(1));
  EXPECT_EQ(net.node_buffered(0), 0u);
  EXPECT_EQ(net.node_preemptions(0), 0u);
  EXPECT_EQ(net.node_drops(0), 0u);
  EXPECT_THROW(net.node_buffered(net.topology().sink()), std::out_of_range);
  EXPECT_THROW(net.node_preemptions(net.topology().sink()), std::out_of_range);
  EXPECT_THROW(net.node_drops(net.topology().sink()), std::out_of_range);
  EXPECT_THROW(net.node_buffered(42), std::out_of_range);
  EXPECT_EQ(net.total_buffered(), 0u);
  EXPECT_EQ(net.total_preemptions(), 0u);
  EXPECT_EQ(net.total_drops(), 0u);
}

TEST(Network, SpecConstructorMatchesFactoryNetwork) {
  // The DisciplineSpec fast path must behave exactly like the equivalent
  // factory: same deliveries at the same instants for the same root RNG.
  const auto run = [](bool use_spec) {
    sim::Simulator sim;
    const auto built = Topology::converging_paths({6, 5}, 2);
    std::optional<Network> net;
    if (use_spec) {
      net.emplace(sim, built.topology,
                  core::DisciplineSpec::rcad_exponential(4.0, 2), NetworkConfig{},
                  sim::RandomStream(9));
    } else {
      net.emplace(sim, built.topology, core::rcad_exponential_factory(4.0, 2),
                  NetworkConfig{}, sim::RandomStream(9));
    }
    RecordingObserver observer;
    net->add_sink_observer(&observer);
    for (std::uint32_t i = 0; i < 4; ++i) {
      net->originate(built.sources[i % 2], sealed_at(0.0, built.sources[i % 2], i));
    }
    sim.run();
    std::vector<std::pair<std::uint64_t, double>> out;
    for (const auto& d : observer.deliveries) out.emplace_back(d.packet.uid, d.arrival);
    return out;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Network, MultiSinkDeliversToNearestSink) {
  // Line 0-1-2-3-4 with sinks at both ends: each node routes to its nearest
  // sink (node 1 → sink 0 at 1 hop, node 3 → sink 4 at 1 hop).
  sim::Simulator sim;
  Topology topo = Topology::line(5);  // sink at 4
  topo.add_sink(0);
  const RoutingTable routing(topo);
  EXPECT_EQ(routing.sink_of(1), 0u);
  EXPECT_EQ(routing.sink_of(3), 4u);
  Network net(sim, topo, core::immediate_factory(), {}, sim::RandomStream(1));
  RecordingObserver observer;
  net.add_sink_observer(&observer);
  net.originate(1, sealed_at(0.0, 1));
  net.originate(3, sealed_at(0.0, 3, 1));
  sim.run();
  ASSERT_EQ(observer.deliveries.size(), 2u);
  // Both are one hop from their nearest sink.
  EXPECT_DOUBLE_EQ(observer.deliveries[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(observer.deliveries[1].arrival, 1.0);
  // Originating at a secondary sink is rejected like the primary.
  EXPECT_THROW(net.originate(0, sealed_at(0.0, 0)), std::invalid_argument);
}

TEST(Network, PacketsFromDifferentFlowsInterleaveCorrectly) {
  sim::Simulator sim;
  const auto built = Topology::converging_paths({5, 5}, 1);
  Network net(sim, built.topology, core::immediate_factory(), {},
              sim::RandomStream(1));
  RecordingObserver observer;
  net.add_sink_observer(&observer);
  for (std::uint32_t i = 0; i < 3; ++i) {
    sim.schedule_at(i * 2.0, [&net, &built, i] {
      net.originate(built.sources[0], sealed_at(i * 2.0, built.sources[0], i));
      net.originate(built.sources[1], sealed_at(i * 2.0, built.sources[1], i));
    });
  }
  sim.run();
  EXPECT_EQ(observer.deliveries.size(), 6u);
  for (const auto& d : observer.deliveries) {
    EXPECT_EQ(d.packet.header.hop_count, 5);
    const auto opened = test_codec().open(d.packet.payload);
    ASSERT_TRUE(opened.has_value());
    EXPECT_DOUBLE_EQ(d.arrival - opened->creation_time, 5.0);
  }
}

}  // namespace
}  // namespace tempriv::net
