// CSR adjacency and spatial-hash construction regression suite: the packed
// sorted-row representation must agree with a straightforward builder-side
// reference on every topology factory, the grid-hash random_geometric must
// reproduce the O(n²) pairwise scan bit-for-bit (same RNG draw order, same
// placements, same edge set), and multi-sink routing must hand every node
// to its nearest sink with actionable coverage diagnostics.

#include "net/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "net/routing.h"

namespace tempriv::net {
namespace {

/// The pre-CSR reference: the O(n²) pairwise-distance builder
/// random_geometric replaced. Placement loop and distance predicate are the
/// expressions the production builder must match bit-for-bit.
Topology brute_force_geometric(std::size_t n, double side, double radius,
                               sim::RandomStream& rng) {
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_node({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  const double r2 = radius * radius;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const Position& pa = topo.position(a);
      const Position& pb = topo.position(b);
      const double dx = pa.x - pb.x;
      const double dy = pa.y - pb.y;
      if (dx * dx + dy * dy <= r2) topo.add_edge(a, b);
    }
  }
  topo.set_sink(0);
  return topo;
}

/// Checks the CSR invariants and cross-checks every row against has_edge.
void expect_csr_well_formed(const Topology& topo) {
  std::size_t total_degree = 0;
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    const auto row = topo.neighbors(id);
    total_degree += row.size();
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end())) << "node " << id;
    EXPECT_EQ(std::adjacent_find(row.begin(), row.end()), row.end())
        << "duplicate neighbor at node " << id;
    for (NodeId nbr : row) {
      ASSERT_LT(nbr, topo.node_count());
      EXPECT_NE(nbr, id) << "self loop at node " << id;
      EXPECT_TRUE(topo.has_edge(id, nbr));
      EXPECT_TRUE(topo.has_edge(nbr, id)) << "asymmetric edge " << id;
      // Symmetric row membership.
      const auto back = topo.neighbors(nbr);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), id));
    }
  }
  EXPECT_EQ(total_degree, 2 * topo.edge_count());
}

TEST(TopologyCsr, AllFactoriesProduceWellFormedAdjacency) {
  sim::RandomStream rng(123);
  const Topology geometric = Topology::random_geometric(60, 10.0, 2.5, rng);
  const std::vector<const Topology*> topos = {&geometric};
  expect_csr_well_formed(Topology::line(7));
  expect_csr_well_formed(Topology::grid(5, 4));
  expect_csr_well_formed(Topology::star(9));
  expect_csr_well_formed(Topology::binary_tree(4));
  expect_csr_well_formed(Topology::converging_paths({6, 9, 5}, 2).topology);
  expect_csr_well_formed(Topology::paper_figure1().topology);
  expect_csr_well_formed(geometric);
}

TEST(TopologyCsr, MatchesIncrementalEdgeInsertion) {
  // Hand-built graph with duplicate and reversed insertions: the CSR rows
  // must collapse them and agree with the de-duplicated edge set.
  Topology topo;
  for (int i = 0; i < 6; ++i) topo.add_node();
  const std::vector<std::pair<NodeId, NodeId>> inserted = {
      {0, 1}, {1, 0}, {0, 1}, {2, 5}, {4, 3}, {3, 4}, {1, 5}, {0, 5}};
  std::set<std::pair<NodeId, NodeId>> unique;
  for (const auto& [a, b] : inserted) {
    topo.add_edge(a, b);
    unique.emplace(std::min(a, b), std::max(a, b));
  }
  EXPECT_EQ(topo.edge_count(), unique.size());
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    std::vector<NodeId> expected;
    for (const auto& [a, b] : unique) {
      if (a == id) expected.push_back(b);
      if (b == id) expected.push_back(a);
    }
    std::sort(expected.begin(), expected.end());
    const auto row = topo.neighbors(id);
    EXPECT_TRUE(std::ranges::equal(row, expected)) << "node " << id;
  }
  expect_csr_well_formed(topo);
}

TEST(TopologyCsr, RebuildsAfterMutation) {
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_node();
  topo.add_edge(0, 1);
  EXPECT_EQ(topo.neighbors(0).size(), 1u);  // builds the CSR index
  topo.add_edge(0, 2);                      // invalidates it
  EXPECT_EQ(topo.neighbors(0).size(), 2u);  // rebuilt lazily
  EXPECT_TRUE(topo.has_edge(0, 2));
  const NodeId added = topo.add_node();
  EXPECT_EQ(topo.neighbors(added).size(), 0u);
}

TEST(TopologyCsr, GridHashGeometricMatchesBruteForceReference) {
  // Same RNG seed through both builders: placements must be bit-identical
  // (identical draw order) and the edge sets must match exactly, across
  // sparse, dense and degenerate-radius regimes.
  struct Case {
    std::size_t n;
    double side;
    double radius;
  };
  const Case cases[] = {
      {40, 10.0, 2.0},   // sparse
      {80, 8.0, 3.0},    // dense neighborhoods
      {25, 5.0, 20.0},   // radius > extent: complete graph
      {30, 10.0, 0.05},  // radius << spacing: mostly isolated
      {1, 4.0, 1.0},     // single node
  };
  std::uint64_t seed = 1000;
  for (const Case& c : cases) {
    sim::RandomStream rng_fast(++seed);
    sim::RandomStream rng_ref(seed);
    const Topology fast = Topology::random_geometric(c.n, c.side, c.radius, rng_fast);
    const Topology ref = brute_force_geometric(c.n, c.side, c.radius, rng_ref);
    ASSERT_EQ(fast.node_count(), ref.node_count());
    // Both streams must have advanced identically (2n draws each).
    EXPECT_EQ(rng_fast.uniform(0.0, 1.0), rng_ref.uniform(0.0, 1.0));
    for (NodeId id = 0; id < c.n; ++id) {
      ASSERT_EQ(fast.position(id).x, ref.position(id).x) << "node " << id;
      ASSERT_EQ(fast.position(id).y, ref.position(id).y) << "node " << id;
      const auto fast_row = fast.neighbors(id);
      const auto ref_row = ref.neighbors(id);
      ASSERT_TRUE(std::ranges::equal(fast_row, ref_row))
          << "edge mismatch at node " << id << " (n=" << c.n
          << " radius=" << c.radius << ")";
    }
    EXPECT_EQ(fast.sink(), ref.sink());
  }
}

TEST(TopologyCsr, MultiSinkGeometricPlacementsMatchSingleSink) {
  sim::RandomStream rng_multi(42);
  sim::RandomStream rng_single(42);
  const Topology multi =
      Topology::random_geometric_multi_sink(50, 10.0, 2.0, 4, rng_multi);
  const Topology single = Topology::random_geometric(50, 10.0, 2.0, rng_single);
  ASSERT_EQ(multi.sinks().size(), 4u);
  for (NodeId id = 0; id < 50; ++id) {
    EXPECT_EQ(multi.position(id).x, single.position(id).x);
    EXPECT_TRUE(std::ranges::equal(multi.neighbors(id), single.neighbors(id)));
  }
  EXPECT_EQ(multi.sink(), single.sink());  // primary sink unchanged
  for (NodeId s = 0; s < 4; ++s) EXPECT_TRUE(multi.is_sink(s));
  EXPECT_FALSE(multi.is_sink(4));
  EXPECT_THROW(
      Topology::random_geometric_multi_sink(10, 5.0, 1.0, 0, rng_multi),
      std::invalid_argument);
  EXPECT_THROW(
      Topology::random_geometric_multi_sink(10, 5.0, 1.0, 11, rng_multi),
      std::invalid_argument);
}

TEST(TopologyCsr, NearestSinkRoutingAndCoverageDiagnostics) {
  // Two 3-node islands, one sink each, plus one disconnected node: routing
  // must assign each island to its own sink and count the stray.
  Topology topo;
  for (int i = 0; i < 7; ++i) topo.add_node();
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  topo.add_edge(3, 4);
  topo.add_edge(4, 5);
  topo.set_sink(0);
  topo.add_sink(3);
  const RoutingTable routing(topo);
  EXPECT_EQ(routing.sink_of(2), 0u);
  EXPECT_EQ(routing.sink_of(5), 3u);
  EXPECT_EQ(routing.sink_of(0), 0u);
  EXPECT_EQ(routing.sink_of(6), kInvalidNode);
  EXPECT_EQ(routing.hops_to_sink(2), 2u);
  EXPECT_EQ(routing.hops_to_sink(5), 2u);
  EXPECT_EQ(routing.unreachable_count(), 1u);
  EXPECT_FALSE(routing.fully_connected());
  EXPECT_FALSE(routing.reachable(6));

  // Fully covered multi-sink graph reports zero unreachable.
  Topology line = Topology::line(6);
  line.add_sink(0);
  const RoutingTable covered(line);
  EXPECT_EQ(covered.unreachable_count(), 0u);
  EXPECT_TRUE(covered.fully_connected());
}

TEST(TopologyCsr, SingleSinkRoutingUnchangedByRewrite) {
  // The historical deterministic-parent contract: among equal-distance
  // parents the smaller id wins (diamond 0-{1,2}-3, sink 0).
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_node();
  topo.add_edge(0, 1);
  topo.add_edge(0, 2);
  topo.add_edge(1, 3);
  topo.add_edge(2, 3);
  topo.set_sink(0);
  const RoutingTable routing(topo);
  EXPECT_EQ(routing.next_hop(3), 1u);
  EXPECT_EQ(routing.sink_of(3), 0u);
  EXPECT_EQ(routing.unreachable_count(), 0u);
}

TEST(TopologyCsr, MemoryAccountingScalesWithGraphNotObjects) {
  sim::RandomStream rng(7);
  const Topology topo = Topology::random_geometric(2000, 44.7, 1.8, rng);
  topo.edge_count();  // force the CSR build
  const RoutingTable routing(topo);
  // Flat arrays only: a few dozen bytes per node + 8 per directed edge.
  EXPECT_GT(topo.memory_bytes(), 2000 * sizeof(Position));
  EXPECT_LT(topo.memory_bytes(),
            2000 * 128 + topo.edge_count() * 64);
  EXPECT_GE(routing.memory_bytes(), 2000 * 10);  // 4 + 2 + 4 bytes per node
}

}  // namespace
}  // namespace tempriv::net
