#include "net/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "net/routing.h"

namespace tempriv::net {
namespace {

TEST(Topology, AddNodesAndEdges) {
  Topology topo;
  const NodeId a = topo.add_node({1.0, 2.0});
  const NodeId b = topo.add_node();
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_FALSE(topo.has_edge(a, b));
  topo.add_edge(a, b);
  EXPECT_TRUE(topo.has_edge(a, b));
  EXPECT_TRUE(topo.has_edge(b, a));
  EXPECT_DOUBLE_EQ(topo.position(a).x, 1.0);
  EXPECT_DOUBLE_EQ(topo.position(a).y, 2.0);
}

TEST(Topology, IgnoresSelfLoopsAndDuplicates) {
  Topology topo;
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  topo.add_edge(a, a);
  EXPECT_FALSE(topo.has_edge(a, a));
  topo.add_edge(a, b);
  topo.add_edge(a, b);
  EXPECT_EQ(topo.neighbors(a).size(), 1u);
}

TEST(Topology, ValidatesIds) {
  Topology topo;
  topo.add_node();
  EXPECT_THROW(topo.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(topo.neighbors(9), std::out_of_range);
  EXPECT_THROW(topo.position(9), std::out_of_range);
  EXPECT_THROW(topo.set_sink(9), std::out_of_range);
  EXPECT_EQ(topo.sink(), kInvalidNode);
}

TEST(Topology, LineHasExpectedShape) {
  const Topology topo = Topology::line(5);
  EXPECT_EQ(topo.node_count(), 5u);
  EXPECT_EQ(topo.sink(), 4u);
  EXPECT_EQ(topo.neighbors(0).size(), 1u);
  EXPECT_EQ(topo.neighbors(2).size(), 2u);
  EXPECT_THROW(Topology::line(1), std::invalid_argument);
}

TEST(Topology, GridHasFourConnectivity) {
  const Topology topo = Topology::grid(4, 3);
  EXPECT_EQ(topo.node_count(), 12u);
  EXPECT_EQ(topo.sink(), 0u);
  // Corner has 2 neighbors, edge 3, interior 4.
  EXPECT_EQ(topo.neighbors(0).size(), 2u);
  EXPECT_EQ(topo.neighbors(1).size(), 3u);
  EXPECT_EQ(topo.neighbors(5).size(), 4u);
  EXPECT_THROW(Topology::grid(0, 3), std::invalid_argument);
}

TEST(Topology, GridSpacingSetsPositions) {
  const Topology topo = Topology::grid(3, 3, 2.5);
  EXPECT_DOUBLE_EQ(topo.position(4).x, 2.5);  // node (1,1)
  EXPECT_DOUBLE_EQ(topo.position(4).y, 2.5);
}

TEST(Topology, RandomGeometricConnectsCloseNodes) {
  sim::RandomStream rng(77);
  const Topology topo = Topology::random_geometric(50, 10.0, 3.0, rng);
  EXPECT_EQ(topo.node_count(), 50u);
  for (NodeId a = 0; a < 50; ++a) {
    for (NodeId b = 0; b < 50; ++b) {
      if (a == b) continue;
      const auto& pa = topo.position(a);
      const auto& pb = topo.position(b);
      const double d2 = (pa.x - pb.x) * (pa.x - pb.x) +
                        (pa.y - pb.y) * (pa.y - pb.y);
      EXPECT_EQ(topo.has_edge(a, b), d2 <= 9.0) << a << "," << b;
    }
  }
}

TEST(Topology, RandomGeometricIsDeterministicPerSeed) {
  sim::RandomStream rng1(5);
  sim::RandomStream rng2(5);
  const Topology a = Topology::random_geometric(30, 10.0, 2.0, rng1);
  const Topology b = Topology::random_geometric(30, 10.0, 2.0, rng2);
  for (NodeId id = 0; id < 30; ++id) {
    EXPECT_DOUBLE_EQ(a.position(id).x, b.position(id).x);
    const auto na = a.neighbors(id);
    const auto nb = b.neighbors(id);
    EXPECT_TRUE(std::ranges::equal(na, nb)) << "node " << id;
  }
}

TEST(Topology, ConvergingPathsMatchRequestedHopCounts) {
  const auto built = Topology::converging_paths({15, 22, 9, 11}, 3);
  const RoutingTable routing(built.topology);
  ASSERT_EQ(built.sources.size(), 4u);
  EXPECT_EQ(routing.hops_to_sink(built.sources[0]), 15);
  EXPECT_EQ(routing.hops_to_sink(built.sources[1]), 22);
  EXPECT_EQ(routing.hops_to_sink(built.sources[2]), 9);
  EXPECT_EQ(routing.hops_to_sink(built.sources[3]), 11);
  EXPECT_TRUE(routing.fully_connected());
}

TEST(Topology, ConvergingPathsShareTrunk) {
  const auto built = Topology::converging_paths({5, 6}, 2);
  const RoutingTable routing(built.topology);
  const auto path_a = routing.path_to_sink(built.sources[0]);
  const auto path_b = routing.path_to_sink(built.sources[1]);
  // The last shared_tail+1 nodes (trunk + sink) are identical.
  ASSERT_GE(path_a.size(), 3u);
  ASSERT_GE(path_b.size(), 3u);
  EXPECT_EQ(path_a[path_a.size() - 3], path_b[path_b.size() - 3]);
  EXPECT_EQ(path_a.back(), path_b.back());
  // But the sources are distinct.
  EXPECT_NE(built.sources[0], built.sources[1]);
}

TEST(Topology, ConvergingPathsWithZeroTailJoinSinkDirectly) {
  const auto built = Topology::converging_paths({4, 7}, 0);
  const RoutingTable routing(built.topology);
  EXPECT_EQ(routing.hops_to_sink(built.sources[0]), 4);
  EXPECT_EQ(routing.hops_to_sink(built.sources[1]), 7);
}

TEST(Topology, ConvergingPathsValidation) {
  EXPECT_THROW(Topology::converging_paths({}, 0), std::invalid_argument);
  EXPECT_THROW(Topology::converging_paths({3, 2}, 2), std::invalid_argument);
}

TEST(Topology, PaperFigure1MatchesEvaluationSetup) {
  const auto built = Topology::paper_figure1();
  const RoutingTable routing(built.topology);
  ASSERT_EQ(built.sources.size(), 4u);
  EXPECT_EQ(routing.hops_to_sink(built.sources[0]), 15);  // S1
  EXPECT_EQ(routing.hops_to_sink(built.sources[1]), 22);  // S2
  EXPECT_EQ(routing.hops_to_sink(built.sources[2]), 9);   // S3
  EXPECT_EQ(routing.hops_to_sink(built.sources[3]), 11);  // S4
}

}  // namespace
}  // namespace tempriv::net
