#include "net/phantom.h"

#include <gtest/gtest.h>

#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "net/tracer.h"
#include "workload/source.h"

namespace tempriv::net {
namespace {

crypto::PayloadCodec& codec() {
  static crypto::PayloadCodec instance(crypto::Speck64_128::Key{
      0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  return instance;
}

TEST(HopJitter, AddsBoundedLinkDelay) {
  sim::Simulator sim;
  Network network(sim, Topology::line(6), core::immediate_factory(),
                  {.hop_tx_delay = 1.0, .hop_jitter = 0.5},
                  sim::RandomStream(1));
  adversary::GroundTruthRecorder truth(codec());
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(2),
                                  5.0, 500);
  source.start(0.0);
  sim.run();
  // Latency in [h*tau, h*(tau+jitter)) with mean h*(tau + jitter/2).
  EXPECT_GE(truth.latency(0).min(), 5.0);
  EXPECT_LT(truth.latency(0).max(), 5.0 * 1.5);
  EXPECT_NEAR(truth.latency(0).mean(), 5.0 * 1.25, 0.1);
}

TEST(HopJitter, MakesNoDelayMseSmallButNonzero) {
  // The paper's case-1 curve is "very small" rather than exactly zero;
  // MAC jitter reproduces that. Adversary knows the mean per-hop delay.
  sim::Simulator sim;
  Network network(sim, Topology::line(6), core::immediate_factory(),
                  {.hop_tx_delay = 1.0, .hop_jitter = 0.5},
                  sim::RandomStream(3));
  adversary::BaselineAdversary adv(1.25, 0.0);  // tau + jitter/2
  adversary::GroundTruthRecorder truth(codec());
  network.add_sink_observer(&adv);
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec(), 0, sim::RandomStream(4),
                                  5.0, 2000);
  source.start(0.0);
  sim.run();
  const double mse = truth.score_all(adv).mse();
  // Theoretical: h * jitter^2/12 = 5 * 0.25/12 ≈ 0.104.
  EXPECT_GT(mse, 0.05);
  EXPECT_LT(mse, 0.2);
}

TEST(HopJitter, RejectsNegativeJitter) {
  sim::Simulator sim;
  EXPECT_THROW(Network(sim, Topology::line(3), core::immediate_factory(),
                       {.hop_tx_delay = 1.0, .hop_jitter = -0.1},
                       sim::RandomStream(1)),
               std::invalid_argument);
}

TEST(PhantomRouting, DeliversEverythingDespiteRandomWalk) {
  sim::Simulator sim;
  Network network(sim, Topology::grid(6, 6), core::immediate_factory(), {},
                  sim::RandomStream(5));
  network.set_hop_selector(
      phantom_routing_selector(network.topology(), network.routing(), 8));
  adversary::GroundTruthRecorder truth(codec());
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec(), 35, sim::RandomStream(6),
                                  3.0, 300);
  source.start(0.0);
  sim.run();
  EXPECT_EQ(network.packets_delivered(), 300u);
}

TEST(PhantomRouting, WalkLengthensAndRandomizesPaths) {
  sim::Simulator sim;
  Network network(sim, Topology::grid(6, 6), core::immediate_factory(), {},
                  sim::RandomStream(7));
  network.set_hop_selector(
      phantom_routing_selector(network.topology(), network.routing(), 6));
  PacketTracer tracer(network);
  adversary::GroundTruthRecorder truth(codec());
  network.add_sink_observer(&truth);
  const std::uint16_t tree_hops = network.routing().hops_to_sink(35);
  workload::PeriodicSource source(network, codec(), 35, sim::RandomStream(8),
                                  3.0, 200);
  source.start(0.0);
  sim.run();
  bool lengths_vary = false;
  std::size_t first_len = tracer.path(0).size();
  for (std::uint64_t uid = 0; uid < 200; ++uid) {
    const auto path = tracer.path(uid);
    // Never shorter than the walk; walk + tree distance bounds below.
    EXPECT_GT(path.size(), static_cast<std::size_t>(6));
    if (path.size() != first_len) lengths_vary = true;
  }
  EXPECT_TRUE(lengths_vary);
  // Expected path length exceeds the tree distance.
  EXPECT_GT(truth.latency(35).mean(), static_cast<double>(tree_hops));
}

TEST(PhantomRouting, NoTemporalPrivacyAgainstHeaderReader) {
  // The negative result: the hop count travels in cleartext, so with
  // constant per-hop delay the adversary subtracts h*tau exactly — random
  // walk or not, MSE stays ~0.
  sim::Simulator sim;
  Network network(sim, Topology::grid(6, 6), core::immediate_factory(), {},
                  sim::RandomStream(9));
  network.set_hop_selector(
      phantom_routing_selector(network.topology(), network.routing(), 6));
  adversary::BaselineAdversary adv(1.0, 0.0);
  adversary::GroundTruthRecorder truth(codec());
  network.add_sink_observer(&adv);
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec(), 35, sim::RandomStream(10),
                                  3.0, 300);
  source.start(0.0);
  sim.run();
  EXPECT_NEAR(truth.score_all(adv).mse(), 0.0, 1e-12);
}

TEST(PhantomRouting, ZeroWalkEqualsTreeRouting) {
  sim::Simulator sim;
  Network network(sim, Topology::grid(5, 5), core::immediate_factory(), {},
                  sim::RandomStream(11));
  network.set_hop_selector(
      phantom_routing_selector(network.topology(), network.routing(), 0));
  PacketTracer tracer(network);
  const std::uint64_t uid = network.originate(24, codec().seal({0, 0, 0.0}, 24));
  sim.run();
  EXPECT_EQ(tracer.path(uid).size(),
            network.routing().hops_to_sink(24) + 1u);
}

TEST(PhantomRouting, RejectsDisconnectedTopology) {
  Topology topo = Topology::line(3);
  topo.add_node();  // island
  const RoutingTable routing(topo);
  EXPECT_THROW(phantom_routing_selector(topo, routing, 3),
               std::invalid_argument);
}

TEST(HopSelector, NonNeighborSelectionThrows) {
  sim::Simulator sim;
  Network network(sim, Topology::line(4), core::immediate_factory(), {},
                  sim::RandomStream(12));
  network.set_hop_selector(
      [](NodeId, const Packet&, sim::RandomStream&) -> NodeId { return 3; });
  // Node 0's only neighbor is 1; selecting the sink (3) directly is
  // illegal. ImmediateForwarding transmits synchronously, so the violation
  // surfaces right at injection.
  EXPECT_THROW(network.originate(0, codec().seal({0, 0, 0.0}, 0)),
               std::logic_error);
}

}  // namespace
}  // namespace tempriv::net
