#include "net/tracer.h"

#include <gtest/gtest.h>

#include "core/factories.h"
#include "crypto/payload.h"

namespace tempriv::net {
namespace {

crypto::PayloadCodec& codec() {
  static crypto::PayloadCodec instance(crypto::Speck64_128::Key{
      4, 4, 4, 4, 2, 2, 2, 2, 7, 7, 7, 7, 5, 5, 5, 5});
  return instance;
}

TEST(PacketTracer, RecordsFullPathOnLineTopology) {
  sim::Simulator sim;
  Network network(sim, Topology::line(5), core::immediate_factory(), {},
                  sim::RandomStream(1));
  PacketTracer tracer(network);
  const std::uint64_t uid =
      network.originate(0, codec().seal({0.0, 0, 0.0}, 0));
  sim.run();
  EXPECT_EQ(tracer.path(uid), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(tracer.transmissions(), 4u);
  EXPECT_EQ(tracer.packets_traced(), 1u);
}

TEST(PacketTracer, HopTimesReflectTransmissionDelay) {
  sim::Simulator sim;
  Network network(sim, Topology::line(4), core::immediate_factory(),
                  {.hop_tx_delay = 2.0}, sim::RandomStream(1));
  PacketTracer tracer(network);
  const std::uint64_t uid =
      network.originate(0, codec().seal({0.0, 0, 0.0}, 0));
  sim.run();
  const auto& hops = tracer.hops(uid);
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_DOUBLE_EQ(hops[0].at, 0.0);
  EXPECT_DOUBLE_EQ(hops[1].at, 2.0);
  EXPECT_DOUBLE_EQ(hops[2].at, 4.0);
}

TEST(PacketTracer, HoldingTimesExposeDelaying) {
  sim::Simulator sim;
  Network network(sim, Topology::line(4),
                  core::unlimited_factory(core::ConstantDelay(7.0)), {},
                  sim::RandomStream(1));
  PacketTracer tracer(network);
  const std::uint64_t uid =
      network.originate(0, codec().seal({0.0, 0, 0.0}, 0));
  sim.run();
  const auto holding = tracer.holding_times(uid);
  ASSERT_EQ(holding.size(), 3u);
  EXPECT_DOUBLE_EQ(holding[0], 0.0);  // origin holding not observable
  EXPECT_DOUBLE_EQ(holding[1], 7.0);  // each forwarder held 7 units
  EXPECT_DOUBLE_EQ(holding[2], 7.0);
}

TEST(PacketTracer, UnknownUidYieldsEmpty) {
  sim::Simulator sim;
  Network network(sim, Topology::line(3), core::immediate_factory(), {},
                  sim::RandomStream(1));
  PacketTracer tracer(network);
  EXPECT_TRUE(tracer.hops(42).empty());
  EXPECT_TRUE(tracer.path(42).empty());
  EXPECT_TRUE(tracer.holding_times(42).empty());
}

TEST(PacketTracer, UnknownUidResultsAreIndependentValues) {
  // Regression: hops() used to return a reference to one shared empty
  // vector for every unknown uid, so results for different uids aliased
  // each other. By-value results must be independently owned.
  sim::Simulator sim;
  Network network(sim, Topology::line(3), core::immediate_factory(), {},
                  sim::RandomStream(1));
  PacketTracer tracer(network);
  auto a = tracer.hops(41);
  auto b = tracer.hops(42);
  a.push_back({0, 1, 0.0});  // mutating one result...
  EXPECT_TRUE(b.empty());    // ...must not leak into the other
  EXPECT_TRUE(tracer.hops(42).empty());
}

TEST(PacketTracer, HopsSnapshotSurvivesLaterTracing) {
  // Regression companion: a hops() result taken mid-run must stay valid and
  // unchanged while the tracer's internal arena grows under later packets.
  sim::Simulator sim;
  Network network(sim, Topology::line(6), core::immediate_factory(), {},
                  sim::RandomStream(1));
  PacketTracer tracer(network);
  const std::uint64_t first =
      network.originate(0, codec().seal({0.0, 0, 0.0}, 0));
  sim.run();
  const auto snapshot = tracer.hops(first);
  ASSERT_EQ(snapshot.size(), 5u);
  for (std::uint32_t seq = 1; seq <= 64; ++seq) {
    network.originate(0, codec().seal({0.0, seq, 0.0}, 0));
  }
  sim.run();
  EXPECT_EQ(tracer.packets_traced(), 65u);
  EXPECT_EQ(snapshot, tracer.hops(first));
}

TEST(PacketTracer, TracksManyPacketsIndependently) {
  sim::Simulator sim;
  const auto built = Topology::converging_paths({4, 6}, 1);
  Network network(sim, built.topology, core::immediate_factory(), {},
                  sim::RandomStream(1));
  PacketTracer tracer(network);
  const std::uint64_t a =
      network.originate(built.sources[0], codec().seal({0.0, 0, 0.0}, 1));
  const std::uint64_t b =
      network.originate(built.sources[1], codec().seal({0.0, 0, 0.0}, 2));
  sim.run();
  EXPECT_EQ(tracer.path(a).size(), 5u);  // 4 hops -> 5 nodes
  EXPECT_EQ(tracer.path(b).size(), 7u);
  EXPECT_EQ(tracer.path(a).back(), built.topology.sink());
  EXPECT_EQ(tracer.path(b).back(), built.topology.sink());
}

TEST(TopologyStar, AllLeavesOneHopFromSink) {
  const Topology topo = Topology::star(6);
  const RoutingTable routing(topo);
  EXPECT_EQ(topo.node_count(), 7u);
  for (NodeId leaf = 1; leaf <= 6; ++leaf) {
    EXPECT_EQ(routing.hops_to_sink(leaf), 1);
    EXPECT_EQ(routing.next_hop(leaf), topo.sink());
  }
  EXPECT_THROW(Topology::star(0), std::invalid_argument);
}

TEST(TopologyBinaryTree, DepthAndStructure) {
  const Topology topo = Topology::binary_tree(3);
  const RoutingTable routing(topo);
  EXPECT_EQ(topo.node_count(), 15u);
  EXPECT_TRUE(routing.fully_connected());
  // Leaves (ids 7..14) are depth hops from the root sink.
  for (NodeId leaf = 7; leaf <= 14; ++leaf) {
    EXPECT_EQ(routing.hops_to_sink(leaf), 3);
  }
  EXPECT_EQ(routing.hops_to_sink(1), 1);
  EXPECT_EQ(routing.next_hop(5), 2u);  // parent of node 5 is (5-1)/2 = 2
}

TEST(TopologyBinaryTree, DepthZeroIsJustTheSink) {
  const Topology topo = Topology::binary_tree(0);
  EXPECT_EQ(topo.node_count(), 1u);
  EXPECT_EQ(topo.sink(), 0u);
}

}  // namespace
}  // namespace tempriv::net
