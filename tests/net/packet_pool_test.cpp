#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/random.h"

namespace tempriv::net {
namespace {

Packet make_packet(std::uint64_t uid) {
  Packet packet;
  packet.uid = uid;
  packet.header.origin = static_cast<NodeId>(uid % 97);
  packet.header.hop_count = static_cast<std::uint16_t>(uid % 31);
  packet.payload.nonce = uid * 0x9e3779b97f4a7c15ULL;
  packet.payload.ciphertext.resize(crypto::SensorPayload::kWireBytes);
  for (std::size_t i = 0; i < packet.payload.ciphertext.size(); ++i) {
    packet.payload.ciphertext[i] = static_cast<std::uint8_t>(uid + i);
  }
  return packet;
}

TEST(PacketPool, PutTakeRoundTripsThePacket) {
  PacketPool pool;
  const Packet original = make_packet(7);
  Packet copy = original;
  const PacketPool::Handle handle = pool.put(std::move(copy));
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(pool.in_flight(), 1u);
  const Packet out = pool.take(handle);
  EXPECT_EQ(out.uid, original.uid);
  EXPECT_EQ(out.payload.ciphertext, original.payload.ciphertext);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(PacketPool, DefaultHandleIsInvalid) {
  PacketPool pool;
  EXPECT_THROW(pool.take(PacketPool::Handle{}), std::logic_error);
}

TEST(PacketPool, DoubleTakeThrows) {
  PacketPool pool;
  const auto handle = pool.put(make_packet(1));
  (void)pool.take(handle);
  EXPECT_THROW(pool.take(handle), std::logic_error);
}

TEST(PacketPool, StaleHandleCannotAliasSlotReuse) {
  PacketPool pool;
  const auto first = pool.put(make_packet(1));
  (void)pool.take(first);
  // The freed slot is reused, but the sequence word differs: the old
  // handle must throw instead of handing back the new occupant.
  const auto second = pool.put(make_packet(2));
  EXPECT_THROW(pool.take(first), std::logic_error);
  EXPECT_EQ(pool.take(second).uid, 2u);
}

TEST(PacketPool, SteadyStateReusesSlots) {
  PacketPool pool;
  for (int round = 0; round < 1000; ++round) {
    const auto handle = pool.put(make_packet(static_cast<std::uint64_t>(round)));
    EXPECT_EQ(pool.take(handle).uid, static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(pool.slot_count(), 1u);  // one slot, visited 1000 times
}

TEST(PacketPool, RandomizedChurnMatchesReferenceModel) {
  // Property test: an interleaving of puts and takes driven by a seeded RNG
  // must behave exactly like a uid-keyed map, and the pool's footprint must
  // stay bounded by the high-water mark of concurrently parked packets.
  PacketPool pool;
  sim::RandomStream rng(0x900d5eedULL);
  std::unordered_map<std::uint64_t, PacketPool::Handle> live;  // uid -> handle
  std::vector<std::uint64_t> uids;
  std::uint64_t next_uid = 0;
  std::size_t high_water = 0;

  for (int step = 0; step < 20000; ++step) {
    const bool put = live.empty() || rng.uniform(0.0, 1.0) < 0.55;
    if (put) {
      const std::uint64_t uid = next_uid++;
      live.emplace(uid, pool.put(make_packet(uid)));
      uids.push_back(uid);
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(uids.size())));
      const std::uint64_t uid = uids[pick < uids.size() ? pick : 0];
      const Packet out = pool.take(live.at(uid));
      EXPECT_EQ(out.uid, uid);
      EXPECT_EQ(out.payload.nonce, uid * 0x9e3779b97f4a7c15ULL);
      live.erase(uid);
      uids[pick < uids.size() ? pick : 0] = uids.back();
      uids.pop_back();
    }
    high_water = std::max(high_water, live.size());
    ASSERT_EQ(pool.in_flight(), live.size());
  }
  EXPECT_LE(pool.slot_count(), high_water);
  // Drain; every survivor must still round-trip.
  for (const auto& [uid, handle] : live) {
    EXPECT_EQ(pool.take(handle).uid, uid);
  }
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(PacketPool, ReservePreallocatesWithoutChangingBehavior) {
  PacketPool pool;
  pool.reserve(64);
  std::vector<PacketPool::Handle> handles;
  for (std::uint64_t uid = 0; uid < 64; ++uid) {
    handles.push_back(pool.put(make_packet(uid)));
  }
  EXPECT_EQ(pool.in_flight(), 64u);
  for (std::uint64_t uid = 0; uid < 64; ++uid) {
    EXPECT_EQ(pool.take(handles[uid]).uid, uid);
  }
}

}  // namespace
}  // namespace tempriv::net
