// Network::originate_batch and Source::emit_burst: a batch-sealed burst must
// be indistinguishable — uids, headers, sealed bytes, delivery times, RNG
// draws — from the same packets injected one originate()/emit() at a time.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/factories.h"
#include "crypto/payload.h"
#include "net/network.h"
#include "workload/source.h"

namespace tempriv::net {
namespace {

crypto::PayloadCodec& test_codec() {
  static crypto::PayloadCodec codec(crypto::Speck64_128::Key{
      1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  return codec;
}

struct RecordingObserver final : SinkObserver {
  struct Delivery {
    Packet packet;
    sim::Time arrival;
  };
  std::vector<Delivery> deliveries;
  void on_delivery(const Packet& packet, sim::Time arrival) override {
    deliveries.push_back({packet, arrival});
  }
};

std::vector<crypto::SensorPayload> burst_payloads(std::size_t n) {
  std::vector<crypto::SensorPayload> payloads(n);
  for (std::size_t i = 0; i < n; ++i) {
    payloads[i] = {15.0 + static_cast<double>(i),
                   static_cast<std::uint32_t>(i), 0.0};
  }
  return payloads;
}

// Sizes straddling the lane-group width: scalar remainder only, exactly one
// group, group + remainder.
TEST(OriginateBatch, MatchesRepeatedOriginateExactly) {
  for (std::size_t n : {std::size_t{3}, std::size_t{8}, std::size_t{13}}) {
    const auto payloads = burst_payloads(n);

    sim::Simulator sim_a;
    Network one(sim_a, Topology::line(4), core::immediate_factory(),
                {.hop_tx_delay = 1.0}, sim::RandomStream(1));
    RecordingObserver obs_a;
    one.add_sink_observer(&obs_a);
    for (const auto& p : payloads) {
      one.originate(0, test_codec().seal(p, 0));
    }
    sim_a.run();

    sim::Simulator sim_b;
    Network batched(sim_b, Topology::line(4), core::immediate_factory(),
                    {.hop_tx_delay = 1.0}, sim::RandomStream(1));
    RecordingObserver obs_b;
    batched.add_sink_observer(&obs_b);
    EXPECT_EQ(batched.originate_batch(0, test_codec(), payloads), 0u);
    sim_b.run();

    ASSERT_EQ(obs_a.deliveries.size(), n) << "n " << n;
    ASSERT_EQ(obs_b.deliveries.size(), n) << "n " << n;
    EXPECT_EQ(batched.packets_originated(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const Packet& a = obs_a.deliveries[i].packet;
      const Packet& b = obs_b.deliveries[i].packet;
      EXPECT_EQ(a.uid, b.uid) << "n " << n << " i " << i;
      EXPECT_EQ(a.header.origin, b.header.origin);
      EXPECT_EQ(a.header.hop_count, b.header.hop_count);
      EXPECT_EQ(a.payload.nonce, b.payload.nonce);
      EXPECT_EQ(a.payload.ciphertext, b.payload.ciphertext);
      EXPECT_EQ(a.payload.tag, b.payload.tag);
      EXPECT_DOUBLE_EQ(obs_a.deliveries[i].arrival, obs_b.deliveries[i].arrival);
      const auto opened = test_codec().open(b.payload);
      ASSERT_TRUE(opened.has_value());
      EXPECT_EQ(opened->app_seq, static_cast<std::uint32_t>(i));
    }
  }
}

TEST(OriginateBatch, EmptyBurstIsANoOp) {
  sim::Simulator sim;
  Network net(sim, Topology::line(3), core::immediate_factory(),
              {.hop_tx_delay = 1.0}, sim::RandomStream(1));
  EXPECT_EQ(net.originate_batch(0, test_codec(), {}), 0u);
  EXPECT_EQ(net.packets_originated(), 0u);
  EXPECT_EQ(net.originate(0, test_codec().seal({1.0, 0, 0.0}, 0)), 0u);
}

TEST(OriginateBatch, RejectsBadOrigin) {
  sim::Simulator sim;
  Network net(sim, Topology::line(3), core::immediate_factory(),
              {.hop_tx_delay = 1.0}, sim::RandomStream(1));
  const auto payloads = burst_payloads(2);
  EXPECT_THROW(net.originate_batch(net.topology().sink(), test_codec(),
                                   payloads),
               std::invalid_argument);
  EXPECT_THROW(net.originate_batch(99, test_codec(), payloads),
               std::invalid_argument);
  EXPECT_EQ(net.packets_originated(), 0u);
}

// A minimal Source subclass to drive the protected emit()/emit_burst().
class BurstingProbe final : public workload::Source {
 public:
  using Source::Source;
  void start(double) override {}
  std::uint64_t burst(std::uint32_t n) { return emit_burst(n); }
  std::uint64_t one() { return emit(); }
};

TEST(EmitBurst, MatchesRepeatedEmitIncludingRngDraws) {
  const std::uint32_t n = 13;

  sim::Simulator sim_a;
  Network net_a(sim_a, Topology::line(4), core::immediate_factory(),
                {.hop_tx_delay = 1.0}, sim::RandomStream(1));
  RecordingObserver obs_a;
  net_a.add_sink_observer(&obs_a);
  BurstingProbe single(net_a, test_codec(), 0, sim::RandomStream(77));
  for (std::uint32_t i = 0; i < n; ++i) single.one();
  sim_a.run();

  sim::Simulator sim_b;
  Network net_b(sim_b, Topology::line(4), core::immediate_factory(),
                {.hop_tx_delay = 1.0}, sim::RandomStream(1));
  RecordingObserver obs_b;
  net_b.add_sink_observer(&obs_b);
  BurstingProbe bursty(net_b, test_codec(), 0, sim::RandomStream(77));
  EXPECT_EQ(bursty.burst(n), 0u);
  EXPECT_EQ(bursty.packets_created(), n);
  sim_b.run();

  ASSERT_EQ(obs_a.deliveries.size(), n);
  ASSERT_EQ(obs_b.deliveries.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Packet& a = obs_a.deliveries[i].packet;
    const Packet& b = obs_b.deliveries[i].packet;
    EXPECT_EQ(a.payload.nonce, b.payload.nonce) << "i " << i;
    EXPECT_EQ(a.payload.ciphertext, b.payload.ciphertext) << "i " << i;
    EXPECT_EQ(a.payload.tag, b.payload.tag) << "i " << i;
  }
}

}  // namespace
}  // namespace tempriv::net
