#include "core/delay_distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "infotheory/entropy.h"
#include "metrics/stats.h"

namespace tempriv::core {
namespace {

TEST(NoDelay, AlwaysZero) {
  NoDelay dist;
  sim::RandomStream rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 0.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
  EXPECT_EQ(dist.differential_entropy(),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dist.name(), "none");
}

TEST(ConstantDelay, AlwaysTheConfiguredValue) {
  ConstantDelay dist(7.5);
  sim::RandomStream rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 7.5);
  EXPECT_DOUBLE_EQ(dist.mean(), 7.5);
  EXPECT_EQ(dist.differential_entropy(),
            -std::numeric_limits<double>::infinity());
  EXPECT_THROW(ConstantDelay(-1.0), std::invalid_argument);
}

TEST(UniformDelay, SamplesWithinBoundsWithCorrectMean) {
  UniformDelay dist(10.0, 50.0);
  sim::RandomStream rng(2);
  metrics::StreamingStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double d = dist.sample(rng);
    ASSERT_GE(d, 10.0);
    ASSERT_LT(d, 50.0);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), dist.mean(), 0.2);
  EXPECT_NEAR(dist.differential_entropy(), std::log(40.0), 1e-12);
  EXPECT_THROW(UniformDelay(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(UniformDelay(-1.0, 5.0), std::invalid_argument);
}

TEST(ExponentialDelay, MatchesConfiguredMean) {
  ExponentialDelay dist(30.0);  // the paper's 1/mu
  sim::RandomStream rng(3);
  metrics::StreamingStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(dist.sample(rng));
  EXPECT_NEAR(stats.mean(), 30.0, 0.5);
  EXPECT_NEAR(dist.differential_entropy(),
              infotheory::exponential_entropy(30.0), 1e-12);
  EXPECT_THROW(ExponentialDelay(0.0), std::invalid_argument);
}

TEST(ParetoDelay, HeavyTailedWithFiniteMeanWhenAlphaAboveOne) {
  ParetoDelay dist(10.0, 3.0);
  sim::RandomStream rng(4);
  metrics::StreamingStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double d = dist.sample(rng);
    ASSERT_GE(d, 10.0);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), dist.mean(), 0.3);
  EXPECT_THROW(ParetoDelay(0.0, 2.0), std::invalid_argument);
}

TEST(ParetoDelay, InfiniteMeanWhenAlphaAtMostOne) {
  ParetoDelay dist(1.0, 1.0);
  EXPECT_TRUE(std::isinf(dist.mean()));
}

TEST(DelayDistribution, ExponentialMaximizesEntropyAtEqualMean) {
  // §3's design insight, checked through the polymorphic interface.
  const double mean = 30.0;
  ExponentialDelay exponential(mean);
  UniformDelay uniform(0.0, 2.0 * mean);
  ConstantDelay constant(mean);
  EXPECT_GT(exponential.differential_entropy(), uniform.differential_entropy());
  EXPECT_GT(uniform.differential_entropy(), constant.differential_entropy());
  EXPECT_DOUBLE_EQ(exponential.mean(), uniform.mean());
}

TEST(DelayDistribution, CloneIsIndependentAndEquivalent) {
  ExponentialDelay original(12.0);
  const auto clone = original.clone();
  EXPECT_DOUBLE_EQ(clone->mean(), 12.0);
  EXPECT_EQ(clone->name(), original.name());
  // Clones draw identical values from identical streams.
  sim::RandomStream rng1(9);
  sim::RandomStream rng2(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(original.sample(rng1), clone->sample(rng2));
  }
}

TEST(DelayDistribution, NamesIdentifyParameters) {
  EXPECT_EQ(ExponentialDelay(30.0).name(), "exp(mean=30.00)");
  EXPECT_EQ(ConstantDelay(5.0).name(), "constant(5.00)");
  EXPECT_EQ(UniformDelay(0.0, 60.0).name(), "uniform(0.00,60.00)");
  EXPECT_EQ(ParetoDelay(1.0, 2.0).name(), "pareto(xm=1.00,alpha=2.00)");
}

}  // namespace
}  // namespace tempriv::core
