#include "core/disciplines.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/factories.h"
#include "test_context.h"

namespace tempriv::core {
namespace {

using testing::TestContext;

TEST(ImmediateForwarding, TransmitsInstantly) {
  TestContext ctx;
  ImmediateForwarding discipline;
  discipline.on_packet(ctx.make_packet(1), ctx);
  ASSERT_EQ(ctx.transmitted().size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.transmitted()[0].first, 0.0);
  EXPECT_EQ(discipline.buffered(), 0u);
  EXPECT_EQ(discipline.preemptions(), 0u);
  EXPECT_EQ(discipline.drops(), 0u);
}

TEST(UnlimitedDelaying, HoldsEveryPacketUntilItsDelayExpires) {
  TestContext ctx;
  UnlimitedDelaying discipline(std::make_unique<ConstantDelay>(3.0));
  for (std::uint64_t uid = 0; uid < 100; ++uid) {
    discipline.on_packet(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(discipline.buffered(), 100u);  // no capacity limit
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), 100u);
  EXPECT_EQ(discipline.buffered(), 0u);
  for (const auto& [at, packet] : ctx.transmitted()) EXPECT_DOUBLE_EQ(at, 3.0);
}

TEST(DropTailDelaying, DropsWhenFull) {
  TestContext ctx;
  DropTailDelaying discipline(std::make_unique<ConstantDelay>(100.0), 10);
  for (std::uint64_t uid = 0; uid < 15; ++uid) {
    discipline.on_packet(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(discipline.buffered(), 10u);
  EXPECT_EQ(discipline.drops(), 5u);
  EXPECT_EQ(discipline.preemptions(), 0u);
  ctx.simulator().run();
  // Only the 10 admitted packets are ever transmitted.
  EXPECT_EQ(ctx.transmitted().size(), 10u);
}

TEST(DropTailDelaying, ValidatesCapacity) {
  EXPECT_THROW(DropTailDelaying(std::make_unique<NoDelay>(), 0),
               std::invalid_argument);
}

TEST(RcadDiscipline, PreemptsInsteadOfDropping) {
  TestContext ctx;
  RcadDiscipline discipline(std::make_unique<ConstantDelay>(100.0), 10);
  for (std::uint64_t uid = 0; uid < 15; ++uid) {
    discipline.on_packet(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(discipline.buffered(), 10u);  // never exceeds capacity
  EXPECT_EQ(discipline.preemptions(), 5u);
  EXPECT_EQ(discipline.drops(), 0u);
  // 5 victims were transmitted immediately (at t = 0).
  ASSERT_EQ(ctx.transmitted().size(), 5u);
  for (const auto& [at, packet] : ctx.transmitted()) EXPECT_DOUBLE_EQ(at, 0.0);
  ctx.simulator().run();
  // Every packet is eventually transmitted exactly once: 15 total.
  EXPECT_EQ(ctx.transmitted().size(), 15u);
}

TEST(RcadDiscipline, VictimIsShortestRemainingDelay) {
  TestContext ctx;
  // Distinct deterministic delays so the victim is predictable: the packet
  // admitted first has the earliest release and must be preempted.
  RcadDiscipline discipline(std::make_unique<ExponentialDelay>(50.0), 3);
  discipline.on_packet(ctx.make_packet(0), ctx);
  discipline.on_packet(ctx.make_packet(1), ctx);
  discipline.on_packet(ctx.make_packet(2), ctx);
  // Find which buffered packet has the shortest remaining delay.
  std::uint64_t expected_victim = 0;
  double best = 1e300;
  // (Reconstruct from the discipline's own counters via a second context is
  // overkill: RCAD guarantees the preempted packet is transmitted first.)
  (void)best;
  discipline.on_packet(ctx.make_packet(3), ctx);
  ASSERT_EQ(ctx.transmitted().size(), 1u);
  expected_victim = ctx.transmitted()[0].second.uid;
  // The victim must be one of the originally-buffered packets, and the
  // remaining buffer still holds 3 (capacity).
  EXPECT_LT(expected_victim, 3u);
  EXPECT_EQ(discipline.buffered(), 3u);
  EXPECT_EQ(discipline.preemptions(), 1u);
}

TEST(RcadDiscipline, NoPreemptionBelowCapacity) {
  TestContext ctx;
  RcadDiscipline discipline(std::make_unique<ExponentialDelay>(5.0), 10);
  for (std::uint64_t uid = 0; uid < 10; ++uid) {
    discipline.on_packet(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(discipline.preemptions(), 0u);
}

TEST(RcadDiscipline, EffectiveDelayShrinksUnderLoad) {
  // The adaptive-µ property: at overload the realized mean delay collapses
  // from 1/µ toward k/λ (here: 10 slots, deterministic 1-unit arrivals).
  TestContext ctx;
  RcadDiscipline discipline(std::make_unique<ExponentialDelay>(100.0), 10);
  constexpr int kPackets = 300;
  for (int i = 0; i < kPackets; ++i) {
    ctx.simulator().schedule_at(static_cast<double>(i), [&discipline, &ctx, i] {
      discipline.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
    });
  }
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), static_cast<std::size_t>(kPackets));
  EXPECT_GT(discipline.preemptions(), 200u);  // heavy preemption
  // Mean realized holding time ~ k/λ = 10, far below the configured 100.
  double total_delay = 0.0;
  for (const auto& [at, packet] : ctx.transmitted()) {
    total_delay += at - static_cast<double>(packet.uid);
  }
  const double mean_delay = total_delay / kPackets;
  EXPECT_LT(mean_delay, 25.0);
  EXPECT_GT(mean_delay, 2.0);
}

TEST(RcadDiscipline, ValidatesCapacity) {
  EXPECT_THROW(RcadDiscipline(std::make_unique<NoDelay>(), 0),
               std::invalid_argument);
}

TEST(Factories, ProduceExpectedDisciplineTypes) {
  auto immediate = immediate_factory()(0, 1);
  EXPECT_NE(dynamic_cast<ImmediateForwarding*>(immediate.get()), nullptr);

  auto unlimited = unlimited_exponential_factory(30.0)(0, 1);
  EXPECT_NE(dynamic_cast<UnlimitedDelaying*>(unlimited.get()), nullptr);

  auto droptail = droptail_exponential_factory(30.0, 10)(0, 1);
  auto* dt = dynamic_cast<DropTailDelaying*>(droptail.get());
  ASSERT_NE(dt, nullptr);
  EXPECT_EQ(dt->capacity(), 10u);

  auto rcad = rcad_exponential_factory(30.0, 10, VictimPolicy::kRandom)(0, 1);
  auto* rc = dynamic_cast<RcadDiscipline*>(rcad.get());
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(rc->capacity(), 10u);
  EXPECT_EQ(rc->victim_policy(), VictimPolicy::kRandom);
}

TEST(Factories, FactoriesAreReusableAcrossNodes) {
  const auto factory = rcad_exponential_factory(30.0, 10);
  auto a = factory(0, 1);
  auto b = factory(1, 2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->buffered(), 0u);
  EXPECT_EQ(b->buffered(), 0u);
}

TEST(Factories, ProfileFactoryScalesMeanWithHops) {
  TestContext ctx;
  // Profile: mean = 10 * hops. Node 5 hops out -> mean 50.
  const auto factory = unlimited_exponential_profile_factory(
      [](std::uint16_t hops) { return 10.0 * hops; });
  auto node_far = factory(0, 5);
  // Sample many delays through the discipline and check the realized mean.
  double total = 0.0;
  constexpr int kPackets = 2000;
  for (int i = 0; i < kPackets; ++i) {
    node_far->on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
  }
  ctx.simulator().run();
  for (const auto& [at, packet] : ctx.transmitted()) total += at;
  EXPECT_NEAR(total / kPackets, 50.0, 3.0);
}

}  // namespace
}  // namespace tempriv::core
