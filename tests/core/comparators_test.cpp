#include "core/comparators.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/delay_distribution.h"
#include "metrics/stats.h"
#include "test_context.h"

namespace tempriv::core {
namespace {

using testing::TestContext;

TEST(FifoDelaying, PreservesOrderAlways) {
  TestContext ctx;
  FifoDelaying fifo(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 50; ++uid) {
    fifo.on_packet(ctx.make_packet(uid), ctx);
  }
  ctx.simulator().run();
  ASSERT_EQ(ctx.transmitted().size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(ctx.transmitted()[i].second.uid, i);  // strict FIFO
  }
}

TEST(FifoDelaying, ServesOneAtATime) {
  // Constant service 5: packet i (all arriving at t = 0) departs at 5(i+1).
  TestContext ctx;
  FifoDelaying fifo(std::make_unique<ConstantDelay>(5.0));
  for (std::uint64_t uid = 0; uid < 4; ++uid) {
    fifo.on_packet(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(fifo.buffered(), 4u);
  ctx.simulator().run();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ctx.transmitted()[i].first, 5.0 * (i + 1));
  }
  EXPECT_EQ(fifo.buffered(), 0u);
}

TEST(FifoDelaying, IdleServerRestartsOnNextArrival) {
  TestContext ctx;
  FifoDelaying fifo(std::make_unique<ConstantDelay>(2.0));
  fifo.on_packet(ctx.make_packet(0), ctx);
  ctx.simulator().run();
  ASSERT_EQ(ctx.transmitted().size(), 1u);
  // Much later, a second packet: service starts fresh, not from the past.
  ctx.simulator().schedule_at(100.0, [&] {
    fifo.on_packet(ctx.make_packet(1), ctx);
  });
  ctx.simulator().run();
  ASSERT_EQ(ctx.transmitted().size(), 2u);
  EXPECT_DOUBLE_EQ(ctx.transmitted()[1].first, 102.0);
}

TEST(FifoDelaying, MM1SojournMatchesTheory) {
  // M/M/1 with λ = 0.1, µ = 0.2: E[T] = 1/(µ−λ) = 10.
  TestContext ctx;
  FifoDelaying fifo(std::make_unique<ExponentialDelay>(5.0));  // 1/µ = 5
  constexpr int kPackets = 20000;
  double at = 0.0;
  std::vector<double> arrivals;
  sim::RandomStream traffic(7);
  for (int i = 0; i < kPackets; ++i) {
    at += traffic.exponential_rate(0.1);
    arrivals.push_back(at);
    ctx.simulator().schedule_at(at, [&fifo, &ctx, i] {
      fifo.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
    });
  }
  ctx.simulator().run();
  metrics::StreamingStats sojourn;
  for (const auto& [departed, packet] : ctx.transmitted()) {
    sojourn.add(departed - arrivals[packet.uid]);
  }
  EXPECT_NEAR(sojourn.mean(), 10.0, 0.7);
}

TEST(FifoDelaying, ValidatesDistribution) {
  EXPECT_THROW(FifoDelaying(nullptr), std::invalid_argument);
}

TEST(TimedPoolMix, FlushesAllButPoolKeep) {
  TestContext ctx;
  TimedPoolMix mix(10.0, 2);
  for (std::uint64_t uid = 0; uid < 7; ++uid) {
    mix.on_packet(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(mix.buffered(), 7u);
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), 5u);  // 7 - pool_keep
  EXPECT_EQ(mix.buffered(), 2u);            // retained pool
  EXPECT_EQ(mix.flushes(), 1u);
  for (const auto& [at, packet] : ctx.transmitted()) {
    EXPECT_DOUBLE_EQ(at, 10.0);  // single batch at the flush instant
  }
}

TEST(TimedPoolMix, ZeroKeepDeliversEverything) {
  TestContext ctx;
  TimedPoolMix mix(5.0, 0);
  for (std::uint64_t uid = 0; uid < 10; ++uid) {
    mix.on_packet(ctx.make_packet(uid), ctx);
  }
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), 10u);
  EXPECT_EQ(mix.buffered(), 0u);
}

TEST(TimedPoolMix, RetainedPacketsLeaveOnLaterFlushes) {
  TestContext ctx;
  TimedPoolMix mix(5.0, 1);
  mix.on_packet(ctx.make_packet(0), ctx);
  mix.on_packet(ctx.make_packet(1), ctx);
  ctx.simulator().run();  // first flush at t=5: one of {0,1} leaves
  EXPECT_EQ(ctx.transmitted().size(), 1u);
  // New arrival re-arms the timer; the next flush releases one more.
  ctx.simulator().schedule_at(20.0, [&] {
    mix.on_packet(ctx.make_packet(2), ctx);
  });
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), 2u);
  EXPECT_EQ(mix.buffered(), 1u);
  EXPECT_EQ(mix.flushes(), 2u);
}

TEST(TimedPoolMix, FlushOrderIsRandomized) {
  // Over many trials, the first transmitted packet must not always be the
  // first arrival (batch output order carries no arrival information).
  int first_wins = 0;
  for (int trial = 0; trial < 100; ++trial) {
    TestContext ctx(static_cast<std::uint64_t>(trial));
    TimedPoolMix mix(1.0, 0);
    for (std::uint64_t uid = 0; uid < 4; ++uid) {
      mix.on_packet(ctx.make_packet(uid), ctx);
    }
    ctx.simulator().run();
    if (ctx.transmitted().front().second.uid == 0) ++first_wins;
  }
  EXPECT_GT(first_wins, 5);
  EXPECT_LT(first_wins, 60);
}

TEST(TimedPoolMix, SimulationTerminatesWithIdlePool) {
  // A pool holding fewer than pool_keep packets must not spin the clock.
  TestContext ctx;
  TimedPoolMix mix(1.0, 5);
  mix.on_packet(ctx.make_packet(0), ctx);
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), 0u);
  EXPECT_EQ(mix.buffered(), 1u);
  EXPECT_LT(ctx.simulator().now(), 2.0);  // one tick, then quiescent
}

TEST(TimedPoolMix, ValidatesInterval) {
  EXPECT_THROW(TimedPoolMix(0.0, 1), std::invalid_argument);
}

TEST(ComparatorFactories, ProduceWorkingDisciplines) {
  auto fifo = fifo_exponential_factory(10.0)(0, 1);
  EXPECT_NE(dynamic_cast<FifoDelaying*>(fifo.get()), nullptr);
  auto mix = timed_pool_mix_factory(5.0, 3)(0, 1);
  EXPECT_NE(dynamic_cast<TimedPoolMix*>(mix.get()), nullptr);
}

}  // namespace
}  // namespace tempriv::core
