// Property sweep: RCAD invariants under randomized traffic, across a grid
// of (capacity, traffic intensity, delay mean) operating points.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/disciplines.h"
#include "test_context.h"

namespace tempriv::core {
namespace {

using testing::TestContext;

class RcadPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t /*capacity*/, double /*interarrival*/,
                     double /*mean_delay*/>> {};

TEST_P(RcadPropertyTest, InvariantsHoldUnderRandomTraffic) {
  const auto [capacity, interarrival, mean_delay] = GetParam();
  TestContext ctx(capacity * 1000 +
                  static_cast<std::uint64_t>(interarrival * 10));
  RcadDiscipline rcad(std::make_unique<ExponentialDelay>(mean_delay), capacity);

  constexpr int kPackets = 2000;
  sim::RandomStream traffic(99);
  double at = 0.0;
  std::size_t max_buffered = 0;
  for (int i = 0; i < kPackets; ++i) {
    at += traffic.exponential_mean(interarrival);
    ctx.simulator().schedule_at(at, [&rcad, &ctx, &max_buffered, i] {
      rcad.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
      max_buffered = std::max(max_buffered, rcad.buffered());
    });
  }
  ctx.simulator().run();

  // Invariant 1: the buffer never exceeds its capacity.
  EXPECT_LE(max_buffered, capacity);
  // Invariant 2: conservation — every packet transmitted exactly once.
  EXPECT_EQ(ctx.transmitted().size(), static_cast<std::size_t>(kPackets));
  EXPECT_EQ(rcad.buffered(), 0u);
  // Invariant 3: RCAD never drops.
  EXPECT_EQ(rcad.drops(), 0u);
  // Invariant 4: each transmitted uid is unique.
  std::vector<bool> seen(kPackets, false);
  for (const auto& [time, packet] : ctx.transmitted()) {
    ASSERT_LT(packet.uid, static_cast<std::uint64_t>(kPackets));
    EXPECT_FALSE(seen[packet.uid]) << "duplicate transmission " << packet.uid;
    seen[packet.uid] = true;
  }
  // Invariant 5: transmissions never precede arrivals (causality). The
  // i-th packet arrives at its scheduled time; its transmit time must not
  // be earlier. Verified via the simulator clock ordering of transmit
  // records, which are appended in non-decreasing time order.
  for (std::size_t i = 1; i < ctx.transmitted().size(); ++i) {
    EXPECT_GE(ctx.transmitted()[i].first, ctx.transmitted()[i - 1].first);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, RcadPropertyTest,
    ::testing::Combine(
        ::testing::Values(std::size_t{1}, std::size_t{3}, std::size_t{10},
                          std::size_t{32}),
        ::testing::Values(0.5, 2.0, 10.0),   // inter-arrival
        ::testing::Values(5.0, 30.0)));      // mean privacy delay

class DropTailPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(DropTailPropertyTest, ConservationWithDrops) {
  const auto [capacity, interarrival] = GetParam();
  TestContext ctx(7);
  DropTailDelaying droptail(std::make_unique<ExponentialDelay>(20.0), capacity);
  constexpr int kPackets = 2000;
  sim::RandomStream traffic(5);
  double at = 0.0;
  for (int i = 0; i < kPackets; ++i) {
    at += traffic.exponential_mean(interarrival);
    ctx.simulator().schedule_at(at, [&droptail, &ctx, i] {
      droptail.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
    });
  }
  ctx.simulator().run();
  // transmitted + dropped = offered; buffer drains completely.
  EXPECT_EQ(ctx.transmitted().size() + droptail.drops(),
            static_cast<std::size_t>(kPackets));
  EXPECT_EQ(droptail.buffered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, DropTailPropertyTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{5},
                                         std::size_t{20}),
                       ::testing::Values(0.5, 4.0)));

}  // namespace
}  // namespace tempriv::core
