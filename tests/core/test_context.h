#pragma once

#include <utility>
#include <vector>

#include "net/forwarding.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace tempriv::core::testing {

/// Minimal NodeContext for unit-testing disciplines without a Network:
/// records every transmission with its simulation time.
class TestContext final : public net::NodeContext {
 public:
  explicit TestContext(std::uint64_t seed = 42) : rng_(seed) {}

  sim::Simulator& simulator() noexcept override { return sim_; }
  sim::RandomStream& rng() noexcept override { return rng_; }
  net::NodeId id() const noexcept override { return 3; }
  std::uint16_t hops_to_sink() const noexcept override { return 5; }

  void transmit(net::Packet&& packet) override {
    transmitted_.emplace_back(sim_.now(), std::move(packet));
  }

  const std::vector<std::pair<double, net::Packet>>& transmitted() const {
    return transmitted_;
  }

  net::Packet make_packet(std::uint64_t uid) const {
    net::Packet packet;
    packet.uid = uid;
    packet.header.origin = 1;
    return packet;
  }

 private:
  sim::Simulator sim_;
  sim::RandomStream rng_;
  std::vector<std::pair<double, net::Packet>> transmitted_;
};

}  // namespace tempriv::core::testing
