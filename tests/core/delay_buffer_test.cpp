#include "core/delay_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "test_context.h"

namespace tempriv::core {
namespace {

using testing::TestContext;

TEST(DelayBuffer, RequiresDistribution) {
  EXPECT_THROW(DelayBuffer(nullptr), std::invalid_argument);
}

TEST(DelayBuffer, ReleasesAfterSampledDelay) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(4.0));
  buffer.admit(ctx.make_packet(1), ctx);
  EXPECT_EQ(buffer.size(), 1u);
  ctx.simulator().run();
  ASSERT_EQ(ctx.transmitted().size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.transmitted()[0].first, 4.0);
  EXPECT_EQ(ctx.transmitted()[0].second.uid, 1u);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(DelayBuffer, HeldEntriesRecordReleaseTimes) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(10.0));
  buffer.admit(ctx.make_packet(7), ctx);
  ASSERT_EQ(buffer.held().size(), 1u);
  EXPECT_DOUBLE_EQ(buffer.held()[0].enqueue_time, 0.0);
  EXPECT_DOUBLE_EQ(buffer.held()[0].release_time, 10.0);
  EXPECT_EQ(buffer.held()[0].packet.uid, 7u);
}

TEST(DelayBuffer, EjectCancelsScheduledRelease) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(4.0));
  buffer.admit(ctx.make_packet(1), ctx);
  const net::Packet packet = buffer.eject(0, ctx);
  EXPECT_EQ(packet.uid, 1u);
  EXPECT_EQ(buffer.size(), 0u);
  ctx.simulator().run();
  // The release event was cancelled: nothing transmits.
  EXPECT_TRUE(ctx.transmitted().empty());
}

TEST(DelayBuffer, EjectValidatesIndex) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(1.0));
  EXPECT_THROW(buffer.eject(0, ctx), std::out_of_range);
}

TEST(DelayBuffer, MultiplePacketsReleaseIndependently) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(5.0));
  for (std::uint64_t uid = 0; uid < 20; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(buffer.size(), 20u);
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), 20u);
  EXPECT_EQ(buffer.size(), 0u);
  // Releases are in time order (EventQueue contract).
  for (std::size_t i = 1; i < ctx.transmitted().size(); ++i) {
    EXPECT_GE(ctx.transmitted()[i].first, ctx.transmitted()[i - 1].first);
  }
}

TEST(DelayBuffer, ExponentialDelaysCanReorderPackets) {
  // §3.2: independent exponential delays do not preserve creation order —
  // with enough packets at least one pair must swap.
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 50; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  ctx.simulator().run();
  bool reordered = false;
  for (std::size_t i = 1; i < ctx.transmitted().size(); ++i) {
    if (ctx.transmitted()[i].second.uid <
        ctx.transmitted()[i - 1].second.uid) {
      reordered = true;
      break;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST(SelectVictim, ShortestRemainingPicksClosestToDeparture) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 5; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  const std::size_t victim = select_victim(
      buffer.held(), VictimPolicy::kShortestRemaining, 0.0, ctx.rng());
  for (std::size_t i = 0; i < buffer.held().size(); ++i) {
    EXPECT_LE(buffer.held()[victim].release_time, buffer.held()[i].release_time);
  }
}

TEST(SelectVictim, LongestRemainingIsOpposite) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 5; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  const std::size_t victim = select_victim(
      buffer.held(), VictimPolicy::kLongestRemaining, 0.0, ctx.rng());
  for (std::size_t i = 0; i < buffer.held().size(); ++i) {
    EXPECT_GE(buffer.held()[victim].release_time, buffer.held()[i].release_time);
  }
}

TEST(SelectVictim, OldestPicksEarliestEnqueue) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(100.0));
  buffer.admit(ctx.make_packet(0), ctx);
  ctx.simulator().schedule_after(1.0, [&] {
    buffer.admit(ctx.make_packet(1), ctx);
  });
  ctx.simulator().run_until(2.0);
  const std::size_t victim =
      select_victim(buffer.held(), VictimPolicy::kOldest, 2.0, ctx.rng());
  EXPECT_EQ(buffer.held()[victim].packet.uid, 0u);
}

TEST(SelectVictim, RandomIsInRangeAndCoversBuffer) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 4; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::size_t victim =
        select_victim(buffer.held(), VictimPolicy::kRandom, 0.0, ctx.rng());
    ASSERT_LT(victim, 4u);
    seen.insert(victim);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(SelectVictim, RejectsEmptyBuffer) {
  TestContext ctx;
  EXPECT_THROW(
      select_victim({}, VictimPolicy::kShortestRemaining, 0.0, ctx.rng()),
      std::invalid_argument);
}

TEST(VictimPolicy, ToStringCoversAll) {
  EXPECT_STREQ(to_string(VictimPolicy::kShortestRemaining), "shortest-remaining");
  EXPECT_STREQ(to_string(VictimPolicy::kLongestRemaining), "longest-remaining");
  EXPECT_STREQ(to_string(VictimPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(VictimPolicy::kOldest), "oldest");
}

}  // namespace
}  // namespace tempriv::core
