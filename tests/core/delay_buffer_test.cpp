#include "core/delay_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "test_context.h"

namespace tempriv::core {
namespace {

using testing::TestContext;

TEST(DelayBuffer, RequiresDistribution) {
  EXPECT_THROW(DelayBuffer(nullptr), std::invalid_argument);
}

TEST(DelayBuffer, ReleasesAfterSampledDelay) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(4.0));
  buffer.admit(ctx.make_packet(1), ctx);
  EXPECT_EQ(buffer.size(), 1u);
  ctx.simulator().run();
  ASSERT_EQ(ctx.transmitted().size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.transmitted()[0].first, 4.0);
  EXPECT_EQ(ctx.transmitted()[0].second.uid, 1u);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(DelayBuffer, SnapshotRecordsReleaseTimes) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(10.0));
  buffer.admit(ctx.make_packet(7), ctx);
  const auto held = buffer.snapshot();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_DOUBLE_EQ(held[0].enqueue_time, 0.0);
  EXPECT_DOUBLE_EQ(held[0].release_time, 10.0);
  EXPECT_EQ(held[0].packet.uid, 7u);
}

TEST(DelayBuffer, SnapshotPreservesAdmissionOrder) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(5.0));
  for (std::uint64_t uid = 0; uid < 8; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  // Ejecting from the middle must keep the remaining relative order, exactly
  // like the pre-slot-pool vector erase did.
  buffer.eject(3, ctx);
  buffer.eject(0, ctx);
  const auto held = buffer.snapshot();
  ASSERT_EQ(held.size(), 6u);
  const std::uint64_t expected[] = {1, 2, 4, 5, 6, 7};
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].packet.uid, expected[i]);
  }
}

TEST(DelayBuffer, EjectCancelsScheduledRelease) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(4.0));
  buffer.admit(ctx.make_packet(1), ctx);
  const net::Packet packet = buffer.eject(0, ctx);
  EXPECT_EQ(packet.uid, 1u);
  EXPECT_EQ(buffer.size(), 0u);
  ctx.simulator().run();
  // The release event was cancelled: nothing transmits.
  EXPECT_TRUE(ctx.transmitted().empty());
}

TEST(DelayBuffer, EjectValidatesIndex) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(1.0));
  EXPECT_THROW(buffer.eject(0, ctx), std::out_of_range);
}

TEST(DelayBuffer, SlotsAreRecycledAcrossAdmissions) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(1.0));
  buffer.reserve(4);
  // Churn far more packets than the working set; every one must come back
  // out exactly once even though slots (and their release events) recycle.
  for (std::uint64_t uid = 0; uid < 100; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
    if (buffer.size() > 3) buffer.preempt(ctx);
    ctx.simulator().run_until(ctx.simulator().now() + 0.25);
  }
  ctx.simulator().run();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(DelayBuffer, MultiplePacketsReleaseIndependently) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(5.0));
  for (std::uint64_t uid = 0; uid < 20; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  EXPECT_EQ(buffer.size(), 20u);
  ctx.simulator().run();
  EXPECT_EQ(ctx.transmitted().size(), 20u);
  EXPECT_EQ(buffer.size(), 0u);
  // Releases are in time order (EventQueue contract).
  for (std::size_t i = 1; i < ctx.transmitted().size(); ++i) {
    EXPECT_GE(ctx.transmitted()[i].first, ctx.transmitted()[i - 1].first);
  }
}

TEST(DelayBuffer, ExponentialDelaysCanReorderPackets) {
  // §3.2: independent exponential delays do not preserve creation order —
  // with enough packets at least one pair must swap.
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 50; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  ctx.simulator().run();
  bool reordered = false;
  for (std::size_t i = 1; i < ctx.transmitted().size(); ++i) {
    if (ctx.transmitted()[i].second.uid <
        ctx.transmitted()[i - 1].second.uid) {
      reordered = true;
      break;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST(SelectVictim, ShortestRemainingPicksClosestToDeparture) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 5; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  const auto held = buffer.snapshot();
  const std::size_t victim =
      select_victim(held, VictimPolicy::kShortestRemaining, 0.0, ctx.rng());
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_LE(held[victim].release_time, held[i].release_time);
  }
}

TEST(SelectVictim, LongestRemainingIsOpposite) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 5; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  const auto held = buffer.snapshot();
  const std::size_t victim =
      select_victim(held, VictimPolicy::kLongestRemaining, 0.0, ctx.rng());
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_GE(held[victim].release_time, held[i].release_time);
  }
}

TEST(SelectVictim, OldestPicksEarliestEnqueue) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(100.0));
  buffer.admit(ctx.make_packet(0), ctx);
  ctx.simulator().schedule_after(1.0, [&] {
    buffer.admit(ctx.make_packet(1), ctx);
  });
  ctx.simulator().run_until(2.0);
  const auto held = buffer.snapshot();
  const std::size_t victim =
      select_victim(held, VictimPolicy::kOldest, 2.0, ctx.rng());
  EXPECT_EQ(held[victim].packet.uid, 0u);
}

TEST(SelectVictim, RandomIsInRangeAndCoversBuffer) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0));
  for (std::uint64_t uid = 0; uid < 4; ++uid) {
    buffer.admit(ctx.make_packet(uid), ctx);
  }
  const auto held = buffer.snapshot();
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::size_t victim =
        select_victim(held, VictimPolicy::kRandom, 0.0, ctx.rng());
    ASSERT_LT(victim, 4u);
    seen.insert(victim);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(SelectVictim, RejectsEmptyBuffer) {
  TestContext ctx;
  EXPECT_THROW(
      select_victim({}, VictimPolicy::kShortestRemaining, 0.0, ctx.rng()),
      std::invalid_argument);
}

// The indexed preempt() must pick exactly the packet the reference linear
// scan picks — for every policy, across interleaved admits/releases. This is
// the determinism contract that keeps the paper CSVs byte-identical.
class PreemptMatchesReference
    : public ::testing::TestWithParam<VictimPolicy> {};

TEST_P(PreemptMatchesReference, AcrossChurn) {
  const VictimPolicy policy = GetParam();
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ExponentialDelay>(10.0), policy);
  std::uint64_t uid = 0;
  for (int round = 0; round < 200; ++round) {
    buffer.admit(ctx.make_packet(uid++), ctx);
    if (buffer.size() >= 6) {
      // Reference choice on a snapshot, with a cloned RNG so preempt() sees
      // the same uniform draw the reference consumed.
      const auto held = buffer.snapshot();
      sim::RandomStream reference_rng = ctx.rng();
      const std::size_t expected_index = select_victim(
          held, policy, ctx.simulator().now(), reference_rng);
      const std::uint64_t expected_uid = held[expected_index].packet.uid;
      const net::Packet victim = buffer.preempt(ctx);
      EXPECT_EQ(victim.uid, expected_uid) << "round " << round;
    }
    // Let some natural releases fire so the structures churn.
    ctx.simulator().run_until(ctx.simulator().now() + 1.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PreemptMatchesReference,
                         ::testing::Values(VictimPolicy::kShortestRemaining,
                                           VictimPolicy::kLongestRemaining,
                                           VictimPolicy::kRandom,
                                           VictimPolicy::kOldest),
                         [](const auto& info) {
                           switch (info.param) {
                             case VictimPolicy::kShortestRemaining:
                               return "ShortestRemaining";
                             case VictimPolicy::kLongestRemaining:
                               return "LongestRemaining";
                             case VictimPolicy::kRandom:
                               return "Random";
                             case VictimPolicy::kOldest:
                               return "Oldest";
                           }
                           return "Unknown";
                         });

TEST(DelayBufferPreempt, ThrowsOnEmptyBuffer) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(1.0));
  EXPECT_THROW(buffer.preempt(ctx), std::logic_error);
}

TEST(DelayBufferPreempt, CancelsTheVictimsRelease) {
  TestContext ctx;
  DelayBuffer buffer(std::make_unique<ConstantDelay>(5.0),
                     VictimPolicy::kShortestRemaining);
  buffer.admit(ctx.make_packet(0), ctx);
  buffer.admit(ctx.make_packet(1), ctx);
  const net::Packet victim = buffer.preempt(ctx);
  EXPECT_EQ(victim.uid, 0u);  // equal release times: first admitted wins
  ctx.simulator().run();
  // Only the survivor's release fires.
  ASSERT_EQ(ctx.transmitted().size(), 1u);
  EXPECT_EQ(ctx.transmitted()[0].second.uid, 1u);
}

TEST(VictimPolicy, ToStringCoversAll) {
  EXPECT_STREQ(to_string(VictimPolicy::kShortestRemaining), "shortest-remaining");
  EXPECT_STREQ(to_string(VictimPolicy::kLongestRemaining), "longest-remaining");
  EXPECT_STREQ(to_string(VictimPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(VictimPolicy::kOldest), "oldest");
}

}  // namespace
}  // namespace tempriv::core
