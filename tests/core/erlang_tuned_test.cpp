#include "core/erlang_tuned.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/disciplines.h"
#include "metrics/stats.h"
#include "queueing/erlang.h"
#include "test_context.h"

namespace tempriv::core {
namespace {

using testing::TestContext;

ErlangTunedRcad::Config default_config() {
  ErlangTunedRcad::Config config;
  config.capacity = 10;
  config.target_loss = 0.1;
  config.max_mean_delay = 120.0;
  config.ewma_weight = 0.1;
  return config;
}

void drive_poisson(ErlangTunedRcad& node, TestContext& ctx, double rate,
                   int packets, std::uint64_t seed) {
  sim::RandomStream traffic(seed);
  double at = 0.0;
  for (int i = 0; i < packets; ++i) {
    at += traffic.exponential_rate(rate);
    ctx.simulator().schedule_at(at, [&node, &ctx, i] {
      node.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
    });
  }
  ctx.simulator().run();
}

TEST(ErlangTunedRcad, StartsAtMaxDelayAndConvergesToDimensionedMean) {
  TestContext ctx(1);
  ErlangTunedRcad node(default_config());
  EXPECT_DOUBLE_EQ(node.current_mean_delay(), 120.0);
  // λ = 0.5, k = 10, α = 0.1: ρ* = E⁻¹(0.1, 10) ≈ 7.51 -> mean ≈ 15.
  drive_poisson(node, ctx, 0.5, 4000, 2);
  const double rho_star = queueing::max_rho_for_loss(0.1, 10);
  // The EWMA snapshot jitters (CV ≈ sqrt(weight/2) ≈ 22%); assert the
  // operating point, not the instantaneous estimate.
  EXPECT_NEAR(node.rate_estimate(), 0.5, 0.2);
  EXPECT_NEAR(node.current_mean_delay(), rho_star / 0.5,
              rho_star / 0.5 * 0.45);
}

TEST(ErlangTunedRcad, IdleNodeUsesTheDelayCap) {
  TestContext ctx(3);
  ErlangTunedRcad node(default_config());
  // λ = 0.01: the dimensioned mean ρ*/λ ≈ 751 exceeds the 120 cap.
  drive_poisson(node, ctx, 0.01, 300, 4);
  EXPECT_DOUBLE_EQ(node.current_mean_delay(), 120.0);
}

TEST(ErlangTunedRcad, PreemptionRateIsFlatAcrossLoads) {
  // The whole point: the realized preemption rate stays in a narrow band
  // (~2×E(ρ*,k), the RCAD refresh effect — see the header note) across a
  // 25× load range, where static RCAD would collapse into near-certain
  // preemption at the high end.
  double min_rate = 1.0;
  double max_rate = 0.0;
  for (const double rate : {0.2, 0.5, 2.0, 5.0}) {
    TestContext ctx(static_cast<std::uint64_t>(rate * 100));
    ErlangTunedRcad node(default_config());
    drive_poisson(node, ctx, rate, 6000, 5);
    const double preemption_rate =
        static_cast<double>(node.preemptions()) / 6000.0;
    EXPECT_LT(preemption_rate, 0.3) << "rate " << rate;
    EXPECT_EQ(ctx.transmitted().size(), 6000u) << "rate " << rate;
    min_rate = std::min(min_rate, preemption_rate);
    max_rate = std::max(max_rate, preemption_rate);
  }
  EXPECT_LT(max_rate / min_rate, 1.5);

  // Contrast: static RCAD dimensioned for λ = 0.25 (mean 30), offered
  // λ = 5 — nearly every arrival preempts.
  TestContext ctx(77);
  RcadDiscipline static_node(std::make_unique<ExponentialDelay>(30.0), 10);
  sim::RandomStream traffic(5);
  double at = 0.0;
  for (int i = 0; i < 6000; ++i) {
    at += traffic.exponential_rate(5.0);
    ctx.simulator().schedule_at(at, [&static_node, &ctx, i] {
      static_node.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)),
                            ctx);
    });
  }
  ctx.simulator().run();
  EXPECT_GT(static_cast<double>(static_node.preemptions()) / 6000.0, 0.6);
}

TEST(ErlangTunedRcad, DeliversMoreDelayThanStaticRcadAtLowLoad) {
  // At λ = 0.1 a static 1/µ = 30 node delays by 30 on average; the tuned
  // node stretches toward the 120 cap.
  TestContext ctx(6);
  ErlangTunedRcad node(default_config());
  drive_poisson(node, ctx, 0.1, 3000, 7);
  metrics::StreamingStats holding;
  // Transmission time − scheduled arrival index is awkward here; instead
  // verify the steady-state mean delay parameter directly.
  EXPECT_GT(node.current_mean_delay(), 70.0);
  (void)holding;
}

TEST(ErlangTunedRcad, BufferNeverExceedsCapacity) {
  TestContext ctx(8);
  ErlangTunedRcad node(default_config());
  sim::RandomStream traffic(9);
  double at = 0.0;
  std::size_t max_buffered = 0;
  for (int i = 0; i < 3000; ++i) {
    at += traffic.exponential_rate(4.0);  // heavy overload
    ctx.simulator().schedule_at(at, [&node, &ctx, &max_buffered, i] {
      node.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
      max_buffered = std::max(max_buffered, node.buffered());
    });
  }
  ctx.simulator().run();
  EXPECT_LE(max_buffered, default_config().capacity);
  EXPECT_EQ(ctx.transmitted().size(), 3000u);
}

TEST(ErlangTunedRcad, ValidatesConfig) {
  ErlangTunedRcad::Config bad = default_config();
  bad.capacity = 0;
  EXPECT_THROW(ErlangTunedRcad{bad}, std::invalid_argument);
  bad = default_config();
  bad.target_loss = 1.0;
  EXPECT_THROW(ErlangTunedRcad{bad}, std::invalid_argument);
  bad = default_config();
  bad.max_mean_delay = 0.0;
  EXPECT_THROW(ErlangTunedRcad{bad}, std::invalid_argument);
  bad = default_config();
  bad.ewma_weight = 0.0;
  EXPECT_THROW(ErlangTunedRcad{bad}, std::invalid_argument);
}

TEST(ErlangTunedRcad, FactoryProducesIndependentNodes) {
  const auto factory = erlang_tuned_rcad_factory(default_config());
  auto a = factory(0, 5);
  auto b = factory(1, 3);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->buffered(), 0u);
}

}  // namespace
}  // namespace tempriv::core
