#include "queueing/dimensioning.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "queueing/erlang.h"

namespace tempriv::queueing {
namespace {

TEST(AggregateRates, LineTopologyAccumulatesTowardSink) {
  // 0 -> 1 -> 2 -> 3(sink); only node 0 sources traffic.
  RoutingTree tree{{1, 2, 3, kNoParent}};
  const auto rates = aggregate_rates(tree, {0.5, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 0.5);
  EXPECT_DOUBLE_EQ(rates[3], 0.5);
}

TEST(AggregateRates, TreeSuperposesChildFlows) {
  // Two leaves (0, 1) -> relay 2 -> sink 3; relay also sources traffic.
  RoutingTree tree{{2, 2, 3, kNoParent}};
  const auto rates = aggregate_rates(tree, {0.2, 0.3, 0.1, 0.0});
  EXPECT_DOUBLE_EQ(rates[2], 0.2 + 0.3 + 0.1);
  EXPECT_DOUBLE_EQ(rates[3], 0.6);
}

TEST(AggregateRates, PaperFigure1ShapedTree) {
  // Four branches with a shared trunk: trunk nodes carry all four flows.
  // Layout: sources 0..3 -> trunk 4 -> trunk 5 -> sink 6.
  RoutingTree tree{{4, 4, 4, 4, 5, 6, kNoParent}};
  const auto rates = aggregate_rates(tree, {0.5, 0.5, 0.5, 0.5, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(rates[4], 2.0);
  EXPECT_DOUBLE_EQ(rates[5], 2.0);
  EXPECT_DOUBLE_EQ(rates[6], 2.0);
}

TEST(AggregateRates, ValidatesInput) {
  RoutingTree tree{{1, kNoParent}};
  EXPECT_THROW(aggregate_rates(tree, {1.0}), std::invalid_argument);  // size
  EXPECT_THROW(aggregate_rates(tree, {-1.0, 0.0}), std::invalid_argument);
  RoutingTree cyclic{{1, 0}};
  EXPECT_THROW(aggregate_rates(cyclic, {1.0, 0.0}), std::invalid_argument);
  RoutingTree bad_parent{{5, kNoParent}};
  EXPECT_THROW(aggregate_rates(bad_parent, {1.0, 0.0}), std::invalid_argument);
}

TEST(DimensionMuForLoss, HitsTargetLossAtEveryNode) {
  const std::vector<double> rates{0.5, 2.0, 0.0, 8.0};
  const auto mus = dimension_mu_for_loss(rates, 10, 0.1);
  ASSERT_EQ(mus.size(), rates.size());
  EXPECT_DOUBLE_EQ(mus[2], 0.0);  // idle node delays nothing
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_NEAR(erlang_loss(rates[i] / mus[i], 10), 0.1, 1e-8) << "node " << i;
  }
}

TEST(DimensionMuForLoss, BusierNodesUseShorterDelays) {
  const auto mus = dimension_mu_for_loss({0.5, 4.0}, 10, 0.1);
  EXPECT_GT(1.0 / mus[0], 1.0 / mus[1]);  // mean delay shrinks with traffic
}

TEST(DecomposePathDelay, UniformSplit) {
  const auto split = decompose_path_delay(90.0, 3, 0.0);
  ASSERT_EQ(split.size(), 3u);
  for (double d : split) EXPECT_DOUBLE_EQ(d, 30.0);
}

TEST(DecomposePathDelay, SinkWeightingShiftsDelayAwayFromSink) {
  const auto split = decompose_path_delay(90.0, 3, 1.0);
  ASSERT_EQ(split.size(), 3u);
  // Element 0 is source-adjacent and must carry the most delay.
  EXPECT_GT(split[0], split[1]);
  EXPECT_GT(split[1], split[2]);
  EXPECT_NEAR(split[0] + split[1] + split[2], 90.0, 1e-9);
}

TEST(DecomposePathDelay, AlwaysSumsToTotal) {
  for (double weighting : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (std::size_t hops : {1u, 2u, 7u, 22u}) {
      const auto split = decompose_path_delay(120.0, hops, weighting);
      const double sum = std::accumulate(split.begin(), split.end(), 0.0);
      EXPECT_NEAR(sum, 120.0, 1e-9) << weighting << " " << hops;
    }
  }
}

TEST(DecomposePathDelay, EdgeCases) {
  EXPECT_TRUE(decompose_path_delay(10.0, 0, 0.5).empty());
  EXPECT_THROW(decompose_path_delay(-1.0, 3, 0.0), std::invalid_argument);
  EXPECT_THROW(decompose_path_delay(10.0, 3, 1.5), std::invalid_argument);
  const auto single = decompose_path_delay(10.0, 1, 1.0);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 10.0);
}

TEST(ExpectedNetworkBuffering, SumsRho) {
  // Σ λi/µi, the M/M/∞ expected total occupancy.
  const double total = expected_network_buffering({1.0, 2.0, 0.0},
                                                  {0.5, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(total, 1.0 / 0.5 + 2.0 / 1.0);
}

TEST(ExpectedNetworkBuffering, Validates) {
  EXPECT_THROW(expected_network_buffering({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(expected_network_buffering({1.0}, {0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::queueing
