#include "queueing/erlang.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace tempriv::queueing {
namespace {

TEST(PoissonPmf, MatchesClosedFormSmallK) {
  const double rho = 2.5;
  EXPECT_NEAR(poisson_pmf(rho, 0), std::exp(-rho), 1e-12);
  EXPECT_NEAR(poisson_pmf(rho, 1), rho * std::exp(-rho), 1e-12);
  EXPECT_NEAR(poisson_pmf(rho, 2), rho * rho / 2.0 * std::exp(-rho), 1e-12);
}

TEST(PoissonPmf, SumsToOne) {
  const double rho = 7.0;
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) sum += poisson_pmf(rho, k);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(PoissonPmf, ZeroRhoIsPointMass) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(0.0, 3), 0.0);
}

TEST(PoissonPmf, RejectsNegativeRho) {
  EXPECT_THROW(poisson_pmf(-1.0, 0), std::invalid_argument);
}

TEST(PoissonCdf, MatchesPartialSums) {
  const double rho = 4.2;
  double sum = 0.0;
  for (std::uint64_t k = 0; k <= 10; ++k) {
    sum += poisson_pmf(rho, k);
    EXPECT_NEAR(poisson_cdf(rho, k), sum, 1e-10) << "k=" << k;
  }
}

TEST(ErlangLoss, ClosedFormForOneSlot) {
  // E(ρ, 1) = ρ / (1 + ρ).
  for (double rho : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(erlang_loss(rho, 1), rho / (1.0 + rho), 1e-12) << rho;
  }
}

TEST(ErlangLoss, ClosedFormForTwoSlots) {
  // E(ρ, 2) = (ρ²/2) / (1 + ρ + ρ²/2).
  const double rho = 3.0;
  const double expected = (rho * rho / 2.0) / (1.0 + rho + rho * rho / 2.0);
  EXPECT_NEAR(erlang_loss(rho, 2), expected, 1e-12);
}

TEST(ErlangLoss, ZeroSlotsMeansCertainLoss) {
  EXPECT_DOUBLE_EQ(erlang_loss(1.5, 0), 1.0);
}

TEST(ErlangLoss, ZeroTrafficMeansNoLoss) {
  EXPECT_DOUBLE_EQ(erlang_loss(0.0, 5), 0.0);
}

TEST(ErlangLoss, MatchesDirectFormulaForModerateSizes) {
  // Direct evaluation of Eq. (5) for comparison.
  const double rho = 6.0;
  const std::uint64_t k = 10;
  double numerator = 1.0;
  double denominator = 1.0;
  double term = 1.0;
  for (std::uint64_t i = 1; i <= k; ++i) {
    term *= rho / static_cast<double>(i);
    denominator += term;
  }
  numerator = term;
  EXPECT_NEAR(erlang_loss(rho, k), numerator / denominator, 1e-12);
}

class ErlangMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ErlangMonotonicityTest, IncreasingInRhoDecreasingInK) {
  const auto [rho, k] = GetParam();
  // More offered traffic -> more loss.
  EXPECT_LT(erlang_loss(rho, k), erlang_loss(rho * 1.5, k));
  // More buffer slots -> less loss.
  EXPECT_GT(erlang_loss(rho, k), erlang_loss(rho, k + 1));
  // Always a probability.
  EXPECT_GE(erlang_loss(rho, k), 0.0);
  EXPECT_LE(erlang_loss(rho, k), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ErlangMonotonicityTest,
    ::testing::Combine(::testing::Values(0.25, 1.0, 5.0, 15.0, 60.0),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{5},
                                         std::uint64_t{10}, std::uint64_t{40})));

TEST(MmkkOccupancy, PmfIsTruncatedPoisson) {
  const double rho = 3.0;
  const std::uint64_t k = 5;
  double sum = 0.0;
  for (std::uint64_t n = 0; n <= k; ++n) sum += mmkk_occupancy_pmf(rho, k, n);
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_DOUBLE_EQ(mmkk_occupancy_pmf(rho, k, k + 1), 0.0);
  // PASTA: the blocking probability equals P{N = k}.
  EXPECT_NEAR(mmkk_occupancy_pmf(rho, k, k), erlang_loss(rho, k), 1e-10);
}

TEST(MmkkOccupancy, ExpectedOccupancyIsCarriedLoad) {
  const double rho = 8.0;
  const std::uint64_t k = 10;
  // N̄ = ρ(1 − E(ρ,k)); cross-check against the PMF.
  double direct = 0.0;
  for (std::uint64_t n = 0; n <= k; ++n) {
    direct += static_cast<double>(n) * mmkk_occupancy_pmf(rho, k, n);
  }
  EXPECT_NEAR(mmkk_expected_occupancy(rho, k), direct, 1e-9);
}

TEST(MaxRhoForLoss, InvertsErlangLoss) {
  for (std::uint64_t k : {1u, 5u, 10u, 20u}) {
    for (double alpha : {0.01, 0.1, 0.5}) {
      const double rho = max_rho_for_loss(alpha, k);
      EXPECT_NEAR(erlang_loss(rho, k), alpha, 1e-9)
          << "k=" << k << " alpha=" << alpha;
    }
  }
}

TEST(MaxRhoForLoss, ValidatesTarget) {
  EXPECT_THROW(max_rho_for_loss(0.0, 5), std::invalid_argument);
  EXPECT_THROW(max_rho_for_loss(1.0, 5), std::invalid_argument);
}

TEST(MuForTargetLoss, ScalesLinearlyWithLambda) {
  // The paper's adaptive dimensioning: doubling λ doubles the required µ
  // (the admissible ρ depends only on k and α).
  const double mu1 = mu_for_target_loss(1.0, 10, 0.1);
  const double mu2 = mu_for_target_loss(2.0, 10, 0.1);
  EXPECT_NEAR(mu2, 2.0 * mu1, 1e-9);
}

TEST(MuForTargetLoss, HigherTrafficNeedsShorterDelays) {
  // §4's punchline: as λ grows toward the sink, mean delay 1/µ must shrink
  // to keep the drop rate at α.
  const double low = 1.0 / mu_for_target_loss(0.5, 10, 0.05);
  const double high = 1.0 / mu_for_target_loss(5.0, 10, 0.05);
  EXPECT_GT(low, high);
}

TEST(MuForTargetLoss, RejectsNonPositiveLambda) {
  EXPECT_THROW(mu_for_target_loss(0.0, 10, 0.1), std::invalid_argument);
}

TEST(ErlangLossThreshold, WindowBracketsTheBoundary) {
  for (std::uint64_t k : {1u, 5u, 10u, 40u}) {
    for (double alpha : {0.01, 0.1, 0.5, 0.9}) {
      const ErlangLossThreshold test(alpha, k);
      EXPECT_LT(test.window_lo(), test.window_hi()) << k << " " << alpha;
      EXPECT_LE(erlang_loss(test.window_lo(), k), alpha);
      EXPECT_GT(erlang_loss(test.window_hi(), k), alpha);
      // The fallback window is narrow: certification costs almost nothing.
      EXPECT_LT(test.window_hi() - test.window_lo(),
                1e-6 * std::max(1.0, test.window_hi()));
    }
  }
}

TEST(ErlangLossThreshold, MatchesDirectComputationEverywhere) {
  // Deterministic xorshift corpus of (k, alpha, rho) triples, plus a dense
  // ulp-walk across each certified window: every answer must equal the
  // direct recurrence-and-compare, including inside the fallback band.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t k = 1 + next() % 40;
    const double alpha =
        0.001 + 0.998 * static_cast<double>(next() % 100000) / 100000.0;
    const ErlangLossThreshold test(alpha, k);
    for (int sample = 0; sample < 20; ++sample) {
      const double rho =
          static_cast<double>(next() % 1000000) / 1000.0;  // [0, 1000)
      EXPECT_EQ(test.above(rho), erlang_loss(rho, k) > alpha)
          << "k=" << k << " alpha=" << alpha << " rho=" << rho;
    }
    // Walk straight through the boundary window where the fallback fires.
    double rho = test.window_lo();
    for (int step = 0; step < 64 && rho <= test.window_hi(); ++step) {
      EXPECT_EQ(test.above(rho), erlang_loss(rho, k) > alpha)
          << "k=" << k << " alpha=" << alpha << " rho=" << rho;
      rho = std::nextafter(
          rho + (test.window_hi() - test.window_lo()) / 32.0, 1e308);
    }
    EXPECT_EQ(test.above(test.window_hi()), true);
  }
}

TEST(ErlangLossThreshold, ZeroSlotsAlwaysAboveAndZeroTrafficNeverAbove) {
  const ErlangLossThreshold no_buffer(0.1, 0);
  EXPECT_TRUE(no_buffer.above(0.0));
  EXPECT_TRUE(no_buffer.above(123.0));
  const ErlangLossThreshold ten(0.1, 10);
  EXPECT_FALSE(ten.above(0.0));
}

TEST(ErlangLossThreshold, ValidatesThreshold) {
  EXPECT_THROW(ErlangLossThreshold(0.0, 10), std::invalid_argument);
  EXPECT_THROW(ErlangLossThreshold(1.0, 10), std::invalid_argument);
  EXPECT_THROW(ErlangLossThreshold(-0.5, 10), std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::queueing
