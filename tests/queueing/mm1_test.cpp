#include "queueing/mm1.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/comparators.h"
#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "../core/test_context.h"

namespace tempriv::queueing {
namespace {

TEST(Mm1, ClosedFormsAgree) {
  const double lambda = 0.1;
  const double mu = 0.25;
  EXPECT_DOUBLE_EQ(mm1_utilization(lambda, mu), 0.4);
  EXPECT_DOUBLE_EQ(mm1_mean_occupancy(lambda, mu), 0.4 / 0.6);
  EXPECT_DOUBLE_EQ(mm1_mean_sojourn(lambda, mu), 1.0 / 0.15);
  EXPECT_DOUBLE_EQ(mm1_sojourn_variance(lambda, mu),
                   (1.0 / 0.15) * (1.0 / 0.15));
  // Little's law: L = λ·W.
  EXPECT_NEAR(mm1_mean_occupancy(lambda, mu),
              lambda * mm1_mean_sojourn(lambda, mu), 1e-12);
  // Wait = sojourn − service.
  EXPECT_NEAR(mm1_mean_wait(lambda, mu),
              mm1_mean_sojourn(lambda, mu) - 1.0 / mu, 1e-12);
}

TEST(Mm1, OccupancyPmfIsGeometricAndSumsToOne) {
  const double lambda = 0.3;
  const double mu = 0.5;
  double sum = 0.0;
  for (std::uint64_t n = 0; n < 200; ++n) {
    sum += mm1_occupancy_pmf(lambda, mu, n);
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_DOUBLE_EQ(mm1_occupancy_pmf(lambda, mu, 0), 0.4);
}

TEST(Mm1, ValidatesStability) {
  EXPECT_THROW(mm1_mean_occupancy(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1_mean_sojourn(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1_mean_wait(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1_utilization(-1.0, 1.0), std::invalid_argument);
  // Utilization itself is defined for unstable loads.
  EXPECT_DOUBLE_EQ(mm1_utilization(2.0, 1.0), 2.0);
}

TEST(Mm1, FifoDelayingMatchesTheSojournLaw) {
  // Simulation cross-check: FifoDelaying under Poisson(λ) arrivals is an
  // M/M/1; its simulated sojourn mean and variance match the closed forms.
  const double lambda = 0.12;
  const double mean_service = 5.0;  // µ = 0.2
  const double mu = 1.0 / mean_service;

  core::testing::TestContext ctx(31);
  core::FifoDelaying fifo(std::make_unique<core::ExponentialDelay>(mean_service));
  constexpr int kPackets = 30000;
  sim::RandomStream traffic(32);
  std::vector<double> arrivals;
  double at = 0.0;
  for (int i = 0; i < kPackets; ++i) {
    at += traffic.exponential_rate(lambda);
    arrivals.push_back(at);
    ctx.simulator().schedule_at(at, [&fifo, &ctx, i] {
      fifo.on_packet(ctx.make_packet(static_cast<std::uint64_t>(i)), ctx);
    });
  }
  ctx.simulator().run();

  metrics::StreamingStats sojourn;
  for (const auto& [departed, packet] : ctx.transmitted()) {
    sojourn.add(departed - arrivals[packet.uid]);
  }
  const double expected_mean = mm1_mean_sojourn(lambda, mu);
  const double expected_var = mm1_sojourn_variance(lambda, mu);
  EXPECT_NEAR(sojourn.mean(), expected_mean, expected_mean * 0.05);
  EXPECT_NEAR(sojourn.variance(), expected_var, expected_var * 0.12);
}

TEST(Mm1, SojournVarianceDivergesNearSaturation) {
  // The header's design note: FIFO delay variance blows up as λ -> µ.
  EXPECT_GT(mm1_sojourn_variance(0.99, 1.0),
            100.0 * mm1_sojourn_variance(0.5, 1.0));
}

}  // namespace
}  // namespace tempriv::queueing
