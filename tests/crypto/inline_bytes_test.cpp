#include "crypto/inline_bytes.h"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace tempriv::crypto {
namespace {

TEST(InlineBytes, StartsEmpty) {
  InlineBytes<16> bytes;
  EXPECT_EQ(bytes.size(), 0u);
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(bytes.capacity(), 16u);
}

TEST(InlineBytes, PushBackAndIndex) {
  InlineBytes<4> bytes;
  bytes.push_back(0xAA);
  bytes.push_back(0xBB);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xAA);
  EXPECT_EQ(bytes[1], 0xBB);
}

TEST(InlineBytes, PushBackBeyondCapacityThrows) {
  InlineBytes<2> bytes;
  bytes.push_back(1);
  bytes.push_back(2);
  EXPECT_THROW(bytes.push_back(3), std::length_error);
  EXPECT_EQ(bytes.size(), 2u);  // failed push leaves contents intact
}

TEST(InlineBytes, ResizeZeroFillsGrowth) {
  InlineBytes<8> bytes;
  bytes.push_back(0xFF);
  bytes.resize(4);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0);
  EXPECT_EQ(bytes[2], 0);
  EXPECT_EQ(bytes[3], 0);
}

TEST(InlineBytes, ResizeDownThenUpClearsOldBytes) {
  // Shrinking must not leak the old contents back on regrowth, or a stale
  // ciphertext byte could survive a truncation/extension cycle.
  InlineBytes<8> bytes;
  const std::uint8_t src[] = {1, 2, 3, 4};
  bytes.assign(src);
  bytes.resize(2);
  bytes.resize(4);
  EXPECT_EQ(bytes[2], 0);
  EXPECT_EQ(bytes[3], 0);
}

TEST(InlineBytes, ResizeBeyondCapacityThrows) {
  InlineBytes<4> bytes;
  EXPECT_THROW(bytes.resize(5), std::length_error);
}

TEST(InlineBytes, EqualityComparesSizeAndContents) {
  InlineBytes<8> a, b;
  const std::uint8_t abc[] = {1, 2, 3};
  a.assign(abc);
  b.assign(abc);
  EXPECT_EQ(a, b);
  b.push_back(4);
  EXPECT_NE(a, b);  // same prefix, different size
  InlineBytes<8> c;
  const std::uint8_t abz[] = {1, 2, 9};
  c.assign(abz);
  EXPECT_NE(a, c);  // same size, different contents
}

TEST(InlineBytes, SpanAccessorsCoverExactlySizeBytes) {
  InlineBytes<16> bytes;
  const std::uint8_t src[] = {10, 20, 30};
  bytes.assign(src);
  const auto view = bytes.bytes();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[2], 30);
  bytes.bytes()[1] = 99;  // mutable span writes through
  EXPECT_EQ(bytes[1], 99);
}

TEST(InlineBytes, IsTriviallyCopyableAndMemcpySafe) {
  static_assert(std::is_trivially_copyable_v<InlineBytes<24>>);
  InlineBytes<24> src;
  const std::uint8_t raw[] = {5, 6, 7, 8};
  src.assign(raw);
  InlineBytes<24> dst;
  std::memcpy(&dst, &src, sizeof(src));
  EXPECT_EQ(dst, src);
}

TEST(InlineBytes, ClearResetsSize) {
  InlineBytes<4> bytes;
  const std::uint8_t src[] = {1, 2};
  bytes.assign(src);
  bytes.clear();
  EXPECT_TRUE(bytes.empty());
}

}  // namespace
}  // namespace tempriv::crypto
