#include "crypto/payload.h"

#include <gtest/gtest.h>

#include <cstring>

namespace tempriv::crypto {
namespace {

Speck64_128::Key master_key() {
  Speck64_128::Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  return key;
}

TEST(PayloadCodec, SealOpenRoundTrip) {
  PayloadCodec codec(master_key());
  SensorPayload payload{21.5, 1234, 567.89};
  const SealedPayload sealed = codec.seal(payload, /*origin_id=*/7);
  const auto opened = codec.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(PayloadCodec, CreationTimeIsNotVisibleInCiphertext) {
  // The sealed bytes of two payloads differing only in creation time must
  // differ, and neither may contain the raw little-endian timestamp.
  PayloadCodec codec(master_key());
  SensorPayload a{1.0, 5, 1000.0};
  SensorPayload b{1.0, 5, 2000.0};
  const SealedPayload sa = codec.seal(a, 3);
  const SealedPayload sb = codec.seal(b, 3);
  EXPECT_NE(sa.ciphertext, sb.ciphertext);
}

TEST(PayloadCodec, TamperedCiphertextFailsToOpen) {
  PayloadCodec codec(master_key());
  SealedPayload sealed = codec.seal({3.0, 9, 42.0}, 1);
  sealed.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(codec.open(sealed).has_value());
}

TEST(PayloadCodec, TamperedTagFailsToOpen) {
  PayloadCodec codec(master_key());
  SealedPayload sealed = codec.seal({3.0, 9, 42.0}, 1);
  sealed.tag ^= 0x1ULL;
  EXPECT_FALSE(codec.open(sealed).has_value());
}

TEST(PayloadCodec, WrongLengthFailsToOpen) {
  PayloadCodec codec(master_key());
  SealedPayload sealed = codec.seal({3.0, 9, 42.0}, 1);
  sealed.ciphertext.push_back(0);
  EXPECT_FALSE(codec.open(sealed).has_value());
}

TEST(PayloadCodec, TruncatedCiphertextFailsToOpen) {
  PayloadCodec codec(master_key());
  SealedPayload sealed = codec.seal({3.0, 9, 42.0}, 1);
  for (std::size_t n = 0; n < SensorPayload::kWireBytes; ++n) {
    SealedPayload cut = sealed;
    cut.ciphertext.resize(n);
    EXPECT_FALSE(codec.open(cut).has_value()) << "accepted length " << n;
  }
}

TEST(PayloadCodec, OversizedCiphertextFailsToOpen) {
  PayloadCodec codec(master_key());
  SealedPayload sealed = codec.seal({3.0, 9, 42.0}, 1);
  for (std::size_t n = SensorPayload::kWireBytes + 1;
       n <= SealedPayload::kCiphertextCapacity; ++n) {
    SealedPayload padded = sealed;
    padded.ciphertext.resize(n);  // zero-padded growth
    EXPECT_FALSE(codec.open(padded).has_value()) << "accepted length " << n;
  }
}

TEST(PayloadCodec, SealIsDeterministic) {
  // Same key, payload, and origin must produce identical sealed bytes —
  // the golden-CSV byte-identity of every scenario depends on it.
  PayloadCodec codec(master_key());
  const SensorPayload payload{2.25, 77, 1234.5};
  const SealedPayload a = codec.seal(payload, 42);
  const SealedPayload b = codec.seal(payload, 42);
  EXPECT_EQ(a.nonce, b.nonce);
  EXPECT_EQ(a.ciphertext, b.ciphertext);
  EXPECT_EQ(a.tag, b.tag);
}

TEST(PayloadCodec, SealedPayloadSurvivesMemcpyTransport) {
  // The packet path moves SealedPayloads with raw memcpys (pool slots, delay
  // buffers, event captures); a copied payload must still open.
  PayloadCodec codec(master_key());
  const SensorPayload payload{-7.5, 3, 99.0};
  const SealedPayload sealed = codec.seal(payload, 8);
  SealedPayload moved;
  std::memcpy(&moved, &sealed, sizeof(sealed));
  const auto opened = codec.open(moved);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(PayloadCodec, CiphertextUsesExactWireSizeWithinInlineCapacity) {
  PayloadCodec codec(master_key());
  const SealedPayload sealed = codec.seal({1.0, 2, 3.0}, 4);
  EXPECT_EQ(sealed.ciphertext.size(), SensorPayload::kWireBytes);
  static_assert(SealedPayload::kCiphertextCapacity >=
                SensorPayload::kWireBytes);
}

TEST(PayloadCodec, WrongKeyFailsToOpen) {
  PayloadCodec codec(master_key());
  Speck64_128::Key other = master_key();
  other[0] ^= 0xFF;
  PayloadCodec wrong(other);
  const SealedPayload sealed = codec.seal({3.0, 9, 42.0}, 1);
  EXPECT_FALSE(wrong.open(sealed).has_value());
}

TEST(PayloadCodec, NoncesDifferAcrossOriginsAndSequences) {
  PayloadCodec codec(master_key());
  const SealedPayload a = codec.seal({0.0, 1, 0.0}, 1);
  const SealedPayload b = codec.seal({0.0, 2, 0.0}, 1);
  const SealedPayload c = codec.seal({0.0, 1, 0.0}, 2);
  EXPECT_NE(a.nonce, b.nonce);
  EXPECT_NE(a.nonce, c.nonce);
  EXPECT_NE(b.nonce, c.nonce);
}

TEST(PayloadCodec, IdenticalReadingsDifferentOriginsEncryptDifferently) {
  PayloadCodec codec(master_key());
  const SensorPayload payload{7.0, 0, 100.0};
  const SealedPayload a = codec.seal(payload, 10);
  const SealedPayload b = codec.seal(payload, 11);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST(PayloadCodec, HandlesExtremeValues) {
  PayloadCodec codec(master_key());
  SensorPayload payload{-1e300, 0xFFFFFFFF, 0.0};
  const auto opened = codec.open(codec.seal(payload, 0xFFFFFFFF));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

}  // namespace
}  // namespace tempriv::crypto
