#include "crypto/speck.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace tempriv::crypto {
namespace {

// The official Speck64/128 test vector from the NSA's SIMON/SPECK paper
// (ePrint 2013/404): key words (1b1a1918, 13121110, 0b0a0908, 03020100),
// plaintext (3b726574, 7475432d), ciphertext (8c6fa548, 454e028b).
Speck64_128::Key reference_key() {
  return {0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0a, 0x0b,
          0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1a, 0x1b};
}

TEST(Speck64_128, OfficialTestVectorEncrypt) {
  Speck64_128 cipher(reference_key());
  std::uint32_t x = 0x3b726574;
  std::uint32_t y = 0x7475432d;
  cipher.encrypt_words(x, y);
  EXPECT_EQ(x, 0x8c6fa548u);
  EXPECT_EQ(y, 0x454e028bu);
}

TEST(Speck64_128, OfficialTestVectorDecrypt) {
  Speck64_128 cipher(reference_key());
  std::uint32_t x = 0x8c6fa548;
  std::uint32_t y = 0x454e028b;
  cipher.decrypt_words(x, y);
  EXPECT_EQ(x, 0x3b726574u);
  EXPECT_EQ(y, 0x7475432du);
}

TEST(Speck64_128, BlockRoundTrip) {
  Speck64_128 cipher(reference_key());
  for (std::uint8_t fill = 0; fill < 32; ++fill) {
    Speck64_128::Block block;
    for (std::size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<std::uint8_t>(fill * 7 + i);
    }
    const Speck64_128::Block original = block;
    cipher.encrypt_block(block);
    EXPECT_NE(block, original);
    cipher.decrypt_block(block);
    EXPECT_EQ(block, original);
  }
}

TEST(Speck64_128, DifferentKeysGiveDifferentCiphertexts) {
  Speck64_128::Key key_a = reference_key();
  Speck64_128::Key key_b = reference_key();
  key_b[0] ^= 0x01;  // single-bit key change
  Speck64_128 a(key_a);
  Speck64_128 b(key_b);
  Speck64_128::Block block_a{1, 2, 3, 4, 5, 6, 7, 8};
  Speck64_128::Block block_b = block_a;
  a.encrypt_block(block_a);
  b.encrypt_block(block_b);
  EXPECT_NE(block_a, block_b);
}

TEST(Speck64_128, AvalancheOnPlaintextBitFlip) {
  Speck64_128 cipher(reference_key());
  Speck64_128::Block a{0, 0, 0, 0, 0, 0, 0, 0};
  Speck64_128::Block b{1, 0, 0, 0, 0, 0, 0, 0};  // one-bit difference
  cipher.encrypt_block(a);
  cipher.encrypt_block(b);
  int differing_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing_bits += __builtin_popcount(a[i] ^ b[i]);
  }
  // A good cipher flips ~half the 64 output bits.
  EXPECT_GT(differing_bits, 16);
  EXPECT_LT(differing_bits, 48);
}

TEST(Speck64_128, EncryptIsDeterministic) {
  Speck64_128 cipher(reference_key());
  Speck64_128::Block a{9, 8, 7, 6, 5, 4, 3, 2};
  Speck64_128::Block b = a;
  cipher.encrypt_block(a);
  cipher.encrypt_block(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tempriv::crypto
