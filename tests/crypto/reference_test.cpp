#include "crypto/reference.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/ctr.h"

namespace tempriv::crypto {
namespace {

// Deterministic corpus generator (SplitMix64) — no seed-time dependence.
struct Mix {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

Speck64_128::Key random_key(Mix& mix) {
  Speck64_128::Key key;
  for (std::size_t i = 0; i < key.size(); i += 8) {
    const std::uint64_t w = mix.next();
    for (std::size_t b = 0; b < 8; ++b) {
      key[i + b] = static_cast<std::uint8_t>(w >> (8 * b));
    }
  }
  return key;
}

// The NSA SIMON/SPECK paper's Speck64/128 vector expressed as a CTR
// keystream block: with nonce = the plaintext block's little-endian word and
// counter 0, keystream block 0 is E_K(nonce ^ 0) = the published ciphertext.
TEST(CryptoReference, KeystreamWordMatchesOfficialSpeckVector) {
  const Speck64_128::Key key = {0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0a, 0x0b,
                                0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1a, 0x1b};
  Speck64_128 cipher(key);
  // (x, y) = (3b726574, 7475432d) packs to LE word (x << 32) | y.
  const std::uint64_t plaintext_word = 0x3b7265747475432dULL;
  const std::uint64_t ciphertext_word = 0x8c6fa548454e028bULL;
  EXPECT_EQ(reference::keystream_word(cipher, plaintext_word, 0),
            ciphertext_word);

  // The production cipher must produce the same block, bytes and all.
  CtrCipher ctr(key);
  std::uint8_t block[8];
  ctr.keystream(plaintext_word, block);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(block[i], static_cast<std::uint8_t>(ciphertext_word >> (8 * i)))
        << "byte " << i;
  }
}

// The core tentpole property: the lane-batched production keystream is
// bit-identical to the block-at-a-time reference for every length that
// exercises the scalar (1 block), narrow (4 lanes), and wide (8 lanes)
// paths — including partial tails and the wave-boundary remainders.
TEST(CryptoReference, KeystreamMatchesReferenceAcrossWidths) {
  Mix mix{0x5eed0001};
  for (int trial = 0; trial < 8; ++trial) {
    const Speck64_128::Key key = random_key(mix);
    Speck64_128 cipher(key);
    CtrCipher ctr(key);
    for (std::size_t len = 0; len <= 2 * 8 * Speck64_128::kBlockBytes + 9;
         ++len) {
      const std::uint64_t nonce = mix.next();
      std::vector<std::uint8_t> got(len, 0xcd);
      std::vector<std::uint8_t> want(len, 0xab);
      ctr.keystream(nonce, got);
      reference::keystream(cipher, nonce, want);
      EXPECT_EQ(got, want) << "trial " << trial << " len " << len;
    }
  }
}

TEST(CryptoReference, XorKeystreamMatchesReferenceAcrossWidths) {
  Mix mix{0x5eed0002};
  for (int trial = 0; trial < 8; ++trial) {
    const Speck64_128::Key key = random_key(mix);
    Speck64_128 cipher(key);
    CtrCipher ctr(key);
    for (std::size_t len = 0; len <= 2 * 8 * Speck64_128::kBlockBytes + 9;
         ++len) {
      const std::uint64_t nonce = mix.next();
      std::vector<std::uint8_t> plain(len);
      for (auto& b : plain) b = static_cast<std::uint8_t>(mix.next());
      std::vector<std::uint8_t> got(len), want(len);
      ctr.xor_keystream(nonce, plain, got);
      reference::xor_keystream(cipher, nonce, plain, want);
      EXPECT_EQ(got, want) << "trial " << trial << " len " << len;

      // In-place form (crypt) must agree too.
      std::vector<std::uint8_t> in_place = plain;
      ctr.crypt(nonce, in_place);
      EXPECT_EQ(in_place, want) << "trial " << trial << " len " << len;
    }
  }
}

TEST(CryptoReference, KeystreamWave8MatchesPerLaneReference) {
  Mix mix{0x5eed0003};
  for (int trial = 0; trial < 64; ++trial) {
    const Speck64_128::Key key = random_key(mix);
    Speck64_128 cipher(key);
    CtrCipher ctr(key);
    std::uint64_t nonces[8];
    for (auto& n : nonces) n = mix.next();
    const std::uint64_t counter = mix.next() % 5;
    std::uint64_t words[8];
    ctr.keystream_wave8(nonces, counter, words);
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(words[l], reference::keystream_word(cipher, nonces[l], counter))
          << "trial " << trial << " lane " << l;
    }
  }
}

TEST(CryptoReference, CbcMacTagMatchesReference) {
  Mix mix{0x5eed0004};
  for (int trial = 0; trial < 4; ++trial) {
    const Speck64_128::Key key = random_key(mix);
    Speck64_128 cipher(key);
    CbcMac mac(key);
    for (std::size_t len = 0; len <= 4 * Speck64_128::kBlockBytes + 5; ++len) {
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(mix.next());
      EXPECT_EQ(mac.tag(data), reference::cbc_mac_tag(cipher, data))
          << "trial " << trial << " len " << len;
    }
  }
}

TEST(CryptoReference, Tag8MatchesEightScalarTags) {
  Mix mix{0x5eed0005};
  for (int trial = 0; trial < 16; ++trial) {
    const Speck64_128::Key key = random_key(mix);
    CbcMac mac(key);
    // Lengths that cover empty, sub-block, block-aligned, and tailed chains.
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                            std::size_t{13}, std::size_t{20}, std::size_t{24}}) {
      std::vector<std::vector<std::uint8_t>> msgs(8,
                                                  std::vector<std::uint8_t>(len));
      const std::uint8_t* ptrs[8];
      for (int l = 0; l < 8; ++l) {
        for (auto& b : msgs[l]) b = static_cast<std::uint8_t>(mix.next());
        ptrs[l] = msgs[l].data();
      }
      std::uint64_t tags[8];
      mac.tag8(ptrs, len, tags);
      for (int l = 0; l < 8; ++l) {
        EXPECT_EQ(tags[l], mac.tag(msgs[l]))
            << "trial " << trial << " len " << len << " lane " << l;
      }
    }
  }
}

}  // namespace
}  // namespace tempriv::crypto
