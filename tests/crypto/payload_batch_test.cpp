#include "crypto/payload.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace tempriv::crypto {
namespace {

Speck64_128::Key master_key() {
  Speck64_128::Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  return key;
}

std::vector<SensorPayload> make_payloads(std::size_t n) {
  std::vector<SensorPayload> payloads(n);
  for (std::size_t i = 0; i < n; ++i) {
    payloads[i].reading = 20.0 + 0.5 * static_cast<double>(i);
    payloads[i].app_seq = static_cast<std::uint32_t>(1000 + i);
    payloads[i].creation_time = 3.25 * static_cast<double>(i);
  }
  return payloads;
}

bool sealed_equal(const SealedPayload& a, const SealedPayload& b) {
  return a.nonce == b.nonce && a.ciphertext == b.ciphertext && a.tag == b.tag;
}

// seal_batch must be bit-identical to element-wise seal() at every size that
// exercises the full-lane-group path, the scalar remainder, and their mix.
TEST(PayloadBatch, SealBatchMatchesScalarSealAtAllSizes) {
  PayloadCodec codec(master_key());
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{16},
                        std::size_t{23}, std::size_t{64}}) {
    const std::vector<SensorPayload> payloads = make_payloads(n);
    std::vector<SealedPayload> batch(n);
    codec.seal_batch(payloads, /*origin_id=*/42, batch);
    for (std::size_t i = 0; i < n; ++i) {
      const SealedPayload single = codec.seal(payloads[i], 42);
      EXPECT_TRUE(sealed_equal(batch[i], single)) << "n " << n << " i " << i;
    }
  }
}

TEST(PayloadBatch, OpenBatchRoundTripsSealBatch) {
  PayloadCodec codec(master_key());
  for (std::size_t n : {std::size_t{0}, std::size_t{5}, std::size_t{8},
                        std::size_t{19}, std::size_t{32}}) {
    const std::vector<SensorPayload> payloads = make_payloads(n);
    std::vector<SealedPayload> batch(n);
    codec.seal_batch(payloads, 7, batch);
    std::vector<std::optional<SensorPayload>> opened(n);
    EXPECT_EQ(codec.open_batch(batch, opened), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(opened[i].has_value()) << "n " << n << " i " << i;
      EXPECT_EQ(*opened[i], payloads[i]) << "n " << n << " i " << i;
    }
  }
}

// open_batch must agree with open() element-wise even when individual
// entries are tampered, truncated, or oversized — including a malformed
// length inside an otherwise full lane group (the element-wise fallback).
TEST(PayloadBatch, OpenBatchMatchesScalarOpenOnDamagedEntries) {
  PayloadCodec codec(master_key());
  const std::size_t n = 24;
  const std::vector<SensorPayload> payloads = make_payloads(n);
  std::vector<SealedPayload> batch(n);
  codec.seal_batch(payloads, 3, batch);

  batch[1].ciphertext[0] ^= 0x01;       // flipped ciphertext bit
  batch[4].tag ^= 0x1ULL;               // flipped tag bit
  batch[9].ciphertext.resize(5);        // truncated, inside a lane group
  batch[13].ciphertext.push_back(0);    // oversized
  batch[17].nonce ^= 0x2ULL;            // wrong nonce: MAC passes? no — tag
                                        // covers ciphertext only, so the
                                        // decrypt garbles and equality below
                                        // still checks open() agreement.

  std::vector<std::optional<SensorPayload>> opened(n);
  const std::size_t count = codec.open_batch(batch, opened);
  std::size_t expected_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::optional<SensorPayload> single = codec.open(batch[i]);
    EXPECT_EQ(opened[i].has_value(), single.has_value()) << "i " << i;
    if (single.has_value()) {
      EXPECT_EQ(*opened[i], *single) << "i " << i;
      ++expected_count;
    }
  }
  EXPECT_EQ(count, expected_count);
}

TEST(PayloadBatch, SealBatchIsDeterministic) {
  PayloadCodec codec(master_key());
  const std::vector<SensorPayload> payloads = make_payloads(16);
  std::vector<SealedPayload> a(16), b(16);
  codec.seal_batch(payloads, 11, a);
  codec.seal_batch(payloads, 11, b);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_TRUE(sealed_equal(a[i], b[i])) << "i " << i;
  }
}

TEST(PayloadBatch, BatchWithWrongKeyOpensNothing) {
  PayloadCodec codec(master_key());
  Speck64_128::Key other = master_key();
  other[0] ^= 0xFF;
  PayloadCodec wrong(other);
  const std::vector<SensorPayload> payloads = make_payloads(8);
  std::vector<SealedPayload> batch(8);
  codec.seal_batch(payloads, 1, batch);
  std::vector<std::optional<SensorPayload>> opened(8);
  EXPECT_EQ(wrong.open_batch(batch, opened), 0u);
  for (const auto& o : opened) EXPECT_FALSE(o.has_value());
}

}  // namespace
}  // namespace tempriv::crypto
