#include "crypto/ctr.h"

#include <gtest/gtest.h>

#include <vector>

namespace tempriv::crypto {
namespace {

Speck64_128::Key test_key() {
  Speck64_128::Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  return key;
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> list) {
  std::vector<std::uint8_t> out;
  for (int v : list) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(CtrCipher, RoundTripsArbitraryLengths) {
  CtrCipher cipher(test_key());
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 20u, 64u, 100u}) {
    std::vector<std::uint8_t> data(len);
    for (std::size_t i = 0; i < len; ++i) data[i] = static_cast<std::uint8_t>(i);
    const std::vector<std::uint8_t> original = data;
    cipher.crypt(12345, data);
    if (len > 0) {
      EXPECT_NE(data, original) << "len " << len;
    }
    cipher.crypt(12345, data);  // CTR is an involution for a fixed nonce
    EXPECT_EQ(data, original) << "len " << len;
  }
}

TEST(CtrCipher, DifferentNoncesGiveDifferentCiphertexts) {
  CtrCipher cipher(test_key());
  const auto plain = bytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const auto c1 = cipher.crypt_copy(1, plain);
  const auto c2 = cipher.crypt_copy(2, plain);
  EXPECT_NE(c1, c2);
}

TEST(CtrCipher, CiphertextHidesPlaintextEquality) {
  // Two identical plaintext blocks inside one message must not produce
  // identical ciphertext blocks (the counter differs).
  CtrCipher cipher(test_key());
  std::vector<std::uint8_t> data(16, 0xAA);
  cipher.crypt(7, data);
  const std::vector<std::uint8_t> first(data.begin(), data.begin() + 8);
  const std::vector<std::uint8_t> second(data.begin() + 8, data.end());
  EXPECT_NE(first, second);
}

TEST(CtrCipher, CryptCopyLeavesInputUntouched) {
  CtrCipher cipher(test_key());
  const auto plain = bytes({10, 20, 30});
  const auto copy = plain;
  (void)cipher.crypt_copy(99, plain);
  EXPECT_EQ(plain, copy);
}

TEST(CbcMac, TagIsDeterministic) {
  CbcMac mac(test_key());
  const auto data = bytes({1, 2, 3, 4, 5});
  EXPECT_EQ(mac.tag(data), mac.tag(data));
}

TEST(CbcMac, TagDetectsSingleBitTamper) {
  CbcMac mac(test_key());
  auto data = bytes({1, 2, 3, 4, 5, 6, 7, 8, 9});
  const std::uint64_t tag = mac.tag(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_FALSE(mac.verify(data, tag)) << "byte " << i;
    data[i] ^= 0x01;
  }
  EXPECT_TRUE(mac.verify(data, tag));
}

TEST(CbcMac, LengthPrefixPreventsExtensionCollision) {
  // Without length binding, m and m||0 pad to the same final block.
  CbcMac mac(test_key());
  const auto short_msg = bytes({1, 2, 3});
  const auto padded_msg = bytes({1, 2, 3, 0, 0, 0, 0, 0});
  EXPECT_NE(mac.tag(short_msg), mac.tag(padded_msg));
}

TEST(CbcMac, EmptyMessageHasStableTag) {
  CbcMac mac(test_key());
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(mac.tag(empty), mac.tag(empty));
  EXPECT_NE(mac.tag(empty), 0u);
}

TEST(CbcMac, DifferentKeysDifferentTags) {
  CbcMac a(test_key());
  Speck64_128::Key other = test_key();
  other[5] ^= 0x80;
  CbcMac b(other);
  const auto data = bytes({42, 43, 44, 45});
  EXPECT_NE(a.tag(data), b.tag(data));
}

}  // namespace
}  // namespace tempriv::crypto
