#include "infotheory/entropy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tempriv::infotheory {
namespace {

TEST(ClosedFormEntropies, Exponential) {
  // h(Exp(mean)) = 1 + ln(mean).
  EXPECT_NEAR(exponential_entropy(1.0), 1.0, 1e-12);
  EXPECT_NEAR(exponential_entropy(30.0), 1.0 + std::log(30.0), 1e-12);
  EXPECT_THROW(exponential_entropy(0.0), std::invalid_argument);
}

TEST(ClosedFormEntropies, Uniform) {
  EXPECT_NEAR(uniform_entropy(0.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(uniform_entropy(0.0, 60.0), std::log(60.0), 1e-12);
  EXPECT_THROW(uniform_entropy(1.0, 1.0), std::invalid_argument);
}

TEST(ClosedFormEntropies, Gaussian) {
  EXPECT_NEAR(gaussian_entropy(1.0), 0.5 * std::log(2.0 * M_PI * M_E), 1e-12);
  EXPECT_THROW(gaussian_entropy(0.0), std::invalid_argument);
}

TEST(ClosedFormEntropies, ErlangReducesToExponentialAtK1) {
  // Erlang(1, rate) is Exp(1/rate).
  EXPECT_NEAR(erlang_entropy(1, 0.5), exponential_entropy(2.0), 1e-9);
  EXPECT_THROW(erlang_entropy(0, 1.0), std::invalid_argument);
}

TEST(ClosedFormEntropies, Laplace) {
  EXPECT_NEAR(laplace_entropy(1.0), 1.0 + std::log(2.0), 1e-12);
}

TEST(ClosedFormEntropies, Pareto) {
  // h = ln(xm/α) + 1 + 1/α.
  EXPECT_NEAR(pareto_entropy(1.0, 1.0), 0.0 + 1.0 + 1.0, 1e-12);
  EXPECT_THROW(pareto_entropy(0.0, 1.0), std::invalid_argument);
}

TEST(ExponentialIsMaxEntropy, AmongFixedMeanNonNegative) {
  // The paper's motivation for exponential delays: among the supported
  // distributions with mean 30, exponential has the largest h.
  const double mean = 30.0;
  const double h_exp = exponential_entropy(mean);
  const double h_unif = uniform_entropy(0.0, 2.0 * mean);   // mean 30
  const double h_erlang = erlang_entropy(3, 3.0 / mean);    // mean 30
  const double h_pareto = pareto_entropy(mean / 3.0, 1.5);  // mean 30
  EXPECT_GT(h_exp, h_unif);
  EXPECT_GT(h_exp, h_erlang);
  EXPECT_GT(h_exp, h_pareto);
}

TEST(Digamma, KnownValues) {
  constexpr double kEulerGamma = 0.5772156649015329;
  EXPECT_NEAR(digamma(1.0), -kEulerGamma, 1e-10);
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerGamma, 1e-10);
  EXPECT_NEAR(digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-10);
  EXPECT_THROW(digamma(0.0), std::invalid_argument);
}

TEST(Digamma, SatisfiesRecurrence) {
  for (double x : {0.3, 1.7, 4.2, 11.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10) << x;
  }
}

TEST(EntropyPower, GaussianEntropyPowerIsVariance) {
  // N(X) = σ² exactly when X is Gaussian.
  const double sigma = 3.0;
  EXPECT_NEAR(entropy_power(gaussian_entropy(sigma)), sigma * sigma, 1e-9);
}

TEST(EpiLeakageBound, TightForGaussianPair) {
  // For X ~ N(0, σx²), Y ~ N(0, σy²): I(X; X+Y) = ½ ln(1 + σx²/σy²) and the
  // EPI bound is met with equality.
  const double sx = 2.0;
  const double sy = 3.0;
  const double exact = 0.5 * std::log(1.0 + sx * sx / (sy * sy));
  EXPECT_NEAR(epi_leakage_lower_bound(gaussian_entropy(sx), gaussian_entropy(sy)),
              exact, 1e-9);
}

TEST(EpiLeakageBound, LowerBoundsExponentialLeakage) {
  // For X, Y exponential the true leakage must be >= the EPI bound.
  const double lambda = 1.0;   // X rate
  const double mu = 1.0 / 30;  // Y rate (mean 30)
  auto pdf = [&](double t) { return exp_sum_pdf(t, lambda, mu); };
  const double h_sum = numeric_entropy(pdf, 0.0, 600.0, 1 << 15);
  const double true_leak = h_sum - exponential_entropy(1.0 / mu);
  const double bound = epi_leakage_lower_bound(exponential_entropy(1.0 / lambda),
                                               exponential_entropy(1.0 / mu));
  EXPECT_GE(true_leak + 1e-6, bound);
}

TEST(AvLeakageBound, MatchesPaperFormula) {
  // ln(1 + jµ/λ).
  EXPECT_NEAR(av_leakage_bound(1, 0.5, 1.0), std::log(1.5), 1e-12);
  EXPECT_NEAR(av_leakage_bound(4, 0.5, 1.0), std::log(3.0), 1e-12);
  EXPECT_THROW(av_leakage_bound(1, 0.0, 1.0), std::invalid_argument);
}

TEST(AvLeakageBound, SmallMuRelativeToLambdaShrinksLeakage) {
  // The paper's design rule: tune µ small relative to λ.
  const double leaky = av_leakage_bound_sum(100, /*mu=*/1.0, /*lambda=*/1.0);
  const double private_ = av_leakage_bound_sum(100, /*mu=*/0.01, /*lambda=*/1.0);
  EXPECT_LT(private_, leaky);
}

TEST(AvLeakageBoundSum, IsSumOfPerPacketBounds) {
  const double sum = av_leakage_bound_sum(5, 0.3, 2.0);
  double manual = 0.0;
  for (std::uint64_t j = 1; j <= 5; ++j) manual += av_leakage_bound(j, 0.3, 2.0);
  EXPECT_NEAR(sum, manual, 1e-12);
  EXPECT_DOUBLE_EQ(av_leakage_bound_sum(0, 0.3, 2.0), 0.0);
}

TEST(NumericEntropy, RecoversClosedFormsWithinTolerance) {
  // Uniform[0, 4]: h = ln 4.
  auto uniform_pdf = [](double x) { return (x >= 0.0 && x <= 4.0) ? 0.25 : 0.0; };
  EXPECT_NEAR(numeric_entropy(uniform_pdf, 0.0, 4.0, 1 << 12), std::log(4.0),
              1e-3);
  // Exp(mean 2): h = 1 + ln 2.
  auto exp_pdf = [](double x) { return x >= 0.0 ? 0.5 * std::exp(-x / 2.0) : 0.0; };
  EXPECT_NEAR(numeric_entropy(exp_pdf, 0.0, 60.0, 1 << 14), 1.0 + std::log(2.0),
              1e-3);
}

TEST(ExpSumPdf, IntegratesToOneAndHandlesEqualRates) {
  auto pdf_distinct = [](double x) { return exp_sum_pdf(x, 1.0, 0.25); };
  double mass = 0.0;
  const int n = 1 << 14;
  const double hi = 120.0;
  for (int i = 0; i < n; ++i) {
    mass += pdf_distinct((i + 0.5) * hi / n) * hi / n;
  }
  EXPECT_NEAR(mass, 1.0, 1e-6);
  // Equal rates degrade to Erlang(2): f(x) = λ²x e^{-λx}.
  EXPECT_NEAR(exp_sum_pdf(2.0, 1.0, 1.0), 1.0 * 1.0 * 2.0 * std::exp(-2.0),
              1e-9);
  EXPECT_DOUBLE_EQ(exp_sum_pdf(-1.0, 1.0, 2.0), 0.0);
}

}  // namespace
}  // namespace tempriv::infotheory
