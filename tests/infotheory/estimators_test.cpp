#include "infotheory/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "infotheory/entropy.h"
#include "sim/random.h"

namespace tempriv::infotheory {
namespace {

std::vector<double> exponential_samples(double mean, std::size_t n,
                                        std::uint64_t seed) {
  sim::RandomStream rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.exponential_mean(mean);
  return xs;
}

std::vector<double> uniform_samples(double lo, double hi, std::size_t n,
                                    std::uint64_t seed) {
  sim::RandomStream rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform(lo, hi);
  return xs;
}

TEST(EntropyHistogram, RecoversUniformEntropy) {
  const auto xs = uniform_samples(0.0, 8.0, 50000, 1);
  EXPECT_NEAR(entropy_histogram(xs, 64), std::log(8.0), 0.05);
}

TEST(EntropyHistogram, RecoversExponentialEntropy) {
  const double mean = 30.0;
  const auto xs = exponential_samples(mean, 100000, 2);
  EXPECT_NEAR(entropy_histogram(xs, 128), exponential_entropy(mean), 0.1);
}

TEST(EntropyHistogram, ValidatesInput) {
  EXPECT_THROW(entropy_histogram(std::vector<double>{}, 10),
               std::invalid_argument);
  EXPECT_THROW(entropy_histogram(std::vector<double>{1.0}, 10),
               std::invalid_argument);
  EXPECT_THROW(entropy_histogram(std::vector<double>{1.0, 1.0}, 10),
               std::invalid_argument);  // zero spread
  EXPECT_THROW(entropy_histogram(std::vector<double>{1.0, 2.0}, 0),
               std::invalid_argument);
}

TEST(EntropyKnn, RecoversUniformEntropy) {
  const auto xs = uniform_samples(0.0, 8.0, 20000, 3);
  EXPECT_NEAR(entropy_knn(xs, 3), std::log(8.0), 0.05);
}

TEST(EntropyKnn, RecoversExponentialEntropy) {
  const double mean = 5.0;
  const auto xs = exponential_samples(mean, 20000, 4);
  EXPECT_NEAR(entropy_knn(xs, 3), exponential_entropy(mean), 0.05);
}

TEST(EntropyKnn, HandlesDuplicatesWithoutBlowingUp) {
  std::vector<double> xs = uniform_samples(0.0, 1.0, 100, 5);
  xs.push_back(xs.front());  // exact duplicate -> zero NN distance
  const double h = entropy_knn(xs, 1);
  EXPECT_TRUE(std::isfinite(h));
}

TEST(EntropyKnn, ValidatesInput) {
  EXPECT_THROW(entropy_knn(std::vector<double>{1.0, 2.0}, 0),
               std::invalid_argument);
  EXPECT_THROW(entropy_knn(std::vector<double>{1.0, 2.0}, 2),
               std::invalid_argument);
}

TEST(MutualInformationHistogram, NearZeroForIndependentVariables) {
  const auto xs = uniform_samples(0.0, 1.0, 50000, 6);
  const auto zs = uniform_samples(0.0, 1.0, 50000, 7);
  // Plug-in MI has a small positive bias; it must still be near zero.
  EXPECT_LT(mutual_information_histogram(xs, zs, 16), 0.02);
}

TEST(MutualInformationHistogram, LargeForDeterministicRelation) {
  const auto xs = uniform_samples(0.0, 1.0, 50000, 8);
  std::vector<double> zs(xs.begin(), xs.end());
  for (double& z : zs) z = 3.0 * z + 1.0;
  // I(X; aX+b) is infinite in theory; the binned estimate ~ ln(bins).
  EXPECT_GT(mutual_information_histogram(xs, zs, 16), 2.0);
}

TEST(MutualInformationHistogram, ValidatesInput) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> short_z{1.0};
  EXPECT_THROW(mutual_information_histogram(xs, short_z, 8),
               std::invalid_argument);
  EXPECT_THROW(mutual_information_histogram(xs, xs, 0), std::invalid_argument);
}

TEST(MutualInformationRanked, AgreesWithDirectEstimateOnLightTails) {
  // For well-behaved marginals the rank transform changes nothing material.
  const std::size_t n = 40000;
  const auto xs = uniform_samples(0.0, 10.0, n, 20);
  const auto delays = exponential_samples(5.0, n, 21);
  std::vector<double> zs(n);
  for (std::size_t i = 0; i < n; ++i) zs[i] = xs[i] + delays[i];
  const double direct = mutual_information_histogram(xs, zs, 24);
  const double ranked = mutual_information_ranked(xs, zs, 24);
  EXPECT_NEAR(ranked, direct, 0.15);
}

TEST(MutualInformationRanked, SurvivesHeavyTails) {
  // Pareto(α = 1.1) delays have near-infinite variance; equal-width bins
  // collapse (one extreme sample swallows the range) while ranks do not.
  sim::RandomStream rng(22);
  const std::size_t n = 40000;
  std::vector<double> xs(n);
  std::vector<double> zs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(0.0, 10.0);
    zs[i] = xs[i] + rng.pareto(1.0, 1.1);
  }
  const double direct = mutual_information_histogram(xs, zs, 24);
  const double ranked = mutual_information_ranked(xs, zs, 24);
  // Small delays (median ~1.9 vs creation spread 10) leak a lot; the
  // direct estimator misses it, the ranked one must not.
  EXPECT_LT(direct, 0.3);
  EXPECT_GT(ranked, 0.8);
}

TEST(MutualInformationRanked, NearZeroForIndependentVariables) {
  const auto xs = uniform_samples(0.0, 1.0, 50000, 23);
  const auto zs = uniform_samples(0.0, 1.0, 50000, 24);
  EXPECT_LT(mutual_information_ranked(xs, zs, 16), 0.02);
}

TEST(MutualInformationRanked, HandlesTiesDeterministically) {
  // Constant delays: Z = X + c is a strictly monotone transform of X, so
  // ranked MI saturates near ln(bins) — and repeated calls agree exactly.
  const auto xs = uniform_samples(0.0, 1.0, 10000, 25);
  std::vector<double> zs(xs.begin(), xs.end());
  for (double& z : zs) z += 30.0;
  const double a = mutual_information_ranked(xs, zs, 16);
  const double b = mutual_information_ranked(xs, zs, 16);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 2.0);
}

TEST(LeakageFromDelays, BiggerDelaysLeakLess) {
  // The core qualitative claim of §3: increasing the mean privacy delay
  // relative to the creation spread reduces I(X; Z).
  const std::size_t n = 40000;
  const auto creations = uniform_samples(0.0, 10.0, n, 9);
  const auto small_delay = exponential_samples(1.0, n, 10);
  const auto large_delay = exponential_samples(100.0, n, 11);
  const double leak_small = leakage_from_delays(creations, small_delay, 24);
  const double leak_large = leakage_from_delays(creations, large_delay, 24);
  EXPECT_GT(leak_small, leak_large);
  EXPECT_GT(leak_small, 0.5);  // nearly-deterministic arrival -> big leak
  EXPECT_LT(leak_large, 0.5);
}

TEST(LeakageFromDelays, RespectsAnantharamVerduBoundOnAverage) {
  // Poisson(λ=1) creations (Erlang j-th arrivals) delayed Exp(1/µ = 30):
  // the per-packet leakage I(Xj; Zj) must stay below ln(1 + jµ/λ).
  sim::RandomStream rng(12);
  const std::size_t trials = 30000;
  const std::uint64_t j = 3;  // test the 3rd packet of the stream
  std::vector<double> xs(trials);
  std::vector<double> zs(trials);
  const double lambda = 1.0;
  const double mean_delay = 30.0;
  for (std::size_t t = 0; t < trials; ++t) {
    xs[t] = rng.erlang(static_cast<unsigned>(j), lambda);
    zs[t] = xs[t] + rng.exponential_mean(mean_delay);
  }
  const double mi = mutual_information_histogram(xs, zs, 24);
  const double bound = av_leakage_bound(j, 1.0 / mean_delay, lambda);
  EXPECT_LE(mi, bound + 0.05);
}

TEST(MutualInformationKsg, NearExactForCorrelatedGaussians) {
  // Closed form: I(X;Z) = -0.5 ln(1 - r^2) for a bivariate Gaussian with
  // correlation r. KSG should land within a few hundredths of a nat at
  // moderate sample sizes, where histogram estimators are badly biased.
  sim::RandomStream rng(30);
  const std::size_t n = 4000;
  const double r = 0.6;
  std::vector<double> xs(n);
  std::vector<double> zs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal(0.0, 1.0);
    const double b = rng.normal(0.0, 1.0);
    xs[i] = a;
    zs[i] = r * a + std::sqrt(1.0 - r * r) * b;
  }
  const double exact = -0.5 * std::log(1.0 - r * r);
  EXPECT_NEAR(mutual_information_ksg(xs, zs, 3), exact, 0.05);
}

TEST(MutualInformationKsg, NearZeroForIndependentSamples) {
  sim::RandomStream rng(31);
  const std::size_t n = 3000;
  std::vector<double> xs(n);
  std::vector<double> zs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform01();
    zs[i] = rng.exponential_mean(4.0);
  }
  EXPECT_LT(mutual_information_ksg(xs, zs, 4), 0.03);
}

TEST(MutualInformationKsg, TracksLeakageOrderingWithHistogram) {
  // Small vs large delays: KSG must agree with the histogram estimator on
  // which configuration leaks more.
  const std::size_t n = 3000;
  const auto creations = uniform_samples(0.0, 10.0, n, 32);
  const auto small_delay = exponential_samples(1.0, n, 33);
  const auto large_delay = exponential_samples(100.0, n, 34);
  std::vector<double> z_small(n);
  std::vector<double> z_large(n);
  for (std::size_t i = 0; i < n; ++i) {
    z_small[i] = creations[i] + small_delay[i];
    z_large[i] = creations[i] + large_delay[i];
  }
  EXPECT_GT(mutual_information_ksg(creations, z_small, 3),
            mutual_information_ksg(creations, z_large, 3));
}

TEST(MutualInformationKsg, ValidatesInput) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> bad{1.0};
  EXPECT_THROW(mutual_information_ksg(xs, bad, 1), std::invalid_argument);
  EXPECT_THROW(mutual_information_ksg(xs, xs, 0), std::invalid_argument);
  EXPECT_THROW(mutual_information_ksg(xs, xs, 3), std::invalid_argument);
}

TEST(LeakageFromDelays, ValidatesSizes) {
  EXPECT_THROW(
      leakage_from_delays(std::vector<double>{1.0}, std::vector<double>{}, 8),
      std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::infotheory
