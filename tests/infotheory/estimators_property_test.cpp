// Property tests pinning the sort-based analysis kernels to the retained
// brute-force references (infotheory/reference.h). The acceptance bar is
// exact equality — not a tolerance — on randomized corpora that include the
// two known correctness traps of sort-based KSG: exact-duplicate samples
// (zero k-NN distances, so the strict marginal counts must come out empty)
// and tied max-norm distances (the k-th neighbor value must not depend on
// which of the tied candidates the sweep happens to examine).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "infotheory/entropy.h"
#include "infotheory/estimators.h"
#include "infotheory/reference.h"
#include "sim/random.h"

namespace tempriv::infotheory {
namespace {

struct Corpus {
  std::vector<double> xs;
  std::vector<double> zs;
  unsigned k = 3;
  const char* kind = "";
};

/// One randomized corpus per trial, cycling through sample classes:
/// continuous correlated pairs, coarse-floored values (many exact
/// duplicates in both marginals), lattice points (tied max-norm distances
/// in every direction), and a degenerate constant-z marginal.
Corpus make_corpus(int trial, sim::RandomStream& rng) {
  Corpus c;
  c.k = 1 + static_cast<unsigned>(rng.uniform_index(6));
  const std::size_t n = c.k + 1 + rng.uniform_index(250);
  c.xs.resize(n);
  c.zs.resize(n);
  switch (trial % 4) {
    case 0:
      c.kind = "continuous";
      for (std::size_t i = 0; i < n; ++i) {
        c.xs[i] = rng.uniform(0.0, 100.0);
        c.zs[i] = c.xs[i] + rng.exponential_mean(30.0);
      }
      break;
    case 1:
      c.kind = "duplicates";
      for (std::size_t i = 0; i < n; ++i) {
        c.xs[i] = std::floor(rng.uniform(0.0, 8.0));
        c.zs[i] = std::floor(rng.uniform(0.0, 8.0));
      }
      break;
    case 2:
      c.kind = "lattice";
      for (std::size_t i = 0; i < n; ++i) {
        c.xs[i] = 0.5 * static_cast<double>(rng.uniform_index(6));
        c.zs[i] = 0.5 * static_cast<double>(rng.uniform_index(6));
      }
      break;
    default:
      c.kind = "constant-z";
      for (std::size_t i = 0; i < n; ++i) {
        c.xs[i] = rng.uniform(0.0, 1.0);
        c.zs[i] = 3.25;
      }
      break;
  }
  return c;
}

TEST(KsgProperty, BitIdenticalToBruteForceReference) {
  sim::RandomStream rng(4001);
  for (int trial = 0; trial < 120; ++trial) {
    const Corpus c = make_corpus(trial, rng);
    const double fast = mutual_information_ksg(c.xs, c.zs, c.k);
    const double brute = reference::mutual_information_ksg_brute(c.xs, c.zs, c.k);
    ASSERT_EQ(fast, brute) << "trial " << trial << " (" << c.kind
                           << "), n=" << c.xs.size() << ", k=" << c.k;
  }
}

TEST(KsgProperty, ScratchReuseAcrossDifferentSizedInputsIsExact) {
  // One arena through a sweep of corpora of varying size must return the
  // same bits as fresh-allocated calls.
  sim::RandomStream rng(4002);
  AnalysisScratch scratch;
  for (int trial = 0; trial < 40; ++trial) {
    const Corpus c = make_corpus(trial, rng);
    ASSERT_EQ(mutual_information_ksg(c.xs, c.zs, c.k, scratch),
              mutual_information_ksg(c.xs, c.zs, c.k))
        << "trial " << trial << " (" << c.kind << ")";
  }
}

TEST(EntropyKnnProperty, BitIdenticalToBruteForceReference) {
  sim::RandomStream rng(4003);
  for (int trial = 0; trial < 120; ++trial) {
    const Corpus c = make_corpus(trial, rng);
    const double fast = entropy_knn(c.xs, c.k);
    const double brute = reference::entropy_knn_brute(c.xs, c.k);
    ASSERT_EQ(fast, brute) << "trial " << trial << " (" << c.kind
                           << "), n=" << c.xs.size() << ", k=" << c.k;
  }
}

TEST(EntropyKnnProperty, ScratchOverloadIsExact) {
  sim::RandomStream rng(4004);
  AnalysisScratch scratch;
  for (int trial = 0; trial < 40; ++trial) {
    const Corpus c = make_corpus(trial, rng);
    ASSERT_EQ(entropy_knn(c.xs, c.k, scratch), entropy_knn(c.xs, c.k));
  }
}

TEST(DigammaMemo, ExactlyEqualsDirectEvaluation) {
  // The memo table must be invisible: digamma_int(m) is required to return
  // the very double digamma(double(m)) produces, for every argument class —
  // below the initial table block, across growth boundaries, and past the
  // memo cap where it falls through to the direct evaluation.
  for (std::uint64_t m = 1; m <= 3000; ++m) {
    ASSERT_EQ(digamma_int(m), digamma(static_cast<double>(m))) << "m=" << m;
  }
  for (const std::uint64_t m :
       {std::uint64_t{100000}, std::uint64_t{1} << 22, (std::uint64_t{1} << 22) + 7,
        std::uint64_t{1} << 30}) {
    ASSERT_EQ(digamma_int(m), digamma(static_cast<double>(m))) << "m=" << m;
  }
  EXPECT_THROW(digamma_int(0), std::invalid_argument);
}

TEST(HistogramScratch, ReuseMatchesFreshAllocation) {
  sim::RandomStream rng(4005);
  AnalysisScratch scratch;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 100 + rng.uniform_index(2000);
    const std::size_t bins = 4 + rng.uniform_index(60);
    std::vector<double> xs(n);
    std::vector<double> zs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = rng.uniform(0.0, 50.0);
      zs[i] = xs[i] + rng.exponential_mean(10.0);
    }
    ASSERT_EQ(entropy_histogram(xs, bins, scratch), entropy_histogram(xs, bins));
    ASSERT_EQ(mutual_information_histogram(xs, zs, bins, scratch),
              mutual_information_histogram(xs, zs, bins));
    ASSERT_EQ(mutual_information_ranked(xs, zs, bins, scratch),
              mutual_information_ranked(xs, zs, bins));
    ASSERT_EQ(leakage_from_delays(xs, zs, bins, scratch),
              leakage_from_delays(xs, zs, bins));
  }
}

TEST(KsgWorkspaceProperty, PartitionedPsiTermsMatchSinglePass) {
  // Evaluating the per-point loop in arbitrary disjoint ranges must
  // reproduce the one-shot pass bit-for-bit — this is the property the
  // thread-pool overload's determinism rests on.
  sim::RandomStream rng(4006);
  std::vector<double> xs(777);
  std::vector<double> zs(777);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(0.0, 100.0);
    zs[i] = xs[i] + rng.exponential_mean(30.0);
  }
  KsgWorkspace ws;
  ws.prepare(xs, zs, 4);
  std::vector<double> whole(ws.size());
  ws.psi_terms(0, ws.size(), whole);
  std::vector<double> pieces(ws.size());
  std::size_t begin = 0;
  while (begin < ws.size()) {
    const std::size_t end =
        std::min(ws.size(), begin + 1 + rng.uniform_index(90));
    ws.psi_terms(begin, end, pieces);
    begin = end;
  }
  ASSERT_EQ(whole, pieces);
  ASSERT_EQ(ws.reduce(whole), mutual_information_ksg(xs, zs, 4));
}

TEST(KsgProperty, ValidationMatchesReference) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> bad{1.0};
  EXPECT_THROW(mutual_information_ksg(xs, bad, 1), std::invalid_argument);
  EXPECT_THROW(mutual_information_ksg(xs, xs, 0), std::invalid_argument);
  EXPECT_THROW(mutual_information_ksg(xs, xs, 3), std::invalid_argument);
  EXPECT_THROW(reference::mutual_information_ksg_brute(xs, bad, 1),
               std::invalid_argument);
  EXPECT_THROW(reference::mutual_information_ksg_brute(xs, xs, 0),
               std::invalid_argument);
  EXPECT_THROW(reference::mutual_information_ksg_brute(xs, xs, 3),
               std::invalid_argument);
  EXPECT_THROW(reference::entropy_knn_brute(xs, 0), std::invalid_argument);
  EXPECT_THROW(reference::entropy_knn_brute(xs, 3), std::invalid_argument);
}

}  // namespace
}  // namespace tempriv::infotheory
