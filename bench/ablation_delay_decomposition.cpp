// Ablation C — §3.3 delay decomposition across the path. The paper notes
// that because traffic (and hence buffer pressure) accumulates near the
// sink, "it may be possible to decompose {Yj} so that more delay is
// introduced when a forwarding node is further from the sink". This bench
// interpolates between a uniform per-hop mean delay (weighting 0, the
// paper's evaluation setup) and a linear profile biased away from the sink
// (weighting 1), at approximately constant total delay budget.
//
// Expected shape: as weighting grows, trunk preemptions fall (the loaded
// shared nodes hold packets more briefly) while privacy stays in the same
// band — decomposition is a buffer-placement knob, not a privacy knob.

#include "bench_util.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table({"sink weighting", "1/lambda",
                        "S1 MSE (baseline adv)", "S1 mean latency",
                        "preemptions", "drops"});

  for (const double weighting : {0.0, 0.5, 1.0}) {
    for (const double interarrival : {2.0, 6.0}) {
      workload::PaperScenario scenario;
      scenario.scheme = workload::Scheme::kRcad;
      scenario.sink_weighting = weighting;
      scenario.interarrival = interarrival;
      const auto result = run_paper_scenario(scenario);
      const auto& s1 = result.flows.front();
      table.add_numeric_row({weighting, interarrival, s1.mse_baseline,
                             s1.mean_latency,
                             static_cast<double>(result.preemptions),
                             static_cast<double>(result.drops)},
                            1);
    }
  }

  bench::emit("ablation_delay_decomposition", table);
  return 0;
}
