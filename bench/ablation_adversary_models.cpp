// Ablation E — adversary strength ladder (extension beyond the paper).
//
// Three deployment-aware adversaries against RCAD on the paper scenario:
//   1. baseline (§2.1/§5.1): x̂ = z − h(τ + 1/µ), ignores preemption;
//   2. adaptive (§5.4): flow-level Erlang regime test, k/λ̂ per hop;
//   3. path-aware (this reproduction's extension): knows topology+routing,
//      attributes observed flow rates to individual nodes, and models the
//      preemption regime per node — trunk nodes (aggregated traffic) hold
//      packets ~k/λtot, branch nodes ~k/λᵢ.
//
// Expected shape: each step down the ladder reduces the defender's MSE at
// high traffic; the path-aware adversary is the strongest, showing that
// RCAD's residual privacy at overload is the *variance* of the preemption
// process, not the adversary's modeling error. All three coincide at low
// traffic where no preemption happens.

#include "bench_util.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table({"1/lambda", "baseline MSE", "adaptive MSE",
                        "path-aware MSE", "S1 latency variance floor"});

  for (double interarrival = 2.0; interarrival <= 20.0; interarrival += 2.0) {
    workload::PaperScenario scenario;
    scenario.interarrival = interarrival;
    scenario.scheme = workload::Scheme::kRcad;
    const auto result = run_paper_scenario(scenario);
    const auto& s1 = result.flows.front();
    // The variance floor: no mean-subtracting estimator can beat the
    // variance of the latency itself. Approximated here via the best of
    // the three adversaries minus their squared bias is not observable,
    // so we print the path-aware value as the practical floor.
    table.add_numeric_row({interarrival, s1.mse_baseline, s1.mse_adaptive,
                           s1.mse_path_aware,
                           std::min({s1.mse_baseline, s1.mse_adaptive,
                                     s1.mse_path_aware})},
                          1);
  }

  bench::emit("ablation_adversary_models", table);
  return 0;
}
