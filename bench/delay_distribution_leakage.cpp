// §3.1 — why exponential delays? The paper motivates Exp(µ) as the
// maximum-entropy non-negative distribution for a given mean. This bench
// compares delay distributions *at equal mean delay* (i.e. equal latency
// cost and equal M/M/∞-style buffer demand) on four measures:
//
//   1. differential entropy h(Y) (closed form),
//   2. empirically-estimated leakage I(X; X+Y) for a uniform creation
//      window (rank/copula MI estimator — robust to heavy tails),
//   3. the baseline adversary's MSE in a 9-hop simulation, and
//   4. the adversary's *median* absolute error in the same run.
//
// Expected shape: the exponential has the largest h(Y) and the smallest
// leakage. Deterministic delay is provably worthless (zero entropy, exact
// subtraction). The heavy-tailed Pareto is instructive: it posts the
// largest MSE (outlier-dominated) yet leaks the MOST information and has a
// tiny median error — most packets are barely delayed. MSE alone can
// flatter a bad delay distribution; the information metric cannot.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/disciplines.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "infotheory/estimators.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace {

using namespace tempriv;

constexpr double kMeanDelay = 30.0;

double empirical_leakage(const core::DelayDistribution& delay,
                         std::uint64_t seed) {
  constexpr std::size_t kTrials = 50000;
  sim::RandomStream rng(seed);
  std::vector<double> xs(kTrials);
  std::vector<double> zs(kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    xs[t] = rng.uniform(0.0, 100.0);  // creation anywhere in a 100-unit window
    zs[t] = xs[t] + delay.sample(rng);
  }
  return infotheory::mutual_information_ranked(xs, zs, 24);
}

struct AdversaryOutcome {
  double mse = 0.0;
  double median_abs_error = 0.0;
};

AdversaryOutcome adversary_outcome(const core::DelayDistribution& delay,
                                   std::uint64_t seed) {
  // Two-party network: source -> 8 forwarding hops -> sink; every node
  // delays from `delay`; the adversary knows the mean (Kerckhoff).
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(10),
                       core::unlimited_factory(delay), {},
                       sim::RandomStream(seed));
  crypto::Speck64_128::Key key{};
  key.fill(0x99);
  crypto::PayloadCodec codec(key);
  adversary::BaselineAdversary adv(1.0, delay.mean());
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&adv);
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec, 0, sim::RandomStream(seed + 1),
                                  5.0, 2000);
  source.start(0.0);
  sim.run();

  AdversaryOutcome outcome;
  outcome.mse = truth.score_all(adv).mse();
  std::vector<double> abs_errors;
  abs_errors.reserve(adv.estimates().size());
  for (const auto& est : adv.estimates()) {
    abs_errors.push_back(
        std::fabs(est.estimated_creation - truth.find(est.uid)->creation));
  }
  outcome.median_abs_error = metrics::percentile(std::move(abs_errors), 0.5);
  return outcome;
}

}  // namespace

int main() {
  std::vector<std::unique_ptr<core::DelayDistribution>> candidates;
  candidates.push_back(std::make_unique<core::ConstantDelay>(kMeanDelay));
  candidates.push_back(
      std::make_unique<core::UniformDelay>(0.0, 2.0 * kMeanDelay));
  candidates.push_back(std::make_unique<core::ExponentialDelay>(kMeanDelay));
  candidates.push_back(
      std::make_unique<core::ParetoDelay>(kMeanDelay / 3.0, 1.5));

  metrics::Table table({"delay distribution (mean 30)", "h(Y) nats",
                        "ranked I(X;X+Y) nats", "adversary MSE (9 hops)",
                        "median |error|"});
  std::uint64_t seed = 900;
  for (const auto& delay : candidates) {
    const AdversaryOutcome outcome = adversary_outcome(*delay, seed + 7);
    table.add_row({delay->name(),
                   metrics::format_number(delay->differential_entropy(), 3),
                   metrics::format_number(empirical_leakage(*delay, seed), 3),
                   metrics::format_number(outcome.mse, 1),
                   metrics::format_number(outcome.median_abs_error, 1)});
    seed += 100;
  }

  tempriv::bench::emit("delay_distribution_leakage", table);
  return 0;
}
