// §4 — buffer occupancy under privacy delaying, simulator vs theory.
//
// Table 1: a single delaying node fed Poisson(λ) traffic with Exp(1/µ)
// delays is an M/M/∞ queue; its stationary occupancy must be Poisson with
// mean ρ = λ/µ (time-weighted measurement from the event-driven simulator
// against the closed-form PMF).
//
// Table 2: expected occupancy E[N] = ρ across a ρ sweep — the paper's
// "temporal privacy and buffer utilization are conflicting objectives"
// trade-off made quantitative: doubling the mean privacy delay doubles the
// buffer demand.

#include <memory>

#include "bench_util.h"
#include "core/disciplines.h"
#include "crypto/payload.h"
#include "metrics/histogram.h"
#include "metrics/table.h"
#include "net/network.h"
#include "queueing/erlang.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace {

using namespace tempriv;

struct OccupancyRun {
  metrics::TimeWeightedOccupancy occupancy;
  double rho = 0.0;
};

OccupancyRun run_single_node(double lambda, double mean_delay,
                             std::uint32_t packets, std::uint64_t seed) {
  sim::Simulator sim;
  net::Network network(
      sim, net::Topology::line(3),
      [&](net::NodeId id, std::uint16_t) -> std::unique_ptr<net::ForwardingDiscipline> {
        if (id == 1) {
          return std::make_unique<core::UnlimitedDelaying>(
              std::make_unique<core::ExponentialDelay>(mean_delay));
        }
        return std::make_unique<core::ImmediateForwarding>();
      },
      {}, sim::RandomStream(seed));

  OccupancyRun run;
  run.rho = lambda * mean_delay;
  network.set_occupancy_probe(
      [&](net::NodeId node, sim::Time now, std::size_t occ) {
        if (node == 1) run.occupancy.record(now, occ);
      });

  crypto::Speck64_128::Key key{};
  key.fill(0x5A);
  crypto::PayloadCodec codec(key);
  workload::PoissonSource source(network, codec, 0, sim::RandomStream(seed + 1),
                                 lambda, packets);
  source.start(0.0);
  sim.run();
  run.occupancy.finish(sim.now());
  return run;
}

}  // namespace

int main() {
  // Table 1: occupancy PMF at the paper-like operating point λ = 0.25,
  // 1/µ = 30 (ρ = 7.5).
  const OccupancyRun run = run_single_node(0.25, 30.0, 60000, 71);
  metrics::Table pmf({"N (packets buffered)", "simulated P{N}",
                      "Poisson(rho) P{N}"});
  for (std::uint64_t n = 0; n <= 16; ++n) {
    pmf.add_numeric_row({static_cast<double>(n), run.occupancy.fraction_at(n),
                         queueing::poisson_pmf(run.rho, n)},
                        4);
  }
  bench::emit("buffer_occupancy_pmf", pmf);

  // Table 2: E[N] = ρ sweep over the privacy delay.
  metrics::Table mean_table({"lambda", "mean delay 1/mu", "rho = lambda/mu",
                             "simulated E[N]"});
  for (const double lambda : {0.1, 0.25, 0.5}) {
    for (const double mean_delay : {10.0, 30.0, 60.0}) {
      const OccupancyRun sweep = run_single_node(
          lambda, mean_delay, 40000,
          71 + static_cast<std::uint64_t>(lambda * 1000 + mean_delay));
      mean_table.add_numeric_row(
          {lambda, mean_delay, sweep.rho, sweep.occupancy.mean_level()}, 3);
    }
  }
  tempriv::bench::emit("buffer_occupancy_mean", mean_table);
  return 0;
}
