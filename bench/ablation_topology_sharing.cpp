// Ablation D — how much of the routing paths the four flows share.
//
// The paper's Figure 1 draws the flows converging shortly before the sink
// but does not specify how many hops they share; this reproduction models
// the drawing as a 3-hop shared trunk. The shared-trunk length is the main
// free parameter of the reproduction: longer trunks concentrate all four
// flows on more nodes, driving more preemption and therefore higher
// baseline-adversary MSE and lower RCAD latency. (At tail = 8 — the
// maximum allowed by S3's 9-hop path — the RCAD/unlimited latency ratio
// approaches the paper's reported 2.5× at 1/λ = 2.)

#include "bench_util.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table({"shared trunk hops", "S1 MSE (baseline adv)",
                        "S1 RCAD latency", "S1 unlimited latency",
                        "latency reduction", "preemptions"});

  for (const std::uint16_t tail : {std::uint16_t{0}, std::uint16_t{2},
                                   std::uint16_t{3}, std::uint16_t{5},
                                   std::uint16_t{8}}) {
    workload::PaperScenario rcad;
    rcad.scheme = workload::Scheme::kRcad;
    rcad.interarrival = 2.0;
    rcad.shared_tail = tail;
    const auto rcad_result = run_paper_scenario(rcad);

    workload::PaperScenario unlimited = rcad;
    unlimited.scheme = workload::Scheme::kUnlimitedDelay;
    const auto unlimited_result = run_paper_scenario(unlimited);

    const auto& s1 = rcad_result.flows.front();
    table.add_numeric_row(
        {static_cast<double>(tail), s1.mse_baseline, s1.mean_latency,
         unlimited_result.flows.front().mean_latency,
         unlimited_result.flows.front().mean_latency / s1.mean_latency,
         static_cast<double>(rcad_result.preemptions)},
        1);
  }

  bench::emit("ablation_topology_sharing", table);
  return 0;
}
