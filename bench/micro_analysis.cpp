// Analysis-layer microbenchmarks (google-benchmark): the information-theory
// estimators that post-process every simulation sweep (KSG mutual
// information, k-NN and histogram entropies, rank/copula MI) plus the
// adversary's per-flow estimate query. These bound how many Monte-Carlo
// samples a leakage figure can afford per sweep point.
//
// scripts/bench_analysis.sh runs this suite and records the medians in
// BENCH_analysis.json, with speedups against the committed pre-rewrite
// capture bench_results/analysis_before.json (same trajectory convention
// as BENCH_engine.json).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "adversary/estimator.h"
#include "campaign/analysis.h"
#include "campaign/thread_pool.h"
#include "infotheory/entropy.h"
#include "infotheory/estimators.h"
#include "infotheory/reference.h"
#include "net/packet.h"
#include "sim/random.h"

namespace {

using namespace tempriv;

// Correlated (creation, arrival) pairs — the shape every leakage figure
// feeds the estimators: x uniform in a window, z = x + Exp(30) delay.
struct LeakagePairs {
  std::vector<double> xs;
  std::vector<double> zs;
};

LeakagePairs leakage_pairs(std::size_t n, std::uint64_t seed) {
  sim::RandomStream rng(seed);
  LeakagePairs p;
  p.xs.resize(n);
  p.zs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.xs[i] = rng.uniform(0.0, 100.0);
    p.zs[i] = p.xs[i] + rng.exponential_mean(30.0);
  }
  return p;
}

void BM_MutualInformationKsg(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 101);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        infotheory::mutual_information_ksg(p.xs, p.zs, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MutualInformationKsg)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The retained O(n²) reference — kept runnable so the speedup claimed in
// BENCH_analysis.json can be re-measured on any machine, not just trusted
// from the committed baseline capture.
void BM_MutualInformationKsgBrute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 101);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        infotheory::reference::mutual_information_ksg_brute(p.xs, p.zs, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MutualInformationKsgBrute)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Thread-pool fan-out of the same estimator (bit-identical by contract).
// On multi-core hosts this shows the extra headroom; on one core it prices
// the dispatch overhead.
void BM_ParallelMutualInformationKsg(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 101);
  campaign::ThreadPool pool(campaign::ThreadPool::resolve_threads(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        campaign::parallel_mutual_information_ksg(pool, p.xs, p.zs, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelMutualInformationKsg)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_EntropyKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 102);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infotheory::entropy_knn(p.zs, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EntropyKnn)->Arg(100000);

void BM_EntropyKnnBrute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 102);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infotheory::reference::entropy_knn_brute(p.zs, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EntropyKnnBrute)->Arg(5000);

// ψ(m) for integer m is the hot inner call of every k-NN estimate; the memo
// table turns the series evaluation into an array load.
void BM_DigammaInt(benchmark::State& state) {
  benchmark::DoNotOptimize(infotheory::digamma_int(4096));  // warm the table
  for (auto _ : state) {
    double sum = 0.0;
    for (std::uint64_t m = 1; m <= 4096; ++m) {
      sum += infotheory::digamma_int(m);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_DigammaInt);

void BM_EntropyHistogram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 103);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infotheory::entropy_histogram(p.zs, 128));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EntropyHistogram)->Arg(100000);

void BM_MutualInformationHistogram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 104);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        infotheory::mutual_information_histogram(p.xs, p.zs, 24));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MutualInformationHistogram)->Arg(100000);

void BM_MutualInformationRanked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const LeakagePairs p = leakage_pairs(n, 105);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        infotheory::mutual_information_ranked(p.xs, p.zs, 24));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MutualInformationRanked)->Arg(100000);

// Per-flow estimate retrieval — the post-processing query every figure's
// scoring loop makes once per flow after a run.
void BM_AdversaryFlowQuery(benchmark::State& state) {
  constexpr std::size_t kFlows = 64;
  constexpr std::size_t kPackets = 100000;
  adversary::BaselineAdversary adv(1.0, 30.0);
  sim::RandomStream rng(106);
  double t = 0.0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    net::Packet packet;
    packet.uid = i;
    packet.header.origin = static_cast<net::NodeId>(i % kFlows);
    packet.header.hop_count = 9;
    t += rng.exponential_mean(2.0);
    adv.on_delivery(packet, t);
  }
  for (auto _ : state) {
    std::size_t total = 0;
    for (net::NodeId flow = 0; flow < kFlows; ++flow) {
      total += adv.estimates_for_flow(flow).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFlows));
}
BENCHMARK(BM_AdversaryFlowQuery);

}  // namespace

BENCHMARK_MAIN();
