// §6 related work — the mix designs the paper positions itself against,
// rebuilt as forwarding disciplines and compared on one 9-hop path:
//
//   * SG-Mix (Kesdogan; Danezis proved it optimal for a single node):
//     independent Exp(µ) delay per packet = our UnlimitedDelaying.
//   * Order-preserving FIFO (the §3.2 strawman): M/M/1 service — packets
//     never reorder, so the adversary keeps creation order for free.
//   * Timed pool mix (Chaum lineage): batch flushes with a retained pool.
//   * RCAD with the same delay distribution and k = 10 buffers.
//
// Privacy proxy: the *variance* of end-to-end latency, which is exactly
// the MSE of the best constant-shift estimator (an adversary that knows
// the true mean latency — stronger than the paper's baseline adversary).
// Also reported: the reorder fraction (consecutive deliveries out of
// creation order; 0 for FIFO by construction) and undelivered packets
// (pool mixes retain packets indefinitely — one reason they fit sensor
// networks poorly).

#include <memory>
#include <vector>

#include "bench_util.h"
#include "adversary/ground_truth.h"
#include "core/comparators.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace {

using namespace tempriv;

struct Outcome {
  double mean_latency = 0.0;
  double latency_variance = 0.0;  // = MSE of the mean-aware adversary
  double reorder_fraction = 0.0;
  std::uint64_t undelivered = 0;
};

Outcome run_discipline(const net::DisciplineFactory& factory, double rate,
                       std::uint64_t seed) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(10), factory, {},
                       sim::RandomStream(seed));
  crypto::Speck64_128::Key key{};
  key.fill(0x60);
  crypto::PayloadCodec codec(key);
  adversary::GroundTruthRecorder truth(codec);

  // Track delivery order vs creation order.
  struct OrderWatch final : net::SinkObserver {
    const crypto::PayloadCodec& codec;
    double last_creation = -1.0;
    std::uint64_t inversions = 0;
    std::uint64_t pairs = 0;
    explicit OrderWatch(const crypto::PayloadCodec& c) : codec(c) {}
    void on_delivery(const net::Packet& packet, sim::Time) override {
      const double creation = codec.open(packet.payload)->creation_time;
      if (last_creation >= 0.0) {
        ++pairs;
        if (creation < last_creation) ++inversions;
      }
      last_creation = creation;
    }
  } order(codec);

  network.add_sink_observer(&truth);
  network.add_sink_observer(&order);

  workload::PoissonSource source(network, codec, 0, sim::RandomStream(seed + 1),
                                 rate, 20000);
  source.start(0.0);
  sim.run();

  Outcome outcome;
  outcome.mean_latency = truth.latency(0).mean();
  outcome.latency_variance = truth.latency(0).variance();
  outcome.reorder_fraction =
      order.pairs == 0
          ? 0.0
          : static_cast<double>(order.inversions) / static_cast<double>(order.pairs);
  outcome.undelivered =
      network.packets_originated() - network.packets_delivered();
  return outcome;
}

}  // namespace

int main() {
  constexpr double kMeanDelay = 5.0;  // per hop; FIFO stable for rate < 0.2

  metrics::Table table({"discipline", "rate lambda", "mean latency",
                        "latency variance (mean-aware adv MSE)",
                        "reorder fraction", "undelivered"});

  struct Case {
    const char* name;
    net::DisciplineFactory factory;
  };
  const Case cases[] = {
      {"SG-Mix / independent Exp(5)",
       core::unlimited_exponential_factory(kMeanDelay)},
      {"FIFO M/M/1 Exp(5) service", core::fifo_exponential_factory(kMeanDelay)},
      {"timed pool mix (T=10, keep 3)", core::timed_pool_mix_factory(10.0, 3)},
      {"RCAD Exp(5), k=10", core::rcad_exponential_factory(kMeanDelay, 10)},
  };

  std::uint64_t seed = 7000;
  for (const double rate : {0.05, 0.15}) {
    for (const Case& c : cases) {
      const Outcome outcome = run_discipline(c.factory, rate, seed += 10);
      table.add_row({c.name, metrics::format_number(rate, 2),
                     metrics::format_number(outcome.mean_latency, 1),
                     metrics::format_number(outcome.latency_variance, 1),
                     metrics::format_number(outcome.reorder_fraction, 3),
                     std::to_string(outcome.undelivered)});
    }
  }

  tempriv::bench::emit("related_mixes", table);
  return 0;
}
