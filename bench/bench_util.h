#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "metrics/table.h"

namespace tempriv::bench {

/// Prints the table to stdout and saves it as bench_results/<tag>.csv so
/// every figure can be re-plotted from the emitted data.
inline void emit(const std::string& tag, const metrics::Table& table) {
  std::cout << "\n== " << tag << " ==\n";
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    table.save_csv("bench_results/" + tag + ".csv");
    std::cout << "(csv: bench_results/" << tag << ".csv)\n";
  }
}

}  // namespace tempriv::bench
