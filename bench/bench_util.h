#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "metrics/table.h"

namespace tempriv::bench {

/// Directory CSVs are written to: $TEMPRIV_RESULTS_DIR if set and non-empty
/// (so campaign and CI runs can redirect output), else the historical
/// cwd-relative bench_results/.
inline std::string results_dir() {
  const char* env = std::getenv("TEMPRIV_RESULTS_DIR");
  return (env != nullptr && *env != '\0') ? std::string(env) : "bench_results";
}

/// Prints the table to stdout and saves it as <results_dir>/<tag>.csv so
/// every figure can be re-plotted from the emitted data.
inline void emit(const std::string& tag, const metrics::Table& table) {
  std::cout << "\n== " << tag << " ==\n";
  table.print(std::cout);
  const std::string dir = results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (!ec) {
    const std::string path = dir + "/" + tag + ".csv";
    table.save_csv(path);
    std::cout << "(csv: " << path << ")\n";
  }
}

}  // namespace tempriv::bench
