// §2 design validation — why the application sequence number must travel
// encrypted.
//
// The paper's model encrypts (reading, app-seq, timestamp) and lets the
// adversary see only the sorted arrival process (§3.2). This bench runs
// the paper's RCAD scenario twice over the same traffic:
//
//   * the paper's design: the sink adversary works without sequence
//     numbers (baseline + adaptive estimators), and
//   * a broken deployment where the header leaks the per-flow sequence
//     number, enabling period regression + min-intercept phase recovery.
//
// Expected shape: for periodic sources the leak collapses the MSE by
// orders of magnitude at every traffic rate — random delays alone cannot
// protect a source whose schedule structure is exposed.

#include "bench_util.h"
#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "adversary/sequence_leak.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/source.h"

int main() {
  using namespace tempriv;

  crypto::Speck64_128::Key key{};
  key.fill(0x55);
  const crypto::PayloadCodec codec(key);

  metrics::Table table({"1/lambda", "MSE sealed-seq (baseline adv)",
                        "MSE leaked-seq adversary",
                        "centered MSE sealed", "centered MSE leaked"});

  for (const double interarrival : {2.0, 4.0, 8.0, 16.0}) {
    sim::Simulator sim;
    auto built = net::Topology::paper_figure1();
    net::Network network(sim, std::move(built.topology),
                         core::rcad_exponential_factory(30.0, 10), {},
                         sim::RandomStream(0x5e9));
    adversary::BaselineAdversary sealed(1.0, 30.0);
    adversary::SequenceLeakAdversary leaky(
        1.0, 30.0, [&codec](const net::Packet& packet) {
          // Simulates the broken cleartext header; the adversary reads the
          // field, it does not hold the key.
          return codec.open(packet.payload)->app_seq;
        });
    adversary::GroundTruthRecorder truth(codec);
    network.add_sink_observer(&sealed);
    network.add_sink_observer(&leaky);
    network.add_sink_observer(&truth);

    std::vector<std::unique_ptr<workload::PeriodicSource>> sources;
    sim::RandomStream root(0xbeef);
    for (std::size_t i = 0; i < built.sources.size(); ++i) {
      sources.push_back(std::make_unique<workload::PeriodicSource>(
          network, codec, built.sources[i], root.split(i), interarrival, 1000));
      sources.back()->start(0.3 * static_cast<double>(i));
    }
    sim.run();

    const auto sealed_score = truth.score_flow(sealed, built.sources[0]);
    std::vector<adversary::Estimate> s1;
    for (const auto& est : leaky.estimates()) {
      if (est.flow == built.sources[0]) s1.push_back(est);
    }
    const auto leaky_score = truth.score_estimates(s1);
    auto centered = [](const metrics::MseAccumulator& score) {
      return score.mse() - score.bias() * score.bias();
    };
    table.add_numeric_row({interarrival, sealed_score.mse(), leaky_score.mse(),
                           centered(sealed_score), centered(leaky_score)},
                          1);
  }

  bench::emit("sequence_leak", table);
  return 0;
}
