// Engine microbenchmarks (google-benchmark): the discrete-event kernel,
// the deterministic RNG, RCAD buffer operations, and a full paper-scenario
// run. These bound how large a network the simulator can handle.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/disciplines.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

// Global allocation counter: the steady-state benchmarks report allocs/op so
// the zero-allocation contract shows up in BENCH_engine.json, not just in
// the unit test that asserts it.
//
// GCC flags malloc-backed replacement allocators as mismatched new/delete
// pairs; the pairing is correct here since every path goes through these.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace tempriv;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  sim::RandomStream rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(rng.uniform(0.0, 1000.0), [] {});
    }
    while (queue.pop()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  sim::RandomStream rng(2);
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(queue.schedule(rng.uniform(0.0, 1000.0), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) queue.cancel(ids[i]);
    while (queue.pop()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_EventQueueSteadyState(benchmark::State& state) {
  // Warm, pre-reserved queue: the per-event cost with the pool and heap at
  // capacity, plus the allocations-per-event counter (contract: 0.0).
  sim::RandomStream rng(4);
  sim::EventQueue queue;
  queue.reserve(1024);
  for (int i = 0; i < 1024; ++i) queue.schedule(rng.uniform(0.0, 1000.0), [] {});
  for (int i = 0; i < 512; ++i) queue.pop();
  const std::int64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    queue.schedule(queue.next_time() + rng.uniform(0.0, 10.0), [] {});
    auto event = queue.pop();
    benchmark::DoNotOptimize(event);
  }
  const std::int64_t allocs = g_allocs.load(std::memory_order_relaxed) -
                              allocs_before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState);

/// Equal-time cohorts drained with pop_batch + take versus one pop() per
/// event: `range(0)` events share each timestamp, so the per-event cost
/// shows how much of the head sweep / key decode the batch drain amortizes.
void BM_EventQueuePopBatchSteadyState(benchmark::State& state) {
  const std::size_t cohort = static_cast<std::size_t>(state.range(0));
  sim::RandomStream rng(5);
  sim::EventQueue queue;
  queue.reserve(1024);
  std::vector<sim::EventId> batch;
  batch.reserve(1024);
  double t = 0.0;
  const std::int64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    t += 1.0;
    for (std::size_t i = 0; i < cohort; ++i) {
      queue.schedule(t, [] {});
    }
    const sim::Time at = queue.pop_batch(batch);
    benchmark::DoNotOptimize(at);
    for (const sim::EventId id : batch) {
      auto action = queue.take(id);
      benchmark::DoNotOptimize(action);
    }
  }
  const std::int64_t allocs = g_allocs.load(std::memory_order_relaxed) -
                              allocs_before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cohort));
}
BENCHMARK(BM_EventQueuePopBatchSteadyState)->Arg(1)->Arg(8)->Arg(64);

void BM_RngExponential(benchmark::State& state) {
  sim::RandomStream rng(3);
  double sink = 0.0;
  for (auto _ : state) {
    sink += rng.exponential_mean(30.0);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t remaining = 100000;
    std::function<void()> chain = [&] {
      if (--remaining > 0) sim.schedule_after(1.0, chain);
    };
    sim.schedule_after(1.0, chain);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_PaperScenarioRcad(benchmark::State& state) {
  for (auto _ : state) {
    workload::PaperScenario scenario;
    scenario.scheme = workload::Scheme::kRcad;
    scenario.interarrival = 2.0;
    scenario.packets_per_source = 200;
    const auto result = run_paper_scenario(scenario);
    benchmark::DoNotOptimize(result.delivered);
  }
}
BENCHMARK(BM_PaperScenarioRcad)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
