// Figure 3 — "The estimation error for the two adversary models": MSE of
// the baseline vs the adaptive adversary for flow S1 under RCAD, as a
// function of the source inter-arrival time.
//
// The adaptive adversary (§5.4) runs the Erlang-loss test with threshold
// 0.1 on its observed traffic rate and, in the preemption regime, replaces
// its per-hop delay estimate 1/µ with k/λ̂.
//
// Expected shape (paper): at low traffic the two coincide; at high traffic
// the adaptive adversary significantly reduces — but does not eliminate —
// the estimation error.

#include "bench_util.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table(
      {"1/lambda", "BaselineAdversary", "AdaptiveAdversary", "reduction"});

  for (double interarrival = 2.0; interarrival <= 20.0; interarrival += 2.0) {
    workload::PaperScenario scenario;
    scenario.interarrival = interarrival;
    scenario.scheme = workload::Scheme::kRcad;
    const auto result = run_paper_scenario(scenario);
    const auto& s1 = result.flows.front();
    table.add_numeric_row({interarrival, s1.mse_baseline, s1.mse_adaptive,
                           s1.mse_adaptive > 0.0
                               ? s1.mse_baseline / s1.mse_adaptive
                               : 1.0},
                          1);
  }

  bench::emit("fig3_adaptive_adversary", table);
  return 0;
}
