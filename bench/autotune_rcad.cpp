// Ablation G — static RCAD vs online Erlang-tuned RCAD (extension).
//
// The paper dimensions 1/µ statically; the ErlangTunedRcad discipline
// applies §4's rule online from each node's measured arrival rate. Sweep
// the paper scenario's traffic rate and compare:
//
//   * privacy (baseline- and path-aware-adversary MSE for S1),
//   * latency, and
//   * preemptions per packet (the tuned node should hold them near the
//     α = 0.1 budget instead of collapsing into constant preemption).
//
// Expected shape: at low rates the tuned scheme delays far longer (more
// privacy at unchanged buffer pressure); at high rates it voluntarily
// shortens delays, trading some of static RCAD's preemption-driven MSE
// for a realized delay distribution that stays close to exponential.

#include <algorithm>
#include <memory>

#include "bench_util.h"
#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/erlang_tuned.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace {

using namespace tempriv;

struct Outcome {
  double mse = 0.0;
  double latency = 0.0;
  double preemptions_per_packet = 0.0;
};

Outcome run(const net::DisciplineFactory& factory, double interarrival,
            double adversary_mean, std::uint64_t seed) {
  sim::Simulator sim;
  auto built = net::Topology::paper_figure1();
  net::Network network(sim, std::move(built.topology), factory, {},
                       sim::RandomStream(seed));
  crypto::Speck64_128::Key key{};
  key.fill(0x42);
  crypto::PayloadCodec codec(key);
  adversary::BaselineAdversary adv(1.0, adversary_mean);
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&adv);
  network.add_sink_observer(&truth);
  std::vector<std::unique_ptr<workload::PeriodicSource>> sources;
  sim::RandomStream root(seed + 1);
  for (std::size_t i = 0; i < built.sources.size(); ++i) {
    sources.push_back(std::make_unique<workload::PeriodicSource>(
        network, codec, built.sources[i], root.split(i), interarrival, 1000));
    sources.back()->start(0.25 * interarrival * static_cast<double>(i));
  }
  sim.run();
  Outcome outcome;
  outcome.mse = truth.score_flow(adv, built.sources[0]).mse();
  outcome.latency = truth.latency(built.sources[0]).mean();
  outcome.preemptions_per_packet =
      static_cast<double>(network.total_preemptions()) /
      static_cast<double>(network.packets_originated());
  return outcome;
}

}  // namespace

int main() {
  core::ErlangTunedRcad::Config tuned_config;
  tuned_config.capacity = 10;
  tuned_config.target_loss = 0.1;
  tuned_config.max_mean_delay = 120.0;

  metrics::Table table(
      {"1/lambda", "static MSE", "tuned MSE", "static latency",
       "tuned latency", "static preempt/pkt", "tuned preempt/pkt"});

  std::uint64_t seed = 8800;
  for (const double interarrival : {2.0, 4.0, 8.0, 16.0}) {
    // The adversary knows each deployment's configured/average delay rule
    // (Kerckhoff). For the tuned scheme the long-run mean at per-flow rate
    // λ is min(cap, ρ*/λ) on branches; use that as its knowledge.
    const Outcome static_outcome =
        run(core::rcad_exponential_factory(30.0, 10), interarrival, 30.0,
            seed += 10);
    const double lambda = 1.0 / interarrival;
    const double rho_star = 7.5;  // E⁻¹(0.1, 10)
    const double tuned_mean = std::min(120.0, rho_star / lambda);
    const Outcome tuned = run(core::erlang_tuned_rcad_factory(tuned_config),
                              interarrival, tuned_mean, seed += 10);
    table.add_numeric_row({interarrival, static_outcome.mse, tuned.mse,
                           static_outcome.latency, tuned.latency,
                           static_outcome.preemptions_per_packet,
                           tuned.preemptions_per_packet},
                          2);
  }

  tempriv::bench::emit("autotune_rcad", table);
  return 0;
}
