// Composing spatial and temporal privacy — phantom routing (the authors'
// ICDCS'05 source-location scheme, cited as [11]) under the temporal-
// privacy adversary.
//
// Sweep the random-walk length W on a 10x10 grid (source in the far
// corner) with three forwarding disciplines. Two lessons:
//
//   1. Negative result: with constant per-hop delays, phantom routing adds
//      ZERO temporal privacy against a header-reading adversary — the
//      cleartext hop count reveals each packet's journey length exactly,
//      so x̂ = z − h·τ stays exact for every W.
//   2. With per-hop MAC jitter (delay no longer a function of the header)
//      or with RCAD, the walk's path-length variance does contribute,
//      stacking with the buffering-based temporal privacy.

#include "bench_util.h"
#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/table.h"
#include "net/network.h"
#include "net/phantom.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace {

using namespace tempriv;

struct Outcome {
  double mse = 0.0;
  double mean_latency = 0.0;
};

Outcome run(std::uint16_t walk, const net::DisciplineFactory& factory,
            double jitter, double known_mean_delay, std::uint64_t seed) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::grid(10, 10), factory,
                       {.hop_tx_delay = 1.0, .hop_jitter = jitter},
                       sim::RandomStream(seed));
  if (walk > 0) {
    network.set_hop_selector(phantom_routing_selector(
        network.topology(), network.routing(), walk));
  }
  crypto::Speck64_128::Key key{};
  key.fill(0x44);
  crypto::PayloadCodec codec(key);
  adversary::BaselineAdversary adv(1.0 + jitter / 2.0, known_mean_delay);
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&adv);
  network.add_sink_observer(&truth);
  workload::PeriodicSource source(network, codec, 99, sim::RandomStream(seed + 1),
                                  4.0, 800);
  source.start(0.0);
  sim.run();
  return {truth.score_all(adv).mse(), truth.latency(99).mean()};
}

}  // namespace

int main() {
  metrics::Table table({"walk W", "no-delay MSE", "no-delay+jitter MSE",
                        "RCAD MSE", "RCAD mean latency"});

  std::uint64_t seed = 4200;
  for (const std::uint16_t walk : {std::uint16_t{0}, std::uint16_t{4},
                                   std::uint16_t{10}, std::uint16_t{20}}) {
    const Outcome plain =
        run(walk, core::immediate_factory(), 0.0, 0.0, seed += 10);
    const Outcome jittered =
        run(walk, core::immediate_factory(), 1.0, 0.0, seed += 10);
    const Outcome rcad = run(walk, core::rcad_exponential_factory(30.0, 10),
                             0.0, 30.0, seed += 10);
    table.add_numeric_row({static_cast<double>(walk), plain.mse, jittered.mse,
                           rcad.mse, rcad.mean_latency},
                          2);
  }

  tempriv::bench::emit("phantom_routing", table);
  return 0;
}
