// Figure 2(b) — average end-to-end packet latency for flow S1 under the
// three schemes of §5.3, as a function of the source inter-arrival time.
//
// Expected shape (paper): NoDelay is flat at h·τ = 15; unlimited buffering
// is flat near h(τ + 1/µ) = 465; RCAD sits between the two and drops
// furthest below the unlimited case at high traffic (at 1/λ = 2 the paper
// reports a ~2.5× latency reduction) because preemption truncates delays.

#include "bench_util.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table({"1/lambda", "NoDelay", "Delay&UnlimitedBuffers",
                        "Delay&LimitedBuffers(RCAD)", "RCAD reduction vs unlimited"});

  for (double interarrival = 2.0; interarrival <= 20.0; interarrival += 2.0) {
    std::vector<double> row{interarrival};
    for (const workload::Scheme scheme :
         {workload::Scheme::kNoDelay, workload::Scheme::kUnlimitedDelay,
          workload::Scheme::kRcad}) {
      workload::PaperScenario scenario;
      scenario.interarrival = interarrival;
      scenario.scheme = scheme;
      const auto result = run_paper_scenario(scenario);
      row.push_back(result.flows.front().mean_latency);  // flow S1
    }
    row.push_back(row[2] / row[3]);  // unlimited / RCAD latency ratio
    table.add_numeric_row(row, 2);
  }

  bench::emit("fig2b_latency", table);
  return 0;
}
