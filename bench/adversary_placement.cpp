// §2.1 — the adversary-placement argument, measured.
//
// The paper asserts the sink is the adversary's best position because all
// flows converge there. This bench pits the sink adversary against
// in-network eavesdroppers at three placements on the Figure-1 topology
// running RCAD at the paper's high-traffic operating point:
//
//   * mid-branch of S1 (early: few delays accumulated, but one flow only),
//   * the trunk junction (all flows, most of their delays accumulated),
//   * one hop before the sink (hears everything the sink hears, one τ early).
//
// Expected shape: in-network placements get *lower per-packet MSE on the
// flows they cover* (fewer random delays to invert) but cover fewer flows
// / fewer total packets; the sink maximizes coverage, which is the paper's
// point — and the trunk placements approach the sink's error anyway since
// most of the path's delay is already behind the packet.

#include <set>

#include "bench_util.h"
#include "adversary/eavesdropper.h"
#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/source.h"

int main() {
  using namespace tempriv;

  constexpr double kMeanDelay = 30.0;
  constexpr std::size_t kSlots = 10;
  constexpr double kInterarrival = 2.0;
  constexpr std::uint32_t kPackets = 1000;

  sim::Simulator sim;
  auto built = net::Topology::paper_figure1();
  net::Network network(sim, std::move(built.topology),
                       core::rcad_exponential_factory(kMeanDelay, kSlots), {},
                       sim::RandomStream(0x9a));

  crypto::Speck64_128::Key key{};
  key.fill(0x31);
  crypto::PayloadCodec codec(key);

  const auto s1_path = network.routing().path_to_sink(built.sources[0]);
  const net::NodeId mid_branch = s1_path[s1_path.size() / 2];
  const net::NodeId junction = s1_path[s1_path.size() - 5];  // before trunk
  const net::NodeId last_hop = s1_path[s1_path.size() - 2];

  const adversary::InNetworkEavesdropper::Config eve_config{1.0, kMeanDelay};
  adversary::InNetworkEavesdropper eve_branch(eve_config, network, {mid_branch});
  adversary::InNetworkEavesdropper eve_junction(eve_config, network, {junction});
  adversary::InNetworkEavesdropper eve_last(eve_config, network, {last_hop});
  adversary::BaselineAdversary sink_adv(1.0, kMeanDelay);
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&sink_adv);
  network.add_sink_observer(&truth);

  std::vector<std::unique_ptr<workload::PeriodicSource>> sources;
  sim::RandomStream root(0x77);
  for (std::size_t i = 0; i < built.sources.size(); ++i) {
    sources.push_back(std::make_unique<workload::PeriodicSource>(
        network, codec, built.sources[i], root.split(i), kInterarrival,
        kPackets));
    sources.back()->start(0.5 * static_cast<double>(i));
  }
  sim.run();

  metrics::Table table({"placement", "flows heard", "packets heard",
                        "MSE on heard packets"});
  auto add_eve = [&](const char* name,
                     const adversary::InNetworkEavesdropper& eve) {
    table.add_row({name, std::to_string(eve.flows_heard()),
                   std::to_string(eve.packets_heard()),
                   metrics::format_number(
                       truth.score_estimates(eve.estimates()).mse(), 1)});
  };
  add_eve("mid-branch of S1", eve_branch);
  add_eve("junction (trunk start)", eve_junction);
  add_eve("one hop before sink", eve_last);
  table.add_row({"sink (paper baseline)",
                 std::to_string(sink_adv.flows_observed()),
                 std::to_string(sink_adv.estimates().size()),
                 metrics::format_number(truth.score_all(sink_adv).mse(), 1)});

  tempriv::bench::emit("adversary_placement", table);
  return 0;
}
