// §4 / Eq. (5) — Erlang-loss dimensioning of the privacy delays.
//
// Table 1: the Erlang loss E(ρ, k) itself over (ρ, k), cross-checked
// against simulated M/M/k/k drop rates.
//
// Table 2: the paper's adaptive design rule on the Figure-1 routing tree:
// given per-source rate λ and per-node buffers of k slots, pick each node's
// µ so every node's drop probability is the target α = 0.1. Nodes closer
// to the sink carry more aggregated traffic and must therefore use shorter
// mean privacy delays 1/µ — the §3.3/§4 observation made concrete.

#include <memory>

#include "bench_util.h"
#include "core/disciplines.h"
#include "crypto/payload.h"
#include "metrics/table.h"
#include "net/network.h"
#include "net/routing.h"
#include "net/topology.h"
#include "queueing/dimensioning.h"
#include "queueing/erlang.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace {

using namespace tempriv;

double simulate_drop_rate(double rho, std::size_t slots, std::uint64_t seed) {
  const double lambda = 0.5;
  const double mean_delay = rho / lambda;
  sim::Simulator sim;
  net::Network network(
      sim, net::Topology::line(3),
      [&](net::NodeId id, std::uint16_t) -> std::unique_ptr<net::ForwardingDiscipline> {
        if (id == 1) {
          return std::make_unique<core::DropTailDelaying>(
              std::make_unique<core::ExponentialDelay>(mean_delay), slots);
        }
        return std::make_unique<core::ImmediateForwarding>();
      },
      {}, sim::RandomStream(seed));
  crypto::Speck64_128::Key key{};
  key.fill(0x3C);
  crypto::PayloadCodec codec(key);
  workload::PoissonSource source(network, codec, 0, sim::RandomStream(seed + 1),
                                 lambda, 40000);
  source.start(0.0);
  sim.run();
  return static_cast<double>(network.total_drops()) /
         static_cast<double>(network.packets_originated());
}

}  // namespace

int main() {
  metrics::Table loss({"rho", "k", "Erlang E(rho,k)", "simulated drop rate"});
  std::uint64_t seed = 500;
  for (const double rho : {1.0, 5.0, 10.0, 20.0}) {
    for (const std::size_t k : {std::size_t{5}, std::size_t{10}, std::size_t{20}}) {
      loss.add_numeric_row({rho, static_cast<double>(k),
                            queueing::erlang_loss(rho, k),
                            simulate_drop_rate(rho, k, seed++)},
                           4);
    }
  }
  bench::emit("erlang_loss_vs_simulation", loss);

  // Dimensioning on the Figure-1 tree: per-source rate λ = 0.5, k = 10,
  // target drop rate α = 0.1.
  const auto built = net::Topology::paper_figure1();
  const net::RoutingTable routing(built.topology);
  queueing::RoutingTree tree;
  tree.parent.resize(built.topology.node_count());
  std::vector<double> source_rates(built.topology.node_count(), 0.0);
  for (net::NodeId id = 0; id < built.topology.node_count(); ++id) {
    const net::NodeId next = routing.next_hop(id);
    tree.parent[id] = next == net::kInvalidNode
                          ? queueing::kNoParent
                          : static_cast<std::size_t>(next);
  }
  for (const net::NodeId source : built.sources) source_rates[source] = 0.5;

  const auto node_rates = queueing::aggregate_rates(tree, source_rates);
  const auto node_mus = queueing::dimension_mu_for_loss(node_rates, 10, 0.1);

  metrics::Table dim({"hops to sink", "node traffic lambda_i",
                      "dimensioned mu_i", "mean privacy delay 1/mu_i",
                      "check E(rho,k)"});
  // Walk flow S1's path from source to sink.
  for (const net::NodeId node : routing.path_to_sink(built.sources[0])) {
    if (node == built.topology.sink()) continue;
    dim.add_numeric_row(
        {static_cast<double>(routing.hops_to_sink(node)), node_rates[node],
         node_mus[node], 1.0 / node_mus[node],
         queueing::erlang_loss(node_rates[node] / node_mus[node], 10)},
        3);
  }
  tempriv::bench::emit("erlang_dimensioning_fig1_tree", dim);

  // Total expected buffering if nodes instead ran M/M/∞ at those µ values.
  metrics::Table buffering({"policy", "expected packets buffered network-wide"});
  buffering.add_row({"uniform 1/mu = 30 everywhere",
                     metrics::format_number(
                         [&] {
                           double total = 0.0;
                           for (const double rate : node_rates) {
                             total += rate * 30.0;
                           }
                           return total;
                         }(),
                         1)});
  buffering.add_row({"Erlang-dimensioned (alpha = 0.1)",
                     metrics::format_number(
                         queueing::expected_network_buffering(node_rates, node_mus), 1)});
  tempriv::bench::emit("erlang_dimensioning_buffering", buffering);
  return 0;
}
