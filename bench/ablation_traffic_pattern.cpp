// Ablation F — traffic pattern. The paper's evaluation uses periodic
// sources; its analysis (§3–§4) assumes Poisson. This bench runs the same
// privacy pipeline (single 15-hop path, Exp(30) delays, k = 10 RCAD)
// under three creation processes at the SAME average rate and compares
// privacy and buffer pressure:
//
//   * periodic (the paper's simulation),
//   * Poisson (the paper's analysis),
//   * ON/OFF bursty (a lingering animal / passing convoy).
//
// Expected shape: at equal average rate, burstiness concentrates arrivals,
// so RCAD preempts far more (the effective delays collapse during bursts)
// — baseline-adversary MSE rises, and the spread between quiet-period and
// burst-period latencies grows.

#include <memory>

#include "bench_util.h"
#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "metrics/table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/burst_source.h"
#include "workload/source.h"

namespace {

using namespace tempriv;

struct Outcome {
  double mse = 0.0;
  double mean_latency = 0.0;
  double max_latency = 0.0;
  std::uint64_t preemptions = 0;
};

template <typename MakeSource>
Outcome run_pattern(MakeSource&& make_source, std::uint64_t seed) {
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(16),  // 15 hops like S1
                       core::rcad_exponential_factory(30.0, 10), {},
                       sim::RandomStream(seed));
  crypto::Speck64_128::Key key{};
  key.fill(0x21);
  crypto::PayloadCodec codec(key);
  adversary::BaselineAdversary adv(1.0, 30.0);
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&adv);
  network.add_sink_observer(&truth);

  auto source = make_source(network, codec, seed);
  source->start(0.0);
  sim.run();

  Outcome outcome;
  outcome.mse = truth.score_all(adv).mse();
  outcome.mean_latency = truth.latency(0).mean();
  outcome.max_latency = truth.latency(0).max();
  outcome.preemptions = network.total_preemptions();
  return outcome;
}

}  // namespace

int main() {
  constexpr double kRate = 0.5;  // packets per time unit, all patterns
  constexpr std::uint32_t kPackets = 4000;

  metrics::Table table({"creation process (avg rate 0.5)", "adversary MSE",
                        "mean latency", "max latency", "preemptions"});

  const Outcome periodic = run_pattern(
      [&](net::Network& net, const crypto::PayloadCodec& codec, std::uint64_t seed) {
        return std::make_unique<workload::PeriodicSource>(
            net, codec, 0, sim::RandomStream(seed + 1), 1.0 / kRate, kPackets);
      },
      3100);
  const Outcome poisson = run_pattern(
      [&](net::Network& net, const crypto::PayloadCodec& codec, std::uint64_t seed) {
        return std::make_unique<workload::PoissonSource>(
            net, codec, 0, sim::RandomStream(seed + 1), kRate, kPackets);
      },
      3200);
  const Outcome bursty = run_pattern(
      [&](net::Network& net, const crypto::PayloadCodec& codec, std::uint64_t seed) {
        workload::BurstSource::Config config;
        config.burst_rate = 2.5;     // rate while ON
        config.mean_on_time = 20.0;  // avg = 2.5 * 20/(20+80) = 0.5
        config.mean_off_time = 80.0;
        config.count = kPackets;
        return std::make_unique<workload::BurstSource>(
            net, codec, 0, sim::RandomStream(seed + 1), config);
      },
      3300);

  auto add = [&table](const char* name, const Outcome& o) {
    table.add_row({name, tempriv::metrics::format_number(o.mse, 1),
                   tempriv::metrics::format_number(o.mean_latency, 1),
                   tempriv::metrics::format_number(o.max_latency, 1),
                   std::to_string(o.preemptions)});
  };
  add("periodic (paper sim)", periodic);
  add("Poisson (paper analysis)", poisson);
  add("ON/OFF bursty", bursty);

  tempriv::bench::emit("ablation_traffic_pattern", table);
  return 0;
}
