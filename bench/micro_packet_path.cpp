// Packet-path microbenchmarks (google-benchmark): the seal -> store-and-
// forward -> open journey that every simulated packet takes (paper §2, §5.2).
// These bound the per-packet cost of the simulator independently of the
// delaying machinery that PR 2 and PR 3 already optimized.
//
// The forwarding benchmarks report allocs/op so the zero-allocation contract
// of the packet path shows up in BENCH_network.json, not just in the unit
// test that asserts it.

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>

#include "core/factories.h"
#include "crypto/ctr.h"
#include "crypto/payload.h"
#include "net/network.h"
#include "net/topology.h"
#include "net/tracer.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

// GCC flags malloc-backed replacement allocators as mismatched new/delete
// pairs; the pairing is correct here since every path goes through these.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace tempriv;

const crypto::Speck64_128::Key kKey{0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                    0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                    0xcc, 0xdd, 0xee, 0xff};

/// Sink observer that only counts, so delivery costs nothing measurable.
struct CountingSink final : net::SinkObserver {
  std::uint64_t count = 0;
  void on_delivery(const net::Packet&, sim::Time) override { ++count; }
};

void BM_SealOnly(benchmark::State& state) {
  const crypto::PayloadCodec codec(kKey);
  crypto::SensorPayload payload{20.5, 0, 123.0};
  for (auto _ : state) {
    payload.app_seq++;
    crypto::SealedPayload sealed = codec.seal(payload, 7);
    benchmark::DoNotOptimize(sealed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SealOnly);

void BM_SealOpenRoundTrip(benchmark::State& state) {
  const crypto::PayloadCodec codec(kKey);
  crypto::SensorPayload payload{20.5, 0, 123.0};
  const std::int64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    payload.app_seq++;
    const crypto::SealedPayload sealed = codec.seal(payload, 7);
    auto opened = codec.open(sealed);
    benchmark::DoNotOptimize(opened);
  }
  const std::int64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SealOpenRoundTrip);

/// Batched sealing: one full lane group per call. Items = packets, so the
/// per-item time is the amortized per-packet seal cost with the keystream
/// and MAC lanes full (the number the CBC-MAC's serial chain makes
/// unreachable one packet at a time).
void BM_SealBatch(benchmark::State& state) {
  constexpr std::size_t kLanes = crypto::PayloadCodec::kBatchLanes;
  const crypto::PayloadCodec codec(kKey);
  std::array<crypto::SensorPayload, kLanes> burst{};
  std::array<crypto::SealedPayload, kLanes> sealed{};
  std::uint32_t seq = 0;
  for (auto _ : state) {
    for (auto& p : burst) p = {20.5, seq++, 123.0};
    codec.seal_batch(burst, 7, sealed);
    benchmark::DoNotOptimize(sealed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes));
}
BENCHMARK(BM_SealBatch);

/// Batched seal + open round trip, per packet: the gate metric for the
/// PR-8 acceptance bar (seal+open < 150 ns amortized per packet).
void BM_SealOpenBatchRoundTrip(benchmark::State& state) {
  constexpr std::size_t kLanes = crypto::PayloadCodec::kBatchLanes;
  const crypto::PayloadCodec codec(kKey);
  std::array<crypto::SensorPayload, kLanes> burst{};
  std::array<crypto::SealedPayload, kLanes> sealed{};
  std::array<std::optional<crypto::SensorPayload>, kLanes> opened{};
  std::uint32_t seq = 0;
  const std::int64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    for (auto& p : burst) p = {20.5, seq++, 123.0};
    codec.seal_batch(burst, 7, sealed);
    const std::size_t ok = codec.open_batch(sealed, opened);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(opened);
  }
  const std::int64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes));
}
BENCHMARK(BM_SealOpenBatchRoundTrip);

/// Steady-state per-hop forwarding cost on a warm network: one packet at a
/// time down a 16-hop line with immediate forwarding (no privacy delays), so
/// the only work measured is originate -> 16 x (transmit + arrive) -> sink.
void BM_ForwardPerHop(benchmark::State& state) {
  constexpr std::size_t kHops = 16;
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(kHops + 1),
                       core::immediate_factory(), {.hop_tx_delay = 1.0},
                       sim::RandomStream(1));
  CountingSink sink;
  network.add_sink_observer(&sink);
  const crypto::PayloadCodec codec(kKey);
  std::uint32_t seq = 0;
  // Warm-up: let every pool/queue slot the journey touches exist.
  network.originate(0, codec.seal({20.5, seq++, 0.0}, 0));
  sim.run();
  const std::int64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    network.originate(0, codec.seal({20.5, seq++, sim.now()}, 0));
    sim.run();
  }
  const std::int64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kHops));
  benchmark::DoNotOptimize(sink.count);
}
BENCHMARK(BM_ForwardPerHop);

/// Burst origination: a 24-packet same-origin burst batch-sealed and
/// injected through Network::originate_batch, then forwarded to the sink on
/// a warm line. Items = packets x hops, directly comparable to
/// BM_ForwardPerHop's per-hop cost but with the seal amortized across lane
/// groups and the equal-time event cohorts drained batch-wise.
void BM_OriginateBurstPerHop(benchmark::State& state) {
  constexpr std::size_t kHops = 16;
  constexpr std::size_t kBurst = 24;
  sim::Simulator sim;
  net::Network network(sim, net::Topology::line(kHops + 1),
                       core::immediate_factory(), {.hop_tx_delay = 1.0},
                       sim::RandomStream(1));
  network.reserve(kBurst + 8);
  sim.reserve(256);
  CountingSink sink;
  network.add_sink_observer(&sink);
  const crypto::PayloadCodec codec(kKey);
  std::array<crypto::SensorPayload, kBurst> burst{};
  std::uint32_t seq = 0;
  auto send_burst = [&] {
    for (auto& p : burst) p = {20.5, seq++, sim.now()};
    network.originate_batch(0, codec, burst);
    sim.run();
  };
  send_burst();  // warm-up
  const std::int64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) send_burst();
  const std::int64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst * kHops));
  benchmark::DoNotOptimize(sink.count);
}
BENCHMARK(BM_OriginateBurstPerHop);

/// A pipelined journey: `range(0)` packets in flight at once down a 16-hop
/// line, with (arg 1) and without (arg 0) a PacketTracer recording every
/// transmission. The tracer accumulates per-hop state, so the whole world is
/// rebuilt per iteration and the construction cost is amortized over
/// packets x hops items.
void BM_ForwardJourney(benchmark::State& state) {
  constexpr std::size_t kHops = 16;
  const std::size_t packets = static_cast<std::size_t>(state.range(0));
  const bool traced = state.range(1) != 0;
  const crypto::PayloadCodec codec(kKey);
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network network(sim, net::Topology::line(kHops + 1),
                         core::immediate_factory(), {.hop_tx_delay = 1.0},
                         sim::RandomStream(1));
    CountingSink sink;
    network.add_sink_observer(&sink);
    std::optional<net::PacketTracer> tracer;
    if (traced) tracer.emplace(network);
    for (std::uint32_t seq = 0; seq < packets; ++seq) {
      // Staggered starts keep several packets in flight per link step.
      sim.schedule_at(0.25 * seq, [&network, &codec, seq] {
        network.originate(0, codec.seal({20.5, seq, 0.25 * seq}, 0));
      });
    }
    sim.run();
    benchmark::DoNotOptimize(sink.count);
    if (traced) benchmark::DoNotOptimize(tracer->transmissions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets * kHops));
}
BENCHMARK(BM_ForwardJourney)
    ->ArgNames({"packets", "traced"})
    ->Args({256, 0})
    ->Args({256, 1});

/// End-to-end anchor inside the micro suite: one RCAD paper-scenario point
/// (the fig2a inner loop) at a reduced packet count. The campaign-level
/// trajectory in scripts/bench_network.sh times the full sweeps.
void BM_ScenarioRcadPoint(benchmark::State& state) {
  for (auto _ : state) {
    workload::PaperScenario scenario;
    scenario.scheme = workload::Scheme::kRcad;
    scenario.interarrival = 2.0;
    scenario.packets_per_source = 250;
    const auto result = run_paper_scenario(scenario);
    benchmark::DoNotOptimize(result.delivered);
  }
}
BENCHMARK(BM_ScenarioRcadPoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Surfaced in the report's context block so BENCH_network.json records
  // which crypto implementation and vector ISA produced the numbers.
  benchmark::AddCustomContext(
      "tempriv_scalar_crypto",
      tempriv::crypto::scalar_crypto_build() ? "on" : "off");
  benchmark::AddCustomContext("tempriv_simd_isa",
                              tempriv::crypto::keystream_isa());
  benchmark::AddCustomContext(
      "tempriv_keystream_lanes",
      std::to_string(tempriv::crypto::CtrCipher::kWideLanes) + "/" +
          std::to_string(tempriv::crypto::CtrCipher::kNarrowLanes));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
