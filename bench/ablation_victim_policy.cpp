// Ablation A — RCAD's victim-selection rule. The paper preempts the packet
// with the *shortest remaining delay* "so the resulting delay times for
// that node are the closest to the original distribution". This bench
// swaps in three alternatives at the paper's high-traffic operating point
// and reports privacy (baseline- and adaptive-adversary MSE) and latency.
//
// Expected shape: all policies give similar baseline-adversary MSE (any
// preemption defeats a non-adaptive estimator), but shortest-remaining
// keeps the realized delays closest to the configured distribution —
// visible as the highest mean latency (least truncation of the delay
// tail) — which is exactly the paper's design rationale.

#include "bench_util.h"
#include "core/delay_buffer.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table({"victim policy", "1/lambda", "S1 MSE (baseline adv)",
                        "S1 MSE (adaptive adv)", "S1 mean latency",
                        "preemptions"});

  for (const core::VictimPolicy policy :
       {core::VictimPolicy::kShortestRemaining,
        core::VictimPolicy::kLongestRemaining, core::VictimPolicy::kRandom,
        core::VictimPolicy::kOldest}) {
    for (const double interarrival : {2.0, 6.0}) {
      workload::PaperScenario scenario;
      scenario.scheme = workload::Scheme::kRcad;
      scenario.victim = policy;
      scenario.interarrival = interarrival;
      const auto result = run_paper_scenario(scenario);
      const auto& s1 = result.flows.front();
      table.add_row({to_string(policy), metrics::format_number(interarrival, 0),
                     metrics::format_number(s1.mse_baseline, 1),
                     metrics::format_number(s1.mse_adaptive, 1),
                     metrics::format_number(s1.mean_latency, 1),
                     std::to_string(result.preemptions)});
    }
  }

  bench::emit("ablation_victim_policy", table);
  return 0;
}
