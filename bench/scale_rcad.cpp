// Scale benchmark for the structure-of-arrays network: builds a uniform-
// density random-geometric sensor field with multiple sinks, constructs the
// CSR adjacency, nearest-sink routing and a spec-configured RCAD network,
// then (in --mode full) drives Poisson traffic from a sample of sources
// through the full pipeline — seal, forward, delay, preempt, deliver — with
// a baseline adversary and ground-truth recorder scoring temporal privacy
// at the sink.
//
// Emits one JSON object on stdout per invocation; scripts/bench_scale.sh
// runs the n-ladder and merges the objects into BENCH_scale.json. Wall-clock
// numbers are machine-dependent (trajectory data, not a regression gate);
// the structural fields (nodes, edges, bytes_per_node, unreachable,
// delivered, adversary_mse) are deterministic per seed.
//
// Usage: scale_rcad --n 100000 [--mode full|build] [--sinks 32]
//                   [--sources 512] [--packets 20] [--interval 20]
//                   [--radius 1.8] [--mean-delay 30] [--capacity 10]
//                   [--seed 1]

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "core/discipline_spec.h"
#include "crypto/payload.h"
#include "metrics/stats.h"
#include "net/network.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Options {
  std::size_t n = 0;
  bool build_only = false;
  std::size_t sinks = 4;
  std::size_t sources = 512;
  std::uint32_t packets = 20;
  double interval = 20.0;   // mean packet inter-creation time 1/λ
  double radius = 1.8;      // comm radius at unit density (mean degree ~10)
  double mean_delay = 30.0; // RCAD 1/µ (paper §5.2)
  std::size_t capacity = 10;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "scale_rcad: %s\n", what);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (++i >= argc) usage_error("missing value after flag");
      return argv[i];
    };
    if (flag == "--n") {
      opt.n = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--mode") {
      const std::string mode = value();
      if (mode == "build") {
        opt.build_only = true;
      } else if (mode != "full") {
        usage_error("--mode must be full or build");
      }
    } else if (flag == "--sinks") {
      opt.sinks = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--sources") {
      opt.sources = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--packets") {
      opt.packets = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (flag == "--interval") {
      opt.interval = std::strtod(value(), nullptr);
    } else if (flag == "--radius") {
      opt.radius = std::strtod(value(), nullptr);
    } else if (flag == "--mean-delay") {
      opt.mean_delay = std::strtod(value(), nullptr);
    } else if (flag == "--capacity") {
      opt.capacity = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else {
      usage_error("unknown flag (see header comment for usage)");
    }
  }
  if (opt.n < 2) usage_error("--n must be >= 2");
  if (opt.sinks == 0 || opt.sinks >= opt.n) usage_error("--sinks out of range");
  if (opt.interval <= 0 || opt.radius <= 0) usage_error("bad --interval/--radius");
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tempriv;
  const Options opt = parse(argc, argv);
  // Unit density: n nodes in a side × side square with side = sqrt(n), so
  // the expected degree (π·r² − 1 neighbors) is scale-invariant and the
  // giant component covers the field at every rung of the ladder.
  const double side = std::sqrt(static_cast<double>(opt.n));

  sim::RandomStream topo_rng(opt.seed);
  const auto t_topo = Clock::now();
  const net::Topology topology = net::Topology::random_geometric_multi_sink(
      opt.n, side, opt.radius, opt.sinks, topo_rng);
  const double topo_s = seconds_since(t_topo);

  const auto t_csr = Clock::now();
  const std::size_t edges = topology.edge_count();  // forces the CSR build
  const double csr_s = seconds_since(t_csr);

  const auto t_routing = Clock::now();
  const net::RoutingTable routing(topology);
  const double routing_s = seconds_since(t_routing);
  const std::size_t unreachable = routing.unreachable_count();

  sim::Simulator simulator;
  const auto t_net = Clock::now();
  net::Network network(simulator, topology,
                       core::DisciplineSpec::rcad_exponential(opt.mean_delay,
                                                              opt.capacity),
                       {}, sim::RandomStream(opt.seed + 1));
  const double net_s = seconds_since(t_net);

  const std::size_t graph_bytes =
      topology.memory_bytes() + routing.memory_bytes();
  const std::size_t network_bytes = network.memory_bytes();
  const double bytes_per_node =
      static_cast<double>(graph_bytes + network_bytes) /
      static_cast<double>(opt.n);

  std::printf("{\n");
  std::printf("  \"nodes\": %zu,\n", opt.n);
  std::printf("  \"mode\": \"%s\",\n", opt.build_only ? "build" : "full");
  std::printf("  \"sinks\": %zu,\n", opt.sinks);
  std::printf("  \"edges\": %zu,\n", edges);
  std::printf("  \"mean_degree\": %.3f,\n",
              2.0 * static_cast<double>(edges) / static_cast<double>(opt.n));
  std::printf("  \"unreachable\": %zu,\n", unreachable);
  std::printf("  \"build_topology_s\": %.6f,\n", topo_s);
  std::printf("  \"build_csr_s\": %.6f,\n", csr_s);
  std::printf("  \"build_routing_s\": %.6f,\n", routing_s);
  std::printf("  \"build_network_s\": %.6f,\n", net_s);
  std::printf("  \"graph_bytes\": %zu,\n", graph_bytes);
  std::printf("  \"network_bytes\": %zu,\n", network_bytes);
  std::printf("  \"bytes_per_node\": %.1f", bytes_per_node);

  if (!opt.build_only) {
    const crypto::PayloadCodec codec(crypto::Speck64_128::Key{
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    adversary::GroundTruthRecorder recorder(codec);
    adversary::BaselineAdversary adversary(network.hop_tx_delay(),
                                           opt.mean_delay);
    network.add_sink_observer(&recorder);
    network.add_sink_observer(&adversary);

    // Sample sources evenly across the id space, skipping sinks and any
    // node outside the giant component. Deterministic per (n, seed).
    std::vector<net::NodeId> origins;
    origins.reserve(opt.sources);
    const std::size_t stride =
        std::max<std::size_t>(1, opt.n / std::max<std::size_t>(1, opt.sources));
    for (std::size_t id = 0; id < opt.n && origins.size() < opt.sources;
         id += stride) {
      const auto node = static_cast<net::NodeId>(id);
      if (topology.is_sink(node) || !routing.reachable(node)) continue;
      origins.push_back(node);
    }

    sim::RandomStream source_root(opt.seed + 2);
    std::vector<std::unique_ptr<workload::PoissonSource>> sources;
    sources.reserve(origins.size());
    for (const net::NodeId origin : origins) {
      sources.push_back(std::make_unique<workload::PoissonSource>(
          network, codec, origin, source_root.split(origin),
          1.0 / opt.interval, opt.packets));
      // Stagger starts across one mean interval so the field does not
      // originate in one synchronized burst at t = 0.
      sources.back()->start(source_root.uniform(0.0, opt.interval));
    }
    network.reserve(origins.size() + 64);
    simulator.reserve(4096);

    const auto t_run = Clock::now();
    simulator.run();
    const double run_s = seconds_since(t_run);
    const std::uint64_t events = simulator.events_executed();
    const metrics::MseAccumulator score = recorder.score_all(adversary);

    std::printf(",\n");
    std::printf("  \"sources\": %zu,\n", origins.size());
    std::printf("  \"originated\": %llu,\n",
                static_cast<unsigned long long>(network.packets_originated()));
    std::printf("  \"delivered\": %llu,\n",
                static_cast<unsigned long long>(network.packets_delivered()));
    std::printf("  \"preemptions\": %llu,\n",
                static_cast<unsigned long long>(network.total_preemptions()));
    std::printf("  \"drops\": %llu,\n",
                static_cast<unsigned long long>(network.total_drops()));
    std::printf("  \"events\": %llu,\n",
                static_cast<unsigned long long>(events));
    std::printf("  \"run_s\": %.6f,\n", run_s);
    std::printf("  \"events_per_s\": %.0f,\n",
                run_s > 0 ? static_cast<double>(events) / run_s : 0.0);
    std::printf("  \"mean_latency\": %.4f,\n", recorder.total_latency().mean());
    std::printf("  \"adversary_mse\": %.4f,\n", score.mse());
    std::printf("  \"adversary_estimates\": %llu",
                static_cast<unsigned long long>(score.count()));
  }
  std::printf("\n}\n");
  return 0;
}
