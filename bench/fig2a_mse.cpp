// Figure 2(a) — "Temporal privacy in 1) no delay, 2) delay with unlimited
// buffers and 3) delay with limited buffers (RCAD)": mean square error of
// the baseline adversary's creation-time estimates for flow S1 as a
// function of the source inter-arrival time 1/λ ∈ [2, 20].
//
// Paper setup (§5.2): Figure-1 topology (hop counts 15/22/9/11), periodic
// sources, 1000 packets per source, per-hop transmission delay τ = 1,
// exponential privacy delays with mean 1/µ = 30, buffers of k = 10 slots.
//
// Expected shape (paper): cases 1 and 2 are ~0 on the case-3 scale; case 3
// is largest at the highest traffic rate (1/λ = 2) and decays as traffic
// slows because preemptions become rare.

#include "bench_util.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table({"1/lambda", "NoDelay", "Delay&UnlimitedBuffers",
                        "Delay&LimitedBuffers(RCAD)"});

  for (double interarrival = 2.0; interarrival <= 20.0; interarrival += 2.0) {
    std::vector<double> row{interarrival};
    for (const workload::Scheme scheme :
         {workload::Scheme::kNoDelay, workload::Scheme::kUnlimitedDelay,
          workload::Scheme::kRcad}) {
      workload::PaperScenario scenario;
      scenario.interarrival = interarrival;
      scenario.scheme = scheme;
      const auto result = run_paper_scenario(scenario);
      row.push_back(result.flows.front().mse_baseline);  // flow S1
    }
    table.add_numeric_row(row, 1);
  }

  bench::emit("fig2a_mse", table);
  return 0;
}
