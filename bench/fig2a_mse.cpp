// Figure 2(a) — "Temporal privacy in 1) no delay, 2) delay with unlimited
// buffers and 3) delay with limited buffers (RCAD)": mean square error of
// the baseline adversary's creation-time estimates for flow S1 as a
// function of the source inter-arrival time 1/λ ∈ [2, 20].
//
// Paper setup (§5.2): Figure-1 topology (hop counts 15/22/9/11), periodic
// sources, 1000 packets per source, per-hop transmission delay τ = 1,
// exponential privacy delays with mean 1/µ = 30, buffers of k = 10 slots.
//
// Expected shape (paper): cases 1 and 2 are ~0 on the case-3 scale; case 3
// is largest at the highest traffic rate (1/λ = 2) and decays as traffic
// slows because preemptions become rare.
//
// The 30 scenario points run as campaign jobs across all cores; the merge
// order is fixed by job index, so the CSV is byte-identical to the old
// serial loop at the same seed regardless of the worker count.

#include "bench_util.h"
#include "campaign/sweeps.h"

int main() {
  using namespace tempriv;
  const campaign::Sweep sweep = campaign::fig2a_sweep();
  campaign::ProgressReporter progress(std::cerr, sweep.points.size());
  const auto run = campaign::run_sweep(sweep, {.threads = 0, .progress = &progress});
  progress.finish();
  bench::emit(sweep.tag, run.table);
  return 0;
}
