// Ablation B — buffer size. The paper fixes k = 10 ("approximates the
// buffers available on the Mica-2 motes"); this sweep shows how the
// privacy/latency trade-off moves with the hardware budget at the
// high-traffic operating point 1/λ = 2.
//
// Expected shape: small buffers preempt constantly (huge baseline-adversary
// MSE, latency near the no-delay floor); large buffers approach the
// unlimited-buffer case (latency -> h(τ+1/µ) = 465, MSE -> h/µ² ≈ 13.5k).
//
// The six k-points run as campaign jobs across all cores; deterministic
// merge keeps the CSV byte-identical to the old serial loop.

#include "bench_util.h"
#include "campaign/sweeps.h"

int main() {
  using namespace tempriv;
  const campaign::Sweep sweep = campaign::buffer_size_sweep();
  campaign::ProgressReporter progress(std::cerr, sweep.points.size());
  const auto run = campaign::run_sweep(sweep, {.threads = 0, .progress = &progress});
  progress.finish();
  bench::emit(sweep.tag, run.table);
  return 0;
}
