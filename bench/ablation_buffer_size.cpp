// Ablation B — buffer size. The paper fixes k = 10 ("approximates the
// buffers available on the Mica-2 motes"); this sweep shows how the
// privacy/latency trade-off moves with the hardware budget at the
// high-traffic operating point 1/λ = 2.
//
// Expected shape: small buffers preempt constantly (huge baseline-adversary
// MSE, latency near the no-delay floor); large buffers approach the
// unlimited-buffer case (latency -> h(τ+1/µ) = 465, MSE -> h/µ² ≈ 13.5k).

#include "bench_util.h"
#include "metrics/table.h"
#include "workload/scenario.h"

int main() {
  using namespace tempriv;

  metrics::Table table({"buffer slots k", "S1 MSE (baseline adv)",
                        "S1 MSE (adaptive adv)", "S1 mean latency",
                        "preemptions per packet"});

  for (const std::size_t slots : {2u, 5u, 10u, 20u, 40u, 80u}) {
    workload::PaperScenario scenario;
    scenario.scheme = workload::Scheme::kRcad;
    scenario.interarrival = 2.0;
    scenario.buffer_slots = slots;
    const auto result = run_paper_scenario(scenario);
    const auto& s1 = result.flows.front();
    table.add_numeric_row(
        {static_cast<double>(slots), s1.mse_baseline, s1.mse_adaptive,
         s1.mean_latency,
         static_cast<double>(result.preemptions) /
             static_cast<double>(result.originated)},
        1);
  }

  bench::emit("ablation_buffer_size", table);
  return 0;
}
