// §3.2 / Eq. (4) — the Anantharam–Verdú leakage bound in practice.
//
// A Poisson(λ) source's j-th packet is created at an Erlang(j, λ) time Xj
// and delayed by an independent Exp(1/µ) draw; the paper bounds the
// per-packet leakage by I(Xj; Zj) <= ln(1 + jµ/λ). We estimate I(Xj; Zj)
// empirically (2-D histogram plug-in estimator over Monte-Carlo pairs) and
// print it against the bound for several packet indices and µ/λ ratios —
// including the cumulative stream bound Σ ln(1 + jµ/λ) of Eq. (4).
//
// Expected shape: every empirical value sits below its bound; both shrink
// as µ/λ shrinks (longer mean delays relative to the creation process leak
// less), which is the paper's design rule for choosing µ.

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "infotheory/entropy.h"
#include "infotheory/estimators.h"
#include "metrics/table.h"
#include "sim/random.h"

namespace {

double empirical_leakage(std::uint64_t j, double lambda, double mean_delay,
                         std::uint64_t seed) {
  constexpr std::size_t kTrials = 40000;
  tempriv::sim::RandomStream rng(seed);
  std::vector<double> xs(kTrials);
  std::vector<double> zs(kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    xs[t] = rng.erlang(static_cast<unsigned>(j), lambda);
    zs[t] = xs[t] + rng.exponential_mean(mean_delay);
  }
  return tempriv::infotheory::mutual_information_histogram(xs, zs, 24);
}

}  // namespace

int main() {
  using namespace tempriv;

  constexpr double kLambda = 1.0;

  metrics::Table per_packet({"mu/lambda", "packet j", "empirical I(Xj;Zj)",
                             "AV bound ln(1+j*mu/lambda)"});
  for (const double mu_over_lambda : {1.0, 0.2, 1.0 / 30.0, 0.01}) {
    const double mean_delay = 1.0 / (kLambda * mu_over_lambda);
    for (const std::uint64_t j : {std::uint64_t{1}, std::uint64_t{3},
                                  std::uint64_t{10}, std::uint64_t{30}}) {
      per_packet.add_numeric_row(
          {mu_over_lambda, static_cast<double>(j),
           empirical_leakage(j, kLambda, mean_delay, 1000 + j),
           infotheory::av_leakage_bound(j, mu_over_lambda * kLambda, kLambda)},
          4);
    }
  }
  bench::emit("bound_vs_empirical_mi_per_packet", per_packet);

  metrics::Table stream({"mu/lambda", "n packets", "Eq.(4) bound on I(X^n;Z^n)",
                         "bound per packet"});
  for (const double mu_over_lambda : {1.0, 0.2, 1.0 / 30.0, 0.01}) {
    for (const std::uint64_t n :
         {std::uint64_t{10}, std::uint64_t{100}, std::uint64_t{1000}}) {
      const double bound = infotheory::av_leakage_bound_sum(
          n, mu_over_lambda * kLambda, kLambda);
      stream.add_numeric_row({mu_over_lambda, static_cast<double>(n), bound,
                              bound / static_cast<double>(n)},
                             4);
    }
  }
  bench::emit("bound_vs_empirical_mi_stream", stream);
  return 0;
}
