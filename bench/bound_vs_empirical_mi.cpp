// §3.2 / Eq. (4) — the Anantharam–Verdú leakage bound in practice.
//
// A Poisson(λ) source's j-th packet is created at an Erlang(j, λ) time Xj
// and delayed by an independent Exp(1/µ) draw; the paper bounds the
// per-packet leakage by I(Xj; Zj) <= ln(1 + jµ/λ). We estimate I(Xj; Zj)
// empirically (2-D histogram plug-in estimator over Monte-Carlo pairs) and
// print it against the bound for several packet indices and µ/λ ratios —
// including the cumulative stream bound Σ ln(1 + jµ/λ) of Eq. (4).
//
// Post-processing pipeline: the µ/λ ratios for one packet index j share a
// single Monte-Carlo draw — xs plus *unit* exponentials, scaled per ratio —
// because the underlying uniform stream is identical whatever the mean
// (exponential_mean(m) = −m·ln U), so each cell's (xs, zs) come out
// byte-identical to sampling it in isolation at a quarter of the RNG cost.
// The per-j pipelines are independent (self-seeded rng(1000+j)) and run on
// a campaign::ThreadPool; rows are emitted in fixed order, so the CSVs are
// byte-identical to the serial single-cell-at-a-time original.
//
// Expected shape: every empirical value sits below its bound; both shrink
// as µ/λ shrinks (longer mean delays relative to the creation process leak
// less), which is the paper's design rule for choosing µ.

#include <array>
#include <cstdint>
#include <future>
#include <vector>

#include "bench_util.h"
#include "campaign/thread_pool.h"
#include "infotheory/entropy.h"
#include "infotheory/estimators.h"
#include "metrics/table.h"
#include "sim/random.h"

namespace {

constexpr std::array<double, 4> kMuOverLambda{1.0, 0.2, 1.0 / 30.0, 0.01};
constexpr std::array<std::uint64_t, 4> kPacketIndices{1, 3, 10, 30};

/// Empirical Î(Xj; Zj) for packet index j at every µ/λ ratio, in
/// kMuOverLambda order.
std::array<double, kMuOverLambda.size()> empirical_leakage_row(
    std::uint64_t j, double lambda, std::uint64_t seed) {
  constexpr std::size_t kTrials = 40000;
  tempriv::sim::RandomStream rng(seed);
  std::vector<double> xs(kTrials);
  std::vector<double> unit(kTrials);  // Exp(1) draws, scaled per ratio
  std::vector<double> zs(kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    xs[t] = rng.erlang(static_cast<unsigned>(j), lambda);
    unit[t] = rng.exponential_mean(1.0);
  }
  tempriv::infotheory::AnalysisScratch scratch;
  std::array<double, kMuOverLambda.size()> row{};
  for (std::size_t r = 0; r < kMuOverLambda.size(); ++r) {
    const double mean_delay = 1.0 / (lambda * kMuOverLambda[r]);
    for (std::size_t t = 0; t < kTrials; ++t) {
      zs[t] = xs[t] + mean_delay * unit[t];
    }
    row[r] =
        tempriv::infotheory::mutual_information_histogram(xs, zs, 24, scratch);
  }
  return row;
}

}  // namespace

int main() {
  using namespace tempriv;

  constexpr double kLambda = 1.0;

  campaign::ThreadPool pool(campaign::ThreadPool::resolve_threads(0));
  std::array<std::future<std::array<double, kMuOverLambda.size()>>,
             kPacketIndices.size()>
      rows;
  for (std::size_t p = 0; p < kPacketIndices.size(); ++p) {
    const std::uint64_t j = kPacketIndices[p];
    rows[p] = pool.submit(
        [j] { return empirical_leakage_row(j, kLambda, 1000 + j); });
  }
  std::array<std::array<double, kMuOverLambda.size()>, kPacketIndices.size()>
      empirical;
  for (std::size_t p = 0; p < kPacketIndices.size(); ++p) {
    empirical[p] = rows[p].get();
  }

  metrics::Table per_packet({"mu/lambda", "packet j", "empirical I(Xj;Zj)",
                             "AV bound ln(1+j*mu/lambda)"});
  for (std::size_t r = 0; r < kMuOverLambda.size(); ++r) {
    const double mu_over_lambda = kMuOverLambda[r];
    for (std::size_t p = 0; p < kPacketIndices.size(); ++p) {
      const std::uint64_t j = kPacketIndices[p];
      per_packet.add_numeric_row(
          {mu_over_lambda, static_cast<double>(j), empirical[p][r],
           infotheory::av_leakage_bound(j, mu_over_lambda * kLambda, kLambda)},
          4);
    }
  }
  bench::emit("bound_vs_empirical_mi_per_packet", per_packet);

  metrics::Table stream({"mu/lambda", "n packets", "Eq.(4) bound on I(X^n;Z^n)",
                         "bound per packet"});
  for (const double mu_over_lambda : kMuOverLambda) {
    for (const std::uint64_t n :
         {std::uint64_t{10}, std::uint64_t{100}, std::uint64_t{1000}}) {
      const double bound = infotheory::av_leakage_bound_sum(
          n, mu_over_lambda * kLambda, kLambda);
      stream.add_numeric_row({mu_over_lambda, static_cast<double>(n), bound,
                              bound / static_cast<double>(n)},
                             4);
    }
  }
  bench::emit("bound_vs_empirical_mi_stream", stream);
  return 0;
}
