// tempriv-merge — validate and combine per-shard campaign artifacts back
// into the files a serial run writes, byte for byte.
//
//   tempriv-merge out/fig2a_mse.shard-*-of-4.jsonl
//   tempriv-merge --check out/fig2a_mse.shard-*-of-4.jsonl
//   tempriv-merge --jsonl merged.jsonl shard0.jsonl shard1.jsonl
//
// Each positional argument is a shard JSONL artifact written by
// `tempriv-campaign --shard i/N`; its `.stats.json` sibling is loaded by
// naming convention. The merge first validates the set (matching manifests
// and config hash, no duplicate or missing shards, every record on its
// owner's stride, stats siblings agreeing with their JSONL), then:
//
//  - interleaves the shards' verbatim JSONL lines in ascending job index —
//    the serial log is reproduced without recomputing a single simulation;
//  - replays the parsed records through the merged-stats sink in the same
//    job-index order the serial run consumed them (Welford folds are
//    order-sensitive, so in-order replay is what makes the stats artifact
//    byte-identical), cross-checking the shard stats histograms via
//    Histogram::merge / IntegerHistogram::merge;
//  - re-renders the figure CSV from the replication-0 results.
//
// --check performs only the validation and reports every problem found
// (missing/duplicate shards, incompatible manifests, truncated files),
// writing nothing. Exit codes: 0 ok, 1 validation/merge failure, 2 usage.

#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "campaign/merge.h"
#include "campaign/telemetry_io.h"

namespace {

using namespace tempriv;

struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int usage(std::ostream& os, int code) {
  os << "usage: tempriv-merge [options] <shard.jsonl>...\n"
        "\n"
        "options:\n"
        "  --check         validate the shard set and report every problem\n"
        "                  (missing/duplicate/incompatible shards, truncated\n"
        "                  files); writes nothing. exit 0 iff mergeable\n"
        "  --jsonl PATH    write the merged JSONL here\n"
        "                  (default: <results-dir>/<tag>.jsonl)\n"
        "  --telemetry PATH  merge the shards' .telemetry.json siblings\n"
        "                  (sum counters, max gauges, merge histograms and\n"
        "                  spans) and write the combined snapshot here;\n"
        "                  errors if any shard lacks its sibling\n"
        "  --out DIR       results directory (default: $TEMPRIV_RESULTS_DIR\n"
        "                  or bench_results/)\n"
        "\n"
        "Merged outputs (JSONL, stats JSON, figure CSV) are byte-identical\n"
        "to the serial `tempriv-campaign` run of the same campaign.\n";
  return code;
}

int run(int argc, char** argv) {
  bool check_only = false;
  std::string jsonl_path;
  std::string telemetry_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--jsonl") {
      jsonl_path = value();
    } else if (arg == "--telemetry") {
      telemetry_path = value();
    } else if (arg == "--out") {
      setenv("TEMPRIV_RESULTS_DIR", value().c_str(), /*overwrite=*/1);
    } else if (!arg.empty() && arg[0] == '-') {
      throw UsageError("unknown option: " + arg);
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) {
    throw UsageError("no shard artifacts given");
  }

  std::vector<campaign::ShardInput> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    shards.push_back(campaign::load_shard_files(path));
  }

  if (check_only) {
    const campaign::MergeCheck check = campaign::check_shards(shards);
    if (check.ok()) {
      const campaign::CampaignManifest& m = shards.front().header.manifest;
      std::cout << "ok: " << shards.size() << " shard(s) of " << m.sweep
                << " (" << m.total_jobs << " jobs, config "
                << campaign::config_hash_hex(m.config_hash)
                << ") ready to merge\n";
      return 0;
    }
    for (const std::string& error : check.errors) {
      std::cerr << "tempriv-merge: " << error << "\n";
    }
    std::cerr << "tempriv-merge: " << check.errors.size()
              << " problem(s); shard set cannot merge\n";
    return 1;
  }

  const campaign::MergedCampaign merged = campaign::merge_shards(shards);
  if (jsonl_path.empty()) {
    jsonl_path = bench::results_dir() + "/" + merged.manifest.tag + ".jsonl";
  }
  std::error_code ec;
  const auto parent = std::filesystem::path(jsonl_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  {
    std::ofstream jsonl_file(jsonl_path);
    if (!jsonl_file) {
      throw std::runtime_error("cannot open " + jsonl_path + " for writing");
    }
    jsonl_file << merged.jsonl;
  }
  const std::string stats_path = campaign::shard_stats_path(jsonl_path);
  {
    std::ofstream stats_file(stats_path);
    if (!stats_file) {
      throw std::runtime_error("cannot open " + stats_path + " for writing");
    }
    stats_file << merged.stats_json;
  }

  if (!telemetry_path.empty()) {
    // Shard snapshots fold with this process's own collect() (which carries
    // the merge span); in a default build the latter is all zeros with
    // enabled=false and the merge is a no-op on the shard counts.
    telemetry::Snapshot combined = telemetry::collect();
    for (const std::string& path : shard_paths) {
      combined.merge(campaign::load_telemetry_file(
          campaign::shard_telemetry_path(path)));
    }
    campaign::write_telemetry_file(telemetry_path, combined);
  }

  bench::emit(merged.manifest.tag, merged.table);
  std::cout << "(jsonl: " << jsonl_path << ")\n"
            << "(stats: " << stats_path << ")\n";
  if (!telemetry_path.empty()) {
    std::cout << "(telemetry: " << telemetry_path << ")\n";
  }
  campaign::print_campaign_summary(std::cout, merged.total,
                                   merged.manifest.points,
                                   merged.manifest.reps);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") return usage(std::cout, 0);
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "tempriv-merge: " << e.what() << "\n"
              << "run 'tempriv-merge --help' for usage\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "tempriv-merge: " << e.what() << "\n";
    return 1;
  }
}
