// tempriv-campaign — run an experiment campaign (a named figure sweep or an
// ad-hoc parameter grid) in parallel on the campaign engine.
//
//   tempriv-campaign fig2a --jobs 8
//   tempriv-campaign buffer --reps 5 --jsonl buffer.jsonl
//   tempriv-campaign grid --interarrival 2:20:2 --buffer-slots 5,10,20
//       --scheme rcad,droptail --packets 500 --seed 42
//
// Scenario points × replications fan out across worker threads; results are
// merged in job-index order, so every output (CSV, JSONL, summary stats) is
// byte-identical whatever --jobs is. Named sweeps write the same CSV as
// their serial bench/ counterpart at the default seed. Replication 0 of each
// point keeps the scenario's own seed; replication r > 0 reseeds with
// sim::derive_seed (see sim/seed.h).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "campaign/sweeps.h"

namespace {

using namespace tempriv;

int usage(std::ostream& os, int code) {
  os << "usage: tempriv-campaign <sweep>|grid [options]\n"
        "\n"
        "sweeps: fig2a (adversary MSE), fig2b (latency), fig3 (adaptive\n"
        "        adversary), buffer (buffer-size ablation)\n"
        "\n"
        "options:\n"
        "  --jobs N             worker threads (default: hardware concurrency)\n"
        "  --reps R             replications per scenario point (default 1)\n"
        "  --seed S             base seed for every point (default: paper seed)\n"
        "  --jsonl PATH         write the per-job JSONL result log here\n"
        "                       (default: <results-dir>/<tag>.jsonl)\n"
        "  --out DIR            results directory (default: $TEMPRIV_RESULTS_DIR\n"
        "                       or bench_results/)\n"
        "  --quiet              suppress the progress meter\n"
        "  --trace              enable per-packet tracing in every scenario\n"
        "                       (reports total link transmissions; untraced\n"
        "                       runs never pay the tracer's probe)\n"
        "\n"
        "grid axes (comma lists or lo:hi:step ranges):\n"
        "  --interarrival LIST  1/lambda values (default 2)\n"
        "  --buffer-slots LIST  buffer sizes k (default 10)\n"
        "  --scheme LIST        nodelay,unlimited,droptail,rcad (default rcad)\n"
        "  --packets N          packets per source (default 1000)\n"
        "  --mean-delay X       mean privacy delay 1/mu (default 30)\n";
  return code;
}

std::vector<double> parse_axis(const std::string& text) {
  std::vector<double> values;
  if (text.find(':') != std::string::npos) {  // lo:hi:step range
    double lo = 0.0, hi = 0.0, step = 0.0;
    char c1 = 0, c2 = 0;
    std::istringstream in(text);
    if (!(in >> lo >> c1 >> hi >> c2 >> step) || c1 != ':' || c2 != ':' ||
        step <= 0.0 || hi < lo) {
      throw std::invalid_argument("bad range (want lo:hi:step): " + text);
    }
    for (double v = lo; v <= hi; v += step) values.push_back(v);
    return values;
  }
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) values.push_back(std::stod(item));
  }
  if (values.empty()) throw std::invalid_argument("empty axis: " + text);
  return values;
}

workload::Scheme parse_scheme(const std::string& name) {
  if (name == "nodelay") return workload::Scheme::kNoDelay;
  if (name == "unlimited") return workload::Scheme::kUnlimitedDelay;
  if (name == "droptail") return workload::Scheme::kDropTail;
  if (name == "rcad") return workload::Scheme::kRcad;
  throw std::invalid_argument("unknown scheme: " + name);
}

std::vector<workload::Scheme> parse_schemes(const std::string& text) {
  std::vector<workload::Scheme> schemes;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) schemes.push_back(parse_scheme(item));
  }
  if (schemes.empty()) throw std::invalid_argument("empty scheme list");
  return schemes;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string sweep_name = argv[1];
  if (sweep_name == "--help" || sweep_name == "-h") return usage(std::cout, 0);

  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::uint32_t reps = 1;
  bool quiet = false;
  bool trace = false;
  bool seed_set = false;
  std::uint64_t seed = 0;
  std::string jsonl_path;
  campaign::GridSpec grid;

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for " + arg);
        }
        return argv[++i];
      };
      if (arg == "--jobs") {
        jobs = std::stoul(value());
      } else if (arg == "--reps") {
        reps = static_cast<std::uint32_t>(std::stoul(value()));
        if (reps == 0) throw std::invalid_argument("--reps must be >= 1");
      } else if (arg == "--seed") {
        seed = std::stoull(value());
        seed_set = true;
      } else if (arg == "--jsonl") {
        jsonl_path = value();
      } else if (arg == "--out") {
        setenv("TEMPRIV_RESULTS_DIR", value().c_str(), /*overwrite=*/1);
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--trace") {
        trace = true;
      } else if (arg == "--interarrival") {
        grid.interarrivals = parse_axis(value());
      } else if (arg == "--buffer-slots") {
        grid.buffer_slots.clear();
        for (const double v : parse_axis(value())) {
          grid.buffer_slots.push_back(static_cast<std::size_t>(v));
        }
      } else if (arg == "--scheme") {
        grid.schemes = parse_schemes(value());
      } else if (arg == "--packets") {
        grid.base.packets_per_source =
            static_cast<std::uint32_t>(std::stoul(value()));
      } else if (arg == "--mean-delay") {
        grid.base.mean_delay = std::stod(value());
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }

    campaign::Sweep sweep = sweep_name == "grid"
                                ? campaign::grid_sweep(grid)
                                : campaign::make_named_sweep(sweep_name);
    if (seed_set) {
      for (workload::PaperScenario& point : sweep.points) point.seed = seed;
    }
    if (trace) {
      for (workload::PaperScenario& point : sweep.points) point.trace = true;
    }

    const std::size_t total_jobs = sweep.points.size() * reps;
    campaign::ProgressReporter progress(std::cerr, total_jobs);
    campaign::RunnerOptions options;
    options.threads = jobs;
    if (!quiet) options.progress = &progress;

    if (jsonl_path.empty()) {
      jsonl_path = bench::results_dir() + "/" + sweep.tag + ".jsonl";
    }
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(jsonl_path).parent_path(), ec);
    std::ofstream jsonl_file(jsonl_path);
    if (!jsonl_file) {
      std::cerr << "cannot open " << jsonl_path << " for writing\n";
      return 1;
    }
    campaign::JsonlSink jsonl(jsonl_file);
    campaign::MergedStatsSink stats(sweep.points.size());

    const campaign::SweepRun run =
        campaign::run_sweep(sweep, options, reps, {&jsonl, &stats});
    if (!quiet) progress.finish();

    bench::emit(sweep.tag, run.table);
    std::cout << "(jsonl: " << jsonl_path << ")\n";
    const campaign::CampaignStats& total = stats.total();
    std::cout << "campaign: " << total.jobs << " jobs ("
              << sweep.points.size() << " points x " << reps
              << " reps), " << total.sim_events << " simulator events\n"
              << "  flow mean latency: mean "
              << metrics::format_number(total.flow_latency.mean(), 2)
              << "  min " << metrics::format_number(total.flow_latency.min(), 2)
              << "  max " << metrics::format_number(total.flow_latency.max(), 2)
              << "\n  flow MSE (baseline adversary): mean "
              << metrics::format_number(total.flow_mse_baseline.mean(), 1)
              << "  stddev "
              << metrics::format_number(total.flow_mse_baseline.stddev(), 1)
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "tempriv-campaign: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
