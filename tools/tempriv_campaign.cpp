// tempriv-campaign — run an experiment campaign (a named figure sweep or an
// ad-hoc parameter grid) in parallel on the campaign engine.
//
//   tempriv-campaign fig2a --jobs 8
//   tempriv-campaign buffer --reps 5 --jsonl buffer.jsonl
//   tempriv-campaign fig2a --shard 1/4          # run only shard 1 of 4
//   tempriv-campaign fig2a --shard auto:4       # fork 4 shards, auto-merge
//   tempriv-campaign grid --interarrival 2:20:2 --buffer-slots 5,10,20
//       --scheme rcad,droptail --packets 500 --seed 42
//
// Scenario points × replications fan out across worker threads; results are
// merged in job-index order, so every output (CSV, JSONL, summary stats) is
// byte-identical whatever --jobs is. Named sweeps write the same CSV as
// their serial bench/ counterpart at the default seed. Replication 0 of each
// point keeps the scenario's own seed; replication r > 0 reseeds with
// sim::derive_seed (see sim/seed.h).
//
// Sharding: --shard i/N runs only the jobs whose global index ≡ i (mod N)
// and writes self-describing shard artifacts for tempriv-merge; --shard
// auto:N forks N local shard processes, streams one aggregated progress
// meter, and merges the shards back into the same files a serial run
// writes, byte for byte.

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "campaign/merge.h"
#include "campaign/supervisor.h"
#include "campaign/sweeps.h"
#include "campaign/telemetry_io.h"

namespace {

using namespace tempriv;

/// Bad command line (unknown flag, malformed number, ...): reported with a
/// pointer at --help and exit code 2, distinct from runtime failures (1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int usage(std::ostream& os, int code) {
  os << "usage: tempriv-campaign <sweep>|grid [options]\n"
        "\n"
        "sweeps: fig2a (adversary MSE), fig2b (latency), fig3 (adaptive\n"
        "        adversary), buffer (buffer-size ablation)\n"
        "\n"
        "options:\n"
        "  --jobs N             worker threads (default: hardware concurrency)\n"
        "  --reps R             replications per scenario point (default 1)\n"
        "  --seed S             base seed for every point (default: paper seed)\n"
        "  --shard i/N          run only shard i of N (jobs with index % N == i)\n"
        "                       and write shard artifacts for tempriv-merge\n"
        "  --shard auto:N       fork N local shard processes, aggregate their\n"
        "                       progress, and auto-merge when all succeed\n"
        "  --jsonl PATH         write the per-job JSONL result log here\n"
        "                       (default: <results-dir>/<tag>.jsonl, or the\n"
        "                       shard-stamped stem under --shard i/N)\n"
        "  --out DIR            results directory (default: $TEMPRIV_RESULTS_DIR\n"
        "                       or bench_results/)\n"
        "  --telemetry PATH     write a telemetry snapshot (counters, phase\n"
        "                       spans, memory gauges) here after the run; in\n"
        "                       --shard auto:N mode each shard also writes a\n"
        "                       .telemetry.json sibling next to its JSONL and\n"
        "                       PATH gets their merge. Default builds compile\n"
        "                       the probes out: the file is all zeros with\n"
        "                       \"enabled\": false (build -DTEMPRIV_TELEMETRY=ON\n"
        "                       for live counts; results are byte-identical)\n"
        "  --quiet              suppress the progress meter\n"
        "  --trace              enable per-packet tracing in every scenario\n"
        "                       (reports total link transmissions; untraced\n"
        "                       runs never pay the tracer's probe)\n"
        "\n"
        "grid axes (comma lists or lo:hi:step ranges):\n"
        "  --interarrival LIST  1/lambda values (default 2)\n"
        "  --buffer-slots LIST  buffer sizes k (default 10)\n"
        "  --scheme LIST        nodelay,unlimited,droptail,rcad (default rcad)\n"
        "  --packets N          packets per source (default 1000)\n"
        "  --mean-delay X       mean privacy delay 1/mu (default 30)\n";
  return code;
}

/// Strict non-negative integer: digits only, fully consumed, in range.
/// "12x", "-3", "" and "99999999999999999999999" all raise UsageError —
/// std::stoul would silently accept the first and mangle the rest.
std::uint64_t parse_u64_arg(const std::string& flag, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    throw UsageError(flag + " wants a non-negative integer, got '" + text +
                     "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    throw UsageError(flag + " value out of range: '" + text + "'");
  }
  return value;
}

std::uint32_t parse_u32_arg(const std::string& flag, const std::string& text) {
  const std::uint64_t value = parse_u64_arg(flag, text);
  if (value > 0xffffffffull) {
    throw UsageError(flag + " value out of range: '" + text + "'");
  }
  return static_cast<std::uint32_t>(value);
}

/// Strict finite double, fully consumed.
double parse_double_arg(const std::string& flag, const std::string& text) {
  if (text.empty()) throw UsageError(flag + " wants a number, got ''");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      !std::isfinite(value)) {
    throw UsageError(flag + " wants a number, got '" + text + "'");
  }
  return value;
}

std::vector<double> parse_axis(const std::string& flag,
                               const std::string& text) {
  std::vector<double> values;
  if (text.find(':') != std::string::npos) {  // lo:hi:step range
    std::vector<std::string> parts;
    std::istringstream in(text);
    std::string part;
    while (std::getline(in, part, ':')) parts.push_back(part);
    if (parts.size() != 3) {
      throw UsageError(flag + " wants lo:hi:step, got '" + text + "'");
    }
    const double lo = parse_double_arg(flag, parts[0]);
    const double hi = parse_double_arg(flag, parts[1]);
    const double step = parse_double_arg(flag, parts[2]);
    if (step <= 0.0 || hi < lo) {
      throw UsageError(flag + " wants lo:hi:step with step > 0 and hi >= lo, "
                       "got '" + text + "'");
    }
    for (double v = lo; v <= hi; v += step) values.push_back(v);
    return values;
  }
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) values.push_back(parse_double_arg(flag, item));
  }
  if (values.empty()) throw UsageError(flag + " got an empty list");
  return values;
}

std::vector<workload::Scheme> parse_schemes(const std::string& text) {
  std::vector<workload::Scheme> schemes;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    try {
      schemes.push_back(workload::scheme_from_string(item));
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
  }
  if (schemes.empty()) throw UsageError("--scheme got an empty list");
  return schemes;
}

enum class ShardMode { kSerial, kSingle, kAuto };

struct Options {
  std::string sweep_name;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::uint32_t reps = 1;
  bool quiet = false;
  bool trace = false;
  bool seed_set = false;
  std::uint64_t seed = 0;
  std::string jsonl_path;
  std::string telemetry_path;
  ShardMode mode = ShardMode::kSerial;
  campaign::ShardSpec shard;       // kSingle
  std::uint32_t fleet_shards = 0;  // kAuto
  campaign::GridSpec grid;
};

void parse_shard_arg(Options& opt, const std::string& text) {
  if (text.rfind("auto:", 0) == 0) {
    opt.fleet_shards = parse_u32_arg("--shard auto:", text.substr(5));
    if (opt.fleet_shards == 0) {
      throw UsageError("--shard auto:N wants N >= 1, got '" + text + "'");
    }
    opt.mode = ShardMode::kAuto;
    return;
  }
  try {
    opt.shard = campaign::parse_shard_spec(text);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  // "0/1" also takes this path and stamps shard artifacts — it is a
  // one-shard campaign, and the determinism suite merges it to prove
  // merge(1 shard) == serial.
  opt.mode = ShardMode::kSingle;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  opt.sweep_name = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--jobs") {
      opt.jobs = static_cast<std::size_t>(parse_u64_arg(arg, value()));
    } else if (arg == "--reps") {
      opt.reps = parse_u32_arg(arg, value());
      if (opt.reps == 0) throw UsageError("--reps must be >= 1");
    } else if (arg == "--seed") {
      opt.seed = parse_u64_arg(arg, value());
      opt.seed_set = true;
    } else if (arg == "--shard") {
      parse_shard_arg(opt, value());
    } else if (arg == "--jsonl") {
      opt.jsonl_path = value();
    } else if (arg == "--telemetry") {
      opt.telemetry_path = value();
    } else if (arg == "--out") {
      setenv("TEMPRIV_RESULTS_DIR", value().c_str(), /*overwrite=*/1);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--interarrival") {
      opt.grid.interarrivals = parse_axis(arg, value());
    } else if (arg == "--buffer-slots") {
      opt.grid.buffer_slots.clear();
      for (const double v : parse_axis(arg, value())) {
        if (v < 0.0 || v != std::floor(v)) {
          throw UsageError("--buffer-slots wants non-negative integers");
        }
        opt.grid.buffer_slots.push_back(static_cast<std::size_t>(v));
      }
    } else if (arg == "--scheme") {
      opt.grid.schemes = parse_schemes(value());
    } else if (arg == "--packets") {
      opt.grid.base.packets_per_source = parse_u32_arg(arg, value());
    } else if (arg == "--mean-delay") {
      opt.grid.base.mean_delay = parse_double_arg(arg, value());
    } else {
      throw UsageError("unknown option: " + arg);
    }
  }
  return opt;
}

std::ofstream open_output(const std::string& path) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  return file;
}

/// Runs one shard to its two artifact files (plus an optional telemetry
/// snapshot). Shared by --shard i/N (in process) and --shard auto:N
/// (inside each forked child).
void run_one_shard(const campaign::Sweep& sweep, const Options& opt,
                   const campaign::ShardSpec& shard, std::size_t threads,
                   campaign::ProgressListener* progress,
                   const std::string& jsonl_path,
                   const std::string& telemetry_path) {
  campaign::RunnerOptions options;
  options.threads = threads;
  options.progress = progress;
  std::ofstream jsonl_file = open_output(jsonl_path);
  std::ofstream stats_file = open_output(campaign::shard_stats_path(jsonl_path));
  campaign::run_sweep_shard(sweep, options, opt.reps, shard, jsonl_file,
                            stats_file);
  jsonl_file.flush();
  stats_file.flush();
  if (!jsonl_file || !stats_file) {
    throw std::runtime_error("short write on shard artifacts for " +
                             jsonl_path);
  }
  // Collected after the worker pool has quiesced (run_sweep_shard joins it).
  if (!telemetry_path.empty()) {
    campaign::write_telemetry_file(telemetry_path, telemetry::collect());
  }
}

std::string shard_jsonl_path(const std::string& dir, const std::string& tag,
                             const campaign::ShardSpec& shard) {
  return dir + "/" + campaign::shard_artifact_stem(tag, shard) + ".jsonl";
}

int run_single_shard(const campaign::Sweep& sweep, const Options& opt) {
  const std::size_t total_jobs = sweep.points.size() * opt.reps;
  const std::size_t owned = campaign::shard_jobs_owned(total_jobs, opt.shard);
  const std::string jsonl_path =
      opt.jsonl_path.empty()
          ? shard_jsonl_path(bench::results_dir(), sweep.tag, opt.shard)
          : opt.jsonl_path;

  campaign::ProgressReporter progress(std::cerr, owned);
  run_one_shard(sweep, opt, opt.shard, opt.jobs,
                opt.quiet ? nullptr : &progress, jsonl_path,
                opt.telemetry_path);
  if (!opt.quiet) progress.finish();

  std::cout << "shard " << opt.shard.index << "/" << opt.shard.count << ": "
            << owned << " of " << total_jobs << " jobs\n"
            << "(jsonl: " << jsonl_path << ")\n"
            << "(stats: " << campaign::shard_stats_path(jsonl_path) << ")\n";
  if (!opt.telemetry_path.empty()) {
    std::cout << "(telemetry: " << opt.telemetry_path << ")\n";
  }
  return 0;
}

int run_shard_fleet_and_merge(const campaign::Sweep& sweep,
                              const Options& opt) {
  const std::size_t total_jobs = sweep.points.size() * opt.reps;
  const std::uint32_t shards = opt.fleet_shards;
  const std::string merged_jsonl =
      opt.jsonl_path.empty()
          ? bench::results_dir() + "/" + sweep.tag + ".jsonl"
          : opt.jsonl_path;
  std::string dir =
      std::filesystem::path(merged_jsonl).parent_path().string();
  if (dir.empty()) dir = ".";

  // Split the machine across the fleet unless the user pinned --jobs, which
  // then applies per child.
  std::size_t child_threads = opt.jobs;
  if (child_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    child_threads = hw > shards ? hw / shards : 1;
  }

  campaign::ProgressReporter progress(std::cerr, total_jobs);
  campaign::ProgressListener* listener = opt.quiet ? nullptr : &progress;

  // Children heartbeat once a second so the supervisor can distinguish a
  // shard grinding through one long job from a hung one.
  campaign::FleetOptions fleet_options;
  fleet_options.stall_after = std::chrono::seconds(30);
  fleet_options.stall_log = opt.quiet ? nullptr : &std::cerr;

  // Fork the fleet before any thread exists in this process (fork and
  // threads do not mix); each child spawns its own worker pool.
  std::string fleet_error;
  const int rc = campaign::run_shard_fleet(
      shards, listener,
      [&](const campaign::ShardSpec& shard, int progress_fd) {
        try {
          const std::string shard_jsonl =
              shard_jsonl_path(dir, sweep.tag, shard);
          campaign::PipeProgress pipe_progress(progress_fd,
                                               std::chrono::seconds(1));
          run_one_shard(sweep, opt, shard, child_threads, &pipe_progress,
                        shard_jsonl,
                        opt.telemetry_path.empty()
                            ? std::string()
                            : campaign::shard_telemetry_path(shard_jsonl));
          return 0;
        } catch (const std::exception& e) {
          std::cerr << "tempriv-campaign [shard " << shard.index << "/"
                    << shard.count << "]: " << e.what() << "\n";
          return 1;
        }
      },
      &fleet_error, fleet_options);
  if (rc != 0) {
    throw std::runtime_error("shard fleet failed: " + fleet_error);
  }
  if (!opt.quiet) progress.finish();

  std::vector<campaign::ShardInput> inputs;
  inputs.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    inputs.push_back(campaign::load_shard_files(
        shard_jsonl_path(dir, sweep.tag, campaign::ShardSpec{i, shards})));
  }
  const campaign::MergedCampaign merged = campaign::merge_shards(inputs);

  open_output(merged_jsonl) << merged.jsonl;
  const std::string stats_path = campaign::shard_stats_path(merged_jsonl);
  open_output(stats_path) << merged.stats_json;

  if (!opt.telemetry_path.empty()) {
    // Campaign-wide view: the shards' snapshots (simulation counters)
    // folded together with this process's own (which carries the merge
    // span). Merge order is irrelevant — snapshot merge is associative
    // and commutative (tested).
    telemetry::Snapshot combined = telemetry::collect();
    for (std::uint32_t i = 0; i < shards; ++i) {
      combined.merge(campaign::load_telemetry_file(
          campaign::shard_telemetry_path(shard_jsonl_path(
              dir, sweep.tag, campaign::ShardSpec{i, shards}))));
    }
    campaign::write_telemetry_file(opt.telemetry_path, combined);
  }

  bench::emit(sweep.tag, merged.table);
  std::cout << "(jsonl: " << merged_jsonl << ")\n"
            << "(stats: " << stats_path << ")\n";
  if (!opt.telemetry_path.empty()) {
    std::cout << "(telemetry: " << opt.telemetry_path << ")\n";
  }
  campaign::print_campaign_summary(std::cout, merged.total,
                                   sweep.points.size(), opt.reps);
  return 0;
}

int run_serial(const campaign::Sweep& sweep, const Options& opt) {
  const std::size_t total_jobs = sweep.points.size() * opt.reps;
  campaign::ProgressReporter progress(std::cerr, total_jobs);
  campaign::RunnerOptions options;
  options.threads = opt.jobs;
  if (!opt.quiet) options.progress = &progress;

  const std::string jsonl_path =
      opt.jsonl_path.empty()
          ? bench::results_dir() + "/" + sweep.tag + ".jsonl"
          : opt.jsonl_path;
  std::ofstream jsonl_file = open_output(jsonl_path);
  campaign::JsonlSink jsonl(jsonl_file);
  campaign::MergedStatsSink stats(sweep.points.size());

  const campaign::SweepRun run =
      campaign::run_sweep(sweep, options, opt.reps, {&jsonl, &stats});
  if (!opt.quiet) progress.finish();

  // The stats artifact of the whole campaign — the file an N-shard merge
  // must reproduce byte for byte.
  const campaign::CampaignManifest manifest = campaign::make_manifest(
      sweep.name, sweep.tag, opt.reps, sweep.points);
  const std::string stats_path = campaign::shard_stats_path(jsonl_path);
  {
    std::ofstream stats_file = open_output(stats_path);
    campaign::write_campaign_stats_json(stats_file, manifest, nullptr, stats);
  }

  // Collected after run_sweep has joined its worker pool.
  if (!opt.telemetry_path.empty()) {
    campaign::write_telemetry_file(opt.telemetry_path, telemetry::collect());
  }

  bench::emit(sweep.tag, run.table);
  std::cout << "(jsonl: " << jsonl_path << ")\n"
            << "(stats: " << stats_path << ")\n";
  if (!opt.telemetry_path.empty()) {
    std::cout << "(telemetry: " << opt.telemetry_path << ")\n";
  }
  campaign::print_campaign_summary(std::cout, stats.total(),
                                   sweep.points.size(), opt.reps);
  return 0;
}

int run(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  campaign::Sweep sweep;
  try {
    sweep = opt.sweep_name == "grid" ? campaign::grid_sweep(opt.grid)
                                     : campaign::make_named_sweep(opt.sweep_name);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  if (opt.seed_set) {
    for (workload::PaperScenario& point : sweep.points) point.seed = opt.seed;
  }
  if (opt.trace) {
    for (workload::PaperScenario& point : sweep.points) point.trace = true;
  }

  switch (opt.mode) {
    case ShardMode::kSingle:
      return run_single_shard(sweep, opt);
    case ShardMode::kAuto:
      return run_shard_fleet_and_merge(sweep, opt);
    case ShardMode::kSerial:
      break;
  }
  return run_serial(sweep, opt);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") return usage(std::cout, 0);
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "tempriv-campaign: " << e.what() << "\n"
              << "run 'tempriv-campaign --help' for usage\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "tempriv-campaign: " << e.what() << "\n";
    return 1;
  }
}
