#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>

#include "crypto/ctr.h"
#include "crypto/inline_bytes.h"
#include "crypto/speck.h"

namespace tempriv::crypto {

/// The application-level content of a sensor message (paper §2, "Encrypted
/// Payload"): the sensed reading, the application sequence number, and the
/// time-stamp of the reading. All of it is confidential — in particular the
/// time-stamp and sequence number, which is why the adversary must infer
/// creation times from arrival times alone.
struct SensorPayload {
  double reading = 0.0;        ///< sensed value (e.g. temperature, RSSI)
  std::uint32_t app_seq = 0;   ///< per-source application sequence number
  double creation_time = 0.0;  ///< time the reading was taken (sim units)

  /// Serialized wire size: reading, app_seq, creation_time, little-endian.
  static constexpr std::size_t kWireBytes = 8 + 4 + 8;

  friend bool operator==(const SensorPayload&, const SensorPayload&) = default;
};

/// An encrypted, authenticated payload as it travels through the network.
/// Intermediate nodes and the adversary see only this opaque blob.
///
/// The ciphertext lives inline (SensorPayload has a fixed wire size, with a
/// little slack so tests can exercise malformed lengths), which makes this
/// struct — and the net::Packet that carries it — trivially copyable: the
/// forwarding path moves packets with plain memcpys and zero allocations.
struct SealedPayload {
  /// Inline ciphertext capacity: the fixed wire size plus slack for
  /// malformed-input testing; open() rejects any size != kWireBytes.
  static constexpr std::size_t kCiphertextCapacity =
      SensorPayload::kWireBytes + 4;

  std::uint64_t nonce = 0;
  InlineBytes<kCiphertextCapacity> ciphertext;
  std::uint64_t tag = 0;
};

static_assert(std::is_trivially_copyable_v<SealedPayload>,
              "SealedPayload must stay a flat POD: the packet path depends "
              "on memcpy moves");

/// Seals and opens sensor payloads with a network-wide key pair (one CTR
/// encryption key, one independent MAC key), mirroring SPINS-style
/// link/network keys on motes. Nonces are derived from (origin, app_seq),
/// which the source guarantees never repeats. Both directions run entirely
/// in registers and caller-owned storage — no heap allocations per packet.
class PayloadCodec {
 public:
  /// Derives the CTR and MAC keys from a 128-bit master key.
  explicit PayloadCodec(const Speck64_128::Key& master_key) noexcept;

  SealedPayload seal(const SensorPayload& payload,
                     std::uint32_t origin_id) const noexcept;

  /// Returns nullopt if the ciphertext length is wrong or the MAC does not
  /// verify (tampering / truncation / wrong key).
  std::optional<SensorPayload> open(const SealedPayload& sealed) const noexcept;

  /// Number of packets a full batch lane group carries.
  static constexpr std::size_t kBatchLanes = 8;

  /// Seals a burst of same-origin payloads, bit-identical to calling seal()
  /// on each element. Groups of kBatchLanes packets share one pass through
  /// the key schedules: lane l of each keystream wave carries packet l's
  /// counter block (CtrCipher::keystream_wave8) and lane l of each MAC wave
  /// carries packet l's CBC chain (CbcMac::tag8), so the per-packet block
  /// chains that are serial in isolation run eight abreast. The remainder
  /// (< kBatchLanes packets) falls back to seal(). `out.size()` must be at
  /// least `payloads.size()`.
  void seal_batch(std::span<const SensorPayload> payloads,
                  std::uint32_t origin_id,
                  std::span<SealedPayload> out) const noexcept;

  /// Opens a burst, element-wise identical to open(): out[i] is nullopt
  /// exactly when open(sealed[i]) would reject. Returns the number of
  /// successfully opened payloads. `out.size()` must be at least
  /// `sealed.size()`.
  std::size_t open_batch(std::span<const SealedPayload> sealed,
                         std::span<std::optional<SensorPayload>> out)
      const noexcept;

 private:
  CtrCipher ctr_;
  CbcMac mac_;
};

}  // namespace tempriv::crypto
