#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/ctr.h"
#include "crypto/speck.h"

namespace tempriv::crypto {

/// The application-level content of a sensor message (paper §2, "Encrypted
/// Payload"): the sensed reading, the application sequence number, and the
/// time-stamp of the reading. All of it is confidential — in particular the
/// time-stamp and sequence number, which is why the adversary must infer
/// creation times from arrival times alone.
struct SensorPayload {
  double reading = 0.0;        ///< sensed value (e.g. temperature, RSSI)
  std::uint32_t app_seq = 0;   ///< per-source application sequence number
  double creation_time = 0.0;  ///< time the reading was taken (sim units)

  friend bool operator==(const SensorPayload&, const SensorPayload&) = default;
};

/// An encrypted, authenticated payload as it travels through the network.
/// Intermediate nodes and the adversary see only this opaque blob.
struct SealedPayload {
  std::uint64_t nonce = 0;
  std::vector<std::uint8_t> ciphertext;
  std::uint64_t tag = 0;
};

/// Seals and opens sensor payloads with a network-wide key pair (one CTR
/// encryption key, one independent MAC key), mirroring SPINS-style
/// link/network keys on motes. Nonces are derived from (origin, app_seq),
/// which the source guarantees never repeats.
class PayloadCodec {
 public:
  /// Derives the CTR and MAC keys from a 128-bit master key.
  explicit PayloadCodec(const Speck64_128::Key& master_key) noexcept;

  SealedPayload seal(const SensorPayload& payload, std::uint32_t origin_id) const;

  /// Returns nullopt if the MAC does not verify (tampering / wrong key).
  std::optional<SensorPayload> open(const SealedPayload& sealed) const;

 private:
  CtrCipher ctr_;
  CbcMac mac_;
};

}  // namespace tempriv::crypto
