#include "crypto/reference.h"

#include "crypto/wordio.h"

namespace tempriv::crypto::reference {

std::uint64_t keystream_word(const Speck64_128& cipher, std::uint64_t nonce,
                             std::uint64_t counter) noexcept {
  // Same convention as Speck64_128::encrypt_block over the little-endian
  // block bytes of (nonce ^ counter): y is the low word, x the high word.
  const std::uint64_t v = nonce ^ counter;
  std::uint32_t y = static_cast<std::uint32_t>(v);
  std::uint32_t x = static_cast<std::uint32_t>(v >> 32);
  cipher.encrypt_words(x, y);
  return static_cast<std::uint64_t>(y) | (static_cast<std::uint64_t>(x) << 32);
}

void keystream(const Speck64_128& cipher, std::uint64_t nonce,
               std::span<std::uint8_t> out) noexcept {
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (out.size() - offset >= Speck64_128::kBlockBytes) {
    store_le(out.data() + offset, keystream_word(cipher, nonce, counter),
             Speck64_128::kBlockBytes);
    offset += Speck64_128::kBlockBytes;
    ++counter;
  }
  if (const std::size_t tail = out.size() - offset; tail > 0) {
    store_le(out.data() + offset, keystream_word(cipher, nonce, counter), tail);
  }
}

void xor_keystream(const Speck64_128& cipher, std::uint64_t nonce,
                   std::span<const std::uint8_t> in,
                   std::span<std::uint8_t> out) noexcept {
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (in.size() - offset >= Speck64_128::kBlockBytes) {
    const std::uint64_t word =
        load_le(in.data() + offset, Speck64_128::kBlockBytes) ^
        keystream_word(cipher, nonce, counter);
    store_le(out.data() + offset, word, Speck64_128::kBlockBytes);
    offset += Speck64_128::kBlockBytes;
    ++counter;
  }
  if (const std::size_t tail = in.size() - offset; tail > 0) {
    const std::uint64_t word =
        load_le(in.data() + offset, tail) ^ keystream_word(cipher, nonce, counter);
    store_le(out.data() + offset, word, tail);
  }
}

std::uint64_t cbc_mac_tag(const Speck64_128& cipher,
                          std::span<const std::uint8_t> data) noexcept {
  // Block 0 encodes the length; then CBC-chain the zero-padded message.
  std::uint64_t state = static_cast<std::uint64_t>(data.size());
  std::uint32_t y = static_cast<std::uint32_t>(state);
  std::uint32_t x = static_cast<std::uint32_t>(state >> 32);
  cipher.encrypt_words(x, y);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk =
        data.size() - offset >= Speck64_128::kBlockBytes
            ? Speck64_128::kBlockBytes
            : data.size() - offset;
    const std::uint64_t word = load_le(data.data() + offset, chunk);
    y ^= static_cast<std::uint32_t>(word);
    x ^= static_cast<std::uint32_t>(word >> 32);
    cipher.encrypt_words(x, y);
    offset += chunk;
  }
  return static_cast<std::uint64_t>(y) | (static_cast<std::uint64_t>(x) << 32);
}

}  // namespace tempriv::crypto::reference
