#pragma once

#include <cstdint>
#include <span>

#include "crypto/speck.h"

namespace tempriv::crypto {

/// Executable specification of the CTR keystream and CBC-MAC, one block at a
/// time — the code the vectorized lane kernels must match bit for bit.
///
/// Mirrors the src/infotheory/reference.* discipline: the scalar
/// block-at-a-time implementations are kept compiled forever, the property
/// tests compare the production (lane-batched) entry points against them on
/// randomized key/nonce/length corpora, and `-DTEMPRIV_SCALAR_CRYPTO=ON`
/// routes the production entry points through these functions outright so a
/// miscompiled or misported lane kernel can always be bisected against the
/// spec.
namespace reference {

/// Keystream block i as a little-endian 64-bit word: E_K(nonce ^ i).
std::uint64_t keystream_word(const Speck64_128& cipher, std::uint64_t nonce,
                             std::uint64_t counter) noexcept;

/// Fills `out` with raw keystream bytes for (nonce), block by block.
void keystream(const Speck64_128& cipher, std::uint64_t nonce,
               std::span<std::uint8_t> out) noexcept;

/// XORs the keystream into `in`, writing to `out` (may alias exactly).
void xor_keystream(const Speck64_128& cipher, std::uint64_t nonce,
                   std::span<const std::uint8_t> in,
                   std::span<std::uint8_t> out) noexcept;

/// CBC-MAC tag with the message length encrypted as block zero and
/// zero-padding of the final partial block — one chained block at a time.
std::uint64_t cbc_mac_tag(const Speck64_128& cipher,
                          std::span<const std::uint8_t> data) noexcept;

}  // namespace reference

}  // namespace tempriv::crypto
