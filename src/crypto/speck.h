#pragma once

#include <array>
#include <cstdint>

namespace tempriv::crypto {

/// Speck64/128 block cipher (NSA lightweight cipher family, 2013): 64-bit
/// block, 128-bit key, 27 rounds. Speck was designed for exactly the class
/// of constrained devices the paper targets (sensor motes), which is why we
/// use it as the payload-confidentiality substrate. The implementation is
/// the reference ARX description — no table lookups, constant-time.
///
/// The word-level round functions live in the header: every sealed/opened
/// payload costs 14 block operations (CTR keystream + CBC-MAC on both
/// sides), so the round loop is the single hottest function in a full
/// scenario run and must inline into the modes' batch loops.
class Speck64_128 {
 public:
  static constexpr std::size_t kBlockBytes = 8;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr int kRounds = 27;

  using Block = std::array<std::uint8_t, kBlockBytes>;
  using Key = std::array<std::uint8_t, kKeyBytes>;

  /// Expands the 128-bit key into the round-key schedule.
  explicit Speck64_128(const Key& key) noexcept;

  /// Encrypts one 64-bit block in place (two 32-bit little-endian words).
  void encrypt_block(Block& block) const noexcept;

  /// Decrypts one 64-bit block in place.
  void decrypt_block(Block& block) const noexcept;

  /// Word-level API used by the modes (ctr.h): one ARX round per key word.
  void encrypt_words(std::uint32_t& x, std::uint32_t& y) const noexcept {
    for (const std::uint32_t k : round_keys_) {
      x = (ror(x, 8) + y) ^ k;
      y = rol(y, 3) ^ x;
    }
  }

  void decrypt_words(std::uint32_t& x, std::uint32_t& y) const noexcept {
    for (int i = kRounds - 1; i >= 0; --i) {
      y = ror(y ^ x, 3);
      x = rol((x ^ round_keys_[i]) - y, 8);
    }
  }

  /// Multi-lane round kernel: `Lanes` independent (x, y) word pairs advance
  /// through all 27 rounds in lockstep under this key schedule. The inner
  /// loop has a compile-time trip count, so it unrolls into straight-line
  /// `uint32xN` arithmetic the vectorizer maps onto SIMD registers (and an
  /// out-of-order scalar core still overlaps the independent lane chains).
  /// This is the primitive behind every batched CTR/CBC-MAC entry point:
  /// lane l carries counter block l of one keystream, or the CBC chain of
  /// packet l in a batch — the caller owns the lane layout.
  template <int Lanes>
  void encrypt_words_lanes(std::uint32_t* x, std::uint32_t* y) const noexcept {
    static_assert(Lanes >= 2 && Lanes <= 16, "lane count out of range");
    for (const std::uint32_t k : round_keys_) {
      for (int l = 0; l < Lanes; ++l) {
        x[l] = (ror(x[l], 8) + y[l]) ^ k;
        y[l] = rol(y[l], 3) ^ x[l];
      }
    }
  }

 private:
  static constexpr std::uint32_t ror(std::uint32_t v, int r) noexcept {
    return (v >> r) | (v << (32 - r));
  }
  static constexpr std::uint32_t rol(std::uint32_t v, int r) noexcept {
    return (v << r) | (v >> (32 - r));
  }

  std::array<std::uint32_t, kRounds> round_keys_{};
};

}  // namespace tempriv::crypto
