#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>

namespace tempriv::crypto {

/// A fixed-capacity inline byte buffer: vector-like interface, zero heap.
///
/// SealedPayload used to carry its ciphertext in a std::vector, which made
/// every net::Packet drag one heap allocation (and a pointer chase) through
/// every store-and-forward hop. Sensor payloads serialize to a known fixed
/// size, so the bytes live directly inside the struct: InlineBytes is
/// trivially copyable, which makes SealedPayload — and with it net::Packet —
/// a flat POD the network can move through pools, buffers, and event
/// captures with plain memcpys.
///
/// Out-of-capacity resize/push_back throws std::length_error: the capacity
/// is a wire-format invariant, not a growth hint.
template <std::size_t Capacity>
class InlineBytes {
  static_assert(Capacity > 0 && Capacity <= 0xff,
                "InlineBytes: capacity must fit the 1-byte size field");

 public:
  using value_type = std::uint8_t;

  constexpr InlineBytes() noexcept = default;

  static constexpr std::size_t capacity() noexcept { return Capacity; }
  constexpr std::size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr std::uint8_t* data() noexcept { return bytes_.data(); }
  constexpr const std::uint8_t* data() const noexcept { return bytes_.data(); }

  constexpr std::uint8_t* begin() noexcept { return bytes_.data(); }
  constexpr std::uint8_t* end() noexcept { return bytes_.data() + size_; }
  constexpr const std::uint8_t* begin() const noexcept { return bytes_.data(); }
  constexpr const std::uint8_t* end() const noexcept {
    return bytes_.data() + size_;
  }

  constexpr std::uint8_t& operator[](std::size_t i) noexcept {
    return bytes_[i];
  }
  constexpr std::uint8_t operator[](std::size_t i) const noexcept {
    return bytes_[i];
  }

  /// Mutable/read-only views of the live bytes.
  constexpr std::span<std::uint8_t> bytes() noexcept {
    return {bytes_.data(), size_};
  }
  constexpr std::span<const std::uint8_t> bytes() const noexcept {
    return {bytes_.data(), size_};
  }

  /// Sets the live size; new bytes (on growth) are zero.
  constexpr void resize(std::size_t n) {
    if (n > Capacity) {
      throw std::length_error("InlineBytes::resize: beyond fixed capacity");
    }
    for (std::size_t i = size_; i < n; ++i) bytes_[i] = 0;
    size_ = static_cast<std::uint8_t>(n);
  }

  /// Sets the live size without zero-filling grown bytes — for callers that
  /// overwrite the full range immediately (e.g. encrypt-into). The contents
  /// of grown bytes are whatever the buffer held before, never uninitialized
  /// memory: the backing array is value-initialized at construction.
  constexpr void resize_for_overwrite(std::size_t n) {
    if (n > Capacity) {
      throw std::length_error(
          "InlineBytes::resize_for_overwrite: beyond fixed capacity");
    }
    size_ = static_cast<std::uint8_t>(n);
  }

  constexpr void clear() noexcept { size_ = 0; }

  constexpr void push_back(std::uint8_t b) {
    if (size_ >= Capacity) {
      throw std::length_error("InlineBytes::push_back: buffer full");
    }
    bytes_[size_++] = b;
  }

  constexpr void assign(std::span<const std::uint8_t> src) {
    if (src.size() > Capacity) {
      throw std::length_error("InlineBytes::assign: beyond fixed capacity");
    }
    for (std::size_t i = 0; i < src.size(); ++i) bytes_[i] = src[i];
    size_ = static_cast<std::uint8_t>(src.size());
  }

  friend constexpr bool operator==(const InlineBytes& a,
                                   const InlineBytes& b) noexcept {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.bytes_[i] != b.bytes_[i]) return false;
    }
    return true;
  }

 private:
  // Size first: the byte array needs no alignment, so the struct packs to
  // Capacity + 1 bytes (plus enclosing-struct padding only).
  std::uint8_t size_ = 0;
  std::array<std::uint8_t, Capacity> bytes_{};
};

}  // namespace tempriv::crypto
