#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/speck.h"

namespace tempriv::crypto {

/// CTR-mode stream encryption over Speck64/128.
///
/// The keystream block for index i is E_K(nonce XOR i) where the 64-bit
/// counter occupies the whole block; a fresh nonce per packet (we use the
/// origin id + application sequence number mixed through SplitMix-style
/// constants) keeps (nonce, i) pairs unique. CTR is symmetric: encrypt and
/// decrypt are the same operation.
class CtrCipher {
 public:
  explicit CtrCipher(const Speck64_128::Key& key) noexcept : cipher_(key) {}

  /// XORs the keystream for (nonce) into `data` in place.
  void crypt(std::uint64_t nonce, std::span<std::uint8_t> data) const noexcept;

  /// Convenience: returns an encrypted/decrypted copy.
  std::vector<std::uint8_t> crypt_copy(std::uint64_t nonce,
                                       std::span<const std::uint8_t> data) const;

 private:
  Speck64_128 cipher_;
};

/// CBC-MAC over Speck64/128 producing a 64-bit tag.
///
/// The message length (in bytes) is encrypted as block zero, which closes
/// the classic variable-length CBC-MAC forgery; zero padding completes the
/// final block. Use a key independent from the CTR key.
class CbcMac {
 public:
  explicit CbcMac(const Speck64_128::Key& key) noexcept : cipher_(key) {}

  std::uint64_t tag(std::span<const std::uint8_t> data) const noexcept;

  /// Constant-time-ish verification (single 64-bit compare).
  bool verify(std::span<const std::uint8_t> data,
              std::uint64_t expected_tag) const noexcept {
    return tag(data) == expected_tag;
  }

 private:
  Speck64_128 cipher_;
};

}  // namespace tempriv::crypto
