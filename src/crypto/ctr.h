#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/speck.h"

namespace tempriv::crypto {

/// CTR-mode stream encryption over Speck64/128.
///
/// The keystream block for index i is E_K(nonce XOR i) where the 64-bit
/// counter occupies the whole block; a fresh nonce per packet (we use the
/// origin id + application sequence number mixed through SplitMix-style
/// constants) keeps (nonce, i) pairs unique. CTR is symmetric: encrypt and
/// decrypt are the same operation.
///
/// Every operation generates the keystream block-by-block in registers (a
/// batched multi-block walk over the span) and writes results into storage
/// the caller provides — no heap allocations, no intermediate buffers. The
/// packet path uses crypt_into() with stack/inline destinations;
/// crypt_copy() remains as an allocating convenience for tests and tools.
class CtrCipher {
 public:
  explicit CtrCipher(const Speck64_128::Key& key) noexcept : cipher_(key) {}

  /// XORs the keystream for (nonce) into `data` in place.
  void crypt(std::uint64_t nonce, std::span<std::uint8_t> data) const noexcept;

  /// Encrypts/decrypts `in` into caller-provided `out` storage (the two may
  /// alias exactly, but must not partially overlap). `out` must be at least
  /// `in.size()` bytes; only the first `in.size()` are written.
  void crypt_into(std::uint64_t nonce, std::span<const std::uint8_t> in,
                  std::span<std::uint8_t> out) const noexcept;

  /// Writes raw keystream bytes for (nonce) into caller-provided storage —
  /// the batched multi-block path: whole blocks are produced per iteration
  /// with no per-block temporaries.
  void keystream(std::uint64_t nonce,
                 std::span<std::uint8_t> out) const noexcept;

  /// Convenience: returns an encrypted/decrypted copy (allocates).
  std::vector<std::uint8_t> crypt_copy(std::uint64_t nonce,
                                       std::span<const std::uint8_t> data) const;

 private:
  /// Keystream block i as a little-endian 64-bit word.
  std::uint64_t keystream_word(std::uint64_t nonce,
                               std::uint64_t counter) const noexcept;

  Speck64_128 cipher_;
};

/// CBC-MAC over Speck64/128 producing a 64-bit tag.
///
/// The message length (in bytes) is encrypted as block zero, which closes
/// the classic variable-length CBC-MAC forgery; zero padding completes the
/// final block. Use a key independent from the CTR key. The chaining state
/// is two registers end to end — no temporaries, no allocation.
class CbcMac {
 public:
  explicit CbcMac(const Speck64_128::Key& key) noexcept : cipher_(key) {}

  std::uint64_t tag(std::span<const std::uint8_t> data) const noexcept;

  /// Constant-time-ish verification (single 64-bit compare).
  bool verify(std::span<const std::uint8_t> data,
              std::uint64_t expected_tag) const noexcept {
    return tag(data) == expected_tag;
  }

 private:
  Speck64_128 cipher_;
};

}  // namespace tempriv::crypto
