#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/speck.h"

namespace tempriv::crypto {

/// True when the crypto library was built with -DTEMPRIV_SCALAR_CRYPTO=ON
/// (every entry point routed through the block-at-a-time scalar reference).
/// Runtime-queryable so benchmark reports can record which implementation
/// produced their numbers; the macro itself is private to the crypto target.
bool scalar_crypto_build() noexcept;

/// The vector instruction set the lane kernels were compiled against
/// ("avx512f", "avx2", "sse2", "neon", …). Reported from inside the crypto
/// library because it may be built for the host CPU (TEMPRIV_NATIVE_CRYPTO)
/// while the rest of the tree targets the baseline architecture.
const char* keystream_isa() noexcept;

/// CTR-mode stream encryption over Speck64/128.
///
/// The keystream block for index i is E_K(nonce XOR i) where the 64-bit
/// counter occupies the whole block; a fresh nonce per packet (we use the
/// origin id + application sequence number mixed through SplitMix-style
/// constants) keeps (nonce, i) pairs unique. CTR is symmetric: encrypt and
/// decrypt are the same operation.
///
/// Counter blocks are independent, so the keystream is generated in lane
/// waves: 8 (or 4) counters advance through the cipher's rounds in lockstep
/// via Speck64_128::encrypt_words_lanes, and whole payloads are filled per
/// round-key schedule with no per-block temporaries and no heap traffic.
/// Building with -DTEMPRIV_SCALAR_CRYPTO=ON routes every entry point
/// through the block-at-a-time scalar reference (crypto/reference.h)
/// instead; both produce bit-identical bytes (see the width-equivalence
/// property tests).
class CtrCipher {
 public:
  /// Lane widths of the batched keystream walk: wide waves for long runs,
  /// narrow ones for the 2–7 block payload sizes the packet path uses.
  static constexpr int kWideLanes = 8;
  static constexpr int kNarrowLanes = 4;

  explicit CtrCipher(const Speck64_128::Key& key) noexcept : cipher_(key) {}

  /// XORs the keystream for (nonce) into `data` in place.
  void crypt(std::uint64_t nonce, std::span<std::uint8_t> data) const noexcept;

  /// Encrypts/decrypts `in` into caller-provided `out` storage (the two may
  /// alias exactly, but must not partially overlap). `out` must be at least
  /// `in.size()` bytes; only the first `in.size()` are written. Multi-block:
  /// the whole payload is processed in lane waves under one key schedule.
  void xor_keystream(std::uint64_t nonce, std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const noexcept;

  /// Alias of xor_keystream kept for the packet path's historical name.
  void crypt_into(std::uint64_t nonce, std::span<const std::uint8_t> in,
                  std::span<std::uint8_t> out) const noexcept {
    xor_keystream(nonce, in, out);
  }

  /// Writes raw keystream bytes for (nonce) into caller-provided storage —
  /// whole blocks are produced per lane wave with no per-block temporaries.
  void keystream(std::uint64_t nonce,
                 std::span<std::uint8_t> out) const noexcept;

  /// One 8-lane wave under *per-lane nonces* at a shared counter:
  /// out[l] = E_K(nonces[l] ^ counter). This is the batch-seal layout —
  /// lane l carries packet l of a burst, and successive waves walk the
  /// shared block index 0, 1, 2… across all eight packets, so a burst's
  /// keystreams are filled with one round-key schedule and full lanes.
  void keystream_wave8(const std::uint64_t nonces[8], std::uint64_t counter,
                       std::uint64_t out[8]) const noexcept;

  /// Convenience: returns an encrypted/decrypted copy (allocates).
  std::vector<std::uint8_t> crypt_copy(std::uint64_t nonce,
                                       std::span<const std::uint8_t> data) const;

 private:
  /// Keystream block i as a little-endian 64-bit word (scalar reference).
  std::uint64_t keystream_word(std::uint64_t nonce,
                               std::uint64_t counter) const noexcept;

  /// `Lanes` keystream words for consecutive counters starting at
  /// `counter`, all under one nonce: out[l] = E_K(nonce ^ (counter + l)).
  template <int Lanes>
  void keystream_wave(std::uint64_t nonce, std::uint64_t counter,
                      std::uint64_t* out) const noexcept;

  Speck64_128 cipher_;
};

/// CBC-MAC over Speck64/128 producing a 64-bit tag.
///
/// The message length (in bytes) is encrypted as block zero, which closes
/// the classic variable-length CBC-MAC forgery; zero padding completes the
/// final block. Use a key independent from the CTR key. The chaining state
/// is two registers end to end — no temporaries, no allocation. A single
/// chain is inherently sequential, which is why the batch entry point runs
/// eight chains in lockstep lanes instead.
class CbcMac {
 public:
  explicit CbcMac(const Speck64_128::Key& key) noexcept : cipher_(key) {}

  std::uint64_t tag(std::span<const std::uint8_t> data) const noexcept;

  /// Tags eight equal-length messages in lockstep: lane l carries message
  /// l's CBC chain, every chain sees exactly the arithmetic tag() performs,
  /// and the eight dependent chains fill the lanes a single chain leaves
  /// idle. Bit-identical to eight tag() calls.
  void tag8(const std::uint8_t* const msgs[8], std::size_t len,
            std::uint64_t tags[8]) const noexcept;

  /// Constant-time-ish verification (single 64-bit compare).
  bool verify(std::span<const std::uint8_t> data,
              std::uint64_t expected_tag) const noexcept {
    return tag(data) == expected_tag;
  }

 private:
  Speck64_128 cipher_;
};

}  // namespace tempriv::crypto
