#include "crypto/speck.h"

namespace tempriv::crypto {

namespace {

constexpr std::uint32_t ror8(std::uint32_t x) noexcept {
  return (x >> 8) | (x << 24);
}
constexpr std::uint32_t rol3(std::uint32_t x) noexcept {
  return (x << 3) | (x >> 29);
}

constexpr std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

constexpr void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

Speck64_128::Speck64_128(const Key& key) noexcept {
  // Key words are loaded little-endian: k[0] is the first round key; the
  // remaining three feed the l[] sequence, per the Speck specification.
  std::uint32_t k0 = load_le32(key.data());
  std::array<std::uint32_t, 3 + kRounds - 1> l{};
  l[0] = load_le32(key.data() + 4);
  l[1] = load_le32(key.data() + 8);
  l[2] = load_le32(key.data() + 12);

  round_keys_[0] = k0;
  for (int i = 0; i < kRounds - 1; ++i) {
    l[i + 3] = (round_keys_[i] + ror8(l[i])) ^ static_cast<std::uint32_t>(i);
    round_keys_[i + 1] = rol3(round_keys_[i]) ^ l[i + 3];
  }
}

void Speck64_128::encrypt_block(Block& block) const noexcept {
  // Spec convention: block = (x, y) with y the low word on the wire.
  std::uint32_t y = load_le32(block.data());
  std::uint32_t x = load_le32(block.data() + 4);
  encrypt_words(x, y);
  store_le32(block.data(), y);
  store_le32(block.data() + 4, x);
}

void Speck64_128::decrypt_block(Block& block) const noexcept {
  std::uint32_t y = load_le32(block.data());
  std::uint32_t x = load_le32(block.data() + 4);
  decrypt_words(x, y);
  store_le32(block.data(), y);
  store_le32(block.data() + 4, x);
}

}  // namespace tempriv::crypto
