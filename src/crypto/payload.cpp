#include "crypto/payload.h"

#include <bit>
#include <cstring>

namespace tempriv::crypto {

namespace {

void put_u64(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

Speck64_128::Key derive_subkey(const Speck64_128::Key& master, std::uint8_t domain) {
  // Domain-separated subkey: encrypt two counter blocks under the master key.
  Speck64_128 kdf(master);
  Speck64_128::Key out{};
  for (int half = 0; half < 2; ++half) {
    Speck64_128::Block block{};
    block[0] = domain;
    block[1] = static_cast<std::uint8_t>(half);
    kdf.encrypt_block(block);
    std::memcpy(out.data() + half * 8, block.data(), 8);
  }
  return out;
}

}  // namespace

PayloadCodec::PayloadCodec(const Speck64_128::Key& master_key) noexcept
    : ctr_(derive_subkey(master_key, 0x01)), mac_(derive_subkey(master_key, 0x02)) {}

SealedPayload PayloadCodec::seal(const SensorPayload& payload,
                                 std::uint32_t origin_id) const noexcept {
  // Serialize into a stack buffer, encrypt straight into the sealed
  // payload's inline storage, MAC the result — zero heap traffic.
  std::uint8_t plain[SensorPayload::kWireBytes];
  put_u64(plain, std::bit_cast<std::uint64_t>(payload.reading));
  put_u32(plain + 8, payload.app_seq);
  put_u64(plain + 12, std::bit_cast<std::uint64_t>(payload.creation_time));

  SealedPayload sealed;
  // (origin, app_seq) is unique per packet; golden-ratio mixing spreads the
  // pair over the 64-bit nonce space.
  sealed.nonce = (static_cast<std::uint64_t>(origin_id) << 32 | payload.app_seq) *
                 0x9e3779b97f4a7c15ULL;
  sealed.ciphertext.resize(SensorPayload::kWireBytes);
  ctr_.crypt_into(sealed.nonce, plain, sealed.ciphertext.bytes());
  sealed.tag = mac_.tag(sealed.ciphertext.bytes());
  return sealed;
}

std::optional<SensorPayload> PayloadCodec::open(
    const SealedPayload& sealed) const noexcept {
  if (sealed.ciphertext.size() != SensorPayload::kWireBytes) return std::nullopt;
  if (!mac_.verify(sealed.ciphertext.bytes(), sealed.tag)) return std::nullopt;
  std::uint8_t plain[SensorPayload::kWireBytes];
  ctr_.crypt_into(sealed.nonce, sealed.ciphertext.bytes(), plain);
  SensorPayload payload;
  payload.reading = std::bit_cast<double>(get_u64(plain));
  payload.app_seq = get_u32(plain + 8);
  payload.creation_time = std::bit_cast<double>(get_u64(plain + 12));
  return payload;
}

}  // namespace tempriv::crypto
