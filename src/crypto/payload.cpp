#include "crypto/payload.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "crypto/wordio.h"

namespace tempriv::crypto {

namespace {

std::uint64_t nonce_for(std::uint32_t origin_id, std::uint32_t app_seq) noexcept {
  // (origin, app_seq) is unique per packet; golden-ratio mixing spreads the
  // pair over the 64-bit nonce space.
  return (static_cast<std::uint64_t>(origin_id) << 32 | app_seq) *
         0x9e3779b97f4a7c15ULL;
}

void serialize(const SensorPayload& payload,
               std::uint8_t out[SensorPayload::kWireBytes]) noexcept {
  store_le(out, std::bit_cast<std::uint64_t>(payload.reading), 8);
  store_le(out + 8, payload.app_seq, 4);
  store_le(out + 12, std::bit_cast<std::uint64_t>(payload.creation_time), 8);
}

SensorPayload deserialize(
    const std::uint8_t plain[SensorPayload::kWireBytes]) noexcept {
  SensorPayload payload;
  payload.reading = std::bit_cast<double>(load_le(plain, 8));
  payload.app_seq = static_cast<std::uint32_t>(load_le(plain + 8, 4));
  payload.creation_time = std::bit_cast<double>(load_le(plain + 12, 8));
  return payload;
}

Speck64_128::Key derive_subkey(const Speck64_128::Key& master, std::uint8_t domain) {
  // Domain-separated subkey: encrypt two counter blocks under the master key.
  Speck64_128 kdf(master);
  Speck64_128::Key out{};
  for (int half = 0; half < 2; ++half) {
    Speck64_128::Block block{};
    block[0] = domain;
    block[1] = static_cast<std::uint8_t>(half);
    kdf.encrypt_block(block);
    std::memcpy(out.data() + half * 8, block.data(), 8);
  }
  return out;
}

}  // namespace

PayloadCodec::PayloadCodec(const Speck64_128::Key& master_key) noexcept
    : ctr_(derive_subkey(master_key, 0x01)), mac_(derive_subkey(master_key, 0x02)) {}

SealedPayload PayloadCodec::seal(const SensorPayload& payload,
                                 std::uint32_t origin_id) const noexcept {
  // Serialize into a stack buffer, encrypt straight into the sealed
  // payload's inline storage (one lane wave covers all three blocks of the
  // wire format), MAC the result — zero heap traffic.
  std::uint8_t plain[SensorPayload::kWireBytes];
  serialize(payload, plain);

  SealedPayload sealed;
  sealed.nonce = nonce_for(origin_id, payload.app_seq);
  sealed.ciphertext.resize_for_overwrite(SensorPayload::kWireBytes);
  ctr_.xor_keystream(sealed.nonce, plain, sealed.ciphertext.bytes());
  sealed.tag = mac_.tag(sealed.ciphertext.bytes());
  return sealed;
}

std::optional<SensorPayload> PayloadCodec::open(
    const SealedPayload& sealed) const noexcept {
  if (sealed.ciphertext.size() != SensorPayload::kWireBytes) return std::nullopt;
  if (!mac_.verify(sealed.ciphertext.bytes(), sealed.tag)) return std::nullopt;
  std::uint8_t plain[SensorPayload::kWireBytes];
  ctr_.xor_keystream(sealed.nonce, sealed.ciphertext.bytes(), plain);
  return deserialize(plain);
}

void PayloadCodec::seal_batch(std::span<const SensorPayload> payloads,
                              std::uint32_t origin_id,
                              std::span<SealedPayload> out) const noexcept {
  std::size_t i = 0;
#if !defined(TEMPRIV_SCALAR_CRYPTO)
  constexpr std::size_t kWire = SensorPayload::kWireBytes;
  constexpr std::size_t kBlock = Speck64_128::kBlockBytes;
  constexpr std::size_t kBlocks = (kWire + kBlock - 1) / kBlock;
  for (; i + kBatchLanes <= payloads.size(); i += kBatchLanes) {
    std::uint8_t plain[kBatchLanes][kWire];
    std::uint64_t nonces[kBatchLanes];
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      const SensorPayload& p = payloads[i + l];
      serialize(p, plain[l]);
      nonces[l] = nonce_for(origin_id, p.app_seq);
      out[i + l].nonce = nonces[l];
      out[i + l].ciphertext.resize_for_overwrite(kWire);
    }
    // Keystream waves: lane l is packet l, successive waves walk the shared
    // block index — per lane exactly the bytes seal()'s CTR walk produces.
    std::uint64_t words[kBatchLanes];
    for (std::size_t c = 0; c < kBlocks; ++c) {
      ctr_.keystream_wave8(nonces, c, words);
      const std::size_t off = c * kBlock;
      const std::size_t chunk = std::min(kBlock, kWire - off);
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        store_le(out[i + l].ciphertext.data() + off,
                 load_le(plain[l] + off, chunk) ^ words[l], chunk);
      }
    }
    const std::uint8_t* ciphertexts[kBatchLanes];
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      ciphertexts[l] = out[i + l].ciphertext.data();
    }
    std::uint64_t tags[kBatchLanes];
    mac_.tag8(ciphertexts, kWire, tags);
    for (std::size_t l = 0; l < kBatchLanes; ++l) out[i + l].tag = tags[l];
  }
#endif
  for (; i < payloads.size(); ++i) out[i] = seal(payloads[i], origin_id);
}

std::size_t PayloadCodec::open_batch(
    std::span<const SealedPayload> sealed,
    std::span<std::optional<SensorPayload>> out) const noexcept {
  std::size_t opened = 0;
  std::size_t i = 0;
#if !defined(TEMPRIV_SCALAR_CRYPTO)
  constexpr std::size_t kWire = SensorPayload::kWireBytes;
  constexpr std::size_t kBlock = Speck64_128::kBlockBytes;
  constexpr std::size_t kBlocks = (kWire + kBlock - 1) / kBlock;
  for (; i + kBatchLanes <= sealed.size(); i += kBatchLanes) {
    bool sizes_ok = true;
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      sizes_ok &= sealed[i + l].ciphertext.size() == kWire;
    }
    if (!sizes_ok) {
      // A malformed length in the group: fall back element-wise so the
      // rejects land exactly where open() would put them.
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        out[i + l] = open(sealed[i + l]);
        opened += out[i + l].has_value();
      }
      continue;
    }
    const std::uint8_t* ciphertexts[kBatchLanes];
    std::uint64_t nonces[kBatchLanes];
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      ciphertexts[l] = sealed[i + l].ciphertext.data();
      nonces[l] = sealed[i + l].nonce;
    }
    std::uint64_t tags[kBatchLanes];
    mac_.tag8(ciphertexts, kWire, tags);
    // Decrypt all lanes unconditionally (three waves), then select by tag:
    // cheaper than re-batching the survivors of the MAC check.
    std::uint8_t plain[kBatchLanes][kWire];
    std::uint64_t words[kBatchLanes];
    for (std::size_t c = 0; c < kBlocks; ++c) {
      ctr_.keystream_wave8(nonces, c, words);
      const std::size_t off = c * kBlock;
      const std::size_t chunk = std::min(kBlock, kWire - off);
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        store_le(plain[l] + off,
                 load_le(ciphertexts[l] + off, chunk) ^ words[l], chunk);
      }
    }
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      if (tags[l] == sealed[i + l].tag) {
        out[i + l] = deserialize(plain[l]);
        ++opened;
      } else {
        out[i + l] = std::nullopt;
      }
    }
  }
#endif
  for (; i < sealed.size(); ++i) {
    out[i] = open(sealed[i]);
    opened += out[i].has_value();
  }
  return opened;
}

}  // namespace tempriv::crypto
