#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace tempriv::crypto {

/// Little-endian word <-> byte helpers shared by the CTR/CBC-MAC modes,
/// their scalar reference, and the payload codec. Loads and stores of up to
/// 8 bytes are the only memory traffic on the crypto path; everything in
/// between is register arithmetic. Full 8-byte accesses — every block of
/// every batched lane — take a single fixed-width memcpy (one mov on
/// little-endian targets) instead of the byte loop the sub-block tails use.
inline std::uint64_t load_le(const std::uint8_t* p, std::size_t n) noexcept {
  if (n == 8 && std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

inline void store_le(std::uint8_t* p, std::uint64_t v, std::size_t n) noexcept {
  if (n == 8 && std::endian::native == std::endian::little) {
    std::memcpy(p, &v, 8);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace tempriv::crypto
