#include "crypto/ctr.h"

#include <cstring>

namespace tempriv::crypto {

namespace {

Speck64_128::Block to_block(std::uint64_t v) noexcept {
  Speck64_128::Block b;
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return b;
}

std::uint64_t from_block(const Speck64_128::Block& b) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void CtrCipher::crypt(std::uint64_t nonce, std::span<std::uint8_t> data) const noexcept {
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (offset < data.size()) {
    Speck64_128::Block keystream = to_block(nonce ^ counter);
    cipher_.encrypt_block(keystream);
    const std::size_t chunk =
        std::min(Speck64_128::kBlockBytes, data.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) data[offset + i] ^= keystream[i];
    offset += chunk;
    ++counter;
  }
}

std::vector<std::uint8_t> CtrCipher::crypt_copy(
    std::uint64_t nonce, std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  crypt(nonce, out);
  return out;
}

std::uint64_t CbcMac::tag(std::span<const std::uint8_t> data) const noexcept {
  // Block 0 encodes the length; then CBC-chain the zero-padded message.
  Speck64_128::Block state = to_block(static_cast<std::uint64_t>(data.size()));
  cipher_.encrypt_block(state);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk =
        std::min(Speck64_128::kBlockBytes, data.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) state[i] ^= data[offset + i];
    cipher_.encrypt_block(state);
    offset += chunk;
  }
  return from_block(state);
}

}  // namespace tempriv::crypto
