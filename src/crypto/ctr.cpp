#include "crypto/ctr.h"

namespace tempriv::crypto {

namespace {

/// Little-endian load/store of up to 8 bytes — the only memory traffic on
/// the CTR path; everything between is register arithmetic.
std::uint64_t load_le(const std::uint8_t* p, std::size_t n) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void store_le(std::uint8_t* p, std::uint64_t v, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

std::uint64_t CtrCipher::keystream_word(std::uint64_t nonce,
                                        std::uint64_t counter) const noexcept {
  // Same convention as Speck64_128::encrypt_block over the little-endian
  // block bytes of (nonce ^ counter): y is the low word, x the high word.
  const std::uint64_t v = nonce ^ counter;
  std::uint32_t y = static_cast<std::uint32_t>(v);
  std::uint32_t x = static_cast<std::uint32_t>(v >> 32);
  cipher_.encrypt_words(x, y);
  return static_cast<std::uint64_t>(y) | (static_cast<std::uint64_t>(x) << 32);
}

void CtrCipher::crypt(std::uint64_t nonce,
                      std::span<std::uint8_t> data) const noexcept {
  crypt_into(nonce, data, data);
}

void CtrCipher::crypt_into(std::uint64_t nonce,
                           std::span<const std::uint8_t> in,
                           std::span<std::uint8_t> out) const noexcept {
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  // Batched whole-block walk: one keystream word per 8 input bytes.
  while (in.size() - offset >= Speck64_128::kBlockBytes) {
    const std::uint64_t word =
        load_le(in.data() + offset, Speck64_128::kBlockBytes) ^
        keystream_word(nonce, counter);
    store_le(out.data() + offset, word, Speck64_128::kBlockBytes);
    offset += Speck64_128::kBlockBytes;
    ++counter;
  }
  if (const std::size_t tail = in.size() - offset; tail > 0) {
    const std::uint64_t word =
        load_le(in.data() + offset, tail) ^ keystream_word(nonce, counter);
    store_le(out.data() + offset, word, tail);
  }
}

void CtrCipher::keystream(std::uint64_t nonce,
                          std::span<std::uint8_t> out) const noexcept {
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (out.size() - offset >= Speck64_128::kBlockBytes) {
    store_le(out.data() + offset, keystream_word(nonce, counter),
             Speck64_128::kBlockBytes);
    offset += Speck64_128::kBlockBytes;
    ++counter;
  }
  if (const std::size_t tail = out.size() - offset; tail > 0) {
    store_le(out.data() + offset, keystream_word(nonce, counter), tail);
  }
}

std::vector<std::uint8_t> CtrCipher::crypt_copy(
    std::uint64_t nonce, std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.size());
  crypt_into(nonce, data, out);
  return out;
}

std::uint64_t CbcMac::tag(std::span<const std::uint8_t> data) const noexcept {
  // Block 0 encodes the length; then CBC-chain the zero-padded message.
  // The whole chain lives in the (x, y) register pair: XOR-ing the next
  // message word into the little-endian state word is exactly the byte-wise
  // XOR the definition prescribes.
  std::uint64_t state = static_cast<std::uint64_t>(data.size());
  std::uint32_t y = static_cast<std::uint32_t>(state);
  std::uint32_t x = static_cast<std::uint32_t>(state >> 32);
  cipher_.encrypt_words(x, y);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk =
        data.size() - offset >= Speck64_128::kBlockBytes
            ? Speck64_128::kBlockBytes
            : data.size() - offset;
    const std::uint64_t word = load_le(data.data() + offset, chunk);
    y ^= static_cast<std::uint32_t>(word);
    x ^= static_cast<std::uint32_t>(word >> 32);
    cipher_.encrypt_words(x, y);
    offset += chunk;
  }
  return static_cast<std::uint64_t>(y) | (static_cast<std::uint64_t>(x) << 32);
}

}  // namespace tempriv::crypto
