#include "crypto/ctr.h"

#include <algorithm>

#include "crypto/reference.h"
#include "crypto/wordio.h"

namespace tempriv::crypto {

bool scalar_crypto_build() noexcept {
#if defined(TEMPRIV_SCALAR_CRYPTO)
  return true;
#else
  return false;
#endif
}

const char* keystream_isa() noexcept {
#if defined(__AVX512F__)
  return "avx512f";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(_M_X64)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

std::uint64_t CtrCipher::keystream_word(std::uint64_t nonce,
                                        std::uint64_t counter) const noexcept {
  return reference::keystream_word(cipher_, nonce, counter);
}

template <int Lanes>
void CtrCipher::keystream_wave(std::uint64_t nonce, std::uint64_t counter,
                               std::uint64_t* out) const noexcept {
  std::uint32_t x[Lanes];
  std::uint32_t y[Lanes];
  for (int l = 0; l < Lanes; ++l) {
    const std::uint64_t v = nonce ^ (counter + static_cast<std::uint64_t>(l));
    y[l] = static_cast<std::uint32_t>(v);
    x[l] = static_cast<std::uint32_t>(v >> 32);
  }
  cipher_.encrypt_words_lanes<Lanes>(x, y);
  for (int l = 0; l < Lanes; ++l) {
    out[l] = static_cast<std::uint64_t>(y[l]) |
             (static_cast<std::uint64_t>(x[l]) << 32);
  }
}

void CtrCipher::keystream_wave8(const std::uint64_t nonces[8],
                                std::uint64_t counter,
                                std::uint64_t out[8]) const noexcept {
#if defined(TEMPRIV_SCALAR_CRYPTO)
  for (int l = 0; l < 8; ++l) {
    out[l] = reference::keystream_word(cipher_, nonces[l], counter);
  }
#else
  std::uint32_t x[8];
  std::uint32_t y[8];
  for (int l = 0; l < 8; ++l) {
    const std::uint64_t v = nonces[l] ^ counter;
    y[l] = static_cast<std::uint32_t>(v);
    x[l] = static_cast<std::uint32_t>(v >> 32);
  }
  cipher_.encrypt_words_lanes<8>(x, y);
  for (int l = 0; l < 8; ++l) {
    out[l] = static_cast<std::uint64_t>(y[l]) |
             (static_cast<std::uint64_t>(x[l]) << 32);
  }
#endif
}

void CtrCipher::crypt(std::uint64_t nonce,
                      std::span<std::uint8_t> data) const noexcept {
  xor_keystream(nonce, data, data);
}

void CtrCipher::xor_keystream(std::uint64_t nonce,
                              std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out) const noexcept {
#if defined(TEMPRIV_SCALAR_CRYPTO)
  reference::xor_keystream(cipher_, nonce, in, out);
#else
  constexpr std::size_t kBlock = Speck64_128::kBlockBytes;
  const std::size_t nbytes = in.size();
  const std::size_t nblocks = (nbytes + kBlock - 1) / kBlock;
  std::uint64_t words[kWideLanes];
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  // Wide waves while at least 8 blocks remain, a narrow wave for 2–7, the
  // scalar word for a lone block. The last block of each flush may be a
  // tail; the min() makes the same store path cover both cases.
  while (nblocks - counter >= static_cast<std::uint64_t>(kWideLanes)) {
    keystream_wave<kWideLanes>(nonce, counter, words);
    for (int l = 0; l < kWideLanes; ++l) {
      const std::size_t chunk = std::min(kBlock, nbytes - offset);
      store_le(out.data() + offset,
               load_le(in.data() + offset, chunk) ^ words[l], chunk);
      offset += chunk;
    }
    counter += kWideLanes;
  }
  while (nblocks - counter >= 2) {
    const int live = static_cast<int>(
        std::min<std::uint64_t>(nblocks - counter, kNarrowLanes));
    keystream_wave<kNarrowLanes>(nonce, counter, words);
    for (int l = 0; l < live; ++l) {
      const std::size_t chunk = std::min(kBlock, nbytes - offset);
      store_le(out.data() + offset,
               load_le(in.data() + offset, chunk) ^ words[l], chunk);
      offset += chunk;
    }
    counter += static_cast<std::uint64_t>(live);
  }
  if (nblocks - counter == 1) {
    const std::size_t chunk = nbytes - offset;
    store_le(out.data() + offset,
             load_le(in.data() + offset, chunk) ^ keystream_word(nonce, counter),
             chunk);
  }
#endif
}

void CtrCipher::keystream(std::uint64_t nonce,
                          std::span<std::uint8_t> out) const noexcept {
#if defined(TEMPRIV_SCALAR_CRYPTO)
  reference::keystream(cipher_, nonce, out);
#else
  constexpr std::size_t kBlock = Speck64_128::kBlockBytes;
  const std::size_t nbytes = out.size();
  const std::size_t nblocks = (nbytes + kBlock - 1) / kBlock;
  std::uint64_t words[kWideLanes];
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (nblocks - counter >= static_cast<std::uint64_t>(kWideLanes)) {
    keystream_wave<kWideLanes>(nonce, counter, words);
    for (int l = 0; l < kWideLanes; ++l) {
      const std::size_t chunk = std::min(kBlock, nbytes - offset);
      store_le(out.data() + offset, words[l], chunk);
      offset += chunk;
    }
    counter += kWideLanes;
  }
  while (nblocks - counter >= 2) {
    const int live = static_cast<int>(
        std::min<std::uint64_t>(nblocks - counter, kNarrowLanes));
    keystream_wave<kNarrowLanes>(nonce, counter, words);
    for (int l = 0; l < live; ++l) {
      const std::size_t chunk = std::min(kBlock, nbytes - offset);
      store_le(out.data() + offset, words[l], chunk);
      offset += chunk;
    }
    counter += static_cast<std::uint64_t>(live);
  }
  if (nblocks - counter == 1) {
    store_le(out.data() + offset, keystream_word(nonce, counter),
             nbytes - offset);
  }
#endif
}

std::vector<std::uint8_t> CtrCipher::crypt_copy(
    std::uint64_t nonce, std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.size());
  crypt_into(nonce, data, out);
  return out;
}

std::uint64_t CbcMac::tag(std::span<const std::uint8_t> data) const noexcept {
  return reference::cbc_mac_tag(cipher_, data);
}

void CbcMac::tag8(const std::uint8_t* const msgs[8], std::size_t len,
                  std::uint64_t tags[8]) const noexcept {
#if defined(TEMPRIV_SCALAR_CRYPTO)
  for (int l = 0; l < 8; ++l) {
    tags[l] = reference::cbc_mac_tag(cipher_, {msgs[l], len});
  }
#else
  constexpr std::size_t kBlock = Speck64_128::kBlockBytes;
  // Lane l holds message l's chaining state; every lane performs exactly
  // the block sequence tag() does (length block, then zero-padded chain).
  std::uint32_t x[8];
  std::uint32_t y[8];
  const std::uint64_t len_word = static_cast<std::uint64_t>(len);
  for (int l = 0; l < 8; ++l) {
    y[l] = static_cast<std::uint32_t>(len_word);
    x[l] = static_cast<std::uint32_t>(len_word >> 32);
  }
  cipher_.encrypt_words_lanes<8>(x, y);
  std::size_t offset = 0;
  while (offset < len) {
    const std::size_t chunk = std::min(kBlock, len - offset);
    for (int l = 0; l < 8; ++l) {
      const std::uint64_t word = load_le(msgs[l] + offset, chunk);
      y[l] ^= static_cast<std::uint32_t>(word);
      x[l] ^= static_cast<std::uint32_t>(word >> 32);
    }
    cipher_.encrypt_words_lanes<8>(x, y);
    offset += chunk;
  }
  for (int l = 0; l < 8; ++l) {
    tags[l] = static_cast<std::uint64_t>(y[l]) |
              (static_cast<std::uint64_t>(x[l]) << 32);
  }
#endif
}

}  // namespace tempriv::crypto
