#include "queueing/dimensioning.h"

#include <stdexcept>

#include "queueing/erlang.h"

namespace tempriv::queueing {

std::vector<double> aggregate_rates(const RoutingTree& tree,
                                    const std::vector<double>& source_rates) {
  const std::size_t n = tree.size();
  if (source_rates.size() != n) {
    throw std::invalid_argument("aggregate_rates: rate/tree size mismatch");
  }
  std::vector<double> rates(source_rates);
  for (std::size_t i = 0; i < n; ++i) {
    if (source_rates[i] < 0.0) {
      throw std::invalid_argument("aggregate_rates: negative source rate");
    }
    if (source_rates[i] == 0.0) continue;
    // Push this source's rate up the path to the sink; bound the walk by n
    // to detect cycles.
    std::size_t hop = tree.parent[i];
    std::size_t steps = 0;
    while (hop != kNoParent) {
      if (hop >= n || ++steps > n) {
        throw std::invalid_argument("aggregate_rates: malformed routing tree");
      }
      rates[hop] += source_rates[i];
      hop = tree.parent[hop];
    }
  }
  return rates;
}

std::vector<double> dimension_mu_for_loss(const std::vector<double>& node_rates,
                                          std::uint64_t buffer_slots,
                                          double target_loss) {
  std::vector<double> mus;
  mus.reserve(node_rates.size());
  for (double lambda : node_rates) {
    mus.push_back(lambda > 0.0
                      ? mu_for_target_loss(lambda, buffer_slots, target_loss)
                      : 0.0);
  }
  return mus;
}

std::vector<double> decompose_path_delay(double total_mean_delay,
                                         std::size_t hops,
                                         double sink_weighting) {
  if (hops == 0) return {};
  if (total_mean_delay < 0.0) {
    throw std::invalid_argument("decompose_path_delay: negative total delay");
  }
  if (sink_weighting < 0.0 || sink_weighting > 1.0) {
    throw std::invalid_argument("decompose_path_delay: weighting outside [0,1]");
  }
  // Weight for hop j (0 = source side, hops-1 = sink side): blend of a
  // uniform profile and a linear ramp that is largest at the source side.
  std::vector<double> weights(hops);
  double weight_sum = 0.0;
  for (std::size_t j = 0; j < hops; ++j) {
    const double uniform = 1.0;
    const double ramp = static_cast<double>(hops - j);  // hops .. 1
    weights[j] = (1.0 - sink_weighting) * uniform + sink_weighting * ramp;
    weight_sum += weights[j];
  }
  for (double& w : weights) w = total_mean_delay * w / weight_sum;
  return weights;
}

double expected_network_buffering(const std::vector<double>& node_rates,
                                  const std::vector<double>& node_mus) {
  if (node_rates.size() != node_mus.size()) {
    throw std::invalid_argument("expected_network_buffering: size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < node_rates.size(); ++i) {
    if (node_rates[i] == 0.0) continue;
    if (node_mus[i] <= 0.0) {
      throw std::invalid_argument(
          "expected_network_buffering: node with traffic but mu <= 0");
    }
    total += node_rates[i] / node_mus[i];
  }
  return total;
}

}  // namespace tempriv::queueing
