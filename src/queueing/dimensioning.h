#pragma once

#include <cstdint>
#include <vector>

namespace tempriv::queueing {

/// A routing tree in parent-array form: parent[i] is the next hop of node i
/// toward the sink; the sink's parent is kNoParent. Node ids are dense
/// 0..n-1. This mirrors the paper's §4 model: "message streams merge
/// progressively as they approach the sink", so a node's offered load is the
/// sum of its own source rate and everything its subtree generates.
inline constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

struct RoutingTree {
  std::vector<std::size_t> parent;  ///< parent[i] = next hop; sink -> kNoParent

  std::size_t size() const noexcept { return parent.size(); }
};

/// Per-node aggregate arrival rate λᵢ: superposition of the Poisson flows of
/// all sources whose path passes through node i (including node i's own
/// source rate). Throws std::invalid_argument on malformed trees (cycles,
/// out-of-range parents, size mismatch).
std::vector<double> aggregate_rates(const RoutingTree& tree,
                                    const std::vector<double>& source_rates);

/// Paper §4 dimensioning: per-node service rate µᵢ such that every node's
/// M/M/k/k drop probability is the target α, given per-node buffer size k.
/// Nodes with zero traffic get µ = 0 (they never delay anything).
std::vector<double> dimension_mu_for_loss(const std::vector<double>& node_rates,
                                          std::uint64_t buffer_slots,
                                          double target_loss);

/// §3.3 delay decomposition: split a total end-to-end mean privacy delay
/// `total_mean_delay` across the `hops` nodes of a path. `sink_weighting`
/// in [0, 1] interpolates between a uniform split (0) and a split linearly
/// biased toward nodes far from the sink (1) — implementing the paper's
/// observation that "it may be possible to decompose {Yj} so that more
/// delay is introduced when a forwarding node is further from the sink"
/// (because traffic, and hence buffer pressure, accumulates near the sink).
/// Element 0 of the result is the node adjacent to the source, element
/// hops-1 is adjacent to the sink. The elements sum to total_mean_delay.
std::vector<double> decompose_path_delay(double total_mean_delay,
                                         std::size_t hops,
                                         double sink_weighting);

/// Expected total buffered packets across the whole network under M/M/∞:
/// Σᵢ ρᵢ = Σᵢ λᵢ/µᵢ (nodes with µᵢ = 0 and λᵢ = 0 contribute nothing).
double expected_network_buffering(const std::vector<double>& node_rates,
                                  const std::vector<double>& node_mus);

}  // namespace tempriv::queueing
