#include "queueing/erlang.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tempriv::queueing {

double poisson_pmf(double rho, std::uint64_t k) {
  if (rho < 0.0) throw std::invalid_argument("poisson_pmf: rho < 0");
  if (rho == 0.0) return k == 0 ? 1.0 : 0.0;
  const double log_pmf = static_cast<double>(k) * std::log(rho) - rho -
                         std::lgamma(static_cast<double>(k) + 1.0);
  return std::exp(log_pmf);
}

double poisson_cdf(double rho, std::uint64_t k) {
  if (rho < 0.0) throw std::invalid_argument("poisson_cdf: rho < 0");
  // Forward recurrence on the PMF terms; stable for the moderate ρ (< 10^3)
  // that sensor buffers see.
  double term = std::exp(-rho);
  double sum = term;
  for (std::uint64_t i = 1; i <= k; ++i) {
    term *= rho / static_cast<double>(i);
    sum += term;
  }
  return std::min(sum, 1.0);
}

double erlang_loss(double rho, std::uint64_t k) {
  if (rho < 0.0) throw std::invalid_argument("erlang_loss: rho < 0");
  double inv = 1.0;  // 1 / E(rho, 0)
  for (std::uint64_t j = 1; j <= k; ++j) {
    // 1/E(ρ,j) = 1 + j / (ρ E(ρ,j-1))  =>  inv_j = 1 + j * inv_{j-1} / ρ
    inv = 1.0 + static_cast<double>(j) * inv / rho;
  }
  return 1.0 / inv;
}

double mmkk_occupancy_pmf(double rho, std::uint64_t k, std::uint64_t n) {
  if (n > k) return 0.0;
  // Normalize the Poisson PMF over {0..k}.
  const double truncated_mass = poisson_cdf(rho, k);
  if (truncated_mass <= 0.0) return n == k ? 1.0 : 0.0;
  return poisson_pmf(rho, n) / truncated_mass;
}

double mmkk_expected_occupancy(double rho, std::uint64_t k) {
  return rho * (1.0 - erlang_loss(rho, k));
}

double max_rho_for_loss(double target_loss, std::uint64_t k) {
  if (target_loss <= 0.0 || target_loss >= 1.0) {
    throw std::invalid_argument("max_rho_for_loss: target in (0,1) required");
  }
  // E(ρ, k) is strictly increasing in ρ, E(0,k)=0, E(ρ,k)→1: bisect.
  double lo = 0.0;
  double hi = 1.0;
  while (erlang_loss(hi, k) < target_loss) {
    hi *= 2.0;
    if (hi > 1e12) return hi;  // target loss ~1; effectively unbounded
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (erlang_loss(mid, k) < target_loss) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double mu_for_target_loss(double lambda, std::uint64_t k, double alpha) {
  if (lambda <= 0.0) throw std::invalid_argument("mu_for_target_loss: lambda <= 0");
  const double rho = max_rho_for_loss(alpha, k);
  return lambda / rho;
}

ErlangLossThreshold::ErlangLossThreshold(double threshold, std::uint64_t k)
    : threshold_(threshold), k_(k) {
  if (threshold <= 0.0 || threshold >= 1.0) {
    throw std::invalid_argument("ErlangLossThreshold: threshold outside (0,1)");
  }
  if (k == 0) {
    // E(ρ, 0) = 1 > threshold at every offered load.
    rho_lo_ = -1.0;
    rho_hi_ = 0.0;
    return;
  }
  // Certification targets. The recurrence accumulates a few ulps of
  // relative error per step with no cancellation, so a value computed at
  // least `2 * margin` above (below) the threshold stays above (below) it
  // for every larger (smaller) rho: the true function is strictly
  // monotone, and margin dwarfs the computed-vs-true discrepancy.
  const double margin = 1e-9 + static_cast<double>(k) * 1e-14;
  const double hi_target = threshold * (1.0 + 2.0 * margin);
  const double lo_target = threshold * (1.0 - 2.0 * margin);

  // Upper edge: smallest bracketed rho with E(rho, k) >= hi_target.
  double lo = 0.0;  // E(0, k) = 0 < lo_target
  double hi = 1.0;
  while (erlang_loss(hi, k) < hi_target) {
    hi *= 2.0;
    if (!(hi < 1e300)) break;  // threshold ~1: certify nothing, always fall back
  }
  if (erlang_loss(hi, k) >= hi_target) {
    double below = lo;
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (below + hi);
      if (erlang_loss(mid, k) >= hi_target) {
        hi = mid;
      } else {
        below = mid;
      }
    }
    rho_hi_ = hi;
  } else {
    rho_hi_ = std::numeric_limits<double>::infinity();
  }

  // Lower edge: largest bracketed rho with E(rho, k) <= lo_target.
  double above_edge = std::isinf(rho_hi_) ? 1e300 : rho_hi_;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + above_edge);
    if (erlang_loss(mid, k) <= lo_target) {
      lo = mid;
    } else {
      above_edge = mid;
    }
  }
  rho_lo_ = lo;

  // Belt and braces: a finite upper edge must itself test above the
  // threshold (guards degenerate thresholds, e.g. NaN slipping through
  // comparisons); the lower edge is always safe because E(0, k) = 0.
  if (std::isfinite(rho_hi_) && !(erlang_loss(rho_hi_, k) > threshold)) {
    rho_hi_ = std::numeric_limits<double>::infinity();
  }
}

}  // namespace tempriv::queueing
