#include "queueing/erlang.h"

#include <cmath>
#include <stdexcept>

namespace tempriv::queueing {

double poisson_pmf(double rho, std::uint64_t k) {
  if (rho < 0.0) throw std::invalid_argument("poisson_pmf: rho < 0");
  if (rho == 0.0) return k == 0 ? 1.0 : 0.0;
  const double log_pmf = static_cast<double>(k) * std::log(rho) - rho -
                         std::lgamma(static_cast<double>(k) + 1.0);
  return std::exp(log_pmf);
}

double poisson_cdf(double rho, std::uint64_t k) {
  if (rho < 0.0) throw std::invalid_argument("poisson_cdf: rho < 0");
  // Forward recurrence on the PMF terms; stable for the moderate ρ (< 10^3)
  // that sensor buffers see.
  double term = std::exp(-rho);
  double sum = term;
  for (std::uint64_t i = 1; i <= k; ++i) {
    term *= rho / static_cast<double>(i);
    sum += term;
  }
  return std::min(sum, 1.0);
}

double erlang_loss(double rho, std::uint64_t k) {
  if (rho < 0.0) throw std::invalid_argument("erlang_loss: rho < 0");
  double inv = 1.0;  // 1 / E(rho, 0)
  for (std::uint64_t j = 1; j <= k; ++j) {
    // 1/E(ρ,j) = 1 + j / (ρ E(ρ,j-1))  =>  inv_j = 1 + j * inv_{j-1} / ρ
    inv = 1.0 + static_cast<double>(j) * inv / rho;
  }
  return 1.0 / inv;
}

double mmkk_occupancy_pmf(double rho, std::uint64_t k, std::uint64_t n) {
  if (n > k) return 0.0;
  // Normalize the Poisson PMF over {0..k}.
  const double truncated_mass = poisson_cdf(rho, k);
  if (truncated_mass <= 0.0) return n == k ? 1.0 : 0.0;
  return poisson_pmf(rho, n) / truncated_mass;
}

double mmkk_expected_occupancy(double rho, std::uint64_t k) {
  return rho * (1.0 - erlang_loss(rho, k));
}

double max_rho_for_loss(double target_loss, std::uint64_t k) {
  if (target_loss <= 0.0 || target_loss >= 1.0) {
    throw std::invalid_argument("max_rho_for_loss: target in (0,1) required");
  }
  // E(ρ, k) is strictly increasing in ρ, E(0,k)=0, E(ρ,k)→1: bisect.
  double lo = 0.0;
  double hi = 1.0;
  while (erlang_loss(hi, k) < target_loss) {
    hi *= 2.0;
    if (hi > 1e12) return hi;  // target loss ~1; effectively unbounded
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (erlang_loss(mid, k) < target_loss) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double mu_for_target_loss(double lambda, std::uint64_t k, double alpha) {
  if (lambda <= 0.0) throw std::invalid_argument("mu_for_target_loss: lambda <= 0");
  const double rho = max_rho_for_loss(alpha, k);
  return lambda / rho;
}

}  // namespace tempriv::queueing
