#pragma once

#include <cstdint>

namespace tempriv::queueing {

/// Poisson PMF p_k = ρ^k e^{-ρ} / k!, computed in log space for stability.
/// This is the stationary buffer-occupancy distribution of the paper's
/// M/M/∞ model (§4): a node with Poisson(λ) arrivals that delays each
/// packet Exp(µ) holds Poisson(ρ = λ/µ) packets.
double poisson_pmf(double rho, std::uint64_t k);

/// Poisson CDF P{N <= k}.
double poisson_cdf(double rho, std::uint64_t k);

/// Erlang loss (Erlang-B) formula, paper Eq. (5):
///   E(ρ, k) = (ρ^k / k!) / Σ_{i=0}^{k} ρ^i / i!
/// the probability that an arriving packet finds all k buffer slots of an
/// M/M/k/k node occupied. Computed with the standard numerically-stable
/// recurrence E(ρ, j) = ρ E(ρ, j−1) / (j + ρ E(ρ, j−1)), E(ρ, 0) = 1.
/// Requires rho >= 0.
double erlang_loss(double rho, std::uint64_t k);

/// Stationary occupancy PMF of an M/M/k/k queue (truncated Poisson):
///   P{N = n} = (ρ^n / n!) / Σ_{i=0}^{k} ρ^i / i!,  0 <= n <= k.
double mmkk_occupancy_pmf(double rho, std::uint64_t k, std::uint64_t n);

/// Expected occupancy of an M/M/k/k queue: ρ (1 − E(ρ, k)).
double mmkk_expected_occupancy(double rho, std::uint64_t k);

/// Largest ρ such that E(ρ, k) <= target_loss (the admissible offered load
/// for a k-slot buffer at drop-rate budget α). Solved by bisection; exact to
/// ~1e-12 relative. Requires 0 < target_loss < 1.
double max_rho_for_loss(double target_loss, std::uint64_t k);

/// The paper's dimensioning rule (§4, end): given incoming traffic rate
/// `lambda`, buffer size `k`, and a target drop rate `alpha`, return the
/// service rate µ (i.e. 1/mean-delay) a node must use. As λ grows toward
/// the sink, the returned µ grows — i.e. the mean privacy delay 1/µ must
/// shrink to keep the drop rate at α. Requires lambda > 0.
double mu_for_target_loss(double lambda, std::uint64_t k, double alpha);

}  // namespace tempriv::queueing
