#pragma once

#include <cstdint>

namespace tempriv::queueing {

/// Poisson PMF p_k = ρ^k e^{-ρ} / k!, computed in log space for stability.
/// This is the stationary buffer-occupancy distribution of the paper's
/// M/M/∞ model (§4): a node with Poisson(λ) arrivals that delays each
/// packet Exp(µ) holds Poisson(ρ = λ/µ) packets.
double poisson_pmf(double rho, std::uint64_t k);

/// Poisson CDF P{N <= k}.
double poisson_cdf(double rho, std::uint64_t k);

/// Erlang loss (Erlang-B) formula, paper Eq. (5):
///   E(ρ, k) = (ρ^k / k!) / Σ_{i=0}^{k} ρ^i / i!
/// the probability that an arriving packet finds all k buffer slots of an
/// M/M/k/k node occupied. Computed with the standard numerically-stable
/// recurrence E(ρ, j) = ρ E(ρ, j−1) / (j + ρ E(ρ, j−1)), E(ρ, 0) = 1.
/// Requires rho >= 0.
double erlang_loss(double rho, std::uint64_t k);

/// Stationary occupancy PMF of an M/M/k/k queue (truncated Poisson):
///   P{N = n} = (ρ^n / n!) / Σ_{i=0}^{k} ρ^i / i!,  0 <= n <= k.
double mmkk_occupancy_pmf(double rho, std::uint64_t k, std::uint64_t n);

/// Expected occupancy of an M/M/k/k queue: ρ (1 − E(ρ, k)).
double mmkk_expected_occupancy(double rho, std::uint64_t k);

/// Largest ρ such that E(ρ, k) <= target_loss (the admissible offered load
/// for a k-slot buffer at drop-rate budget α). Solved by bisection; exact to
/// ~1e-12 relative. Requires 0 < target_loss < 1.
double max_rho_for_loss(double target_loss, std::uint64_t k);

/// The paper's dimensioning rule (§4, end): given incoming traffic rate
/// `lambda`, buffer size `k`, and a target drop rate `alpha`, return the
/// service rate µ (i.e. 1/mean-delay) a node must use. As λ grows toward
/// the sink, the returned µ grows — i.e. the mean privacy delay 1/µ must
/// shrink to keep the drop rate at α. Requires lambda > 0.
double mu_for_target_loss(double lambda, std::uint64_t k, double alpha);

/// Certified constant-time form of the regime test
/// `erlang_loss(rho, k) > threshold` that the adaptive adversaries run on
/// every delivered packet (k serial divides per call through the
/// recurrence). E(ρ, k) is strictly increasing in ρ, so the test is a
/// threshold crossing: construction bisects for a window [lo, hi] around
/// the boundary offered load ρ* with E(lo, k) certifiably at or below the
/// threshold and E(hi, k) certifiably above it. above() then answers with
/// one comparison outside the window and falls back to the exact
/// recurrence inside it, so every answer is bit-for-bit the boolean the
/// direct computation produces.
///
/// The certification margin (~1e-9 relative, plus 1e-14 per recurrence
/// step) is orders of magnitude wider than the forward error of the
/// all-positive-terms recurrence (a few ulps per step), and the window it
/// induces in ρ is ~1e-8 relative — the fallback is unreachable in
/// practice but keeps the fast path honest.
class ErlangLossThreshold {
 public:
  /// Requires 0 < threshold < 1 (a loss probability). k = 0 is allowed:
  /// E(ρ, 0) = 1, so the test is constantly true.
  ErlangLossThreshold(double threshold, std::uint64_t k);

  /// Exactly `erlang_loss(rho, buffer_slots()) > threshold()`.
  /// Requires rho >= 0 (the direct call throws on negative rho; this
  /// returns false).
  bool above(double rho) const noexcept {
    if (rho >= rho_hi_) return true;
    if (rho <= rho_lo_) return false;
    return erlang_loss(rho, k_) > threshold_;
  }

  double threshold() const noexcept { return threshold_; }
  std::uint64_t buffer_slots() const noexcept { return k_; }

  /// Certified window bounds, exposed for tests: above() is decided by
  /// comparison alone outside [window_lo, window_hi].
  double window_lo() const noexcept { return rho_lo_; }
  double window_hi() const noexcept { return rho_hi_; }

 private:
  double threshold_;
  std::uint64_t k_;
  double rho_lo_;  ///< rho <= rho_lo_ certifies E(rho, k) <= threshold
  double rho_hi_;  ///< rho >= rho_hi_ certifies E(rho, k) > threshold
};

}  // namespace tempriv::queueing
