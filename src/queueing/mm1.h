#pragma once

#include <cstdint>

namespace tempriv::queueing {

/// Closed forms for the M/M/1 queue — the model behind the FIFO
/// (order-preserving) delaying strategy that §3.2 considers and rejects.
/// All functions require 0 < lambda < mu (a stable queue) and throw
/// std::invalid_argument otherwise (except mm1_utilization, which only
/// needs positive rates).

/// ρ = λ/µ.
double mm1_utilization(double lambda, double mu);

/// Expected number in system (queue + server): ρ/(1−ρ).
double mm1_mean_occupancy(double lambda, double mu);

/// Stationary occupancy PMF: P{N = n} = (1−ρ)ρⁿ.
double mm1_occupancy_pmf(double lambda, double mu, std::uint64_t n);

/// Mean sojourn (waiting + service) time: 1/(µ−λ). This is the mean
/// privacy delay an order-preserving FIFO node imposes.
double mm1_mean_sojourn(double lambda, double mu);

/// Sojourn-time variance: 1/(µ−λ)² (the sojourn time is exponential).
/// Note how it *diverges* as λ→µ: the FIFO strategy buys its delay
/// variance with queueing instability, unlike the M/M/∞ independent-delay
/// scheme whose variance is load-independent.
double mm1_sojourn_variance(double lambda, double mu);

/// Mean waiting time before service starts: ρ/(µ−λ).
double mm1_mean_wait(double lambda, double mu);

}  // namespace tempriv::queueing
