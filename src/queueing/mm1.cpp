#include "queueing/mm1.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace tempriv::queueing {

namespace {
void require_stable(double lambda, double mu, const char* who) {
  if (lambda <= 0.0 || mu <= 0.0) {
    throw std::invalid_argument(std::string(who) + ": rates must be positive");
  }
  if (lambda >= mu) {
    throw std::invalid_argument(std::string(who) + ": unstable (lambda >= mu)");
  }
}
}  // namespace

double mm1_utilization(double lambda, double mu) {
  if (lambda <= 0.0 || mu <= 0.0) {
    throw std::invalid_argument("mm1_utilization: rates must be positive");
  }
  return lambda / mu;
}

double mm1_mean_occupancy(double lambda, double mu) {
  require_stable(lambda, mu, "mm1_mean_occupancy");
  const double rho = lambda / mu;
  return rho / (1.0 - rho);
}

double mm1_occupancy_pmf(double lambda, double mu, std::uint64_t n) {
  require_stable(lambda, mu, "mm1_occupancy_pmf");
  const double rho = lambda / mu;
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

double mm1_mean_sojourn(double lambda, double mu) {
  require_stable(lambda, mu, "mm1_mean_sojourn");
  return 1.0 / (mu - lambda);
}

double mm1_sojourn_variance(double lambda, double mu) {
  require_stable(lambda, mu, "mm1_sojourn_variance");
  const double mean = 1.0 / (mu - lambda);
  return mean * mean;
}

double mm1_mean_wait(double lambda, double mu) {
  require_stable(lambda, mu, "mm1_mean_wait");
  return (lambda / mu) / (mu - lambda);
}

}  // namespace tempriv::queueing
