#include "campaign/thread_pool.h"

namespace tempriv::campaign {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future, not here
  }
}

}  // namespace tempriv::campaign
