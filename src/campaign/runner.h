#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "campaign/job.h"
#include "campaign/progress.h"
#include "campaign/shard.h"
#include "campaign/sinks.h"

namespace tempriv::campaign {

struct RunnerOptions {
  /// Worker threads; 0 = hardware_concurrency (the CLI's --jobs default).
  std::size_t threads = 0;
  /// Optional progress listener (not owned); may be null.
  ProgressListener* progress = nullptr;
};

/// Fans a list of jobs out across a ThreadPool and merges the results
/// deterministically: sinks see completed jobs strictly in submission order
/// (an in-order release valve buffers out-of-order completions), and the
/// returned vector preserves the input order. Job lists are always built in
/// ascending job-index order — full campaigns have dense indices 0..n-1,
/// shard job lists the stride-N subsequence — so "submission order" is
/// "ascending global job index" in both cases. Running the same job list
/// with 1 or 64 workers therefore produces bit-identical sink output.
///
/// Each job builds its own Simulator/Network from its JobSpec — the
/// simulator is single-threaded and non-copyable by design, so jobs share
/// nothing and need no locks.
class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options) : options_(options) {}

  /// Expands scenario points × replications into the flat job list.
  /// Replication 0 runs each point's scenario verbatim (same seed as the
  /// serial benches, keeping their CSVs byte-identical); replication r > 0
  /// reseeds with sim::derive_seed(seed, r).
  static std::vector<JobSpec> expand(
      const std::vector<workload::PaperScenario>& points,
      std::uint32_t replications);

  /// Sharded expansion: the subsequence of expand(points, replications)
  /// owned by `shard` (global job indices i, i+N, i+2N, ... are preserved in
  /// the specs). Seeds derive per job from the point seed, never from shard
  /// layout, so the union of all shards' job lists is exactly the serial
  /// list — same specs, same seeds, same order.
  static std::vector<JobSpec> expand(
      const std::vector<workload::PaperScenario>& points,
      std::uint32_t replications, const ShardSpec& shard);

  /// Runs every job; returns results in submission order. Sinks (not
  /// owned, may be empty) are fed in that order as jobs complete and
  /// close()d before returning. If any job threw, the exception of the
  /// earliest-submitted failing job is rethrown after the pool drains.
  std::vector<JobResult> run(const std::vector<JobSpec>& jobs,
                             const std::vector<ResultSink*>& sinks = {});

 private:
  RunnerOptions options_;
};

/// Convenience for table builders: the replication-0 ScenarioResult of every
/// point, in point order.
std::vector<workload::ScenarioResult> point_results(
    const std::vector<JobResult>& jobs);

}  // namespace tempriv::campaign
