#include "campaign/sinks.h"

#include <limits>
#include <ostream>
#include <sstream>

#include "metrics/table.h"

namespace tempriv::campaign {

std::string json_number(double value) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

void JsonlSink::consume(const JobResult& job) {
  const workload::PaperScenario& s = job.spec.scenario;
  const workload::ScenarioResult& r = job.result;
  os_ << "{\"job\":" << job.spec.index << ",\"point\":" << job.spec.point
      << ",\"replication\":" << job.spec.replication << ",\"seed\":" << s.seed
      << ",\"scenario\":{\"interarrival\":" << json_number(s.interarrival)
      << ",\"packets_per_source\":" << s.packets_per_source
      << ",\"mean_delay\":" << json_number(s.mean_delay)
      << ",\"buffer_slots\":" << s.buffer_slots
      << ",\"hop_tx_delay\":" << json_number(s.hop_tx_delay)
      << ",\"scheme\":\"" << workload::to_string(s.scheme)
      << "\",\"source\":\"" << workload::to_string(s.source)
      << "\"},\"result\":{\"originated\":" << r.originated
      << ",\"delivered\":" << r.delivered
      << ",\"preemptions\":" << r.preemptions << ",\"drops\":" << r.drops
      << ",\"mean_latency_all\":" << json_number(r.mean_latency_all)
      << ",\"sim_end_time\":" << json_number(r.sim_end_time)
      << ",\"events_executed\":" << r.events_executed
      << ",\"transmissions\":" << r.transmissions
      << ",\"packets_traced\":" << r.packets_traced << ",\"flows\":[";
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    const workload::FlowResult& flow = r.flows[i];
    if (i > 0) os_ << ",";
    os_ << "{\"source\":" << flow.source << ",\"hops\":" << flow.hops
        << ",\"delivered\":" << flow.delivered
        << ",\"mse_baseline\":" << json_number(flow.mse_baseline)
        << ",\"mse_adaptive\":" << json_number(flow.mse_adaptive)
        << ",\"mse_path_aware\":" << json_number(flow.mse_path_aware)
        << ",\"mean_latency\":" << json_number(flow.mean_latency)
        << ",\"max_latency\":" << json_number(flow.max_latency) << "}";
  }
  os_ << "]}}\n";
}

CampaignStats::CampaignStats() : latency_hist(0.0, 1000.0, 100) {}

void CampaignStats::add(const JobResult& job) {
  const workload::ScenarioResult& r = job.result;
  for (const workload::FlowResult& flow : r.flows) {
    flow_latency.add(flow.mean_latency);
    flow_mse_baseline.add(flow.mse_baseline);
    latency_hist.add(flow.mean_latency);
  }
  if (r.originated > 0) {
    preemptions_per_packet.add(static_cast<double>(r.preemptions) /
                               static_cast<double>(r.originated));
  }
  preemption_hist.add(r.preemptions);
  ++jobs;
  sim_events += r.events_executed;
}

void CampaignStats::merge(const CampaignStats& other) {
  flow_latency.merge(other.flow_latency);
  flow_mse_baseline.merge(other.flow_mse_baseline);
  preemptions_per_packet.merge(other.preemptions_per_packet);
  latency_hist.merge(other.latency_hist);
  preemption_hist.merge(other.preemption_hist);
  jobs += other.jobs;
  sim_events += other.sim_events;
}

MergedStatsSink::MergedStatsSink(std::size_t points) : per_point_(points) {}

namespace {

void write_streaming_stats(std::ostream& os,
                           const metrics::StreamingStats& s) {
  os << "{\"count\":" << s.count() << ",\"mean\":" << json_number(s.mean())
     << ",\"m2\":" << json_number(s.sum_squared_deviations())
     << ",\"min\":" << json_number(s.min())
     << ",\"max\":" << json_number(s.max()) << "}";
}

void write_histogram(std::ostream& os, const metrics::Histogram& h) {
  os << "{\"lo\":" << json_number(h.bin_lower_edge(0)) << ",\"hi\":"
     << json_number(h.bin_lower_edge(h.bin_count())) << ",\"bins\":"
     << h.bin_count() << ",\"underflow\":" << h.underflow() << ",\"overflow\":"
     << h.overflow() << ",\"counts\":[";
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (i > 0) os << ",";
    os << h.bin(i);
  }
  os << "]}";
}

void write_integer_histogram(std::ostream& os,
                             const metrics::IntegerHistogram& h) {
  const std::uint64_t values = h.total() > 0 ? h.max_value() + 1 : 0;
  os << "{\"counts\":[";
  for (std::uint64_t v = 0; v < values; ++v) {
    if (v > 0) os << ",";
    os << h.count(v);
  }
  os << "]}";
}

void write_campaign_stats(std::ostream& os, const CampaignStats& s) {
  os << "{\"jobs\":" << s.jobs << ",\"sim_events\":" << s.sim_events
     << ",\"flow_latency\":";
  write_streaming_stats(os, s.flow_latency);
  os << ",\"flow_mse_baseline\":";
  write_streaming_stats(os, s.flow_mse_baseline);
  os << ",\"preemptions_per_packet\":";
  write_streaming_stats(os, s.preemptions_per_packet);
  os << ",\"latency_hist\":";
  write_histogram(os, s.latency_hist);
  os << ",\"preemption_hist\":";
  write_integer_histogram(os, s.preemption_hist);
  os << "}";
}

}  // namespace

void write_campaign_stats_json(std::ostream& os,
                               const CampaignManifest& manifest,
                               const ShardSpec* shard,
                               const MergedStatsSink& stats) {
  os << "{\n  \"campaign\": {\"schema\":" << manifest.schema << ",\"sweep\":\""
     << manifest.sweep << "\",\"tag\":\"" << manifest.tag
     << "\",\"base_seed\":" << manifest.base_seed << ",\"reps\":"
     << manifest.reps << ",\"points\":" << manifest.points
     << ",\"total_jobs\":" << manifest.total_jobs << ",\"config_hash\":\""
     << config_hash_hex(manifest.config_hash) << "\"},\n";
  if (shard != nullptr && !shard->is_all()) {
    os << "  \"shard\": {\"index\":" << shard->index << ",\"count\":"
       << shard->count << ",\"jobs_owned\":" << stats.total().jobs << "},\n";
  }
  os << "  \"total\": ";
  write_campaign_stats(os, stats.total());
  os << ",\n  \"per_point\": [\n";
  for (std::size_t i = 0; i < stats.point_count(); ++i) {
    os << "    ";
    write_campaign_stats(os, stats.point(i));
    os << (i + 1 < stats.point_count() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

void print_campaign_summary(std::ostream& os, const CampaignStats& total,
                            std::size_t points, std::uint32_t reps) {
  os << "campaign: " << total.jobs << " jobs (" << points << " points x "
     << reps << " reps), " << total.sim_events << " simulator events\n"
     << "  flow mean latency: mean "
     << metrics::format_number(total.flow_latency.mean(), 2) << "  min "
     << metrics::format_number(total.flow_latency.min(), 2) << "  max "
     << metrics::format_number(total.flow_latency.max(), 2)
     << "\n  flow MSE (baseline adversary): mean "
     << metrics::format_number(total.flow_mse_baseline.mean(), 1)
     << "  stddev "
     << metrics::format_number(total.flow_mse_baseline.stddev(), 1) << "\n";
}

void MergedStatsSink::consume(const JobResult& job) {
  // Build the job's own accumulator, then merge — every job goes through the
  // same merge path, so per-point and total stats are pure in-order folds.
  CampaignStats one;
  one.add(job);
  total_.merge(one);
  per_point_.at(job.spec.point).merge(one);
}

}  // namespace tempriv::campaign
