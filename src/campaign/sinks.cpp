#include "campaign/sinks.h"

#include <limits>
#include <ostream>
#include <sstream>

namespace tempriv::campaign {

std::string json_number(double value) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

void JsonlSink::consume(const JobResult& job) {
  const workload::PaperScenario& s = job.spec.scenario;
  const workload::ScenarioResult& r = job.result;
  os_ << "{\"job\":" << job.spec.index << ",\"point\":" << job.spec.point
      << ",\"replication\":" << job.spec.replication << ",\"seed\":" << s.seed
      << ",\"scenario\":{\"interarrival\":" << json_number(s.interarrival)
      << ",\"packets_per_source\":" << s.packets_per_source
      << ",\"mean_delay\":" << json_number(s.mean_delay)
      << ",\"buffer_slots\":" << s.buffer_slots
      << ",\"hop_tx_delay\":" << json_number(s.hop_tx_delay)
      << ",\"scheme\":\"" << workload::to_string(s.scheme)
      << "\",\"source\":\"" << workload::to_string(s.source)
      << "\"},\"result\":{\"originated\":" << r.originated
      << ",\"delivered\":" << r.delivered
      << ",\"preemptions\":" << r.preemptions << ",\"drops\":" << r.drops
      << ",\"mean_latency_all\":" << json_number(r.mean_latency_all)
      << ",\"sim_end_time\":" << json_number(r.sim_end_time)
      << ",\"events_executed\":" << r.events_executed
      << ",\"transmissions\":" << r.transmissions
      << ",\"packets_traced\":" << r.packets_traced << ",\"flows\":[";
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    const workload::FlowResult& flow = r.flows[i];
    if (i > 0) os_ << ",";
    os_ << "{\"source\":" << flow.source << ",\"hops\":" << flow.hops
        << ",\"delivered\":" << flow.delivered
        << ",\"mse_baseline\":" << json_number(flow.mse_baseline)
        << ",\"mse_adaptive\":" << json_number(flow.mse_adaptive)
        << ",\"mse_path_aware\":" << json_number(flow.mse_path_aware)
        << ",\"mean_latency\":" << json_number(flow.mean_latency)
        << ",\"max_latency\":" << json_number(flow.max_latency) << "}";
  }
  os_ << "]}}\n";
}

CampaignStats::CampaignStats() : latency_hist(0.0, 1000.0, 100) {}

void CampaignStats::add(const JobResult& job) {
  const workload::ScenarioResult& r = job.result;
  for (const workload::FlowResult& flow : r.flows) {
    flow_latency.add(flow.mean_latency);
    flow_mse_baseline.add(flow.mse_baseline);
    latency_hist.add(flow.mean_latency);
  }
  if (r.originated > 0) {
    preemptions_per_packet.add(static_cast<double>(r.preemptions) /
                               static_cast<double>(r.originated));
  }
  ++jobs;
  sim_events += r.events_executed;
}

void CampaignStats::merge(const CampaignStats& other) {
  flow_latency.merge(other.flow_latency);
  flow_mse_baseline.merge(other.flow_mse_baseline);
  preemptions_per_packet.merge(other.preemptions_per_packet);
  latency_hist.merge(other.latency_hist);
  jobs += other.jobs;
  sim_events += other.sim_events;
}

MergedStatsSink::MergedStatsSink(std::size_t points) : per_point_(points) {}

void MergedStatsSink::consume(const JobResult& job) {
  // Build the job's own accumulator, then merge — every job goes through the
  // same merge path, so per-point and total stats are pure in-order folds.
  CampaignStats one;
  one.add(job);
  total_.merge(one);
  per_point_.at(job.spec.point).merge(one);
}

}  // namespace tempriv::campaign
