#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>

namespace tempriv::campaign {

/// One shard's most recent sign of life, as seen by the supervisor.
struct ShardHeartbeat {
  std::chrono::steady_clock::time_point at;
  std::uint64_t events = 0;  ///< cumulative sim events the shard reported
};

/// Where the runner reports job completions. Implementations must be
/// thread-safe: workers call job_done() concurrently, outside any lock.
/// Progress is measurement-only — it never touches result data, so it has
/// no effect on determinism.
class ProgressListener {
 public:
  virtual ~ProgressListener() = default;

  /// Record one finished job that executed `sim_events` simulator events.
  virtual void job_done(std::uint64_t sim_events) = 0;

  /// A shard signalled liveness (job record or idle heartbeat); `events` is
  /// its cumulative executed-event count. Only the fleet supervisor calls
  /// this, so single-process listeners can ignore it.
  virtual void shard_heartbeat(std::uint32_t /*shard*/,
                               std::uint64_t /*events*/) {}
};

/// Thread-safe campaign progress meter: prints "jobs done/total, simulated
/// events/sec, ETA" lines to a stream (stderr in the CLI). Reporting is
/// rate-limited.
class ProgressReporter : public ProgressListener {
 public:
  /// `min_interval` throttles output; the final job always reports.
  explicit ProgressReporter(
      std::ostream& os, std::size_t total_jobs,
      std::chrono::milliseconds min_interval = std::chrono::milliseconds(250));

  void job_done(std::uint64_t sim_events) override;

  void shard_heartbeat(std::uint32_t shard, std::uint64_t events) override;

  /// Prints the closing summary line (total wall time, events/sec).
  void finish();

  std::size_t done() const;

  /// Last heartbeat seen from `shard`; nullopt if the shard never reported.
  std::optional<ShardHeartbeat> last_heartbeat(std::uint32_t shard) const;

 private:
  void print_line(bool final_line);

  std::ostream& os_;
  const std::size_t total_;
  const std::chrono::milliseconds min_interval_;
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  std::size_t done_ = 0;
  std::uint64_t events_ = 0;
  std::chrono::steady_clock::time_point last_print_;
  std::map<std::uint32_t, ShardHeartbeat> heartbeats_;
};

}  // namespace tempriv::campaign
