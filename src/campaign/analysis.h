#pragma once

#include <span>

#include "campaign/thread_pool.h"

namespace tempriv::campaign {

/// KSG mutual-information estimator with the per-point ψ-term loop — the
/// embarrassingly-parallel part — fanned out over `pool` in fixed-size
/// chunks. Each chunk writes its points' terms into a disjoint slice of one
/// preallocated array and the reduction sums that array in original sample
/// order, so the result is bit-identical to the serial
/// infotheory::mutual_information_ksg (and hence to the brute-force
/// reference) for every thread count and chunking. Throws what the serial
/// estimator throws; a task exception propagates out of the future before
/// any result is produced.
double parallel_mutual_information_ksg(ThreadPool& pool,
                                       std::span<const double> xs,
                                       std::span<const double> zs,
                                       unsigned k = 3);

}  // namespace tempriv::campaign
