#pragma once

#include <string>
#include <string_view>

#include "telemetry/snapshot.h"

namespace tempriv::campaign {

/// Sibling path for a shard's telemetry snapshot, derived from its JSONL
/// artifact path the same way shard_stats_path() derives the stats sibling:
/// "out.shard0.jsonl" -> "out.shard0.telemetry.json".
std::string shard_telemetry_path(const std::string& jsonl_path);

/// Parses a snapshot file written by telemetry::write_snapshot_json().
/// Unknown keys merge by union downstream; a missing or malformed document
/// throws std::runtime_error.
telemetry::Snapshot parse_telemetry_json(std::string_view text);

/// Reads and parses `path`; throws std::runtime_error (naming the path) if
/// the file cannot be opened or does not parse.
telemetry::Snapshot load_telemetry_file(const std::string& path);

/// Writes `snapshot` to `path` (creating parent directories), throwing on
/// I/O failure.
void write_telemetry_file(const std::string& path,
                          const telemetry::Snapshot& snapshot);

}  // namespace tempriv::campaign
