#include "campaign/merge.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "campaign/jsonio.h"
#include "campaign/runner.h"
#include "campaign/sweeps.h"
#include "telemetry/probes.h"

namespace tempriv::campaign {

namespace {

workload::PaperScenario parse_scenario(const JsonValue& s,
                                       std::uint64_t seed) {
  workload::PaperScenario scenario;
  scenario.interarrival = s.at("interarrival").as_double();
  scenario.packets_per_source = s.at("packets_per_source").as_u32();
  scenario.mean_delay = s.at("mean_delay").as_double();
  scenario.buffer_slots =
      static_cast<std::size_t>(s.at("buffer_slots").as_u64());
  scenario.hop_tx_delay = s.at("hop_tx_delay").as_double();
  scenario.scheme = workload::scheme_from_string(s.at("scheme").as_string());
  scenario.source =
      workload::source_kind_from_string(s.at("source").as_string());
  scenario.seed = seed;
  return scenario;
}

workload::ScenarioResult parse_result(const JsonValue& r) {
  workload::ScenarioResult result;
  result.originated = r.at("originated").as_u64();
  result.delivered = r.at("delivered").as_u64();
  result.preemptions = r.at("preemptions").as_u64();
  result.drops = r.at("drops").as_u64();
  result.mean_latency_all = r.at("mean_latency_all").as_double();
  result.sim_end_time = r.at("sim_end_time").as_double();
  result.events_executed = r.at("events_executed").as_u64();
  result.transmissions = r.at("transmissions").as_u64();
  result.packets_traced = r.at("packets_traced").as_u64();
  const JsonValue& flows = r.at("flows");
  if (!flows.is_array()) throw std::runtime_error("\"flows\" is not an array");
  result.flows.reserve(flows.items.size());
  for (const JsonValue& f : flows.items) {
    workload::FlowResult flow;
    flow.source = static_cast<net::NodeId>(f.at("source").as_u32());
    flow.hops = static_cast<std::uint16_t>(f.at("hops").as_u32());
    flow.delivered = f.at("delivered").as_u64();
    flow.mse_baseline = f.at("mse_baseline").as_double();
    flow.mse_adaptive = f.at("mse_adaptive").as_double();
    flow.mse_path_aware = f.at("mse_path_aware").as_double();
    flow.mean_latency = f.at("mean_latency").as_double();
    flow.max_latency = f.at("max_latency").as_double();
    result.flows.push_back(flow);
  }
  return result;
}

metrics::Histogram parse_histogram(const JsonValue& h) {
  std::vector<std::uint64_t> counts;
  const JsonValue& array = h.at("counts");
  if (!array.is_array()) throw std::runtime_error("\"counts\" is not an array");
  counts.reserve(array.items.size());
  for (const JsonValue& c : array.items) counts.push_back(c.as_u64());
  if (counts.size() != h.at("bins").as_u64()) {
    throw std::runtime_error("histogram counts/bins mismatch");
  }
  return metrics::Histogram::from_counts(
      h.at("lo").as_double(), h.at("hi").as_double(), std::move(counts),
      h.at("underflow").as_u64(), h.at("overflow").as_u64());
}

metrics::IntegerHistogram parse_integer_histogram(const JsonValue& h) {
  metrics::IntegerHistogram out;
  const JsonValue& array = h.at("counts");
  if (!array.is_array()) throw std::runtime_error("\"counts\" is not an array");
  for (std::size_t v = 0; v < array.items.size(); ++v) {
    out.add_count(v, array.items[v].as_u64());
  }
  return out;
}

/// Manifest fields two artifacts must agree on, as (name, value-rendering)
/// pairs for error messages.
std::vector<std::pair<std::string, std::string>> manifest_fields(
    const CampaignManifest& m) {
  return {{"schema", std::to_string(m.schema)},
          {"sweep", m.sweep},
          {"tag", m.tag},
          {"base_seed", std::to_string(m.base_seed)},
          {"reps", std::to_string(m.reps)},
          {"points", std::to_string(m.points)},
          {"total_jobs", std::to_string(m.total_jobs)},
          {"config_hash", config_hash_hex(m.config_hash)}};
}

}  // namespace

JobRecord parse_job_record(const std::string& line, const std::string& label) {
  try {
    const JsonValue doc = parse_json(line);
    JobRecord record;
    record.spec.index = static_cast<std::size_t>(doc.at("job").as_u64());
    record.spec.point = static_cast<std::size_t>(doc.at("point").as_u64());
    record.spec.replication = doc.at("replication").as_u32();
    record.spec.scenario =
        parse_scenario(doc.at("scenario"), doc.at("seed").as_u64());
    record.result = parse_result(doc.at("result"));
    return record;
  } catch (const std::exception& e) {
    throw std::runtime_error(label + ": bad job record: " + e.what());
  }
}

ShardInput read_shard_jsonl(std::istream& is, const std::string& label) {
  ShardInput shard;
  shard.label = label;
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error(label + ": empty shard JSONL (no header line)");
  }
  shard.header = parse_shard_header(line, label);
  while (std::getline(is, line)) {
    if (!line.empty()) shard.job_lines.push_back(std::move(line));
  }
  return shard;
}

void read_shard_stats(std::istream& is, const std::string& label,
                      ShardInput& shard) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  try {
    const JsonValue doc = parse_json(buffer.str());
    const JsonValue& campaign = doc.at("campaign");
    CampaignManifest stats_manifest;
    stats_manifest.schema = campaign.at("schema").as_u32();
    stats_manifest.sweep = campaign.at("sweep").as_string();
    stats_manifest.tag = campaign.at("tag").as_string();
    stats_manifest.base_seed = campaign.at("base_seed").as_u64();
    stats_manifest.reps = campaign.at("reps").as_u32();
    stats_manifest.points = campaign.at("points").as_u64();
    stats_manifest.total_jobs = campaign.at("total_jobs").as_u64();
    stats_manifest.config_hash = std::strtoull(
        campaign.at("config_hash").as_string().c_str(), nullptr, 16);
    for (std::size_t i = 0; i < manifest_fields(stats_manifest).size(); ++i) {
      const auto expect = manifest_fields(shard.header.manifest)[i];
      const auto got = manifest_fields(stats_manifest)[i];
      if (expect.second != got.second) {
        throw std::runtime_error("stats " + got.first + " (" + got.second +
                                 ") disagrees with the JSONL header (" +
                                 expect.second + ")");
      }
    }
    if (const JsonValue* block = doc.find("shard")) {
      if (block->at("index").as_u32() != shard.header.shard.index ||
          block->at("count").as_u32() != shard.header.shard.count) {
        throw std::runtime_error("stats shard block disagrees with the "
                                 "JSONL header");
      }
    } else if (!shard.header.shard.is_all()) {
      throw std::runtime_error("stats file has no shard block but the JSONL "
                               "header is sharded");
    }
    const JsonValue& total = doc.at("total");
    shard.stats_jobs = total.at("jobs").as_u64();
    shard.stats_sim_events = total.at("sim_events").as_u64();
    shard.stats_latency_hist = parse_histogram(total.at("latency_hist"));
    shard.stats_preemption_hist =
        parse_integer_histogram(total.at("preemption_hist"));
    shard.has_stats = true;
  } catch (const std::exception& e) {
    throw std::runtime_error(label + ": bad stats artifact: " + e.what());
  }
}

std::string shard_stats_path(const std::string& jsonl_path) {
  const std::string suffix = ".jsonl";
  if (jsonl_path.size() > suffix.size() &&
      jsonl_path.compare(jsonl_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return jsonl_path.substr(0, jsonl_path.size() - suffix.size()) +
           ".stats.json";
  }
  return jsonl_path + ".stats.json";
}

ShardInput load_shard_files(const std::string& jsonl_path) {
  std::ifstream jsonl(jsonl_path, std::ios::binary);
  if (!jsonl) {
    throw std::runtime_error("cannot open shard file " + jsonl_path);
  }
  ShardInput shard = read_shard_jsonl(jsonl, jsonl_path);
  const std::string stats_path = shard_stats_path(jsonl_path);
  std::ifstream stats(stats_path, std::ios::binary);
  if (stats) read_shard_stats(stats, stats_path, shard);
  return shard;
}

MergeCheck check_shards(const std::vector<ShardInput>& shards) {
  MergeCheck check;
  auto error = [&check](const std::string& message) {
    check.errors.push_back(message);
  };
  if (shards.empty()) {
    error("no shard files given");
    return check;
  }

  const CampaignManifest& reference = shards.front().header.manifest;
  if (reference.schema != 1) {
    error(shards.front().label + ": unsupported shard schema " +
          std::to_string(reference.schema));
    return check;
  }
  const std::uint32_t shard_count = shards.front().header.shard.count;

  // Pairwise compatibility against the first artifact.
  for (const ShardInput& shard : shards) {
    const auto expect = manifest_fields(reference);
    const auto got = manifest_fields(shard.header.manifest);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      if (expect[i].second != got[i].second) {
        error(shard.label + ": incompatible " + got[i].first + " (" +
              got[i].second + " here, " + expect[i].second + " in " +
              shards.front().label + ")");
      }
    }
    if (shard.header.shard.count != shard_count) {
      error(shard.label + ": shard count " +
            std::to_string(shard.header.shard.count) + " here, " +
            std::to_string(shard_count) + " in " + shards.front().label +
            " — job ranges would overlap");
    }
  }
  if (!check.ok()) return check;  // later checks assume one campaign

  // Exactly one artifact per shard index.
  std::map<std::uint32_t, const ShardInput*> by_index;
  for (const ShardInput& shard : shards) {
    const auto [it, inserted] =
        by_index.emplace(shard.header.shard.index, &shard);
    if (!inserted) {
      error("duplicate shard " + std::to_string(shard.header.shard.index) +
            "/" + std::to_string(shard_count) + ": " + it->second->label +
            " and " + shard.label);
    }
  }
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    if (by_index.find(i) == by_index.end()) {
      error("missing shard " + std::to_string(i) + "/" +
            std::to_string(shard_count));
    }
  }

  // Per-shard internal consistency: the header's claimed size, the actual
  // line count, and every record's position in the expansion order.
  for (const ShardInput& shard : shards) {
    const ShardSpec& spec = shard.header.shard;
    const std::uint64_t expected =
        shard_jobs_owned(reference.total_jobs, spec);
    if (shard.header.jobs_owned != expected) {
      error(shard.label + ": header claims " +
            std::to_string(shard.header.jobs_owned) + " jobs, the ownership "
            "rule gives shard " + std::to_string(spec.index) + "/" +
            std::to_string(spec.count) + " " + std::to_string(expected));
    }
    if (shard.job_lines.size() != shard.header.jobs_owned) {
      error(shard.label + ": " + std::to_string(shard.job_lines.size()) +
            " job records, header claims " +
            std::to_string(shard.header.jobs_owned) +
            " (truncated or padded file)");
      continue;
    }
    std::size_t expected_index = spec.index;
    for (const std::string& line : shard.job_lines) {
      JobRecord record;
      try {
        record = parse_job_record(line, shard.label);
      } catch (const std::exception& e) {
        error(e.what());
        break;
      }
      if (record.spec.index != expected_index) {
        error(shard.label + ": job " + std::to_string(record.spec.index) +
              " out of place (expected job " +
              std::to_string(expected_index) + " next" +
              (spec.owns(record.spec.index)
                   ? ")"
                   : "; the index is not even owned by shard " +
                         std::to_string(spec.index) + "/" +
                         std::to_string(spec.count) + ")"));
        break;
      }
      if (record.spec.replication >= reference.reps ||
          record.spec.point >= reference.points ||
          record.spec.index !=
              record.spec.point * reference.reps + record.spec.replication) {
        error(shard.label + ": job " + std::to_string(record.spec.index) +
              " has inconsistent point/replication coordinates");
        break;
      }
      expected_index += spec.count;
    }
    if (!shard.has_stats) {
      error(shard.label + ": stats sibling " +
            shard_stats_path(shard.label) + " missing or unreadable");
    } else if (shard.stats_jobs != shard.job_lines.size()) {
      error(shard.label + ": stats artifact covers " +
            std::to_string(shard.stats_jobs) + " jobs, JSONL has " +
            std::to_string(shard.job_lines.size()));
    }
  }
  return check;
}

MergedCampaign merge_shards(const std::vector<ShardInput>& shards) {
  TEMPRIV_TLM_SPAN("merge");
  const MergeCheck check = check_shards(shards);
  if (!check.ok()) {
    std::string joined = "shard set cannot merge:";
    for (const std::string& e : check.errors) joined += "\n  " + e;
    throw std::runtime_error(joined);
  }

  const CampaignManifest& manifest = shards.front().header.manifest;
  const std::size_t total_jobs = manifest.total_jobs;

  // Interleave the verbatim lines by global job index and parse each record
  // once. check_shards proved per-shard ascending ownership, so this fills
  // every slot exactly once.
  std::vector<const std::string*> lines(total_jobs, nullptr);
  for (const ShardInput& shard : shards) {
    std::size_t index = shard.header.shard.index;
    for (const std::string& line : shard.job_lines) {
      lines[index] = &line;
      index += shard.header.shard.count;
    }
  }

  MergedCampaign merged;
  merged.manifest = manifest;
  std::vector<workload::PaperScenario> points(manifest.points);
  std::vector<workload::ScenarioResult> point_zero_results(manifest.points);
  MergedStatsSink stats(manifest.points);
  std::string jsonl;
  for (std::size_t index = 0; index < total_jobs; ++index) {
    const JobRecord record = parse_job_record(*lines[index], "merge");
    jsonl += *lines[index];
    jsonl += '\n';
    JobResult job;
    job.spec = record.spec;
    job.result = record.result;
    stats.consume(job);
    if (record.spec.replication == 0) {
      points[record.spec.point] = record.spec.scenario;
      point_zero_results[record.spec.point] = std::move(job.result);
    }
  }
  merged.jsonl = std::move(jsonl);
  merged.total = stats.total();

  // Combine the shards' own stats artifacts with the histogram merge path
  // and insist they agree with the replayed records: a stats sibling that
  // was swapped in from another run (or truncated) fails loudly here even
  // if its header was forged to match.
  metrics::Histogram latency = *shards.front().stats_latency_hist;
  metrics::IntegerHistogram preemptions =
      shards.front().stats_preemption_hist;
  std::uint64_t stats_jobs = shards.front().stats_jobs;
  std::uint64_t stats_events = shards.front().stats_sim_events;
  for (std::size_t i = 1; i < shards.size(); ++i) {
    latency.merge(*shards[i].stats_latency_hist);
    preemptions.merge(shards[i].stats_preemption_hist);
    stats_jobs += shards[i].stats_jobs;
    stats_events += shards[i].stats_sim_events;
  }
  const metrics::Histogram& replayed = stats.total().latency_hist;
  bool histograms_agree = latency.bin_count() == replayed.bin_count() &&
                          latency.underflow() == replayed.underflow() &&
                          latency.overflow() == replayed.overflow();
  for (std::size_t i = 0; histograms_agree && i < latency.bin_count(); ++i) {
    histograms_agree = latency.bin(i) == replayed.bin(i);
  }
  const metrics::IntegerHistogram& replayed_preempt =
      stats.total().preemption_hist;
  bool preempt_agree =
      preemptions.total() == replayed_preempt.total() &&
      (preemptions.total() == 0 ||
       preemptions.max_value() == replayed_preempt.max_value());
  for (std::uint64_t v = 0;
       preempt_agree && preemptions.total() > 0 && v <= preemptions.max_value();
       ++v) {
    preempt_agree = preemptions.count(v) == replayed_preempt.count(v);
  }
  if (stats_jobs != stats.total().jobs ||
      stats_events != stats.total().sim_events || !histograms_agree ||
      !preempt_agree) {
    throw std::runtime_error(
        "merged shard stats artifacts disagree with the JSONL records "
        "(stats sibling from a different run?)");
  }

  const Sweep sweep = sweep_for_merge(manifest.sweep, points);
  merged.table = sweep.table(point_zero_results);

  std::ostringstream stats_os;
  write_campaign_stats_json(stats_os, manifest, nullptr, stats);
  merged.stats_json = stats_os.str();
  return merged;
}

}  // namespace tempriv::campaign
