#include "campaign/telemetry_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/jsonio.h"

namespace tempriv::campaign {

std::string shard_telemetry_path(const std::string& jsonl_path) {
  const std::string suffix = ".jsonl";
  if (jsonl_path.size() > suffix.size() &&
      jsonl_path.compare(jsonl_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return jsonl_path.substr(0, jsonl_path.size() - suffix.size()) +
           ".telemetry.json";
  }
  return jsonl_path + ".telemetry.json";
}

telemetry::Snapshot parse_telemetry_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  const JsonValue& root = doc.at("telemetry");
  const std::uint32_t schema = root.at("schema").as_u32();
  if (schema != 1) {
    throw std::runtime_error("unsupported telemetry schema " +
                             std::to_string(schema));
  }
  telemetry::Snapshot snapshot;
  snapshot.enabled = root.at("enabled").as_bool();
  for (const auto& [key, value] : root.at("counters").members) {
    snapshot.counters[key] = value.as_u64();
  }
  for (const auto& [key, value] : root.at("gauges").members) {
    snapshot.gauges[key] = value.as_u64();
  }
  for (const auto& [key, value] : root.at("histograms").members) {
    if (!value.is_array() ||
        value.items.size() != telemetry::kHistBuckets) {
      throw std::runtime_error("histogram \"" + key + "\" must be an array "
                               "of " + std::to_string(telemetry::kHistBuckets) +
                               " buckets");
    }
    telemetry::HistogramCounts& hist = snapshot.histograms[key];
    for (std::size_t b = 0; b < telemetry::kHistBuckets; ++b) {
      hist.buckets[b] = value.items[b].as_u64();
    }
  }
  for (const auto& [key, value] : root.at("spans").members) {
    telemetry::SpanStat& span = snapshot.spans[key];
    span.count = value.at("count").as_u64();
    span.nanos = value.at("nanos").as_u64();
  }
  return snapshot;
}

telemetry::Snapshot load_telemetry_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot open telemetry snapshot " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  try {
    return parse_telemetry_json(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_telemetry_file(const std::string& path,
                          const telemetry::Snapshot& snapshot) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("cannot write telemetry snapshot " + path);
  }
  telemetry::write_snapshot_json(os, snapshot);
  os.flush();
  if (!os) {
    throw std::runtime_error("write failed for telemetry snapshot " + path);
  }
}

}  // namespace tempriv::campaign
