#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tempriv::campaign {

/// Minimal JSON document model for reading the campaign's own artifacts
/// (shard headers, per-job JSONL lines, stats files) back in. This is a
/// reader for machine-written output with a fixed schema — it accepts
/// standard JSON but makes no attempt at streaming or zero-copy; artifact
/// lines are short and parsing happens once per merge, never on a hot path.
///
/// Numbers keep their raw text alongside the parse so 64-bit integers
/// (seeds, event counts) round-trip exactly and doubles re-read bit-equal
/// to what json_number() emitted (shortest round-trippable decimal).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< string value, or the raw number token
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }

  /// Object member lookup; nullptr if absent (or not an object).
  const JsonValue* find(const std::string& key) const noexcept;
  /// Object member lookup; throws std::runtime_error naming `key` if absent.
  const JsonValue& at(const std::string& key) const;

  /// Conversions; throw std::runtime_error on kind/format mismatch.
  double as_double() const;
  std::uint64_t as_u64() const;
  std::uint32_t as_u32() const;
  std::int64_t as_i64() const;
  const std::string& as_string() const;
  bool as_bool() const;
};

/// Parses one complete JSON document (trailing whitespace allowed, nothing
/// else). Throws std::runtime_error with byte offset on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace tempriv::campaign
