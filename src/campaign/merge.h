#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "campaign/job.h"
#include "campaign/shard.h"
#include "campaign/sinks.h"
#include "metrics/histogram.h"
#include "metrics/table.h"

namespace tempriv::campaign {

/// One job parsed back from a shard JSONL record. `spec.scenario` is the
/// JSONL subset of the scenario (the swept axes), which is everything the
/// figure tables and merged stats read; fields the log does not carry keep
/// their defaults.
struct JobRecord {
  JobSpec spec;
  workload::ScenarioResult result;
};

/// Parses one JSONL job line. Throws std::runtime_error (prefixed with
/// `label`) on malformed input.
JobRecord parse_job_record(const std::string& line, const std::string& label);

/// One shard's artifacts loaded for merging: the parsed header, the raw job
/// lines (kept verbatim — the merged JSONL is an interleave of these exact
/// bytes), and the validation subset of the stats sibling.
struct ShardInput {
  std::string label;  ///< path (or test label) for error messages
  ShardHeader header;
  std::vector<std::string> job_lines;  ///< without trailing newline

  /// From the `.stats.json` sibling; histograms merge order-independently,
  /// so they both cross-check the JSONL and exercise the
  /// Histogram/IntegerHistogram merge path.
  bool has_stats = false;
  std::uint64_t stats_jobs = 0;
  std::uint64_t stats_sim_events = 0;
  std::optional<metrics::Histogram> stats_latency_hist;
  metrics::IntegerHistogram stats_preemption_hist;
};

/// Reads a shard JSONL stream (header line + job lines).
/// Throws std::runtime_error on a missing/malformed header.
ShardInput read_shard_jsonl(std::istream& is, const std::string& label);

/// Reads a shard stats stream into `shard` and validates that its campaign
/// and shard blocks agree with the JSONL header. Throws std::runtime_error
/// on parse failure or disagreement.
void read_shard_stats(std::istream& is, const std::string& label,
                      ShardInput& shard);

/// Stats sibling path of a shard JSONL path: "x.jsonl" -> "x.stats.json".
std::string shard_stats_path(const std::string& jsonl_path);

/// Loads a shard JSONL file plus its stats sibling (by naming convention).
/// A missing stats sibling is tolerated (has_stats stays false) so --check
/// can describe it rather than die; merging requires it.
ShardInput load_shard_files(const std::string& jsonl_path);

/// Outcome of validating a shard set for merge. `errors` is
/// human-readable, one problem per entry (incompatible manifests, duplicate
/// or missing shards, job records that violate the ownership rule, gaps,
/// truncated files, missing stats siblings...).
struct MergeCheck {
  std::vector<std::string> errors;
  bool ok() const noexcept { return errors.empty(); }
};

/// Dry-run validation: reports every reason the shard set cannot merge
/// into a complete campaign. Writes nothing.
MergeCheck check_shards(const std::vector<ShardInput>& shards);

/// A fully merged campaign, byte-identical to what the serial run
/// produces: `jsonl` to the serial JSONL log, `stats_json` to the serial
/// stats artifact, and `table` renders the serial CSV.
struct MergedCampaign {
  CampaignManifest manifest;
  std::string jsonl;
  std::string stats_json;
  // Placeholder column until merge_shards() installs the real table —
  // metrics::Table rejects an empty column list.
  metrics::Table table = metrics::Table({"-"});
  CampaignStats total;
};

/// Validates and merges. The JSONL is an interleave of the shards' verbatim
/// lines in ascending job index; the stats artifact is rebuilt by replaying
/// the parsed records through MergedStatsSink in the same order the serial
/// run consumed them (in-order job-index reduction — Welford folds are
/// order-sensitive, so this is the only way to match the serial bytes); the
/// shard stats histograms are combined with Histogram::merge /
/// IntegerHistogram::merge and cross-checked against the replayed totals,
/// so a stats sibling that disagrees with its JSONL can never merge
/// silently. Throws std::runtime_error (all check errors joined) if the
/// shard set is incomplete or incompatible.
MergedCampaign merge_shards(const std::vector<ShardInput>& shards);

}  // namespace tempriv::campaign
