#include "campaign/progress.h"

#include <iomanip>
#include <ostream>

namespace tempriv::campaign {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ProgressReporter::ProgressReporter(std::ostream& os, std::size_t total_jobs,
                                   std::chrono::milliseconds min_interval)
    : os_(os),
      total_(total_jobs),
      min_interval_(min_interval),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_ - min_interval) {}

void ProgressReporter::job_done(std::uint64_t sim_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  events_ += sim_events;
  const auto now = std::chrono::steady_clock::now();
  if (done_ == total_ || now - last_print_ >= min_interval_) {
    last_print_ = now;
    print_line(false);
  }
}

void ProgressReporter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  print_line(true);
}

void ProgressReporter::shard_heartbeat(std::uint32_t shard,
                                       std::uint64_t events) {
  std::lock_guard<std::mutex> lock(mutex_);
  ShardHeartbeat& beat = heartbeats_[shard];
  beat.at = std::chrono::steady_clock::now();
  // Heartbeats are cumulative; a job line racing an idle heartbeat may
  // deliver counts out of order, so keep the high-water mark.
  if (events > beat.events) beat.events = events;
}

std::size_t ProgressReporter::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

std::optional<ShardHeartbeat> ProgressReporter::last_heartbeat(
    std::uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = heartbeats_.find(shard);
  if (it == heartbeats_.end()) return std::nullopt;
  return it->second;
}

void ProgressReporter::print_line(bool final_line) {
  const double elapsed = seconds_since(start_);
  const double rate =
      elapsed > 0.0 ? static_cast<double>(events_) / elapsed : 0.0;
  os_ << "[campaign] " << done_ << "/" << total_ << " jobs";
  os_ << std::fixed << std::setprecision(1);
  if (rate > 0.0) os_ << "  " << rate / 1e6 << "M events/s";
  if (final_line) {
    os_ << "  done in " << elapsed << "s\n";
  } else if (done_ > 0 && done_ < total_) {
    const double eta =
        elapsed / static_cast<double>(done_) * static_cast<double>(total_ - done_);
    os_ << "  ETA " << eta << "s\n";
  } else {
    os_ << "\n";
  }
  os_.unsetf(std::ios::floatfield);
}

}  // namespace tempriv::campaign
