#include "campaign/shard.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "campaign/jsonio.h"
#include "campaign/sinks.h"

namespace tempriv::campaign {

namespace {

/// Strict unsigned parse of an entire token (no sign, no trailing junk).
bool parse_full_u64(const std::string& text, std::uint64_t& out) {
  // Digits only: strtoull alone would skip leading whitespace and accept
  // signs, so " 8" or "+8" would slip through.
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  // Field separator, so concatenated fields can't collide by reflowing.
  hash ^= 0x1f;
  hash *= kFnvPrime;
}

/// Canonical text form of one scenario point. Every field participates:
/// two campaigns whose grids differ in any parameter (including seeds and
/// the victim policy) must hash differently.
std::string scenario_fingerprint(const workload::PaperScenario& s) {
  std::ostringstream out;
  out << json_number(s.interarrival) << '|' << s.packets_per_source << '|'
      << json_number(s.mean_delay) << '|' << s.buffer_slots << '|'
      << json_number(s.hop_tx_delay) << '|' << workload::to_string(s.scheme)
      << '|' << static_cast<int>(s.victim) << '|'
      << json_number(s.adaptive_threshold) << '|' << s.seed << '|';
  for (const std::uint16_t hops : s.hop_counts) out << hops << ',';
  out << '|' << s.shared_tail << '|' << json_number(s.sink_weighting) << '|'
      << workload::to_string(s.source) << '|' << json_number(s.hop_jitter)
      << '|' << (s.trace ? 1 : 0);
  return out.str();
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    throw std::invalid_argument("bad shard spec '" + text +
                                "' (want i/N, e.g. 0/4)");
  }
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  if (!parse_full_u64(text.substr(0, slash), index) ||
      !parse_full_u64(text.substr(slash + 1), count)) {
    throw std::invalid_argument("bad shard spec '" + text +
                                "' (want i/N, e.g. 0/4)");
  }
  if (count == 0 || count > 0xffffffffULL) {
    throw std::invalid_argument("bad shard spec '" + text +
                                "': shard count must be in [1, 2^32)");
  }
  if (index >= count) {
    throw std::invalid_argument("bad shard spec '" + text +
                                "': index must be < count");
  }
  return ShardSpec{static_cast<std::uint32_t>(index),
                   static_cast<std::uint32_t>(count)};
}

std::size_t shard_jobs_owned(std::size_t total_jobs, const ShardSpec& spec) {
  if (spec.index >= total_jobs) return 0;
  return (total_jobs - spec.index - 1) / spec.count + 1;
}

std::uint64_t campaign_config_hash(
    const std::string& tag, std::uint32_t reps,
    const std::vector<workload::PaperScenario>& points) {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, tag);
  fnv_mix(hash, std::to_string(reps));
  for (const workload::PaperScenario& point : points) {
    fnv_mix(hash, scenario_fingerprint(point));
  }
  return hash;
}

CampaignManifest make_manifest(
    const std::string& sweep_name, const std::string& tag, std::uint32_t reps,
    const std::vector<workload::PaperScenario>& points) {
  if (points.empty()) {
    throw std::invalid_argument("make_manifest: sweep has no points");
  }
  CampaignManifest manifest;
  manifest.sweep = sweep_name;
  manifest.tag = tag;
  manifest.base_seed = points.front().seed;
  manifest.reps = reps;
  manifest.points = points.size();
  manifest.total_jobs = points.size() * reps;
  manifest.config_hash = campaign_config_hash(tag, reps, points);
  return manifest;
}

std::string config_hash_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::string shard_header_json(const ShardHeader& header) {
  const CampaignManifest& m = header.manifest;
  std::ostringstream out;
  out << "{\"shard_header\":{\"schema\":" << m.schema << ",\"sweep\":\""
      << m.sweep << "\",\"tag\":\"" << m.tag << "\",\"base_seed\":"
      << m.base_seed << ",\"reps\":" << m.reps << ",\"points\":" << m.points
      << ",\"total_jobs\":" << m.total_jobs << ",\"config_hash\":\""
      << config_hash_hex(m.config_hash) << "\",\"shard_index\":"
      << header.shard.index << ",\"shard_count\":" << header.shard.count
      << ",\"jobs_owned\":" << header.jobs_owned << "}}";
  return out.str();
}

ShardHeader parse_shard_header(const std::string& line,
                               const std::string& label) {
  try {
    const JsonValue doc = parse_json(line);
    const JsonValue& h = doc.at("shard_header");
    ShardHeader header;
    header.manifest.schema = h.at("schema").as_u32();
    header.manifest.sweep = h.at("sweep").as_string();
    header.manifest.tag = h.at("tag").as_string();
    header.manifest.base_seed = h.at("base_seed").as_u64();
    header.manifest.reps = h.at("reps").as_u32();
    header.manifest.points = h.at("points").as_u64();
    header.manifest.total_jobs = h.at("total_jobs").as_u64();
    const std::string& hash = h.at("config_hash").as_string();
    if (hash.size() != 16 ||
        hash.find_first_not_of("0123456789abcdef") != std::string::npos) {
      throw std::runtime_error("config_hash is not 16 lowercase hex digits");
    }
    header.manifest.config_hash = std::strtoull(hash.c_str(), nullptr, 16);
    header.shard.index = h.at("shard_index").as_u32();
    header.shard.count = h.at("shard_count").as_u32();
    header.jobs_owned = h.at("jobs_owned").as_u64();
    if (header.shard.count == 0 || header.shard.index >= header.shard.count) {
      throw std::runtime_error("shard_index/shard_count out of range");
    }
    return header;
  } catch (const std::exception& e) {
    throw std::runtime_error(label + ": bad shard header: " + e.what());
  }
}

std::string shard_artifact_stem(const std::string& tag,
                                const ShardSpec& spec) {
  std::ostringstream out;
  out << tag << ".shard-" << spec.index << "-of-" << spec.count;
  return out.str();
}

}  // namespace tempriv::campaign
