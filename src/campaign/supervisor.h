#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "campaign/progress.h"
#include "campaign/shard.h"

namespace tempriv::campaign {

/// Writes one "E <sim_events>\n" record per finished job to a pipe fd. A
/// record is a single short write() (far below PIPE_BUF), which POSIX
/// guarantees is atomic, so concurrent workers need no lock and a parent
/// reading the pipe never sees torn lines.
///
/// With a heartbeat interval the listener also runs a background thread
/// that writes "H <cumulative_events>\n" every interval, so a supervisor
/// can tell a shard grinding through one long job from a hung one.
class PipeProgress : public ProgressListener {
 public:
  explicit PipeProgress(int fd) : fd_(fd) {}
  PipeProgress(int fd, std::chrono::milliseconds heartbeat_interval);
  ~PipeProgress() override;

  void job_done(std::uint64_t sim_events) override;

 private:
  void heartbeat_loop(std::chrono::milliseconds interval);

  int fd_;
  std::atomic<std::uint64_t> total_events_{0};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread heartbeat_;
};

/// Supervisor knobs for run_shard_fleet(). Stall detection needs children
/// that actually heartbeat (the interval-taking PipeProgress constructor);
/// with silent children every long job would read as a stall.
struct FleetOptions {
  /// A shard whose pipe stays silent this long is reported as stalled
  /// (once, to `stall_log`); zero disables the check.
  std::chrono::milliseconds stall_after{0};
  /// Where stall reports go; nullptr silences them (detection still runs
  /// so the shard's `stalled` flag reflects reality in failure messages).
  std::ostream* stall_log = nullptr;
};

/// Runs `child_main(shard, progress_fd)` in one forked process per shard
/// (i/N for i in 0..N-1) and supervises them:
///
///  - each child gets a dedicated pipe; the parent polls all pipes and
///    forwards every "E <events>" record to `progress` (may be null), so
///    the user sees one aggregated meter across the whole fleet;
///  - a child that exits nonzero or dies on a signal fails the campaign:
///    the parent SIGTERMs the remaining children, reaps everything, and
///    returns a nonzero exit code with the first failure described in
///    `*error`;
///  - the parent itself must be single-threaded when calling this (fork
///    and threads do not mix); children may spawn as many workers as they
///    like.
///
/// `child_main` runs in the child process and must not return to the
/// caller's stack — its return value becomes the child's exit status via
/// _exit(). Returns 0 when every shard succeeded.
int run_shard_fleet(
    std::uint32_t shard_count, ProgressListener* progress,
    const std::function<int(const ShardSpec&, int progress_fd)>& child_main,
    std::string* error, const FleetOptions& options = {});

}  // namespace tempriv::campaign
