#include "campaign/analysis.h"

#include <algorithm>
#include <future>
#include <vector>

#include "infotheory/estimators.h"

namespace tempriv::campaign {

double parallel_mutual_information_ksg(ThreadPool& pool,
                                       std::span<const double> xs,
                                       std::span<const double> zs,
                                       unsigned k) {
  infotheory::KsgWorkspace workspace;
  workspace.prepare(xs, zs, k);
  const std::size_t n = workspace.size();
  std::vector<double> psi(n);

  // Chunk size balances scheduling overhead against load imbalance; the
  // floor keeps tiny inputs from fragmenting into per-point tasks.
  const std::size_t workers = std::max<std::size_t>(pool.thread_count(), 1);
  const std::size_t chunk =
      std::max<std::size_t>(256, (n + workers * 4 - 1) / (workers * 4));

  std::vector<std::future<void>> pending;
  pending.reserve((n + chunk - 1) / chunk);
  std::span<double> out(psi);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    pending.push_back(pool.submit(
        [&workspace, out, begin, end] { workspace.psi_terms(begin, end, out); }));
  }
  for (auto& f : pending) f.get();
  return workspace.reduce(psi);
}

}  // namespace tempriv::campaign
