#include "campaign/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>
#include <vector>

namespace tempriv::campaign {

namespace {

void write_record(int fd, char tag, std::uint64_t value) {
  char buffer[32];
  const int n = std::snprintf(buffer, sizeof buffer, "%c %llu\n", tag,
                              static_cast<unsigned long long>(value));
  if (n <= 0) return;
  // One atomic write per record; if the parent is gone EPIPE is ignored —
  // progress is measurement-only and must never fail a shard.
  [[maybe_unused]] const ssize_t written =
      ::write(fd, buffer, static_cast<std::size_t>(n));
}

std::string format_seconds(std::chrono::steady_clock::duration d) {
  const double seconds = std::chrono::duration<double>(d).count();
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", seconds);
  return buffer;
}

}  // namespace

PipeProgress::PipeProgress(int fd,
                           std::chrono::milliseconds heartbeat_interval)
    : fd_(fd) {
  heartbeat_ = std::thread([this, heartbeat_interval] {
    heartbeat_loop(heartbeat_interval);
  });
}

PipeProgress::~PipeProgress() {
  if (!heartbeat_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  heartbeat_.join();
}

void PipeProgress::job_done(std::uint64_t sim_events) {
  total_events_.fetch_add(sim_events, std::memory_order_relaxed);
  write_record(fd_, 'E', sim_events);
}

void PipeProgress::heartbeat_loop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_cv_.wait_for(lock, interval, [this] { return stop_; })) {
    write_record(fd_, 'H', total_events_.load(std::memory_order_relaxed));
  }
}

namespace {

struct Child {
  pid_t pid = -1;
  int pipe_fd = -1;       ///< parent's read end; -1 once EOF
  std::string buffer;     ///< partial line carried between reads
  bool reaped = false;
  int status = 0;         ///< waitpid status once reaped
  std::uint64_t events = 0;  ///< cumulative sim events the shard reported
  std::chrono::steady_clock::time_point last_beat;  ///< last pipe activity
  bool stalled = false;   ///< a stall was already reported for this silence
};

/// Feeds complete "E <events>" (job done) and "H <total>" (idle heartbeat)
/// lines from `chunk` into the child's tally and the listener.
void consume_progress(Child& child, std::uint32_t shard, const char* chunk,
                      std::size_t len, ProgressListener* progress) {
  child.buffer.append(chunk, len);
  std::size_t start = 0;
  for (std::size_t nl = child.buffer.find('\n', start);
       nl != std::string::npos; nl = child.buffer.find('\n', start)) {
    const std::string line = child.buffer.substr(start, nl - start);
    start = nl + 1;
    if (line.size() <= 2 || line[1] != ' ') continue;
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(line.c_str() + 2, &end, 10);
    if (errno != 0 || end == line.c_str() + 2) continue;
    if (line[0] == 'E') {
      child.events += static_cast<std::uint64_t>(value);
      if (progress != nullptr) {
        progress->job_done(static_cast<std::uint64_t>(value));
        progress->shard_heartbeat(shard, child.events);
      }
    } else if (line[0] == 'H') {
      // Cumulative count; an H racing ahead of buffered E lines only ever
      // raises the tally.
      child.events = std::max(child.events, static_cast<std::uint64_t>(value));
      if (progress != nullptr) {
        progress->shard_heartbeat(shard, child.events);
      }
    }
  }
  child.buffer.erase(0, start);
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return std::string("killed by signal ") + strsignal(WTERMSIG(status));
  }
  return "ended abnormally";
}

}  // namespace

int run_shard_fleet(
    std::uint32_t shard_count, ProgressListener* progress,
    const std::function<int(const ShardSpec&, int progress_fd)>& child_main,
    std::string* error, const FleetOptions& options) {
  if (shard_count == 0) {
    if (error) *error = "shard count must be >= 1";
    return 1;
  }
  // A shard that dies mid-write must not kill the supervisor with SIGPIPE;
  // children inherit the default disposition back via the exec-less fork,
  // but PipeProgress ignores write errors anyway.
  ::signal(SIGPIPE, SIG_IGN);

  std::vector<Child> children(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    int fds[2];
    if (::pipe(fds) != 0) {
      if (error) *error = std::string("pipe: ") + std::strerror(errno);
      for (Child& child : children) {
        if (child.pid > 0) ::kill(child.pid, SIGTERM);
        if (child.pipe_fd >= 0) ::close(child.pipe_fd);
      }
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      if (error) *error = std::string("fork: ") + std::strerror(errno);
      ::close(fds[0]);
      ::close(fds[1]);
      for (Child& child : children) {
        if (child.pid > 0) ::kill(child.pid, SIGTERM);
        if (child.pipe_fd >= 0) ::close(child.pipe_fd);
      }
      return 1;
    }
    if (pid == 0) {
      // Child: drop every inherited read end (ours and earlier siblings')
      // so the parent sees EOF exactly when the last writer exits.
      ::close(fds[0]);
      for (const Child& sibling : children) {
        if (sibling.pipe_fd >= 0) ::close(sibling.pipe_fd);
      }
      int code = 1;
      try {
        code = child_main(ShardSpec{i, shard_count}, fds[1]);
      } catch (...) {
        code = 1;
      }
      ::close(fds[1]);
      // _exit, not exit: the child shares the parent's stdio buffers and
      // atexit list; flushing them twice would duplicate output.
      ::_exit(code);
    }
    children[i].pid = pid;
    children[i].pipe_fd = fds[0];
    children[i].last_beat = std::chrono::steady_clock::now();
    ::close(fds[1]);
  }

  // Stream progress until every pipe reaches EOF. EOF is the child-done
  // signal (exit closes the write end); the wait loop below collects the
  // actual statuses.
  bool failed = false;
  std::string first_failure;
  auto note_failure = [&](std::uint32_t shard, int status) {
    if (failed) return;
    failed = true;
    const Child& child = children[shard];
    first_failure = "shard " + std::to_string(shard) + "/" +
                    std::to_string(shard_count) + " " + describe_exit(status) +
                    " (events executed: " + std::to_string(child.events) +
                    ", last heartbeat " +
                    format_seconds(std::chrono::steady_clock::now() -
                                   child.last_beat) +
                    "s before exit)";
    for (Child& other : children) {
      if (!other.reaped && other.pid > 0) ::kill(other.pid, SIGTERM);
    }
  };

  // With stall detection on, poll wakes often enough to notice silence a
  // fraction of the threshold late at worst; otherwise block indefinitely.
  int poll_timeout_ms = -1;
  if (options.stall_after.count() > 0) {
    poll_timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
        options.stall_after.count() / 4, 50, 1000));
  }

  std::size_t open_pipes = children.size();
  std::vector<pollfd> poll_set;
  while (open_pipes > 0) {
    poll_set.clear();
    for (const Child& child : children) {
      if (child.pipe_fd >= 0) {
        poll_set.push_back(pollfd{child.pipe_fd, POLLIN, 0});
      }
    }
    const int ready =
        ::poll(poll_set.data(), poll_set.size(), poll_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("poll: ") + std::strerror(errno);
      failed = true;
      break;
    }
    if (options.stall_after.count() > 0) {
      const auto now = std::chrono::steady_clock::now();
      for (std::uint32_t i = 0; i < children.size(); ++i) {
        Child& child = children[i];
        if (child.pipe_fd < 0 || child.stalled) continue;
        if (now - child.last_beat < options.stall_after) continue;
        child.stalled = true;
        if (options.stall_log != nullptr) {
          *options.stall_log
              << "[supervisor] shard " << i << "/" << shard_count
              << " stalled: no heartbeat for "
              << format_seconds(now - child.last_beat)
              << "s (events executed: " << child.events << ")\n";
        }
      }
    }
    for (const pollfd& entry : poll_set) {
      if ((entry.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Child* child = nullptr;
      std::uint32_t shard = 0;
      for (std::uint32_t i = 0; i < children.size(); ++i) {
        if (children[i].pipe_fd == entry.fd) {
          child = &children[i];
          shard = i;
          break;
        }
      }
      char chunk[4096];
      const ssize_t n = ::read(entry.fd, chunk, sizeof chunk);
      if (n > 0) {
        child->last_beat = std::chrono::steady_clock::now();
        child->stalled = false;
        consume_progress(*child, shard, chunk, static_cast<std::size_t>(n),
                         progress);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
      // EOF (or read error): the child is finishing — reap it now so a
      // failure fails the fleet fast instead of after every shard drains.
      ::close(child->pipe_fd);
      child->pipe_fd = -1;
      --open_pipes;
      if (::waitpid(child->pid, &child->status, 0) == child->pid) {
        child->reaped = true;
        if (!(WIFEXITED(child->status) && WEXITSTATUS(child->status) == 0)) {
          note_failure(shard, child->status);
        }
      }
    }
  }

  for (std::uint32_t i = 0; i < children.size(); ++i) {
    Child& child = children[i];
    if (child.pipe_fd >= 0) {
      ::close(child.pipe_fd);
      child.pipe_fd = -1;
    }
    if (!child.reaped && child.pid > 0 &&
        ::waitpid(child.pid, &child.status, 0) == child.pid) {
      child.reaped = true;
      if (!(WIFEXITED(child.status) && WEXITSTATUS(child.status) == 0)) {
        note_failure(i, child.status);
      }
    }
  }

  if (failed) {
    if (error && !first_failure.empty()) *error = first_failure;
    return 1;
  }
  return 0;
}

}  // namespace tempriv::campaign
