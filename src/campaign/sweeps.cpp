#include "campaign/sweeps.h"

#include <stdexcept>

namespace tempriv::campaign {

namespace {

// The three §5.3 schemes in every figure's column order.
constexpr workload::Scheme kFigureSchemes[] = {
    workload::Scheme::kNoDelay, workload::Scheme::kUnlimitedDelay,
    workload::Scheme::kRcad};

// The paper's sweep axis, 1/λ ∈ [2, 20] step 2, generated with the same
// loop as the serial benches (the values are exact in binary, so the CSV
// x-column matches byte for byte).
std::vector<double> paper_interarrivals() {
  std::vector<double> out;
  for (double interarrival = 2.0; interarrival <= 20.0; interarrival += 2.0) {
    out.push_back(interarrival);
  }
  return out;
}

// One scenario point per (interarrival, scheme), interarrival-major — the
// serial benches' nesting order.
std::vector<workload::PaperScenario> three_scheme_grid() {
  std::vector<workload::PaperScenario> points;
  for (const double interarrival : paper_interarrivals()) {
    for (const workload::Scheme scheme : kFigureSchemes) {
      workload::PaperScenario scenario;
      scenario.interarrival = interarrival;
      scenario.scheme = scheme;
      points.push_back(scenario);
    }
  }
  return points;
}

}  // namespace

Sweep fig2a_sweep() {
  Sweep sweep;
  sweep.name = "fig2a";
  sweep.tag = "fig2a_mse";
  sweep.points = three_scheme_grid();
  sweep.table = [](const std::vector<workload::ScenarioResult>& results) {
    metrics::Table table({"1/lambda", "NoDelay", "Delay&UnlimitedBuffers",
                          "Delay&LimitedBuffers(RCAD)"});
    const std::vector<double> xs = paper_interarrivals();
    for (std::size_t i = 0; i < results.size() / 3; ++i) {
      std::vector<double> row{xs[i]};
      for (std::size_t s = 0; s < 3; ++s) {
        row.push_back(results.at(i * 3 + s).flows.front().mse_baseline);
      }
      table.add_numeric_row(row, 1);
    }
    return table;
  };
  return sweep;
}

Sweep fig2b_sweep() {
  Sweep sweep;
  sweep.name = "fig2b";
  sweep.tag = "fig2b_latency";
  sweep.points = three_scheme_grid();
  sweep.table = [](const std::vector<workload::ScenarioResult>& results) {
    metrics::Table table({"1/lambda", "NoDelay", "Delay&UnlimitedBuffers",
                          "Delay&LimitedBuffers(RCAD)",
                          "RCAD reduction vs unlimited"});
    const std::vector<double> xs = paper_interarrivals();
    for (std::size_t i = 0; i < results.size() / 3; ++i) {
      std::vector<double> row{xs[i]};
      for (std::size_t s = 0; s < 3; ++s) {
        row.push_back(results.at(i * 3 + s).flows.front().mean_latency);
      }
      row.push_back(row[2] / row[3]);  // unlimited / RCAD latency ratio
      table.add_numeric_row(row, 2);
    }
    return table;
  };
  return sweep;
}

Sweep fig3_sweep() {
  Sweep sweep;
  sweep.name = "fig3";
  sweep.tag = "fig3_adaptive_adversary";
  for (const double interarrival : paper_interarrivals()) {
    workload::PaperScenario scenario;
    scenario.interarrival = interarrival;
    scenario.scheme = workload::Scheme::kRcad;
    sweep.points.push_back(scenario);
  }
  sweep.table = [](const std::vector<workload::ScenarioResult>& results) {
    metrics::Table table(
        {"1/lambda", "BaselineAdversary", "AdaptiveAdversary", "reduction"});
    const std::vector<double> xs = paper_interarrivals();
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& s1 = results.at(i).flows.front();
      table.add_numeric_row({xs[i], s1.mse_baseline, s1.mse_adaptive,
                             s1.mse_adaptive > 0.0
                                 ? s1.mse_baseline / s1.mse_adaptive
                                 : 1.0},
                            1);
    }
    return table;
  };
  return sweep;
}

Sweep buffer_size_sweep() {
  Sweep sweep;
  sweep.name = "buffer";
  sweep.tag = "ablation_buffer_size";
  const std::size_t slot_grid[] = {2, 5, 10, 20, 40, 80};
  for (const std::size_t slots : slot_grid) {
    workload::PaperScenario scenario;
    scenario.scheme = workload::Scheme::kRcad;
    scenario.interarrival = 2.0;
    scenario.buffer_slots = slots;
    sweep.points.push_back(scenario);
  }
  sweep.table = [](const std::vector<workload::ScenarioResult>& results) {
    metrics::Table table({"buffer slots k", "S1 MSE (baseline adv)",
                          "S1 MSE (adaptive adv)", "S1 mean latency",
                          "preemptions per packet"});
    const std::size_t slots[] = {2, 5, 10, 20, 40, 80};
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& result = results[i];
      const auto& s1 = result.flows.front();
      table.add_numeric_row(
          {static_cast<double>(slots[i]), s1.mse_baseline, s1.mse_adaptive,
           s1.mean_latency,
           static_cast<double>(result.preemptions) /
               static_cast<double>(result.originated)},
          1);
    }
    return table;
  };
  return sweep;
}

namespace {

/// The generic grid table over an explicit point list — shared by
/// grid_sweep (points from a GridSpec cross product) and sweep_for_merge
/// (points recovered from shard JSONL records).
std::function<metrics::Table(const std::vector<workload::ScenarioResult>&)>
grid_table(std::vector<workload::PaperScenario> points) {
  return [points = std::move(points)](
             const std::vector<workload::ScenarioResult>& results) {
    metrics::Table table({"1/lambda", "k", "scheme", "S1 MSE (baseline)",
                          "S1 MSE (adaptive)", "S1 mean latency",
                          "preempt/pkt", "drops/pkt"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& result = results[i];
      const auto& s1 = result.flows.front();
      const double originated =
          result.originated > 0 ? static_cast<double>(result.originated) : 1.0;
      table.add_row(
          {metrics::format_number(points[i].interarrival, 1),
           std::to_string(points[i].buffer_slots),
           workload::to_string(points[i].scheme),
           metrics::format_number(s1.mse_baseline, 1),
           metrics::format_number(s1.mse_adaptive, 1),
           metrics::format_number(s1.mean_latency, 2),
           metrics::format_number(
               static_cast<double>(result.preemptions) / originated, 3),
           metrics::format_number(static_cast<double>(result.drops) / originated,
                                  3)});
    }
    return table;
  };
}

}  // namespace

Sweep grid_sweep(const GridSpec& spec) {
  if (spec.interarrivals.empty() || spec.buffer_slots.empty() ||
      spec.schemes.empty()) {
    throw std::invalid_argument("grid_sweep: empty axis");
  }
  Sweep sweep;
  sweep.name = "grid";
  sweep.tag = "campaign_grid";
  for (const double interarrival : spec.interarrivals) {
    for (const std::size_t slots : spec.buffer_slots) {
      for (const workload::Scheme scheme : spec.schemes) {
        workload::PaperScenario scenario = spec.base;
        scenario.interarrival = interarrival;
        scenario.buffer_slots = slots;
        scenario.scheme = scheme;
        sweep.points.push_back(scenario);
      }
    }
  }
  sweep.table = grid_table(sweep.points);
  return sweep;
}

const std::vector<std::string>& named_sweeps() {
  static const std::vector<std::string> names = {"fig2a", "fig2b", "fig3",
                                                 "buffer"};
  return names;
}

Sweep make_named_sweep(const std::string& name) {
  if (name == "fig2a" || name == "fig2a_mse") return fig2a_sweep();
  if (name == "fig2b" || name == "fig2b_latency") return fig2b_sweep();
  if (name == "fig3" || name == "fig3_adaptive_adversary") return fig3_sweep();
  if (name == "buffer" || name == "ablation_buffer_size") {
    return buffer_size_sweep();
  }
  throw std::invalid_argument("unknown sweep: " + name);
}

SweepRun run_sweep(const Sweep& sweep, const RunnerOptions& options,
                   std::uint32_t replications,
                   const std::vector<ResultSink*>& sinks) {
  CampaignRunner runner(options);
  const std::vector<JobSpec> jobs =
      CampaignRunner::expand(sweep.points, replications);
  std::vector<JobResult> results = runner.run(jobs, sinks);
  metrics::Table table = sweep.table(point_results(results));
  return SweepRun{std::move(table), std::move(results)};
}

void run_sweep_shard(const Sweep& sweep, const RunnerOptions& options,
                     std::uint32_t replications, const ShardSpec& shard,
                     std::ostream& jsonl_os, std::ostream& stats_os) {
  const CampaignManifest manifest =
      make_manifest(sweep.name, sweep.tag, replications, sweep.points);
  const std::vector<JobSpec> jobs =
      CampaignRunner::expand(sweep.points, replications, shard);

  ShardHeader header;
  header.manifest = manifest;
  header.shard = shard;
  header.jobs_owned = jobs.size();
  jsonl_os << shard_header_json(header) << "\n";

  JsonlSink jsonl(jsonl_os);
  MergedStatsSink stats(sweep.points.size());
  CampaignRunner runner(options);
  runner.run(jobs, {&jsonl, &stats});

  write_campaign_stats_json(stats_os, manifest, &shard, stats);
}

Sweep sweep_for_merge(const std::string& name,
                      const std::vector<workload::PaperScenario>& points) {
  Sweep sweep;
  if (name == "grid") {
    sweep.name = "grid";
    sweep.tag = "campaign_grid";
    sweep.points = points;
    sweep.table = grid_table(points);
  } else {
    sweep = make_named_sweep(name);
  }
  if (sweep.points.size() != points.size()) {
    throw std::runtime_error(
        "sweep_for_merge: sweep '" + name + "' has " +
        std::to_string(sweep.points.size()) + " points, artifacts describe " +
        std::to_string(points.size()));
  }
  return sweep;
}

}  // namespace tempriv::campaign
