#include "campaign/runner.h"

#include <chrono>
#include <exception>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "campaign/thread_pool.h"
#include "sim/seed.h"
#include "telemetry/probes.h"

namespace tempriv::campaign {

namespace {

/// Releases completed jobs to the sinks strictly in submission order:
/// workers deposit results (keyed by their dense position in the submitted
/// job list — not the global job index, which is stride-N in a shard run)
/// as they finish; whenever the contiguous prefix grows, the depositing
/// worker drains it. Bounded buffering (only out-of-order stragglers are
/// held) and no dedicated merger thread.
class InOrderMerger {
 public:
  InOrderMerger(std::vector<JobResult>& out, const std::vector<ResultSink*>& sinks)
      : out_(out), sinks_(sinks) {}

  void deposit(std::size_t order, JobResult result) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace(order, std::move(result));
    for (auto next = pending_.find(next_order_); next != pending_.end();
         next = pending_.find(next_order_)) {
      for (ResultSink* sink : sinks_) sink->consume(next->second);
      out_.push_back(std::move(next->second));
      pending_.erase(next);
      ++next_order_;
    }
  }

 private:
  std::vector<JobResult>& out_;
  const std::vector<ResultSink*>& sinks_;
  std::mutex mutex_;
  std::map<std::size_t, JobResult> pending_;
  std::size_t next_order_ = 0;
};

}  // namespace

std::vector<JobSpec> CampaignRunner::expand(
    const std::vector<workload::PaperScenario>& points,
    std::uint32_t replications) {
  if (replications == 0) {
    throw std::invalid_argument("CampaignRunner::expand: replications == 0");
  }
  std::vector<JobSpec> jobs;
  jobs.reserve(points.size() * replications);
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::uint32_t r = 0; r < replications; ++r) {
      JobSpec spec;
      spec.index = jobs.size();
      spec.point = p;
      spec.replication = r;
      spec.scenario = points[p];
      if (r > 0) spec.scenario.seed = sim::derive_seed(points[p].seed, r);
      jobs.push_back(std::move(spec));
    }
  }
  return jobs;
}

std::vector<JobSpec> CampaignRunner::expand(
    const std::vector<workload::PaperScenario>& points,
    std::uint32_t replications, const ShardSpec& shard) {
  std::vector<JobSpec> all = expand(points, replications);
  if (shard.is_all()) return all;
  std::vector<JobSpec> owned;
  owned.reserve(shard_jobs_owned(all.size(), shard));
  for (JobSpec& spec : all) {
    if (shard.owns(spec.index)) owned.push_back(std::move(spec));
  }
  return owned;
}

std::vector<JobResult> CampaignRunner::run(
    const std::vector<JobSpec>& jobs, const std::vector<ResultSink*>& sinks) {
  std::vector<JobResult> results;
  results.reserve(jobs.size());
  InOrderMerger merger(results, sinks);
  ProgressListener* progress = options_.progress;

  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  {
    ThreadPool pool(options_.threads);
    for (std::size_t order = 0; order < jobs.size(); ++order) {
      const JobSpec& spec = jobs[order];
      futures.push_back(pool.submit([&merger, &spec, order, progress] {
        const auto start = std::chrono::steady_clock::now();
        JobResult job;
        job.spec = spec;
        {
          TEMPRIV_TLM_SPAN("job");
          job.result = workload::run_paper_scenario(spec.scenario);
        }
        job.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        TEMPRIV_TLM_COUNT(kCampaignJobs);
        TEMPRIV_TLM_HIST(kCampaignJobWallUs,
                         static_cast<std::uint64_t>(job.wall_seconds * 1e6));
        if (progress) progress->job_done(job.result.events_executed);
        merger.deposit(order, std::move(job));
      }));
    }
    // Collect completions before the pool goes out of scope; a job that
    // threw (and therefore never deposited) surfaces here. Rethrow the
    // lowest-indexed failure so diagnostics are deterministic too.
    std::exception_ptr first_error;
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  for (ResultSink* sink : sinks) sink->close();
  return results;
}

std::vector<workload::ScenarioResult> point_results(
    const std::vector<JobResult>& jobs) {
  std::vector<workload::ScenarioResult> out;
  for (const JobResult& job : jobs) {
    if (job.spec.replication == 0) {
      if (job.spec.point != out.size()) {
        throw std::logic_error("point_results: jobs not in index order");
      }
      out.push_back(job.result);
    }
  }
  return out;
}

}  // namespace tempriv::campaign
