#pragma once

#include <cstddef>
#include <cstdint>

#include "workload/scenario.h"

namespace tempriv::campaign {

/// One unit of campaign work: a fully-resolved scenario (seed already
/// derived) plus its coordinates in the sweep. `index` is the global job
/// number (point * replications + replication) and is the only ordering the
/// engine ever uses — merge order is fixed by it, never by completion order.
struct JobSpec {
  std::size_t index = 0;        ///< global job index; the merge key
  std::size_t point = 0;        ///< scenario-point index within the sweep
  std::uint32_t replication = 0;
  workload::PaperScenario scenario;
};

/// A finished job. `wall_seconds` is measurement-only (progress/throughput
/// reporting); everything else is a deterministic function of the spec, so
/// two runs of the same campaign agree on all fields except `wall_seconds`
/// regardless of worker count.
struct JobResult {
  JobSpec spec;
  workload::ScenarioResult result;
  double wall_seconds = 0.0;
};

}  // namespace tempriv::campaign
