#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tempriv::campaign {

/// Fixed-size worker pool over a shared FIFO task queue. Simulation jobs are
/// seconds-long and mutually independent, so a single locked queue (rather
/// than per-worker deques with stealing) is contention-free in practice and
/// keeps the completion order trivially irrelevant: determinism is the
/// CampaignRunner's job, the pool only provides throughput.
///
/// Exceptions thrown by a task are captured into its future (via
/// std::packaged_task); they never unwind a worker thread, so one faulty job
/// cannot deadlock or tear down the pool.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 is clamped to hardware_concurrency().
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue — tasks already submitted run to completion — then
  /// joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result or rethrows
  /// its exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Picks the worker count for a `--jobs` style flag: `requested` if
  /// positive, otherwise hardware_concurrency (minimum 1).
  static std::size_t resolve_threads(std::size_t requested) noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace tempriv::campaign
