#include "campaign/jsonio.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace tempriv::campaign {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          default:
            // The campaign never emits \uXXXX (all content is ASCII), so a
            // reader for our own artifacts can reject it outright.
            fail("unsupported string escape");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void conversion_error(const char* want) {
  throw std::runtime_error(std::string("json value is not ") + want);
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("missing json key \"" + key + "\"");
  }
  return *value;
}

double JsonValue::as_double() const {
  if (kind != Kind::kNumber) conversion_error("a number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    conversion_error("a finite double");
  }
  return value;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber || text.empty() || text[0] == '-' ||
      text.find_first_of(".eE") != std::string::npos) {
    conversion_error("an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    conversion_error("an unsigned 64-bit integer");
  }
  return static_cast<std::uint64_t>(value);
}

std::uint32_t JsonValue::as_u32() const {
  const std::uint64_t value = as_u64();
  if (value > 0xffffffffULL) conversion_error("an unsigned 32-bit integer");
  return static_cast<std::uint32_t>(value);
}

std::int64_t JsonValue::as_i64() const {
  if (kind != Kind::kNumber || text.empty() ||
      text.find_first_of(".eE") != std::string::npos) {
    conversion_error("an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    conversion_error("a signed 64-bit integer");
  }
  return static_cast<std::int64_t>(value);
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) conversion_error("a string");
  return text;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) conversion_error("a bool");
  return boolean;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace tempriv::campaign
