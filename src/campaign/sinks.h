#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/job.h"
#include "campaign/shard.h"
#include "metrics/histogram.h"
#include "metrics/stats.h"

namespace tempriv::campaign {

/// Consumer of campaign results. The runner calls consume() strictly in
/// job-index order (0, 1, 2, ...) no matter which worker finished which job
/// when, and close() exactly once after the last job — so a sink can be
/// written as if the campaign were serial. Sinks are driven under the
/// runner's merge lock; they need no synchronization of their own.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void consume(const JobResult& job) = 0;
  virtual void close() {}
};

/// Streams one JSON object per job to `os`. Every emitted field is a
/// deterministic function of the job spec (wall_seconds is deliberately
/// omitted), so the log is byte-identical across worker counts — the
/// determinism test diffs it directly.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}

  void consume(const JobResult& job) override;

 private:
  std::ostream& os_;
};

/// Per-job summary statistics in mergeable form: Welford accumulators plus a
/// fixed-bin latency histogram, combined with StreamingStats::merge /
/// Histogram::merge. Each job produces one of these; the campaign total is
/// the in-order merge of all of them.
struct CampaignStats {
  CampaignStats();

  /// Per-flow mean latencies across all consumed jobs.
  metrics::StreamingStats flow_latency;
  /// Per-flow baseline-adversary MSE across all consumed jobs.
  metrics::StreamingStats flow_mse_baseline;
  /// Preemptions per originated packet, one sample per job.
  metrics::StreamingStats preemptions_per_packet;
  /// Distribution of per-flow mean latencies (bins cover [0, 1000)).
  metrics::Histogram latency_hist;
  /// Distribution of per-job preemption counts (RCAD ejections per run).
  metrics::IntegerHistogram preemption_hist;
  std::uint64_t jobs = 0;
  std::uint64_t sim_events = 0;

  /// Folds one job in (the serial accumulation path).
  void add(const JobResult& job);

  /// Combines another accumulator (the parallel reduction path). Associative
  /// up to floating-point rounding; the runner fixes the fold order by job
  /// index so even the rounding is reproducible.
  void merge(const CampaignStats& other);
};

/// Sink that reduces the whole campaign into a CampaignStats, plus one
/// CampaignStats per scenario point (aggregating that point's replications).
class MergedStatsSink : public ResultSink {
 public:
  /// `points` = number of scenario points in the campaign.
  explicit MergedStatsSink(std::size_t points);

  void consume(const JobResult& job) override;

  const CampaignStats& total() const noexcept { return total_; }
  const CampaignStats& point(std::size_t i) const { return per_point_.at(i); }
  std::size_t point_count() const noexcept { return per_point_.size(); }

 private:
  CampaignStats total_;
  std::vector<CampaignStats> per_point_;
};

/// Formats a double for the JSONL log: shortest round-trippable decimal via
/// max_digits10, locale-independent. Exposed for tests.
std::string json_number(double value);

/// Writes the campaign stats artifact (`<tag>.stats.json`, or the
/// `.shard-i-of-N.stats.json` sibling of a shard JSONL): the manifest, the
/// shard block when `shard` is non-null and not 0/1, the total
/// CampaignStats, and one CampaignStats per scenario point. Every byte is a
/// deterministic function of the consumed jobs and the manifest, so a
/// merged N-shard campaign writes the identical file a serial run writes —
/// the byte-identity contract the determinism suite diffs.
void write_campaign_stats_json(std::ostream& os,
                               const CampaignManifest& manifest,
                               const ShardSpec* shard,
                               const MergedStatsSink& stats);

/// The human summary both tempriv-campaign (after a serial or supervised
/// run) and tempriv-merge (after combining shards) print — shared so the
/// two paths emit identical text for identical campaigns.
void print_campaign_summary(std::ostream& os, const CampaignStats& total,
                            std::size_t points, std::uint32_t reps);

}  // namespace tempriv::campaign
