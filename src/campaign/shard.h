#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/job.h"

namespace tempriv::campaign {

/// Shard `index` of a campaign split `count` ways. Ownership is by global
/// job index modulo `count` (shard i owns jobs i, i+N, i+2N, ...), so the
/// owned set is a pure function of (total_jobs, spec): no shard needs to
/// know what any other shard is doing, and — because every job's seed
/// derives from the job spec alone (sim::derive_seed) — shard membership
/// never changes a single RNG draw. Running shard 0/1 is the whole
/// campaign.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  bool is_all() const noexcept { return count == 1; }
  bool owns(std::size_t job_index) const noexcept {
    return job_index % count == index;
  }
};

/// Parses "i/N" (e.g. "2/8"). Requires N >= 1 and i < N. Throws
/// std::invalid_argument with a human-readable message otherwise.
ShardSpec parse_shard_spec(const std::string& text);

/// Number of jobs shard `spec` owns out of `total_jobs`.
std::size_t shard_jobs_owned(std::size_t total_jobs, const ShardSpec& spec);

/// The identity of a campaign: everything two shard artifacts must agree on
/// before their contents may be combined. `config_hash` fingerprints the
/// full expanded scenario grid (every parameter of every point, plus the
/// replication count), so artifacts from differently-configured runs of the
/// same sweep name can never merge silently.
struct CampaignManifest {
  std::uint32_t schema = 1;
  std::string sweep;            ///< CLI sweep name ("fig2a", "grid", ...)
  std::string tag;              ///< artifact tag ("fig2a_mse", ...)
  std::uint64_t base_seed = 0;  ///< seed of the first scenario point
  std::uint32_t reps = 1;
  std::uint64_t points = 0;
  std::uint64_t total_jobs = 0;  ///< points * reps
  std::uint64_t config_hash = 0;
};

/// FNV-1a-64 over a canonical serialization of (tag, reps, every scenario
/// point). Any change to any parameter of any point changes the hash.
std::uint64_t campaign_config_hash(
    const std::string& tag, std::uint32_t reps,
    const std::vector<workload::PaperScenario>& points);

/// Builds the manifest for a sweep about to run with `reps` replications.
CampaignManifest make_manifest(const std::string& sweep_name,
                               const std::string& tag, std::uint32_t reps,
                               const std::vector<workload::PaperScenario>& points);

/// Self-description at the top of every shard artifact. `jobs_owned` lets a
/// reader detect truncated files without re-deriving the ownership rule.
struct ShardHeader {
  CampaignManifest manifest;
  ShardSpec shard;
  std::uint64_t jobs_owned = 0;
};

/// One-line JSON shard header (the first line of a shard JSONL artifact):
///   {"shard_header":{"schema":1,"sweep":...,"tag":...,"base_seed":...,
///    "reps":...,"points":...,"total_jobs":...,"config_hash":"<16 hex>",
///    "shard_index":i,"shard_count":N,"jobs_owned":M}}
std::string shard_header_json(const ShardHeader& header);

/// Parses a shard-header line. Throws std::runtime_error (with `label` in
/// the message) if the line is not a well-formed shard header.
ShardHeader parse_shard_header(const std::string& line,
                               const std::string& label);

/// Artifact stem for shard files: "<tag>.shard-<i>-of-<N>" (the shard JSONL
/// is "<stem>.jsonl", its stats sibling "<stem>.stats.json").
std::string shard_artifact_stem(const std::string& tag, const ShardSpec& spec);

/// 16-lower-hex rendering of the config hash as it appears in headers.
std::string config_hash_hex(std::uint64_t hash);

}  // namespace tempriv::campaign
