#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "metrics/table.h"
#include "workload/scenario.h"

namespace tempriv::campaign {

/// A named parameter sweep: the scenario grid plus the recipe that folds the
/// per-point results back into the figure's table. The `table` builder
/// receives the replication-0 results in point order, so a campaign sweep
/// emits exactly the CSV its serial bench/ counterpart does.
struct Sweep {
  std::string name;  ///< CLI name ("fig2a", "buffer", "grid")
  std::string tag;   ///< CSV tag, matching the serial bench ("fig2a_mse")
  std::vector<workload::PaperScenario> points;
  std::function<metrics::Table(const std::vector<workload::ScenarioResult>&)>
      table;
};

/// Figure 2(a): baseline-adversary MSE vs 1/λ for the three §5.3 schemes.
Sweep fig2a_sweep();
/// Figure 2(b): S1 delivery latency vs 1/λ for the three schemes.
Sweep fig2b_sweep();
/// Figure 3: baseline vs adaptive adversary under RCAD.
Sweep fig3_sweep();
/// Ablation B: the privacy/latency trade-off vs buffer size k at 1/λ = 2.
Sweep buffer_size_sweep();

/// Ad-hoc cross-product grid for the CLI: every combination of the listed
/// interarrivals × buffer sizes × schemes on top of `base`, one table row
/// per point.
struct GridSpec {
  std::vector<double> interarrivals = {2.0};
  std::vector<std::size_t> buffer_slots = {10};
  std::vector<workload::Scheme> schemes = {workload::Scheme::kRcad};
  workload::PaperScenario base;  ///< remaining parameters (seed, packets, µ…)
};
Sweep grid_sweep(const GridSpec& spec);

/// CLI names accepted by make_named_sweep, in display order.
const std::vector<std::string>& named_sweeps();

/// Resolves a CLI name ("fig2a", "fig2b", "fig3", "buffer"; CSV tags are
/// accepted as aliases). Throws std::invalid_argument on unknown names.
Sweep make_named_sweep(const std::string& name);

/// Expands the sweep into jobs, runs them on the campaign engine, and builds
/// the figure table from the replication-0 results. Extra sinks (JSONL,
/// merged stats, …) ride along in deterministic order.
struct SweepRun {
  metrics::Table table;
  std::vector<JobResult> jobs;
};
SweepRun run_sweep(const Sweep& sweep, const RunnerOptions& options,
                   std::uint32_t replications = 1,
                   const std::vector<ResultSink*>& sinks = {});

/// Runs only the jobs `shard` owns and writes the two self-describing shard
/// artifacts: the shard JSONL (header line + the owned jobs' JSONL records,
/// in ascending global job index) to `jsonl_os` and the shard stats JSON to
/// `stats_os`. Because ownership is index-modulo and seeds derive per job,
/// the records a shard emits are byte-for-byte the lines the serial run
/// would have emitted for those jobs — tempriv-merge only interleaves and
/// validates, it never recomputes. No figure table is built (a partial
/// shard cannot see every point); that happens at merge time.
void run_sweep_shard(const Sweep& sweep, const RunnerOptions& options,
                     std::uint32_t replications, const ShardSpec& shard,
                     std::ostream& jsonl_os, std::ostream& stats_os);

/// Rebuilds a Sweep good enough to re-render the figure table from parsed
/// shard artifacts: named sweeps resolve through make_named_sweep (their
/// table recipes are code, not data); "grid" rebuilds the generic grid
/// table over the scenario points recovered from the JSONL records.
/// `points` must match the sweep's point count.
Sweep sweep_for_merge(const std::string& name,
                      const std::vector<workload::PaperScenario>& points);

}  // namespace tempriv::campaign
