#include "net/routing.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace tempriv::net {

RoutingTable::RoutingTable(const Topology& topo) {
  if (topo.sink() == kInvalidNode) {
    throw std::invalid_argument("RoutingTable: topology has no sink");
  }
  const std::size_t n = topo.node_count();
  next_hop_.assign(n, kInvalidNode);
  hops_.assign(n, 0);
  reachable_.assign(n, false);

  std::deque<NodeId> frontier;
  reachable_[topo.sink()] = true;
  frontier.push_back(topo.sink());
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop_front();
    // Deterministic parent choice: visit neighbors in ascending id order.
    std::vector<NodeId> nbrs = topo.neighbors(current);
    std::sort(nbrs.begin(), nbrs.end());
    for (NodeId nbr : nbrs) {
      if (reachable_[nbr]) continue;
      reachable_[nbr] = true;
      next_hop_[nbr] = current;
      hops_[nbr] = static_cast<std::uint16_t>(hops_[current] + 1);
      frontier.push_back(nbr);
    }
  }
}

NodeId RoutingTable::next_hop(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("RoutingTable::next_hop: bad id");
  return next_hop_[id];
}

std::uint16_t RoutingTable::hops_to_sink(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("RoutingTable::hops_to_sink: bad id");
  if (!reachable_[id]) {
    throw std::out_of_range("RoutingTable::hops_to_sink: node has no route");
  }
  return hops_[id];
}

bool RoutingTable::reachable(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("RoutingTable::reachable: bad id");
  return reachable_[id];
}

bool RoutingTable::fully_connected() const noexcept {
  return std::all_of(reachable_.begin(), reachable_.end(),
                     [](bool r) { return r; });
}

std::vector<NodeId> RoutingTable::path_to_sink(NodeId id) const {
  if (!reachable(id)) {
    throw std::out_of_range("RoutingTable::path_to_sink: node has no route");
  }
  std::vector<NodeId> path{id};
  while (next_hop_[path.back()] != kInvalidNode) {
    path.push_back(next_hop_[path.back()]);
  }
  return path;
}

}  // namespace tempriv::net
