#include "net/routing.h"

#include <stdexcept>

namespace tempriv::net {

RoutingTable::RoutingTable(const Topology& topo) {
  if (topo.sink() == kInvalidNode) {
    throw std::invalid_argument("RoutingTable: topology has no sink");
  }
  const std::size_t n = topo.node_count();
  next_hop_.assign(n, kInvalidNode);
  hops_.assign(n, 0);
  sink_of_.assign(n, kInvalidNode);

  // Flat FIFO frontier (head index instead of pop_front): every node enters
  // at most once, so reserving n up front removes all steady-state growth.
  std::vector<NodeId> frontier;
  frontier.reserve(n);
  for (NodeId sink : topo.sinks()) {
    if (sink_of_[sink] != kInvalidNode) continue;
    sink_of_[sink] = sink;
    frontier.push_back(sink);
  }
  // Topology::neighbors is CSR-backed and sorted ascending, which is exactly
  // the deterministic visit order the historical sort-per-visit BFS used.
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId current = frontier[head];
    for (NodeId nbr : topo.neighbors(current)) {
      if (sink_of_[nbr] != kInvalidNode) continue;
      sink_of_[nbr] = sink_of_[current];
      next_hop_[nbr] = current;
      hops_[nbr] = static_cast<std::uint16_t>(hops_[current] + 1);
      frontier.push_back(nbr);
    }
  }
  unreachable_ = n - frontier.size();
}

NodeId RoutingTable::next_hop(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("RoutingTable::next_hop: bad id");
  return next_hop_[id];
}

std::uint16_t RoutingTable::hops_to_sink(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("RoutingTable::hops_to_sink: bad id");
  if (sink_of_[id] == kInvalidNode) {
    throw std::out_of_range("RoutingTable::hops_to_sink: node has no route");
  }
  return hops_[id];
}

NodeId RoutingTable::sink_of(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("RoutingTable::sink_of: bad id");
  return sink_of_[id];
}

bool RoutingTable::reachable(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("RoutingTable::reachable: bad id");
  return sink_of_[id] != kInvalidNode;
}

std::vector<NodeId> RoutingTable::path_to_sink(NodeId id) const {
  if (!reachable(id)) {
    throw std::out_of_range("RoutingTable::path_to_sink: node has no route");
  }
  std::vector<NodeId> path{id};
  while (next_hop_[path.back()] != kInvalidNode) {
    path.push_back(next_hop_[path.back()]);
  }
  return path;
}

std::size_t RoutingTable::memory_bytes() const noexcept {
  return next_hop_.capacity() * sizeof(NodeId) +
         hops_.capacity() * sizeof(std::uint16_t) +
         sink_of_.capacity() * sizeof(NodeId);
}

}  // namespace tempriv::net
