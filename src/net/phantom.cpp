#include "net/phantom.h"

#include <span>
#include <stdexcept>

namespace tempriv::net {

HopSelector phantom_routing_selector(const Topology& topology,
                                     const RoutingTable& routing,
                                     std::uint16_t walk_hops) {
  if (!routing.fully_connected()) {
    throw std::invalid_argument(
        "phantom_routing_selector: topology must be fully connected");
  }
  return [&topology, &routing, walk_hops](NodeId current, const Packet& packet,
                                          sim::RandomStream& rng) -> NodeId {
    // header.hop_count is the number of transmissions already completed
    // (the header is updated after selection), so the first `walk_hops`
    // transmissions random-walk and the rest follow the tree.
    if (packet.header.hop_count >= walk_hops) {
      return routing.next_hop(current);
    }
    const std::span<const NodeId> neighbors = topology.neighbors(current);
    // Avoid bouncing straight back when there is any alternative.
    const NodeId came_from = packet.header.prev_hop;
    if (neighbors.size() > 1) {
      NodeId pick;
      do {
        pick = neighbors[static_cast<std::size_t>(
            rng.uniform_index(neighbors.size()))];
      } while (pick == came_from && came_from != current);
      return pick;
    }
    return neighbors.front();
  };
}

}  // namespace tempriv::net
