#pragma once

#include <cstdint>

#include "net/network.h"

namespace tempriv::net {

/// Phantom routing — the source-location privacy scheme of the paper's own
/// prior work (Kamat/Zhang/Trappe/Ozturk, ICDCS'05 [11] and SASN'04 [14]),
/// rebuilt as a HopSelector so temporal and spatial privacy mechanisms can
/// be composed and compared.
///
/// Each packet first performs a `walk_hops`-hop random walk (uniform
/// neighbor, avoiding immediate backtracking where the degree allows) and
/// then follows the shortest-path routing tree to the sink.
///
/// Temporal-privacy caveat, measured in bench/phantom_routing: against a
/// header-reading adversary the walk alone adds NO temporal privacy — the
/// cleartext hop count still reveals the exact journey length, so with
/// constant per-hop delay the creation time remains perfectly invertible.
/// Its value is spatial (decorrelating the first-heard location from the
/// source) and, when composed with RCAD, additive path-length variance.
///
/// Requires a topology in which every node can reach the sink (the walk
/// may visit any node).
HopSelector phantom_routing_selector(const Topology& topology,
                                     const RoutingTable& routing,
                                     std::uint16_t walk_hops);

}  // namespace tempriv::net
