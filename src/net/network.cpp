#include "net/network.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tempriv::net {

/// Per-node adapter that gives the node's ForwardingDiscipline access to the
/// simulator, a private RNG stream, and the link layer.
class Network::NodeShell final : public NodeContext {
 public:
  NodeShell(Network& net, NodeId id, std::uint16_t hops,
            std::unique_ptr<ForwardingDiscipline> discipline,
            sim::RandomStream rng)
      : net_(net),
        id_(id),
        hops_(hops),
        discipline_(std::move(discipline)),
        rng_(rng) {}

  sim::Simulator& simulator() noexcept override { return net_.simulator_; }
  sim::RandomStream& rng() noexcept override { return rng_; }
  NodeId id() const noexcept override { return id_; }
  std::uint16_t hops_to_sink() const noexcept override { return hops_; }

  void transmit(Packet&& packet) override {
    // Pick the next hop while the header still shows where the packet came
    // from (selectors use prev_hop to avoid immediate backtracking), then
    // update the cleartext header the way MultiHop does on each forward.
    const NodeId next = net_.pick_next_hop(id_, packet, rng_);
    packet.header.prev_hop = id_;
    packet.header.hop_count =
        static_cast<std::uint16_t>(packet.header.hop_count + 1);
    packet.header.routing_seq = routing_seq_++;
    if (!net_.transmit_probes_.empty()) [[unlikely]] {
      net_.dispatch_transmit_probes(id_, next, packet);
    }
    double link_delay = net_.config_.hop_tx_delay;
    if (net_.config_.hop_jitter > 0.0) {
      link_delay += rng_.uniform(0.0, net_.config_.hop_jitter);
    }
    // Park the packet in the pool so the link-delay closure carries only a
    // 16-byte {network, handle} pair — inside the event kernel's inline
    // budget, so a warm forward never touches the heap. With the paper's
    // constant per-hop latency (jitter 0) the arrival times of successive
    // transmits never decrease, so the arrival events ride the event
    // queue's O(1) FIFO lane instead of its heap; with jitter the call
    // degrades gracefully (out-of-order times divert to the heap inside).
    const PacketPool::Handle handle = net_.pool_.put(std::move(packet));
    net_.simulator_.schedule_after_monotone(
        link_delay, [&net = net_, next, handle] {
          net.arrive_from_link(next, handle);
        });
    net_.probe(id_);
  }

  void handle(Packet&& packet) {
    discipline_->on_packet(std::move(packet), *this);
    net_.probe(id_);
  }

  const ForwardingDiscipline& discipline() const noexcept { return *discipline_; }

 private:
  Network& net_;
  NodeId id_;
  std::uint16_t hops_;
  std::unique_ptr<ForwardingDiscipline> discipline_;
  sim::RandomStream rng_;
  std::uint16_t routing_seq_ = 0;
};

Network::Network(sim::Simulator& simulator, Topology topology,
                 const DisciplineFactory& factory, NetworkConfig config,
                 const sim::RandomStream& root_rng)
    : simulator_(simulator),
      topology_(std::move(topology)),
      routing_(topology_),
      config_(config) {
  if (config_.hop_tx_delay <= 0.0) {
    throw std::invalid_argument("Network: hop_tx_delay must be positive");
  }
  if (config_.hop_jitter < 0.0) {
    throw std::invalid_argument("Network: hop_jitter must be >= 0");
  }
  nodes_.resize(topology_.node_count());
  for (NodeId id = 0; id < topology_.node_count(); ++id) {
    if (id == topology_.sink() || !routing_.reachable(id)) continue;
    nodes_[id] = std::make_unique<NodeShell>(
        *this, id, routing_.hops_to_sink(id), factory(id, routing_.hops_to_sink(id)),
        root_rng.split(id));
  }
}

Network::~Network() = default;

std::uint64_t Network::originate(NodeId origin, crypto::SealedPayload payload) {
  if (origin >= topology_.node_count() || origin == topology_.sink() ||
      !nodes_[origin]) {
    throw std::invalid_argument("Network::originate: bad origin node");
  }
  Packet packet;
  packet.header.origin = origin;
  packet.header.prev_hop = origin;
  packet.header.hop_count = 0;
  packet.payload = std::move(payload);
  const std::uint64_t uid = next_uid_++;
  packet.uid = uid;
  // The source's own discipline runs first: the source may buffer the packet
  // before its first transmission (the paper's Y0 term, §3.3).
  nodes_[origin]->handle(std::move(packet));
  // Counted only after the discipline accepted the packet, so a handler that
  // throws does not inflate the originated tally.
  ++originated_;
  return uid;
}

std::uint64_t Network::originate_batch(
    NodeId origin, const crypto::PayloadCodec& codec,
    std::span<const crypto::SensorPayload> payloads) {
  if (origin >= topology_.node_count() || origin == topology_.sink() ||
      !nodes_[origin]) {
    throw std::invalid_argument("Network::originate_batch: bad origin node");
  }
  const std::uint64_t first_uid = next_uid_;
  // Seal lane-group by lane-group into stack scratch: one key-schedule pass
  // per group, no heap, and a burst of any size stays a flat loop.
  constexpr std::size_t kGroup = crypto::PayloadCodec::kBatchLanes;
  crypto::SealedPayload sealed[kGroup];
  for (std::size_t i = 0; i < payloads.size(); i += kGroup) {
    const std::size_t n = std::min(kGroup, payloads.size() - i);
    codec.seal_batch(payloads.subspan(i, n), origin, {sealed, n});
    for (std::size_t j = 0; j < n; ++j) {
      Packet packet;
      packet.header.origin = origin;
      packet.header.prev_hop = origin;
      packet.header.hop_count = 0;
      packet.payload = sealed[j];
      packet.uid = next_uid_++;
      nodes_[origin]->handle(std::move(packet));
      ++originated_;
    }
  }
  return first_uid;
}

void Network::add_sink_observer(SinkObserver* observer) {
  if (observer == nullptr) {
    throw std::invalid_argument("Network::add_sink_observer: null observer");
  }
  observers_.push_back(observer);
}

void Network::set_occupancy_probe(OccupancyProbe probe) {
  occupancy_probe_ = std::move(probe);
}

void Network::add_transmit_probe(TransmitProbe probe) {
  transmit_probes_.push_back(std::move(probe));
}

void Network::set_hop_selector(HopSelector selector) {
  hop_selector_ = std::move(selector);
}

void Network::reserve(std::size_t in_flight) { pool_.reserve(in_flight); }

NodeId Network::pick_next_hop(NodeId current, const Packet& packet,
                              sim::RandomStream& rng) {
  if (!hop_selector_) return routing_.next_hop(current);
  const NodeId next = hop_selector_(current, packet, rng);
  if (!topology_.has_edge(current, next)) {
    throw std::logic_error("Network: hop selector returned a non-neighbor");
  }
  return next;
}

void Network::dispatch_transmit_probes(NodeId from, NodeId to,
                                       const Packet& packet) {
  const sim::Time now = simulator_.now();
  for (TransmitProbe& probe : transmit_probes_) {
    probe(from, to, packet, now);
  }
}

const ForwardingDiscipline& Network::discipline(NodeId id) const {
  if (id >= nodes_.size() || !nodes_[id]) {
    throw std::out_of_range("Network::discipline: node has no discipline");
  }
  return nodes_[id]->discipline();
}

void Network::arrive(NodeId node, Packet&& packet) {
  if (node == topology_.sink()) {
    deliver(packet);
    return;
  }
  if (!nodes_[node]) {
    throw std::logic_error(
        "Network: packet routed to a node with no route to the sink");
  }
  nodes_[node]->handle(std::move(packet));
}

void Network::arrive_from_link(NodeId node, PacketPool::Handle handle) {
  arrive(node, pool_.take(handle));
}

void Network::deliver(const Packet& packet) {
  ++delivered_;
  for (SinkObserver* observer : observers_) {
    observer->on_delivery(packet, simulator_.now());
  }
}

void Network::probe(NodeId node) {
  if (occupancy_probe_) {
    occupancy_probe_(node, simulator_.now(), nodes_[node]->discipline().buffered());
  }
}

std::uint64_t Network::total_preemptions() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node) total += node->discipline().preemptions();
  }
  return total;
}

std::uint64_t Network::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node) total += node->discipline().drops();
  }
  return total;
}

std::size_t Network::total_buffered() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) {
    if (node) total += node->discipline().buffered();
  }
  return total;
}

}  // namespace tempriv::net
