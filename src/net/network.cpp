#include "net/network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/disciplines.h"
#include "telemetry/probes.h"

namespace tempriv::net {

namespace {
constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();
}  // namespace

Network::Network(sim::Simulator& simulator, Topology topology,
                 const DisciplineFactory& factory, NetworkConfig config,
                 const sim::RandomStream& root_rng)
    : simulator_(simulator),
      topology_(std::move(topology)),
      routing_(topology_),
      config_(config) {
  validate_config();
  init_node_arrays(root_rng);
  adopt_factory(factory);
}

Network::Network(sim::Simulator& simulator, Topology topology,
                 const core::DisciplineSpec& spec, NetworkConfig config,
                 const sim::RandomStream& root_rng)
    : simulator_(simulator),
      topology_(std::move(topology)),
      routing_(topology_),
      config_(config) {
  validate_config();
  init_node_arrays(root_rng);
  adopt_spec(spec);
}

Network::~Network() = default;

void Network::validate_config() const {
  if (config_.hop_tx_delay <= 0.0) {
    throw std::invalid_argument("Network: hop_tx_delay must be positive");
  }
  if (config_.hop_jitter < 0.0) {
    throw std::invalid_argument("Network: hop_jitter must be >= 0");
  }
}

void Network::init_node_arrays(const sim::RandomStream& root_rng) {
  const std::size_t n = topology_.node_count();
  role_.assign(n, NodeRole::kUnroutable);
  disc_slot_.assign(n, 0);
  routing_seq_.assign(n, 0);
  // Every node gets its private stream, split(id) from the root exactly as
  // the per-object shells did (split is a pure function of root + id, so
  // draw sequences are unchanged; sink/unroutable streams are simply idle).
  rng_.reserve(n);
  for (NodeId id = 0; id < n; ++id) rng_.push_back(root_rng.split(id));
  ctx_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    const std::uint16_t hops =
        routing_.reachable(id) ? routing_.hops_to_sink(id) : 0;
    ctx_.emplace_back(this, id, hops);
  }
  for (NodeId sink : topology_.sinks()) role_[sink] = NodeRole::kSink;
}

core::DelayBuffer& Network::add_buffer_slot(NodeId id, NodeRole role,
                                            core::DelayBuffer buffer,
                                            std::size_t capacity) {
  role_[id] = role;
  disc_slot_[id] = static_cast<std::uint32_t>(buffers_.size());
  buffers_.push_back(std::move(buffer));
  capacity_.push_back(capacity);
  drops_.push_back(0);
  preemptions_.push_back(0);
  return buffers_.back();
}

void Network::adopt_factory(const DisciplineFactory& factory) {
  const std::size_t n = topology_.node_count();
  for (NodeId id = 0; id < n; ++id) {
    if (role_[id] == NodeRole::kSink || !routing_.reachable(id)) continue;
    std::unique_ptr<ForwardingDiscipline> built =
        factory(id, routing_.hops_to_sink(id));
    if (!built) {
      throw std::invalid_argument("Network: factory returned a null discipline");
    }
    // Built-ins are unwrapped into the flat arrays: their (still empty)
    // DelayBuffer moves in, the wrapper object is discarded. kind() is the
    // contract — only the src/core built-ins return a non-kCustom kind.
    switch (built->kind()) {
      case DisciplineKind::kImmediate:
        role_[id] = NodeRole::kImmediate;
        break;
      case DisciplineKind::kUnlimitedDelay:
        add_buffer_slot(id, NodeRole::kUnlimited,
                        static_cast<core::UnlimitedDelaying&>(*built).take_buffer(),
                        kUnbounded);
        break;
      case DisciplineKind::kDropTail: {
        auto& droptail = static_cast<core::DropTailDelaying&>(*built);
        add_buffer_slot(id, NodeRole::kDropTail, droptail.take_buffer(),
                        droptail.capacity());
        break;
      }
      case DisciplineKind::kRcad: {
        auto& rcad = static_cast<core::RcadDiscipline&>(*built);
        add_buffer_slot(id, NodeRole::kRcad, rcad.take_buffer(),
                        rcad.capacity());
        break;
      }
      case DisciplineKind::kCustom:
        role_[id] = NodeRole::kCustom;
        disc_slot_[id] = static_cast<std::uint32_t>(custom_.size());
        custom_.push_back(std::move(built));
        break;
    }
  }
}

void Network::adopt_spec(const core::DisciplineSpec& spec) {
  if (spec.kind == DisciplineKind::kCustom) {
    throw std::invalid_argument(
        "Network: a DisciplineSpec cannot be kCustom — use a factory");
  }
  const bool buffered = spec.kind != DisciplineKind::kImmediate;
  if (buffered && !spec.delay) {
    throw std::invalid_argument(
        "Network: DisciplineSpec needs a delay distribution");
  }
  if ((spec.kind == DisciplineKind::kDropTail ||
       spec.kind == DisciplineKind::kRcad) &&
      spec.capacity == 0) {
    throw std::invalid_argument("Network: DisciplineSpec capacity must be >= 1");
  }
  const std::size_t n = topology_.node_count();
  if (buffered) {
    std::size_t forwarding = 0;
    for (NodeId id = 0; id < n; ++id) {
      if (role_[id] != NodeRole::kSink && routing_.reachable(id)) ++forwarding;
    }
    buffers_.reserve(forwarding);
    capacity_.reserve(forwarding);
    drops_.reserve(forwarding);
    preemptions_.reserve(forwarding);
  }
  for (NodeId id = 0; id < n; ++id) {
    if (role_[id] == NodeRole::kSink || !routing_.reachable(id)) continue;
    switch (spec.kind) {
      case DisciplineKind::kImmediate:
        role_[id] = NodeRole::kImmediate;
        break;
      case DisciplineKind::kUnlimitedDelay:
        add_buffer_slot(id, NodeRole::kUnlimited,
                        core::DelayBuffer(spec.delay), kUnbounded);
        break;
      case DisciplineKind::kDropTail:
        add_buffer_slot(id, NodeRole::kDropTail,
                        core::DelayBuffer(spec.delay), spec.capacity)
            .reserve(spec.capacity);
        break;
      case DisciplineKind::kRcad:
        add_buffer_slot(id, NodeRole::kRcad,
                        core::DelayBuffer(spec.delay, spec.victim),
                        spec.capacity)
            .reserve(spec.capacity);
        break;
      case DisciplineKind::kCustom:
        break;  // rejected above
    }
  }
}

void Network::handle(NodeId node, Packet&& packet) {
  switch (role_[node]) {
    case NodeRole::kImmediate:
      TEMPRIV_TLM_COUNT(kNetForwardImmediate);
      transmit_from(node, std::move(packet));
      break;
    case NodeRole::kUnlimited:
      TEMPRIV_TLM_COUNT(kNetForwardUnlimited);
      buffers_[disc_slot_[node]].admit(std::move(packet), ctx_[node]);
      break;
    case NodeRole::kDropTail: {
      TEMPRIV_TLM_COUNT(kNetForwardDropTail);
      const std::uint32_t slot = disc_slot_[node];
      core::DelayBuffer& buffer = buffers_[slot];
      if (buffer.size() >= capacity_[slot]) {
        ++drops_[slot];  // packet destroyed; the Erlang-loss event of Eq. (5)
        TEMPRIV_TLM_COUNT(kNetDropTailDropped);
      } else {
        buffer.admit(std::move(packet), ctx_[node]);
      }
      break;
    }
    case NodeRole::kRcad: {
      TEMPRIV_TLM_COUNT(kNetForwardRcad);
      const std::uint32_t slot = disc_slot_[node];
      core::DelayBuffer& buffer = buffers_[slot];
      if (buffer.size() >= capacity_[slot]) {
        Packet early = buffer.preempt(ctx_[node]);
        ++preemptions_[slot];
        transmit_from(node, std::move(early));
      }
      buffer.admit(std::move(packet), ctx_[node]);
      break;
    }
    case NodeRole::kCustom:
      TEMPRIV_TLM_COUNT(kNetForwardCustom);
      custom_[disc_slot_[node]]->on_packet(std::move(packet), ctx_[node]);
      break;
    case NodeRole::kSink:
    case NodeRole::kUnroutable:
      throw std::logic_error("Network: handle() on a node with no discipline");
  }
  probe(node);
}

void Network::transmit_from(NodeId node, Packet&& packet) {
  // Pick the next hop while the header still shows where the packet came
  // from (selectors use prev_hop to avoid immediate backtracking), then
  // update the cleartext header the way MultiHop does on each forward.
  sim::RandomStream& rng = rng_[node];
  const NodeId next = pick_next_hop(node, packet, rng);
  packet.header.prev_hop = node;
  packet.header.hop_count =
      static_cast<std::uint16_t>(packet.header.hop_count + 1);
  packet.header.routing_seq = routing_seq_[node]++;
  if (!transmit_probes_.empty()) [[unlikely]] {
    dispatch_transmit_probes(node, next, packet);
  }
  double link_delay = config_.hop_tx_delay;
  if (config_.hop_jitter > 0.0) {
    link_delay += rng.uniform(0.0, config_.hop_jitter);
  }
  // Park the packet in the pool so the link-delay closure carries only a
  // 16-byte {network, handle} pair — inside the event kernel's inline
  // budget, so a warm forward never touches the heap. With the paper's
  // constant per-hop latency (jitter 0) the arrival times of successive
  // transmits never decrease, so the arrival events ride the event
  // queue's O(1) FIFO lane instead of its heap; with jitter the call
  // degrades gracefully (out-of-order times divert to the heap inside).
  const PacketPool::Handle handle = pool_.put(std::move(packet));
  simulator_.schedule_after_monotone(link_delay, [this, next, handle] {
    arrive_from_link(next, handle);
  });
  probe(node);
}

std::uint64_t Network::originate(NodeId origin, crypto::SealedPayload payload) {
  if (origin >= role_.size() || role_[origin] == NodeRole::kSink ||
      role_[origin] == NodeRole::kUnroutable) {
    throw std::invalid_argument("Network::originate: bad origin node");
  }
  Packet packet;
  packet.header.origin = origin;
  packet.header.prev_hop = origin;
  packet.header.hop_count = 0;
  packet.payload = std::move(payload);
  const std::uint64_t uid = next_uid_++;
  packet.uid = uid;
  // The source's own discipline runs first: the source may buffer the packet
  // before its first transmission (the paper's Y0 term, §3.3).
  handle(origin, std::move(packet));
  // Counted only after the discipline accepted the packet, so a handler that
  // throws does not inflate the originated tally.
  ++originated_;
  return uid;
}

std::uint64_t Network::originate_batch(
    NodeId origin, const crypto::PayloadCodec& codec,
    std::span<const crypto::SensorPayload> payloads) {
  if (origin >= role_.size() || role_[origin] == NodeRole::kSink ||
      role_[origin] == NodeRole::kUnroutable) {
    throw std::invalid_argument("Network::originate_batch: bad origin node");
  }
  const std::uint64_t first_uid = next_uid_;
  // Seal lane-group by lane-group into stack scratch: one key-schedule pass
  // per group, no heap, and a burst of any size stays a flat loop.
  constexpr std::size_t kGroup = crypto::PayloadCodec::kBatchLanes;
  crypto::SealedPayload sealed[kGroup];
  for (std::size_t i = 0; i < payloads.size(); i += kGroup) {
    const std::size_t n = std::min(kGroup, payloads.size() - i);
    TEMPRIV_TLM_HIST(kNetBatchLaneFill, n);
    codec.seal_batch(payloads.subspan(i, n), origin, {sealed, n});
    for (std::size_t j = 0; j < n; ++j) {
      Packet packet;
      packet.header.origin = origin;
      packet.header.prev_hop = origin;
      packet.header.hop_count = 0;
      packet.payload = sealed[j];
      packet.uid = next_uid_++;
      handle(origin, std::move(packet));
      ++originated_;
    }
  }
  return first_uid;
}

void Network::add_sink_observer(SinkObserver* observer) {
  if (observer == nullptr) {
    throw std::invalid_argument("Network::add_sink_observer: null observer");
  }
  observers_.push_back(observer);
}

void Network::set_occupancy_probe(OccupancyProbe probe) {
  occupancy_probe_ = std::move(probe);
}

void Network::add_transmit_probe(TransmitProbe probe) {
  transmit_probes_.push_back(std::move(probe));
}

void Network::set_hop_selector(HopSelector selector) {
  hop_selector_ = std::move(selector);
}

void Network::reserve(std::size_t in_flight) { pool_.reserve(in_flight); }

NodeId Network::pick_next_hop(NodeId current, const Packet& packet,
                              sim::RandomStream& rng) {
  if (!hop_selector_) return routing_.next_hop(current);
  const NodeId next = hop_selector_(current, packet, rng);
  if (!topology_.has_edge(current, next)) {
    throw std::logic_error("Network: hop selector returned a non-neighbor");
  }
  return next;
}

void Network::dispatch_transmit_probes(NodeId from, NodeId to,
                                       const Packet& packet) {
  const sim::Time now = simulator_.now();
  for (TransmitProbe& probe : transmit_probes_) {
    probe(from, to, packet, now);
  }
}

void Network::require_discipline(NodeId id) const {
  if (id >= role_.size() || role_[id] == NodeRole::kSink ||
      role_[id] == NodeRole::kUnroutable) {
    throw std::out_of_range("Network: node has no discipline");
  }
}

std::size_t Network::buffered_of(NodeId node) const {
  switch (role_[node]) {
    case NodeRole::kUnlimited:
    case NodeRole::kDropTail:
    case NodeRole::kRcad:
      return buffers_[disc_slot_[node]].size();
    case NodeRole::kCustom:
      return custom_[disc_slot_[node]]->buffered();
    default:
      return 0;
  }
}

std::size_t Network::node_buffered(NodeId id) const {
  require_discipline(id);
  return buffered_of(id);
}

std::uint64_t Network::node_preemptions(NodeId id) const {
  require_discipline(id);
  if (role_[id] == NodeRole::kRcad) return preemptions_[disc_slot_[id]];
  if (role_[id] == NodeRole::kCustom) {
    return custom_[disc_slot_[id]]->preemptions();
  }
  return 0;
}

std::uint64_t Network::node_drops(NodeId id) const {
  require_discipline(id);
  if (role_[id] == NodeRole::kDropTail) return drops_[disc_slot_[id]];
  if (role_[id] == NodeRole::kCustom) return custom_[disc_slot_[id]]->drops();
  return 0;
}

void Network::arrive(NodeId node, Packet&& packet) {
  if (role_[node] == NodeRole::kSink) {
    deliver(packet);
    return;
  }
  if (role_[node] == NodeRole::kUnroutable) {
    throw std::logic_error(
        "Network: packet routed to a node with no route to the sink");
  }
  handle(node, std::move(packet));
}

void Network::arrive_from_link(NodeId node, PacketPool::Handle handle) {
  arrive(node, pool_.take(handle));
}

void Network::deliver(const Packet& packet) {
  ++delivered_;
  for (SinkObserver* observer : observers_) {
    observer->on_delivery(packet, simulator_.now());
  }
}

void Network::probe(NodeId node) {
  if (occupancy_probe_) {
    occupancy_probe_(node, simulator_.now(), buffered_of(node));
  }
}

std::uint64_t Network::total_preemptions() const {
  std::uint64_t total = 0;
  for (std::uint64_t p : preemptions_) total += p;
  for (const auto& d : custom_) total += d->preemptions();
  return total;
}

std::uint64_t Network::total_drops() const {
  std::uint64_t total = 0;
  for (std::uint64_t d : drops_) total += d;
  for (const auto& d : custom_) total += d->drops();
  return total;
}

std::size_t Network::total_buffered() const {
  std::size_t total = 0;
  for (const core::DelayBuffer& buffer : buffers_) total += buffer.size();
  for (const auto& d : custom_) total += d->buffered();
  return total;
}

std::size_t Network::memory_bytes() const noexcept {
  std::size_t bytes = role_.capacity() * sizeof(NodeRole) +
                      disc_slot_.capacity() * sizeof(std::uint32_t) +
                      routing_seq_.capacity() * sizeof(std::uint16_t) +
                      rng_.capacity() * sizeof(sim::RandomStream) +
                      ctx_.capacity() * sizeof(NodeCtx) +
                      buffers_.capacity() * sizeof(core::DelayBuffer) +
                      capacity_.capacity() * sizeof(std::size_t) +
                      drops_.capacity() * sizeof(std::uint64_t) +
                      preemptions_.capacity() * sizeof(std::uint64_t) +
                      custom_.capacity() * sizeof(custom_[0]);
  for (const core::DelayBuffer& buffer : buffers_) {
    bytes += buffer.memory_bytes();
  }
  return bytes;
}

}  // namespace tempriv::net
