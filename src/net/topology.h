#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/random.h"

namespace tempriv::net {

class Topology;

/// A built multi-branch topology plus the source node id of each branch
/// (see Topology::converging_paths / Topology::paper_figure1).
struct ConvergingPaths;

/// 2-D position of a node (used by geometric topologies and the
/// mobile-asset workload; the paper's adversary knows all positions).
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// An undirected connectivity graph of sensor nodes plus one or more
/// designated sinks. Construction helpers cover the topologies used across
/// the evaluation: lines (the paper's §3.3 path model), grids (habitat
/// monitoring), random-geometric graphs (generic deployments, single- and
/// multi-sink) and the paper's Figure-1 topology of four source paths
/// converging on a common sink.
///
/// Storage is builder + CSR: add_edge appends to a flat edge list in O(1)
/// (duplicates and ordering are tolerated), and the first adjacency query
/// compacts everything into a CSR index — an (n+1)-entry offset array over
/// one packed, per-row-sorted, deduplicated neighbor array. Queries after a
/// mutation rebuild the index lazily; a fully built 10⁶-node geometric graph
/// costs two flat arrays, not a million heap-allocated vectors. The CSR
/// cache is mutable state: finish mutating (or issue one query) before
/// sharing a const Topology across threads.
class Topology {
 public:
  /// Adds a node at `pos`; returns its id (dense, starting at 0).
  NodeId add_node(Position pos = {});

  /// Adds an undirected edge in O(1); self-loops are ignored and duplicates
  /// are tolerated (collapsed when the CSR index is built).
  /// Throws std::out_of_range for unknown node ids.
  void add_edge(NodeId a, NodeId b);

  /// Pre-sizes the builder arrays so bulk construction never reallocates
  /// mid-loop.
  void reserve(std::size_t nodes, std::size_t edges = 0);

  std::size_t node_count() const noexcept { return positions_.size(); }

  /// Unique undirected edges (builds the CSR index if stale).
  std::size_t edge_count() const;

  /// Neighbors of `id`, sorted ascending, valid until the next mutation.
  /// Throws std::out_of_range for unknown node ids.
  std::span<const NodeId> neighbors(NodeId id) const;

  const Position& position(NodeId id) const;

  /// O(log deg) binary search over the CSR row; false for unknown ids.
  bool has_edge(NodeId a, NodeId b) const;

  /// The primary sink (first registered); kInvalidNode when none is set.
  NodeId sink() const noexcept {
    return sinks_.empty() ? kInvalidNode : sinks_.front();
  }
  /// Makes `id` the sole sink (replaces any previously registered sinks).
  void set_sink(NodeId id);
  /// Registers an additional sink (ignored if already registered). Routing
  /// built over a multi-sink topology sends each node to its nearest sink.
  void add_sink(NodeId id);
  std::span<const NodeId> sinks() const noexcept { return sinks_; }
  bool is_sink(NodeId id) const noexcept;

  /// Heap bytes held by the builder arrays plus the CSR index.
  std::size_t memory_bytes() const noexcept;

  /// Line S = node0 — node1 — ... — node(n-1) = sink. Requires n >= 2.
  static Topology line(std::size_t n);

  /// width × height grid with 4-connectivity; the sink is the node at
  /// (0, 0). Node (ix, iy) has id iy*width + ix and position (ix, iy) * spacing.
  static Topology grid(std::size_t width, std::size_t height,
                       double spacing = 1.0);

  /// n nodes placed uniformly at random in [0, side]² and connected when
  /// within `radius`. Node 0 is the sink. Connectivity is not guaranteed;
  /// callers should check routing coverage (see routing.h). Edge discovery
  /// uses a uniform-grid spatial hash (cell side >= radius, 3×3 neighborhood
  /// scan), so construction is O(n + edges) instead of O(n²); placements and
  /// the edge set are identical to the pairwise-scan reference for the same
  /// RNG state.
  static Topology random_geometric(std::size_t n, double side, double radius,
                                   sim::RandomStream& rng);

  /// Like random_geometric, but nodes 0..sink_count-1 are all registered as
  /// sinks (nearest-sink routing). Node placement draws are identical to the
  /// single-sink builder for the same RNG state. Requires
  /// 1 <= sink_count <= n.
  static Topology random_geometric_multi_sink(std::size_t n, double side,
                                              double radius,
                                              std::size_t sink_count,
                                              sim::RandomStream& rng);

  /// Star: `leaves` sources all one hop from the central sink (node 0) —
  /// the maximal-aggregation case for the §4 superposition analysis.
  static Topology star(std::size_t leaves);

  /// Complete binary routing tree of the given depth; the root (node 0) is
  /// the sink, leaves are 'depth' hops away. Node count is 2^(depth+1) − 1.
  /// A natural shape for §4's "streams merge progressively" analysis.
  static Topology binary_tree(std::size_t depth);

  /// Disjoint source branches that merge into one shared trunk of
  /// `shared_tail` hops ending at the sink ("streams merge progressively as
  /// they approach the sink", §4). Branch i gives its source a total
  /// hop-count of hop_counts[i]; requires every hop_counts[i] > shared_tail.
  /// Returns the topology and the source node id for each branch.
  static ConvergingPaths converging_paths(const std::vector<std::uint16_t>& hop_counts,
                                          std::uint16_t shared_tail);

  /// The paper's Figure-1 evaluation topology: four sources with hop counts
  /// 15, 22, 9 and 11 converging on the sink (shared trunk of 3 hops).
  static ConvergingPaths paper_figure1();

 private:
  void ensure_csr() const;
  /// Spatial-hash edge discovery over the current positions (see
  /// random_geometric).
  void connect_within_radius(double radius);

  std::vector<Position> positions_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // raw; dups collapse in CSR
  std::vector<NodeId> sinks_;

  // Lazily (re)built CSR adjacency: row i = nbrs_[offsets_[i]..offsets_[i+1]).
  mutable std::vector<std::uint32_t> offsets_;
  mutable std::vector<NodeId> nbrs_;
  mutable bool csr_dirty_ = true;
};

struct ConvergingPaths {
  Topology topology;
  std::vector<NodeId> sources;
};

}  // namespace tempriv::net
