#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/random.h"

namespace tempriv::net {

class Topology;

/// A built multi-branch topology plus the source node id of each branch
/// (see Topology::converging_paths / Topology::paper_figure1).
struct ConvergingPaths;

/// 2-D position of a node (used by geometric topologies and the
/// mobile-asset workload; the paper's adversary knows all positions).
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// An undirected connectivity graph of sensor nodes plus a designated sink.
/// Construction helpers cover the topologies used across the evaluation:
/// lines (the paper's §3.3 path model), grids (habitat monitoring),
/// random-geometric graphs (generic deployments) and the paper's Figure-1
/// topology of four source paths converging on a common sink.
class Topology {
 public:
  /// Adds a node at `pos`; returns its id (dense, starting at 0).
  NodeId add_node(Position pos = {});

  /// Adds an undirected edge; ignores self-loops and duplicates.
  /// Throws std::out_of_range for unknown node ids.
  void add_edge(NodeId a, NodeId b);

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  const std::vector<NodeId>& neighbors(NodeId id) const;
  const Position& position(NodeId id) const;
  bool has_edge(NodeId a, NodeId b) const;

  NodeId sink() const noexcept { return sink_; }
  void set_sink(NodeId id);

  /// Line S = node0 — node1 — ... — node(n-1) = sink. Requires n >= 2.
  static Topology line(std::size_t n);

  /// width × height grid with 4-connectivity; the sink is the node at
  /// (0, 0). Node (ix, iy) has id iy*width + ix and position (ix, iy) * spacing.
  static Topology grid(std::size_t width, std::size_t height,
                       double spacing = 1.0);

  /// n nodes placed uniformly at random in [0, side]² and connected when
  /// within `radius`. Node 0 is the sink. Connectivity is not guaranteed;
  /// callers should check routing coverage (see routing.h).
  static Topology random_geometric(std::size_t n, double side, double radius,
                                   sim::RandomStream& rng);

  /// Star: `leaves` sources all one hop from the central sink (node 0) —
  /// the maximal-aggregation case for the §4 superposition analysis.
  static Topology star(std::size_t leaves);

  /// Complete binary routing tree of the given depth; the root (node 0) is
  /// the sink, leaves are 'depth' hops away. Node count is 2^(depth+1) − 1.
  /// A natural shape for §4's "streams merge progressively" analysis.
  static Topology binary_tree(std::size_t depth);

  /// Disjoint source branches that merge into one shared trunk of
  /// `shared_tail` hops ending at the sink ("streams merge progressively as
  /// they approach the sink", §4). Branch i gives its source a total
  /// hop-count of hop_counts[i]; requires every hop_counts[i] > shared_tail.
  /// Returns the topology and the source node id for each branch.
  static ConvergingPaths converging_paths(const std::vector<std::uint16_t>& hop_counts,
                                          std::uint16_t shared_tail);

  /// The paper's Figure-1 evaluation topology: four sources with hop counts
  /// 15, 22, 9 and 11 converging on the sink (shared trunk of 3 hops).
  static ConvergingPaths paper_figure1();

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Position> positions_;
  NodeId sink_ = kInvalidNode;
};

struct ConvergingPaths {
  Topology topology;
  std::vector<NodeId> sources;
};

}  // namespace tempriv::net
