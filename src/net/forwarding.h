#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/packet.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace tempriv::net {

/// Services the network offers a per-node forwarding discipline. Passed to
/// ForwardingDiscipline::on_packet; also usable from callbacks the
/// discipline schedules through simulator().
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual sim::Simulator& simulator() noexcept = 0;
  /// Node-private deterministic random stream (split from the network root).
  virtual sim::RandomStream& rng() noexcept = 0;
  virtual NodeId id() const noexcept = 0;
  virtual std::uint16_t hops_to_sink() const noexcept = 0;

  /// Hands the packet to the link layer *now*: it will arrive at the next
  /// hop after the configured transmission delay. Each buffered packet must
  /// be transmitted exactly once.
  virtual void transmit(Packet&& packet) = 0;
};

/// Tells the network which built-in policy a factory-produced discipline
/// implements, so Network can store its state in flat per-node arrays and
/// dispatch without a virtual call on the forwarding hot path. kCustom (the
/// default) keeps the discipline object and its virtual on_packet.
enum class DisciplineKind : std::uint8_t {
  kCustom = 0,
  kImmediate,
  kUnlimitedDelay,
  kDropTail,
  kRcad,
};

/// Per-node store-and-forward policy — the extension point the temporal-
/// privacy schemes plug into (src/core implements immediate forwarding,
/// unlimited exponential delaying, drop-tail delaying, and RCAD).
///
/// Contract: for every on_packet() call the discipline eventually calls
/// ctx.transmit() exactly once for that packet (immediately, from a later
/// scheduled event, or — for lossy disciplines — never, in which case it
/// must count the packet in drops()).
class ForwardingDiscipline {
 public:
  virtual ~ForwardingDiscipline() = default;

  virtual void on_packet(Packet&& packet, NodeContext& ctx) = 0;

  /// Which built-in policy this object implements (see DisciplineKind).
  /// Overridden by the src/core built-ins; custom disciplines keep the
  /// default and run through virtual dispatch.
  virtual DisciplineKind kind() const noexcept { return DisciplineKind::kCustom; }

  /// Packets currently held in this node's buffer.
  virtual std::size_t buffered() const noexcept = 0;

  /// Packets transmitted early due to buffer preemption (RCAD).
  virtual std::uint64_t preemptions() const noexcept { return 0; }

  /// Packets discarded because the buffer was full (drop-tail).
  virtual std::uint64_t drops() const noexcept { return 0; }
};

/// Builds the discipline for node `id` (which is `hops_to_sink` hops from
/// the sink) — lets a scenario give every node its own delay parameters,
/// e.g. the §3.3 sink-weighted decomposition.
using DisciplineFactory = std::function<std::unique_ptr<ForwardingDiscipline>(
    NodeId id, std::uint16_t hops_to_sink)>;

}  // namespace tempriv::net
