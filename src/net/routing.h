#pragma once

#include <vector>

#include "net/topology.h"

namespace tempriv::net {

/// Shortest-path routing tree toward the nearest sink, built with a single
/// multi-source breadth-first search (hop-count metric, the metric of the
/// MultiHop protocol the paper references). Deterministic: sinks seed the
/// frontier in registration order and among equal-distance parents the
/// first-dequeued (smallest-id at each level) wins, so single-sink trees
/// are identical to the historical single-source BFS.
///
/// Construction is allocation-linear: four flat arrays sized once plus a
/// reserved vector frontier — no per-visit neighbor copies, no deque
/// chunks — so building the tree for a 10⁶-node topology performs a
/// constant number of heap allocations.
class RoutingTable {
 public:
  /// Builds the tree for `topo` (throws std::invalid_argument if the
  /// topology has no sink set).
  explicit RoutingTable(const Topology& topo);

  /// Next hop of `id` toward its nearest sink; kInvalidNode for sinks and
  /// for nodes with no route.
  NodeId next_hop(NodeId id) const;

  /// Hop distance from `id` to its nearest sink; 0 for sinks. Throws
  /// std::out_of_range for unroutable nodes (check reachable() first).
  std::uint16_t hops_to_sink(NodeId id) const;

  /// The sink `id` routes to; kInvalidNode for unroutable nodes. For sinks,
  /// the sink itself.
  NodeId sink_of(NodeId id) const;

  bool reachable(NodeId id) const;

  /// Nodes with no route to any sink (coverage diagnostic for disconnected
  /// random-geometric deployments).
  std::size_t unreachable_count() const noexcept { return unreachable_; }

  /// True when every node can reach a sink.
  bool fully_connected() const noexcept { return unreachable_ == 0; }

  /// The full path from `id` to its sink, inclusive of both endpoints.
  std::vector<NodeId> path_to_sink(NodeId id) const;

  std::size_t node_count() const noexcept { return next_hop_.size(); }

  /// Heap bytes held by the routing arrays.
  std::size_t memory_bytes() const noexcept;

 private:
  std::vector<NodeId> next_hop_;
  std::vector<std::uint16_t> hops_;
  std::vector<NodeId> sink_of_;  // doubles as the reachability mark
  std::size_t unreachable_ = 0;
};

}  // namespace tempriv::net
