#pragma once

#include <vector>

#include "net/topology.h"

namespace tempriv::net {

/// Shortest-path routing tree toward the sink, built with breadth-first
/// search (hop-count metric, the metric of the MultiHop protocol the paper
/// references). Deterministic: among equal-distance parents the smallest
/// node id wins.
class RoutingTable {
 public:
  /// Builds the tree for `topo` (throws std::invalid_argument if the
  /// topology has no sink set).
  explicit RoutingTable(const Topology& topo);

  /// Next hop of `id` toward the sink; kInvalidNode for the sink itself and
  /// for nodes with no route.
  NodeId next_hop(NodeId id) const;

  /// Hop distance from `id` to the sink; 0 for the sink itself. Throws
  /// std::out_of_range for unroutable nodes (check reachable() first).
  std::uint16_t hops_to_sink(NodeId id) const;

  bool reachable(NodeId id) const;

  /// True when every node can reach the sink.
  bool fully_connected() const noexcept;

  /// The full path from `id` to the sink, inclusive of both endpoints.
  std::vector<NodeId> path_to_sink(NodeId id) const;

  std::size_t node_count() const noexcept { return next_hop_.size(); }

 private:
  std::vector<NodeId> next_hop_;
  std::vector<std::uint16_t> hops_;
  std::vector<bool> reachable_;
};

}  // namespace tempriv::net
