#pragma once

#include <cstdint>
#include <type_traits>

#include "crypto/payload.h"

namespace tempriv::net {

/// Dense node identifier (index into the topology's node table).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// The cleartext routing header (paper §2, "Cleartext Headers"), modeled on
/// the TinyOS 1.1.7 MultiHop header the paper cites: previous hop, origin id
/// (distinguishes generation from forwarding), a routing-layer sequence
/// number (loop suppression; not flow-specific), and the hop count. This is
/// everything the eavesdropper can read off the air.
struct RoutingHeader {
  NodeId prev_hop = kInvalidNode;
  NodeId origin = kInvalidNode;
  std::uint16_t routing_seq = 0;  ///< per-link, reused across flows
  std::uint16_t hop_count = 0;    ///< hops traversed so far
};

/// A sensor message in flight: cleartext routing header plus the sealed
/// (encrypted + MACed) application payload. The creation time-stamp and
/// application sequence number live *inside* the sealed payload, so nothing
/// in this struct besides the header is intelligible to the adversary.
///
/// The sealed payload's ciphertext is stored inline (crypto::InlineBytes),
/// so a Packet is a flat, trivially-copyable value: the forwarding path
/// (slot pools, delay buffers, event captures) moves packets with plain
/// memcpys and never allocates per packet.
struct Packet {
  RoutingHeader header;
  crypto::SealedPayload payload;
  /// Simulator-internal unique id (not transmitted; used for bookkeeping
  /// such as matching deliveries to ground truth in test harnesses).
  std::uint64_t uid = 0;
};

static_assert(std::is_trivially_copyable_v<Packet>,
              "Packet must stay a flat POD: the zero-allocation packet path "
              "(PacketPool, DelayBuffer slots, link-event captures) depends "
              "on memcpy moves");

}  // namespace tempriv::net
