#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/packet.h"

namespace tempriv::net {

/// Free-listed slot pool for packets in flight on a link.
///
/// Network::transmit used to capture the whole Packet inside the link-delay
/// event closure; once the ciphertext moved inline that capture outgrew the
/// event kernel's inline budget, so every hop would have paid one heap
/// allocation again. Instead the packet parks here and the closure captures
/// a 16-byte (network pointer + handle) pair — per the EventQueue slot-pool
/// pattern from PR 2.
///
/// Handles carry the occupant's identity ({seq:40, slot:24}, same scheme as
/// sim::EventId), so a stale handle — double take(), or a handle kept past
/// its packet's arrival — can never alias the slot's next occupant:
/// take() throws std::logic_error instead of handing back the wrong packet.
/// In steady state (every slot visited once) put/take never allocate.
class PacketPool {
 public:
  class Handle {
   public:
    constexpr Handle() noexcept = default;
    constexpr explicit Handle(std::uint64_t value) noexcept : value_(value) {}

    constexpr bool valid() const noexcept { return value_ != 0; }
    constexpr std::uint64_t value() const noexcept { return value_; }

    friend constexpr bool operator==(Handle, Handle) noexcept = default;

   private:
    std::uint64_t value_ = 0;
  };

  /// Parks a packet and returns its claim ticket.
  /// Throws std::length_error beyond 2^24 concurrent in-flight packets.
  Handle put(Packet&& packet) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.packet = packet;  // trivially-copyable: a memcpy
    const std::uint64_t aux = (next_seq_++ << kSlotBits) | slot;
    s.aux = aux;
    ++live_count_;
    return Handle(aux);
  }

  /// Redeems a handle exactly once; frees the slot.
  Packet take(Handle handle) {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(handle.value() & (kMaxSlots - 1));
    if (!handle.valid() || slot >= slots_.size() ||
        slots_[slot].aux != handle.value()) {
      throw std::logic_error("PacketPool::take: stale or invalid handle");
    }
    Slot& s = slots_[slot];
    s.aux = 0;
    s.next_free = free_head_;
    free_head_ = slot;
    --live_count_;
    return s.packet;
  }

  /// Packets currently parked.
  std::size_t in_flight() const noexcept { return live_count_; }

  /// Slots ever created (capacity diagnostics).
  std::size_t slot_count() const noexcept { return slots_.size(); }

  /// Pre-sizes the pool for `capacity` concurrent in-flight packets so the
  /// steady state never reallocates.
  void reserve(std::size_t capacity) { slots_.reserve(capacity); }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;

  struct Slot {
    Packet packet;
    std::uint64_t aux = 0;  // current occupant's identity; 0 = free
    std::uint32_t next_free = kNilSlot;
  };

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      slots_[slot].next_free = kNilSlot;
      return slot;
    }
    if (slots_.size() >= kMaxSlots) {
      throw std::length_error("PacketPool: too many packets in flight");
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 1;  // seq 0 reserved so Handle 0 is invalid
  std::size_t live_count_ = 0;
};

}  // namespace tempriv::net
