#include "net/tracer.h"

namespace tempriv::net {

PacketTracer::PacketTracer(Network& network) : network_(network) {
  network.add_transmit_probe(
      [this](NodeId from, NodeId to, const Packet& packet, sim::Time now) {
        ++transmissions_;
        traces_[packet.uid].push_back(Hop{from, to, now});
      });
}

const std::vector<PacketTracer::Hop>& PacketTracer::hops(
    std::uint64_t uid) const {
  const auto it = traces_.find(uid);
  return it == traces_.end() ? empty_ : it->second;
}

std::vector<NodeId> PacketTracer::path(std::uint64_t uid) const {
  std::vector<NodeId> nodes;
  const auto& trace = hops(uid);
  for (const Hop& hop : trace) nodes.push_back(hop.from);
  if (!trace.empty()) nodes.push_back(trace.back().to);
  return nodes;
}

std::vector<double> PacketTracer::holding_times(std::uint64_t uid) const {
  std::vector<double> times;
  const auto& trace = hops(uid);
  const double tx = network_.hop_tx_delay();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    // Arrival at trace[i].from: for the origin this is unknown to the
    // tracer (creation happens above the link layer), so we report the
    // origin's holding time relative to the first transmission minus
    // nothing — callers treat element 0 as "time since first seen".
    const double arrived = i == 0 ? trace[0].at : trace[i - 1].at + tx;
    times.push_back(trace[i].at - arrived);
  }
  return times;
}

}  // namespace tempriv::net
