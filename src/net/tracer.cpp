#include "net/tracer.h"

namespace tempriv::net {

PacketTracer::PacketTracer(Network& network) : network_(network) {
  network.add_transmit_probe(
      [this](NodeId from, NodeId to, const Packet& packet, sim::Time now) {
        record(packet.uid, Hop{from, to, now});
      });
}

void PacketTracer::record(std::uint64_t uid, const Hop& hop) {
  ++transmissions_;
  if (uid >= refs_.size()) refs_.resize(uid + 1);
  TraceRef& ref = refs_[uid];
  const std::uint32_t node = static_cast<std::uint32_t>(arena_.size());
  arena_.push_back(HopNode{hop, kNil});
  if (ref.head == kNil) {
    ref.head = node;
    ++packets_traced_;
  } else {
    arena_[ref.tail].next = node;
  }
  ref.tail = node;
  ++ref.count;
}

const PacketTracer::TraceRef* PacketTracer::find(
    std::uint64_t uid) const noexcept {
  if (uid >= refs_.size() || refs_[uid].head == kNil) return nullptr;
  return &refs_[uid];
}

void PacketTracer::reserve(std::size_t packets, std::size_t total_hops) {
  refs_.reserve(packets);
  arena_.reserve(total_hops);
}

std::vector<PacketTracer::Hop> PacketTracer::hops(std::uint64_t uid) const {
  std::vector<Hop> out;
  const TraceRef* ref = find(uid);
  if (ref == nullptr) return out;
  out.reserve(ref->count);
  for (std::uint32_t node = ref->head; node != kNil; node = arena_[node].next) {
    out.push_back(arena_[node].hop);
  }
  return out;
}

std::vector<NodeId> PacketTracer::path(std::uint64_t uid) const {
  std::vector<NodeId> nodes;
  const TraceRef* ref = find(uid);
  if (ref == nullptr) return nodes;
  nodes.reserve(ref->count + 1);
  std::uint32_t last = kNil;
  for (std::uint32_t node = ref->head; node != kNil; node = arena_[node].next) {
    nodes.push_back(arena_[node].hop.from);
    last = node;
  }
  nodes.push_back(arena_[last].hop.to);
  return nodes;
}

std::vector<double> PacketTracer::holding_times(std::uint64_t uid) const {
  std::vector<double> times;
  const TraceRef* ref = find(uid);
  if (ref == nullptr) return times;
  times.reserve(ref->count);
  const double tx = network_.hop_tx_delay();
  // Arrival at the first hop's transmitter: for the origin this is unknown
  // to the tracer (creation happens above the link layer), so element 0 is
  // "time since first seen" = 0 by construction, matching the old behavior.
  double arrived = arena_[ref->head].hop.at;
  for (std::uint32_t node = ref->head; node != kNil; node = arena_[node].next) {
    const double at = arena_[node].hop.at;
    times.push_back(at - arrived);
    arrived = at + tx;
  }
  return times;
}

}  // namespace tempriv::net
