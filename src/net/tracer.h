#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace tempriv::net {

/// Records every link transmission of every packet — the full
/// store-and-forward journey — for debugging, latency decomposition, and
/// visualizing how RCAD reshapes per-hop holding times.
///
/// Installs itself as a transmit probe (probes are additive, so a tracer
/// coexists with other listeners). The tracer must outlive the run.
///
/// Storage is flat: packet uids are dense (Network assigns them 0,1,2,...),
/// so per-packet trace heads live in a uid-indexed vector and the hops of
/// all packets share one contiguous arena, chained per packet with indices.
/// Recording a hop is an amortized push_back — no hashing, no per-packet
/// node allocations — so tracing stays cheap enough to leave on in
/// benchmarks that want journey data.
class PacketTracer {
 public:
  struct Hop {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    double at = 0.0;  ///< instant the packet was handed to the link

    friend bool operator==(const Hop&, const Hop&) = default;
  };

  explicit PacketTracer(Network& network);

  // The installed probe captures `this`: the tracer must stay put.
  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  /// All hops of one packet in transmission order (empty if never seen).
  /// Returned by value: the tracer's internal storage is a shared arena
  /// that reallocates as later packets are traced, so handing out a
  /// reference would dangle (and the old shared-empty-vector return made
  /// unknown uids alias each other).
  std::vector<Hop> hops(std::uint64_t uid) const;

  /// The node sequence the packet visited: origin, ..., final receiver.
  std::vector<NodeId> path(std::uint64_t uid) const;

  /// Holding time at each visited node: time between arriving at a node
  /// (previous handoff + tx delay; 0 for the origin) and transmitting.
  /// Element i corresponds to path()[i].
  std::vector<double> holding_times(std::uint64_t uid) const;

  /// Pre-sizes the per-uid table and the shared hop arena.
  void reserve(std::size_t packets, std::size_t total_hops);

  std::size_t packets_traced() const noexcept { return packets_traced_; }
  std::uint64_t transmissions() const noexcept { return transmissions_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Per-uid chain through the shared hop arena.
  struct TraceRef {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t count = 0;
  };

  struct HopNode {
    Hop hop;
    std::uint32_t next = kNil;
  };

  void record(std::uint64_t uid, const Hop& hop);
  const TraceRef* find(std::uint64_t uid) const noexcept;

  const Network& network_;
  std::vector<TraceRef> refs_;    // index = packet uid
  std::vector<HopNode> arena_;    // hops of all packets, in record order
  std::size_t packets_traced_ = 0;
  std::uint64_t transmissions_ = 0;
};

}  // namespace tempriv::net
