#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.h"

namespace tempriv::net {

/// Records every link transmission of every packet — the full
/// store-and-forward journey — for debugging, latency decomposition, and
/// visualizing how RCAD reshapes per-hop holding times.
///
/// Installs itself as a transmit probe (probes are additive, so a tracer
/// coexists with other listeners). The tracer must outlive the run.
class PacketTracer {
 public:
  struct Hop {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    double at = 0.0;  ///< instant the packet was handed to the link
  };

  explicit PacketTracer(Network& network);

  /// All hops of one packet in transmission order (empty if never seen).
  const std::vector<Hop>& hops(std::uint64_t uid) const;

  /// The node sequence the packet visited: origin, ..., final receiver.
  std::vector<NodeId> path(std::uint64_t uid) const;

  /// Holding time at each visited node: time between arriving at a node
  /// (previous handoff + tx delay; 0 for the origin) and transmitting.
  /// Element i corresponds to path()[i].
  std::vector<double> holding_times(std::uint64_t uid) const;

  std::size_t packets_traced() const noexcept { return traces_.size(); }
  std::uint64_t transmissions() const noexcept { return transmissions_; }

 private:
  const Network& network_;
  std::unordered_map<std::uint64_t, std::vector<Hop>> traces_;
  std::vector<Hop> empty_;
  std::uint64_t transmissions_ = 0;
};

}  // namespace tempriv::net
