#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tempriv::net {

NodeId Topology::add_node(Position pos) {
  adjacency_.emplace_back();
  positions_.push_back(pos);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Topology::add_edge(NodeId a, NodeId b) {
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Topology::add_edge: unknown node id");
  }
  if (a == b || has_edge(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

const std::vector<NodeId>& Topology::neighbors(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("Topology::neighbors: bad id");
  return adjacency_[id];
}

const Position& Topology::position(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("Topology::position: bad id");
  return positions_[id];
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  if (a >= node_count() || b >= node_count()) return false;
  const auto& nbrs = adjacency_[a];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

void Topology::set_sink(NodeId id) {
  if (id >= node_count()) throw std::out_of_range("Topology::set_sink: bad id");
  sink_ = id;
}

Topology Topology::line(std::size_t n) {
  if (n < 2) throw std::invalid_argument("Topology::line: needs >= 2 nodes");
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_node({static_cast<double>(i), 0.0});
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topo.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  topo.set_sink(static_cast<NodeId>(n - 1));
  return topo;
}

Topology Topology::grid(std::size_t width, std::size_t height, double spacing) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Topology::grid: empty dimension");
  }
  Topology topo;
  for (std::size_t iy = 0; iy < height; ++iy) {
    for (std::size_t ix = 0; ix < width; ++ix) {
      topo.add_node({static_cast<double>(ix) * spacing,
                     static_cast<double>(iy) * spacing});
    }
  }
  auto id = [width](std::size_t ix, std::size_t iy) {
    return static_cast<NodeId>(iy * width + ix);
  };
  for (std::size_t iy = 0; iy < height; ++iy) {
    for (std::size_t ix = 0; ix < width; ++ix) {
      if (ix + 1 < width) topo.add_edge(id(ix, iy), id(ix + 1, iy));
      if (iy + 1 < height) topo.add_edge(id(ix, iy), id(ix, iy + 1));
    }
  }
  topo.set_sink(id(0, 0));
  return topo;
}

Topology Topology::random_geometric(std::size_t n, double side, double radius,
                                    sim::RandomStream& rng) {
  if (n == 0) throw std::invalid_argument("Topology::random_geometric: n == 0");
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_node({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  const double r2 = radius * radius;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const Position& pa = topo.position(a);
      const Position& pb = topo.position(b);
      const double dx = pa.x - pb.x;
      const double dy = pa.y - pb.y;
      if (dx * dx + dy * dy <= r2) topo.add_edge(a, b);
    }
  }
  topo.set_sink(0);
  return topo;
}

Topology Topology::star(std::size_t leaves) {
  if (leaves == 0) throw std::invalid_argument("Topology::star: no leaves");
  Topology topo;
  const NodeId hub = topo.add_node({0.0, 0.0});
  topo.set_sink(hub);
  for (std::size_t i = 0; i < leaves; ++i) {
    const double angle = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(i) / static_cast<double>(leaves);
    const NodeId leaf = topo.add_node({std::cos(angle), std::sin(angle)});
    topo.add_edge(hub, leaf);
  }
  return topo;
}

Topology Topology::binary_tree(std::size_t depth) {
  Topology topo;
  const std::size_t nodes = (std::size_t{1} << (depth + 1)) - 1;
  for (std::size_t i = 0; i < nodes; ++i) {
    // Position by level for plotting: x = index within level, y = level.
    std::size_t level = 0;
    while ((std::size_t{1} << (level + 1)) - 1 <= i) ++level;
    const std::size_t offset = i - ((std::size_t{1} << level) - 1);
    topo.add_node({static_cast<double>(offset), static_cast<double>(level)});
  }
  for (std::size_t i = 1; i < nodes; ++i) {
    topo.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i - 1) / 2));
  }
  topo.set_sink(0);
  return topo;
}

ConvergingPaths Topology::converging_paths(
    const std::vector<std::uint16_t>& hop_counts, std::uint16_t shared_tail) {
  if (hop_counts.empty()) {
    throw std::invalid_argument("converging_paths: no branches");
  }
  for (std::uint16_t h : hop_counts) {
    if (h <= shared_tail) {
      throw std::invalid_argument(
          "converging_paths: each hop count must exceed the shared tail");
    }
  }
  ConvergingPaths result;
  Topology& topo = result.topology;

  // Shared trunk: junction -> t1 -> ... -> sink, i.e. shared_tail hops from
  // the junction to the sink. With shared_tail == 0 branches join the sink
  // directly.
  const NodeId sink = topo.add_node({0.0, 0.0});
  topo.set_sink(sink);
  NodeId junction = sink;
  for (std::uint16_t t = 1; t <= shared_tail; ++t) {
    const NodeId next = topo.add_node({static_cast<double>(t), 0.0});
    topo.add_edge(junction, next);
    junction = next;
  }

  // Each branch contributes (h - shared_tail) hops from its source to the
  // junction, fanning out at distinct angles for plotting-friendly layout.
  for (std::size_t b = 0; b < hop_counts.size(); ++b) {
    const std::uint16_t branch_hops = hop_counts[b] - shared_tail;
    const double angle =
        3.14159265358979323846 * (static_cast<double>(b) + 1.0) /
        (static_cast<double>(hop_counts.size()) + 1.0);
    NodeId prev = junction;
    for (std::uint16_t s = 1; s <= branch_hops; ++s) {
      const double r = static_cast<double>(shared_tail + s);
      const NodeId next =
          topo.add_node({r * std::cos(angle), r * std::sin(angle)});
      topo.add_edge(prev, next);
      prev = next;
    }
    result.sources.push_back(prev);
  }
  return result;
}

ConvergingPaths Topology::paper_figure1() {
  // Figure 1: flows S1..S4 with hop counts 15, 22, 9, 11; the drawing shows
  // the paths meeting shortly before the sink, which we model as a 3-hop
  // shared trunk.
  return converging_paths({15, 22, 9, 11}, 3);
}

}  // namespace tempriv::net
