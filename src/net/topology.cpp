#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tempriv::net {

NodeId Topology::add_node(Position pos) {
  positions_.push_back(pos);
  csr_dirty_ = true;
  return static_cast<NodeId>(positions_.size() - 1);
}

void Topology::add_edge(NodeId a, NodeId b) {
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Topology::add_edge: unknown node id");
  }
  if (a == b) return;
  edges_.emplace_back(a, b);
  csr_dirty_ = true;
}

void Topology::reserve(std::size_t nodes, std::size_t edges) {
  positions_.reserve(nodes);
  edges_.reserve(edges);
}

void Topology::ensure_csr() const {
  if (!csr_dirty_) return;
  const std::size_t n = node_count();
  assert(positions_.size() == n);
  offsets_.assign(n + 1, 0);
  for (const auto& [a, b] : edges_) {
    assert(a < n && b < n && a != b && "edge endpoints must be dense node ids");
    ++offsets_[a + 1];
    ++offsets_[b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];
  nbrs_.resize(edges_.size() * 2);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : edges_) {
    nbrs_[cursor[a]++] = b;
    nbrs_[cursor[b]++] = a;
  }
  // Sort each row ascending and drop duplicate edges, compacting in place.
  // The write cursor never overtakes the read cursor (dedup only shrinks),
  // and offsets_[i] is rewritten only after its row has been consumed.
  std::uint32_t write = 0;
  std::uint32_t read_begin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t read_end = offsets_[i + 1];
    std::sort(nbrs_.begin() + read_begin, nbrs_.begin() + read_end);
    const std::uint32_t row_begin = write;
    for (std::uint32_t j = read_begin; j < read_end; ++j) {
      if (j == read_begin || nbrs_[j] != nbrs_[j - 1]) nbrs_[write++] = nbrs_[j];
    }
    offsets_[i] = row_begin;
    read_begin = read_end;
  }
  offsets_[n] = write;
  nbrs_.resize(write);
  csr_dirty_ = false;
}

std::size_t Topology::edge_count() const {
  ensure_csr();
  return nbrs_.size() / 2;
}

std::span<const NodeId> Topology::neighbors(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("Topology::neighbors: bad id");
  ensure_csr();
  return {nbrs_.data() + offsets_[id], offsets_[id + 1] - offsets_[id]};
}

const Position& Topology::position(NodeId id) const {
  if (id >= node_count()) throw std::out_of_range("Topology::position: bad id");
  return positions_[id];
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  if (a >= node_count() || b >= node_count()) return false;
  ensure_csr();
  const auto begin = nbrs_.begin() + offsets_[a];
  const auto end = nbrs_.begin() + offsets_[a + 1];
  return std::binary_search(begin, end, b);
}

void Topology::set_sink(NodeId id) {
  if (id >= node_count()) throw std::out_of_range("Topology::set_sink: bad id");
  sinks_.assign(1, id);
}

void Topology::add_sink(NodeId id) {
  if (id >= node_count()) throw std::out_of_range("Topology::add_sink: bad id");
  if (!is_sink(id)) sinks_.push_back(id);
}

bool Topology::is_sink(NodeId id) const noexcept {
  return std::find(sinks_.begin(), sinks_.end(), id) != sinks_.end();
}

std::size_t Topology::memory_bytes() const noexcept {
  return positions_.capacity() * sizeof(Position) +
         edges_.capacity() * sizeof(edges_[0]) +
         sinks_.capacity() * sizeof(NodeId) +
         offsets_.capacity() * sizeof(std::uint32_t) +
         nbrs_.capacity() * sizeof(NodeId);
}

Topology Topology::line(std::size_t n) {
  if (n < 2) throw std::invalid_argument("Topology::line: needs >= 2 nodes");
  Topology topo;
  topo.reserve(n, n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_node({static_cast<double>(i), 0.0});
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topo.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  topo.set_sink(static_cast<NodeId>(n - 1));
  return topo;
}

Topology Topology::grid(std::size_t width, std::size_t height, double spacing) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Topology::grid: empty dimension");
  }
  Topology topo;
  topo.reserve(width * height, 2 * width * height);
  for (std::size_t iy = 0; iy < height; ++iy) {
    for (std::size_t ix = 0; ix < width; ++ix) {
      topo.add_node({static_cast<double>(ix) * spacing,
                     static_cast<double>(iy) * spacing});
    }
  }
  auto id = [width](std::size_t ix, std::size_t iy) {
    return static_cast<NodeId>(iy * width + ix);
  };
  for (std::size_t iy = 0; iy < height; ++iy) {
    for (std::size_t ix = 0; ix < width; ++ix) {
      if (ix + 1 < width) topo.add_edge(id(ix, iy), id(ix + 1, iy));
      if (iy + 1 < height) topo.add_edge(id(ix, iy), id(ix, iy + 1));
    }
  }
  topo.set_sink(id(0, 0));
  return topo;
}

void Topology::connect_within_radius(double radius) {
  const std::size_t n = node_count();
  if (n < 2) return;
  double min_x = positions_[0].x, max_x = min_x;
  double min_y = positions_[0].y, max_y = min_y;
  for (const Position& p : positions_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  // Cell side: at least the connection radius (so candidates always sit in
  // the 3×3 neighborhood), but no smaller than extent/√n — a tiny radius
  // must not blow the grid past ~n cells.
  const double extent = std::max(max_x - min_x, max_y - min_y);
  const double floor_side =
      extent / std::ceil(std::sqrt(static_cast<double>(n)));
  const double cell = std::max({std::abs(radius), floor_side,
                                std::numeric_limits<double>::min()});
  const std::size_t cols = static_cast<std::size_t>((max_x - min_x) / cell) + 1;
  const std::size_t rows = static_cast<std::size_t>((max_y - min_y) / cell) + 1;
  auto cell_x = [&](NodeId i) {
    return std::min(static_cast<std::size_t>((positions_[i].x - min_x) / cell),
                    cols - 1);
  };
  auto cell_y = [&](NodeId i) {
    return std::min(static_cast<std::size_t>((positions_[i].y - min_y) / cell),
                    rows - 1);
  };
  // Counting-sort the nodes into their cells.
  std::vector<std::uint32_t> start(rows * cols + 1, 0);
  for (NodeId i = 0; i < n; ++i) ++start[cell_y(i) * cols + cell_x(i) + 1];
  for (std::size_t c = 0; c + 1 < start.size(); ++c) start[c + 1] += start[c];
  std::vector<NodeId> bucket(n);
  std::vector<std::uint32_t> cursor(start.begin(), start.end() - 1);
  for (NodeId i = 0; i < n; ++i) {
    bucket[cursor[cell_y(i) * cols + cell_x(i)]++] = i;
  }
  // Each node scans its 3×3 cell neighborhood; b > a keeps every pair once.
  // The distance test is the same expression (and operand order) as the
  // pairwise-scan reference, so the edge set is bit-identical.
  const double r2 = radius * radius;
  for (NodeId a = 0; a < n; ++a) {
    const std::size_t acx = cell_x(a);
    const std::size_t acy = cell_y(a);
    const Position& pa = positions_[a];
    const std::size_t cy_lo = acy == 0 ? 0 : acy - 1;
    const std::size_t cy_hi = std::min(acy + 1, rows - 1);
    const std::size_t cx_lo = acx == 0 ? 0 : acx - 1;
    const std::size_t cx_hi = std::min(acx + 1, cols - 1);
    for (std::size_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (std::size_t cx = cx_lo; cx <= cx_hi; ++cx) {
        const std::size_t c = cy * cols + cx;
        for (std::uint32_t k = start[c]; k < start[c + 1]; ++k) {
          const NodeId b = bucket[k];
          if (b <= a) continue;
          const Position& pb = positions_[b];
          const double dx = pa.x - pb.x;
          const double dy = pa.y - pb.y;
          if (dx * dx + dy * dy <= r2) add_edge(a, b);
        }
      }
    }
  }
}

Topology Topology::random_geometric(std::size_t n, double side, double radius,
                                    sim::RandomStream& rng) {
  if (n == 0) throw std::invalid_argument("Topology::random_geometric: n == 0");
  Topology topo;
  topo.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_node({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  topo.connect_within_radius(radius);
  topo.set_sink(0);
  return topo;
}

Topology Topology::random_geometric_multi_sink(std::size_t n, double side,
                                               double radius,
                                               std::size_t sink_count,
                                               sim::RandomStream& rng) {
  if (sink_count == 0 || sink_count > n) {
    throw std::invalid_argument(
        "Topology::random_geometric_multi_sink: need 1 <= sink_count <= n");
  }
  Topology topo = random_geometric(n, side, radius, rng);
  for (std::size_t s = 1; s < sink_count; ++s) {
    topo.add_sink(static_cast<NodeId>(s));
  }
  return topo;
}

Topology Topology::star(std::size_t leaves) {
  if (leaves == 0) throw std::invalid_argument("Topology::star: no leaves");
  Topology topo;
  topo.reserve(leaves + 1, leaves);
  const NodeId hub = topo.add_node({0.0, 0.0});
  topo.set_sink(hub);
  for (std::size_t i = 0; i < leaves; ++i) {
    const double angle = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(i) / static_cast<double>(leaves);
    const NodeId leaf = topo.add_node({std::cos(angle), std::sin(angle)});
    topo.add_edge(hub, leaf);
  }
  return topo;
}

Topology Topology::binary_tree(std::size_t depth) {
  Topology topo;
  const std::size_t nodes = (std::size_t{1} << (depth + 1)) - 1;
  topo.reserve(nodes, nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    // Position by level for plotting: x = index within level, y = level.
    std::size_t level = 0;
    while ((std::size_t{1} << (level + 1)) - 1 <= i) ++level;
    const std::size_t offset = i - ((std::size_t{1} << level) - 1);
    topo.add_node({static_cast<double>(offset), static_cast<double>(level)});
  }
  for (std::size_t i = 1; i < nodes; ++i) {
    topo.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i - 1) / 2));
  }
  topo.set_sink(0);
  return topo;
}

ConvergingPaths Topology::converging_paths(
    const std::vector<std::uint16_t>& hop_counts, std::uint16_t shared_tail) {
  if (hop_counts.empty()) {
    throw std::invalid_argument("converging_paths: no branches");
  }
  for (std::uint16_t h : hop_counts) {
    if (h <= shared_tail) {
      throw std::invalid_argument(
          "converging_paths: each hop count must exceed the shared tail");
    }
  }
  ConvergingPaths result;
  Topology& topo = result.topology;

  // Shared trunk: junction -> t1 -> ... -> sink, i.e. shared_tail hops from
  // the junction to the sink. With shared_tail == 0 branches join the sink
  // directly.
  const NodeId sink = topo.add_node({0.0, 0.0});
  topo.set_sink(sink);
  NodeId junction = sink;
  for (std::uint16_t t = 1; t <= shared_tail; ++t) {
    const NodeId next = topo.add_node({static_cast<double>(t), 0.0});
    topo.add_edge(junction, next);
    junction = next;
  }

  // Each branch contributes (h - shared_tail) hops from its source to the
  // junction, fanning out at distinct angles for plotting-friendly layout.
  for (std::size_t b = 0; b < hop_counts.size(); ++b) {
    const std::uint16_t branch_hops = hop_counts[b] - shared_tail;
    const double angle =
        3.14159265358979323846 * (static_cast<double>(b) + 1.0) /
        (static_cast<double>(hop_counts.size()) + 1.0);
    NodeId prev = junction;
    for (std::uint16_t s = 1; s <= branch_hops; ++s) {
      const double r = static_cast<double>(shared_tail + s);
      const NodeId next =
          topo.add_node({r * std::cos(angle), r * std::sin(angle)});
      topo.add_edge(prev, next);
      prev = next;
    }
    result.sources.push_back(prev);
  }
  return result;
}

ConvergingPaths Topology::paper_figure1() {
  // Figure 1: flows S1..S4 with hop counts 15, 22, 9, 11; the drawing shows
  // the paths meeting shortly before the sink, which we model as a 3-hop
  // shared trunk.
  return converging_paths({15, 22, 9, 11}, 3);
}

}  // namespace tempriv::net
