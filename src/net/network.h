#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/payload.h"

#include "net/forwarding.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/inline_function.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace tempriv::net {

/// Receives every packet the moment it reaches the sink. This is the
/// interface both the legitimate application (which can decrypt) and the
/// eavesdropping adversary (which cannot) implement; they see exactly the
/// same bytes at exactly the same instants.
class SinkObserver {
 public:
  virtual ~SinkObserver() = default;
  virtual void on_delivery(const Packet& packet, sim::Time arrival) = 0;
};

/// Optional instrumentation hook: called whenever a node's buffer occupancy
/// may have changed (after every packet arrival and every transmission).
///
/// Probe and selector hooks are sim::InlineFunction delegates, not
/// std::function: captures up to 48 bytes are stored inline (install-time
/// and per-call heap traffic is zero), and when no hook is installed the
/// per-transmission dispatch reduces to one branch on the hot path.
using OccupancyProbe =
    sim::InlineFunction<void(NodeId node, sim::Time now, std::size_t occupancy),
                        48>;

/// Optional instrumentation hook: called for every link-layer transmission,
/// with the updated cleartext header, at the instant the packet is handed
/// to the link (it reaches `to` one hop-tx-delay later). Useful for packet
/// tracing and for modeling adversaries that eavesdrop inside the network
/// rather than at the sink.
using TransmitProbe = sim::InlineFunction<void(NodeId from, NodeId to,
                                               const Packet& packet,
                                               sim::Time now),
                                          48>;

struct NetworkConfig {
  /// Constant per-hop transmission delay τ (paper §5.2 uses 1 time unit;
  /// PHY/MAC details are abstracted away exactly as the paper does).
  double hop_tx_delay = 1.0;
  /// Optional MAC-contention jitter: each link traversal takes
  /// τ + U[0, hop_jitter). 0 (default) reproduces the paper's constant
  /// per-hop delay; a small positive value models CSMA backoff and is why
  /// even the paper's "no delay" case has a small nonzero adversary MSE.
  double hop_jitter = 0.0;
};

/// Per-transmission next-hop choice. The default is the BFS routing tree;
/// installing a custom selector enables routing-level privacy schemes such
/// as phantom routing (random walk before tree routing, the paper's cited
/// prior work on source-location privacy). Must return a neighbor of
/// `current` in the topology.
using HopSelector = sim::InlineFunction<NodeId(NodeId current,
                                               const Packet& packet,
                                               sim::RandomStream& rng),
                                        48>;

/// The store-and-forward sensor network: topology + BFS routing tree +
/// one ForwardingDiscipline per non-sink node, driven by the simulation
/// kernel. Packets are injected at source nodes via originate() and
/// surface at the sink via SinkObserver callbacks.
///
/// The forwarding path is allocation-free in steady state: packets are flat
/// PODs, link traversals park them in a free-listed PacketPool and schedule
/// a 16-byte {network, handle} closure (inline in the event kernel), and
/// per-node buffering stores them in the disciplines' slot pools. See the
/// packet-path allocation test and bench/micro_packet_path.cpp.
class Network {
 public:
  /// Throws std::invalid_argument if the topology is missing a sink or if
  /// `config.hop_tx_delay` is not positive.
  Network(sim::Simulator& simulator, Topology topology,
          const DisciplineFactory& factory, NetworkConfig config,
          const sim::RandomStream& root_rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();  // out of line: NodeShell is an implementation detail

  /// Injects a freshly-created packet at `origin` at the current simulation
  /// time. The caller seals the payload (see crypto::PayloadCodec); the
  /// network never looks inside it. Returns the packet uid.
  /// Throws std::invalid_argument if origin is the sink or unroutable.
  std::uint64_t originate(NodeId origin, crypto::SealedPayload payload);

  /// Injects a burst of same-origin packets created at the current instant,
  /// sealing them in batched groups: each group of PayloadCodec::kBatchLanes
  /// payloads shares one pass through the codec's key schedules
  /// (PayloadCodec::seal_batch), and origin validation happens once for the
  /// whole burst. Packets are handed to the origin's discipline in payload
  /// order, exactly as repeated originate() calls would, with consecutive
  /// uids starting at the returned value. Sealed bytes are bit-identical to
  /// the one-packet path. Returns the first packet's uid (or the value the
  /// next originate() will return if `payloads` is empty).
  std::uint64_t originate_batch(NodeId origin,
                                const crypto::PayloadCodec& codec,
                                std::span<const crypto::SensorPayload> payloads);

  /// Registers a sink observer (non-owning; must outlive the run).
  void add_sink_observer(SinkObserver* observer);

  /// Installs an occupancy probe (non-owning use; the callable is moved in).
  void set_occupancy_probe(OccupancyProbe probe);

  /// Registers a transmit probe (see TransmitProbe); any number may be
  /// attached and all fire per transmission, in registration order.
  void add_transmit_probe(TransmitProbe probe);

  /// Replaces tree routing with a custom per-transmission hop selector
  /// (see HopSelector). The returned node must be a topology neighbor of
  /// the transmitting node or the transmission throws std::logic_error.
  void set_hop_selector(HopSelector selector);

  /// Pre-sizes the in-flight packet pool for `in_flight` packets
  /// simultaneously traversing links, so the steady state never reallocates.
  void reserve(std::size_t in_flight);

  const Topology& topology() const noexcept { return topology_; }
  const RoutingTable& routing() const noexcept { return routing_; }
  sim::Simulator& simulator() noexcept { return simulator_; }
  double hop_tx_delay() const noexcept { return config_.hop_tx_delay; }

  /// Discipline of a non-sink node (for stats: buffered/preemptions/drops).
  const ForwardingDiscipline& discipline(NodeId id) const;

  /// Network-wide counters. packets_originated counts only successfully
  /// injected packets (an originate() that throws does not count).
  std::uint64_t packets_originated() const noexcept { return originated_; }
  std::uint64_t packets_delivered() const noexcept { return delivered_; }
  std::uint64_t total_preemptions() const;
  std::uint64_t total_drops() const;
  std::size_t total_buffered() const;

  /// Packets currently traversing a link (in the pool between transmit and
  /// arrival).
  std::size_t packets_in_flight() const noexcept { return pool_.in_flight(); }

 private:
  class NodeShell;  // NodeContext implementation, one per non-sink node

  void arrive(NodeId node, Packet&& packet);
  void arrive_from_link(NodeId node, PacketPool::Handle handle);
  void deliver(const Packet& packet);
  void probe(NodeId node);
  NodeId pick_next_hop(NodeId current, const Packet& packet,
                       sim::RandomStream& rng);
  /// Out of line so the common no-probe transmit path stays branch + fall
  /// through; only instrumented runs pay the dispatch loop.
  void dispatch_transmit_probes(NodeId from, NodeId to, const Packet& packet);

  sim::Simulator& simulator_;
  Topology topology_;
  RoutingTable routing_;
  NetworkConfig config_;
  std::vector<std::unique_ptr<NodeShell>> nodes_;  // index = NodeId; sink slot empty
  std::vector<SinkObserver*> observers_;
  OccupancyProbe occupancy_probe_;
  std::vector<TransmitProbe> transmit_probes_;
  HopSelector hop_selector_;
  PacketPool pool_;
  std::uint64_t next_uid_ = 0;
  std::uint64_t originated_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace tempriv::net
