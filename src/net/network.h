#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/payload.h"

#include "core/delay_buffer.h"
#include "core/discipline_spec.h"
#include "net/forwarding.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/inline_function.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace tempriv::net {

/// Receives every packet the moment it reaches the sink. This is the
/// interface both the legitimate application (which can decrypt) and the
/// eavesdropping adversary (which cannot) implement; they see exactly the
/// same bytes at exactly the same instants.
class SinkObserver {
 public:
  virtual ~SinkObserver() = default;
  virtual void on_delivery(const Packet& packet, sim::Time arrival) = 0;
};

/// Optional instrumentation hook: called whenever a node's buffer occupancy
/// may have changed (after every packet arrival and every transmission).
///
/// Probe and selector hooks are sim::InlineFunction delegates, not
/// std::function: captures up to 48 bytes are stored inline (install-time
/// and per-call heap traffic is zero), and when no hook is installed the
/// per-transmission dispatch reduces to one branch on the hot path.
using OccupancyProbe =
    sim::InlineFunction<void(NodeId node, sim::Time now, std::size_t occupancy),
                        48>;

/// Optional instrumentation hook: called for every link-layer transmission,
/// with the updated cleartext header, at the instant the packet is handed
/// to the link (it reaches `to` one hop-tx-delay later). Useful for packet
/// tracing and for modeling adversaries that eavesdrop inside the network
/// rather than at the sink.
using TransmitProbe = sim::InlineFunction<void(NodeId from, NodeId to,
                                               const Packet& packet,
                                               sim::Time now),
                                          48>;

struct NetworkConfig {
  /// Constant per-hop transmission delay τ (paper §5.2 uses 1 time unit;
  /// PHY/MAC details are abstracted away exactly as the paper does).
  double hop_tx_delay = 1.0;
  /// Optional MAC-contention jitter: each link traversal takes
  /// τ + U[0, hop_jitter). 0 (default) reproduces the paper's constant
  /// per-hop delay; a small positive value models CSMA backoff and is why
  /// even the paper's "no delay" case has a small nonzero adversary MSE.
  double hop_jitter = 0.0;
};

/// Per-transmission next-hop choice. The default is the BFS routing tree;
/// installing a custom selector enables routing-level privacy schemes such
/// as phantom routing (random walk before tree routing, the paper's cited
/// prior work on source-location privacy). Must return a neighbor of
/// `current` in the topology.
using HopSelector = sim::InlineFunction<NodeId(NodeId current,
                                               const Packet& packet,
                                               sim::RandomStream& rng),
                                        48>;

/// The store-and-forward sensor network: topology + BFS routing tree +
/// a forwarding discipline per non-sink node, driven by the simulation
/// kernel. Packets are injected at source nodes via originate() and
/// surface at a sink via SinkObserver callbacks.
///
/// Node state is structure-of-arrays indexed by dense NodeId: per-node role,
/// RNG stream, routing sequence counter and discipline slot live in parallel
/// flat vectors, and the built-in disciplines (immediate / unlimited /
/// drop-tail / RCAD, recognized via ForwardingDiscipline::kind()) are
/// dispatched by a switch on the role byte — no per-node heap objects and no
/// virtual call on the forwarding hot path. Factory-produced custom
/// disciplines keep their objects and virtual dispatch. The per-packet path
/// is allocation-free in steady state: packets are flat PODs, link
/// traversals park them in a free-listed PacketPool and schedule a 16-byte
/// {network, handle} closure (inline in the event kernel), and buffering
/// holds them in per-node DelayBuffer slot pools stored contiguously here.
class Network {
 public:
  /// Throws std::invalid_argument if the topology is missing a sink or if
  /// `config.hop_tx_delay` is not positive. The factory runs once per
  /// routable non-sink node in ascending id order; built-in disciplines it
  /// returns are unwrapped into the flat arrays (their DelayBuffer moves in,
  /// the wrapper object is discarded), custom ones are kept as objects.
  Network(sim::Simulator& simulator, Topology topology,
          const DisciplineFactory& factory, NetworkConfig config,
          const sim::RandomStream& root_rng);

  /// Uniform built-in policy without any per-node factory objects: every
  /// routable non-sink node gets `spec`'s discipline with one shared delay
  /// distribution. This is the construction path for very large networks —
  /// per-node cost is flat-array slots only.
  Network(sim::Simulator& simulator, Topology topology,
          const core::DisciplineSpec& spec, NetworkConfig config,
          const sim::RandomStream& root_rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  /// Injects a freshly-created packet at `origin` at the current simulation
  /// time. The caller seals the payload (see crypto::PayloadCodec); the
  /// network never looks inside it. Returns the packet uid.
  /// Throws std::invalid_argument if origin is a sink or unroutable.
  std::uint64_t originate(NodeId origin, crypto::SealedPayload payload);

  /// Injects a burst of same-origin packets created at the current instant,
  /// sealing them in batched groups: each group of PayloadCodec::kBatchLanes
  /// payloads shares one pass through the codec's key schedules
  /// (PayloadCodec::seal_batch), and origin validation happens once for the
  /// whole burst. Packets are handed to the origin's discipline in payload
  /// order, exactly as repeated originate() calls would, with consecutive
  /// uids starting at the returned value. Sealed bytes are bit-identical to
  /// the one-packet path. Returns the first packet's uid (or the value the
  /// next originate() will return if `payloads` is empty).
  std::uint64_t originate_batch(NodeId origin,
                                const crypto::PayloadCodec& codec,
                                std::span<const crypto::SensorPayload> payloads);

  /// Registers a sink observer (non-owning; must outlive the run).
  void add_sink_observer(SinkObserver* observer);

  /// Installs an occupancy probe (non-owning use; the callable is moved in).
  void set_occupancy_probe(OccupancyProbe probe);

  /// Registers a transmit probe (see TransmitProbe); any number may be
  /// attached and all fire per transmission, in registration order.
  void add_transmit_probe(TransmitProbe probe);

  /// Replaces tree routing with a custom per-transmission hop selector
  /// (see HopSelector). The returned node must be a topology neighbor of
  /// the transmitting node or the transmission throws std::logic_error.
  void set_hop_selector(HopSelector selector);

  /// Pre-sizes the in-flight packet pool for `in_flight` packets
  /// simultaneously traversing links, so the steady state never reallocates.
  void reserve(std::size_t in_flight);

  const Topology& topology() const noexcept { return topology_; }
  const RoutingTable& routing() const noexcept { return routing_; }
  sim::Simulator& simulator() noexcept { return simulator_; }
  double hop_tx_delay() const noexcept { return config_.hop_tx_delay; }

  /// Per-node discipline statistics. Throw std::out_of_range for sinks,
  /// unroutable nodes and unknown ids (those have no discipline).
  std::size_t node_buffered(NodeId id) const;
  std::uint64_t node_preemptions(NodeId id) const;
  std::uint64_t node_drops(NodeId id) const;

  /// Network-wide counters. packets_originated counts only successfully
  /// injected packets (an originate() that throws does not count).
  std::uint64_t packets_originated() const noexcept { return originated_; }
  std::uint64_t packets_delivered() const noexcept { return delivered_; }
  std::uint64_t total_preemptions() const;
  std::uint64_t total_drops() const;
  std::size_t total_buffered() const;

  /// Packets currently traversing a link (in the pool between transmit and
  /// arrival).
  std::size_t packets_in_flight() const noexcept { return pool_.in_flight(); }

  /// Heap bytes held by the per-node arrays, discipline buffers and the
  /// in-flight pool (excludes topology and routing, which report their own).
  std::size_t memory_bytes() const noexcept;

 private:
  /// What a packet arriving at the node meets — the switch key of the
  /// virtual-free hot path. Values mirror DisciplineKind for the built-ins.
  enum class NodeRole : std::uint8_t {
    kSink,        ///< delivery point; packets surface to the observers
    kUnroutable,  ///< no path to any sink; arrivals are a logic error
    kImmediate,
    kUnlimited,
    kDropTail,
    kRcad,
    kCustom,  ///< factory object kept; virtual on_packet dispatch
  };

  /// The NodeContext the disciplines and DelayBuffers see. One per node in
  /// a flat vector sized at construction and never resized afterwards —
  /// buffer release events capture the context address.
  class NodeCtx final : public NodeContext {
   public:
    NodeCtx() = default;
    NodeCtx(Network* net, NodeId id, std::uint16_t hops)
        : net_(net), id_(id), hops_(hops) {}

    sim::Simulator& simulator() noexcept override { return net_->simulator_; }
    sim::RandomStream& rng() noexcept override { return net_->rng_[id_]; }
    NodeId id() const noexcept override { return id_; }
    std::uint16_t hops_to_sink() const noexcept override { return hops_; }
    void transmit(Packet&& packet) override {
      net_->transmit_from(id_, std::move(packet));
    }

   private:
    Network* net_ = nullptr;
    NodeId id_ = kInvalidNode;
    std::uint16_t hops_ = 0;
  };

  void validate_config() const;
  /// Sizes every per-node array (roles, RNG streams, contexts, counters).
  void init_node_arrays(const sim::RandomStream& root_rng);
  void adopt_factory(const DisciplineFactory& factory);
  void adopt_spec(const core::DisciplineSpec& spec);
  /// Registers a buffer slot for `id` and returns the new DelayBuffer.
  core::DelayBuffer& add_buffer_slot(NodeId id, NodeRole role,
                                     core::DelayBuffer buffer,
                                     std::size_t capacity);

  /// A packet is at `node` now: run the node's discipline (switch on the
  /// role byte; the built-ins run inline with no virtual call), then fire
  /// the occupancy probe — the exact operation order of the historical
  /// per-object disciplines.
  void handle(NodeId node, Packet&& packet);
  /// Hands `packet` to the link layer from `node`: next-hop choice, header
  /// update, transmit probes, link-delay scheduling, occupancy probe.
  void transmit_from(NodeId node, Packet&& packet);

  void arrive(NodeId node, Packet&& packet);
  void arrive_from_link(NodeId node, PacketPool::Handle handle);
  void deliver(const Packet& packet);
  void probe(NodeId node);
  std::size_t buffered_of(NodeId node) const;
  /// Throws std::out_of_range unless `id` is a routable non-sink node.
  void require_discipline(NodeId id) const;
  NodeId pick_next_hop(NodeId current, const Packet& packet,
                       sim::RandomStream& rng);
  /// Out of line so the common no-probe transmit path stays branch + fall
  /// through; only instrumented runs pay the dispatch loop.
  void dispatch_transmit_probes(NodeId from, NodeId to, const Packet& packet);

  sim::Simulator& simulator_;
  Topology topology_;
  RoutingTable routing_;
  NetworkConfig config_;

  // Structure-of-arrays node state, all indexed by NodeId.
  std::vector<NodeRole> role_;
  std::vector<std::uint32_t> disc_slot_;  // index into buffers_ or custom_
  std::vector<std::uint16_t> routing_seq_;
  std::vector<sim::RandomStream> rng_;
  std::vector<NodeCtx> ctx_;  // stable addresses after construction

  // Dense per-discipline-slot state for the buffering built-ins. buffers_
  // never grows after construction (release events capture buffer
  // addresses).
  std::vector<core::DelayBuffer> buffers_;
  std::vector<std::size_t> capacity_;  // SIZE_MAX = unbounded
  std::vector<std::uint64_t> drops_;
  std::vector<std::uint64_t> preemptions_;

  // Custom (kind() == kCustom) disciplines keep their objects.
  std::vector<std::unique_ptr<ForwardingDiscipline>> custom_;

  std::vector<SinkObserver*> observers_;
  OccupancyProbe occupancy_probe_;
  std::vector<TransmitProbe> transmit_probes_;
  HopSelector hop_selector_;
  PacketPool pool_;
  std::uint64_t next_uid_ = 0;
  std::uint64_t originated_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace tempriv::net
