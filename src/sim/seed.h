#pragma once

#include <cstdint>

#include "sim/rng.h"

namespace tempriv::sim {

/// Derives an independent 64-bit seed for substream `stream_id` of a root
/// seed, the seed-level analogue of Xoshiro256pp::split(): replication r of
/// a simulation seeded with `root` runs with derive_seed(root, r), and
/// different (root, stream_id) pairs land in decorrelated SplitMix64
/// sequences. Pure function of its arguments, so a parallel campaign can
/// compute any job's seed without running the jobs before it.
///
/// The root is first diffused through one SplitMix64 step so that related
/// roots (e.g. 1, 2, 3) do not produce related streams, then the stream id
/// selects a distinct sequence via the Weyl increment.
constexpr std::uint64_t derive_seed(std::uint64_t root,
                                    std::uint64_t stream_id) noexcept {
  SplitMix64 diffuse(root);
  SplitMix64 stream(diffuse.next() ^
                    (stream_id * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  return stream.next();
}

}  // namespace tempriv::sim
