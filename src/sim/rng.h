#pragma once

#include <array>
#include <cstdint>

namespace tempriv::sim {

/// SplitMix64: a tiny, fast 64-bit generator. We use it for two jobs:
/// seeding Xoshiro256pp state from a single 64-bit seed, and deriving
/// independent per-component substream seeds ("splitting") so that adding a
/// new source/node never perturbs the random stream of existing ones.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ (Blackman & Vigna). Deterministic and bit-stable across
/// platforms, unlike std:: distributions; this is the root generator for
/// every random quantity in the simulator.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random> if a
/// caller wants that (the library itself only uses the samplers in
/// random.h, which are bit-stable).
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64, per the authors'
  /// recommendation (avoids the all-zero state for any seed).
  explicit Xoshiro256pp(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Derives an independent generator for a subcomponent. `stream_id`
  /// identifies the component (node id, source id, ...); generators with
  /// different ids are statistically independent of each other and of
  /// `*this`'s future output.
  Xoshiro256pp split(std::uint64_t stream_id) const noexcept;

  /// 2^128 steps of the generator; used by split() to decorrelate streams.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace tempriv::sim
