#include "sim/random.h"

#include <cassert>
#include <cmath>

namespace tempriv::sim {

double RandomStream::uniform01() noexcept {
  // Take the top 53 bits; (x >> 11) * 2^-53 is the canonical conversion.
  return static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
}

double RandomStream::uniform01_open_left() noexcept {
  return 1.0 - uniform01();  // in (0, 1]
}

double RandomStream::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t RandomStream::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = rng_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = rng_.next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool RandomStream::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double RandomStream::exponential_mean(double mean) noexcept {
  assert(mean > 0.0);
  return -mean * std::log(uniform01_open_left());
}

double RandomStream::exponential_rate(double rate) noexcept {
  assert(rate > 0.0);
  return -std::log(uniform01_open_left()) / rate;
}

double RandomStream::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  return xm * std::pow(uniform01_open_left(), -1.0 / alpha);
}

double RandomStream::normal(double mean, double stddev) noexcept {
  const double u1 = uniform01_open_left();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(6.283185307179586476925286766559 * u2);
}

double RandomStream::erlang(unsigned k, double rate) noexcept {
  assert(rate > 0.0);
  // Product-of-uniforms form: one log instead of k.
  double product = 1.0;
  for (unsigned i = 0; i < k; ++i) product *= uniform01_open_left();
  return -std::log(product) / rate;
}

std::uint64_t RandomStream::poisson(double mean) noexcept {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: count uniforms until their product drops below e^-mean.
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform01_open_left();
    while (product > threshold) {
      ++count;
      product *= uniform01_open_left();
    }
    return count;
  }
  // Split recursively: Poisson(a+b) = Poisson(a) + Poisson(b).
  const double half = mean / 2.0;
  return poisson(half) + poisson(mean - half);
}

}  // namespace tempriv::sim
