#pragma once

#include <limits>

namespace tempriv::sim {

/// Simulation time, measured in abstract "time units" (the paper's unit).
/// The paper's evaluation uses a per-hop transmission delay of 1 time unit.
using Time = double;

/// A duration between two simulation instants (same unit as Time).
using Duration = double;

/// Sentinel for "never" / "no deadline".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Time zero, the start of every simulation run.
inline constexpr Time kTimeZero = 0.0;

}  // namespace tempriv::sim
