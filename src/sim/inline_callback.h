#pragma once

#include <cstddef>

#include "sim/inline_function.h"

namespace tempriv::sim {

/// Move-only type-erased nullary callable with a fixed inline buffer — the
/// storage type of the event kernel's slot pool. Callables whose state fits
/// in `Capacity` bytes (and is nothrow-movable) are stored in place;
/// invoking, moving, and destroying them never touches the heap, and every
/// lambda the simulator schedules on its hot path is sized to stay inline
/// (see the allocation-counter test). Larger callables transparently fall
/// back to one heap allocation so the API stays general.
///
/// This is the nullary case of sim::InlineFunction (inline_function.h),
/// which generalizes the same storage scheme to arbitrary signatures for
/// the network's probe/hop-selector delegates.
template <std::size_t Capacity>
using InlineCallback = InlineFunction<void(), Capacity>;

}  // namespace tempriv::sim
