#include "sim/rng.h"

namespace tempriv::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256pp::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256pp Xoshiro256pp::split(std::uint64_t stream_id) const noexcept {
  // Mix the current state with the stream id through SplitMix64 to obtain a
  // fresh seed, then jump far away so sequences cannot overlap in practice.
  SplitMix64 sm(s_[0] ^ (s_[2] * 0x9e3779b97f4a7c15ULL) ^
                (stream_id + 0x632be59bd9b4e019ULL) * 0xff51afd7ed558ccdULL);
  Xoshiro256pp child(sm.next());
  child.long_jump();
  return child;
}

void Xoshiro256pp::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace tempriv::sim
