#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace tempriv::sim {

/// Discrete-event simulation kernel: a virtual clock plus an event queue.
///
/// Components schedule callbacks at absolute or relative times; run() /
/// run_until() advance the clock from event to event. Cancellation is first
/// class because RCAD preemption must cancel the release event of the victim
/// packet (see core/rcad_buffer.h).
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at`.
  /// Throws std::invalid_argument if `at` precedes the current time or is
  /// not a finite number — both indicate a logic error in the caller.
  EventId schedule_at(Time at, std::function<void()> action);

  /// Schedules `action` after `delay` (>= 0, finite) time units.
  EventId schedule_after(Duration delay, std::function<void()> action);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue is empty or stop() is called.
  /// Returns the number of events executed.
  std::size_t run();

  /// Runs all events with timestamp <= deadline (or until stop()); the clock
  /// then rests at min(deadline, time of last work). Returns events executed.
  std::size_t run_until(Time deadline);

  /// Executes exactly one event if any is pending. Returns whether one ran.
  bool step();

  /// Requests run()/run_until() to return after the current callback.
  void stop() noexcept { stopped_ = true; }

  /// Pending (non-cancelled) event count.
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Time of the next pending event (kTimeInfinity if none).
  Time next_event_time() const { return queue_.next_time(); }

  /// Total events executed since construction.
  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace tempriv::sim
