#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace tempriv::sim {

/// Discrete-event simulation kernel: a virtual clock plus an event queue.
///
/// Components schedule callbacks at absolute or relative times; run() /
/// run_until() advance the clock from event to event. Cancellation is first
/// class because RCAD preemption must cancel the release event of the victim
/// packet (see core/rcad_buffer.h).
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at`.
  /// Throws std::invalid_argument if `at` precedes the current time or is
  /// not a finite number — both indicate a logic error in the caller.
  /// `action` is any nullary callable; small captures are stored inline in
  /// the kernel's slot pool (see EventQueue::Callback) with no heap
  /// allocation.
  template <class F>
  EventId schedule_at(Time at, F&& action) {
    if (!std::isfinite(at)) {
      throw std::invalid_argument("Simulator::schedule_at: non-finite time");
    }
    if (at < now_) {
      throw std::invalid_argument(
          "Simulator::schedule_at: cannot schedule in the past");
    }
    return queue_.schedule(at, std::forward<F>(action));
  }

  /// Schedules `action` after `delay` (>= 0, finite) time units.
  template <class F>
  EventId schedule_after(Duration delay, F&& action) {
    if (!std::isfinite(delay) || delay < 0.0) {
      throw std::invalid_argument(
          "Simulator::schedule_after: delay must be finite and >= 0");
    }
    return queue_.schedule(now_ + delay, std::forward<F>(action));
  }

  /// schedule_after() for delays drawn from a fixed constant (link latency
  /// being the canonical case): now_ never decreases, so such events arrive
  /// in non-decreasing time order and take the event queue's O(1) FIFO lane
  /// (EventQueue::schedule_monotone) instead of the heap. Safe for any
  /// delay — out-of-order times fall back to the heap internally — but the
  /// win exists only when successive calls' (now_ + delay) are
  /// non-decreasing.
  template <class F>
  EventId schedule_after_monotone(Duration delay, F&& action) {
    if (!std::isfinite(delay) || delay < 0.0) {
      throw std::invalid_argument(
          "Simulator::schedule_after_monotone: delay must be finite and >= 0");
    }
    return queue_.schedule_monotone(now_ + delay, std::forward<F>(action));
  }

  /// Pre-sizes the event queue for `events` concurrent pending events so the
  /// steady state never reallocates (see EventQueue::reserve). The drain
  /// buffer run() batches into is pre-sized too: an equal-time cohort can
  /// never exceed the pending-event count.
  void reserve(std::size_t events) {
    queue_.reserve(events);
    batch_.reserve(events);
  }

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue is empty or stop() is called.
  /// Returns the number of events executed.
  ///
  /// Hybrid dispatch kernel: a head event with a unique timestamp — the
  /// vast majority under continuous random delays — pops directly
  /// (EventQueue::pop_if_single), while equal-time events run as one
  /// drained batch (EventQueue::pop_batch), consulting the queue once per
  /// distinct timestamp instead of once per event. Either way the
  /// execution order — (time, insertion order) — is exactly the
  /// one-pop()-per-event order, including events scheduled or cancelled by
  /// callbacks inside a batch. stop() mid-batch re-queues the not-yet-run
  /// remainder, so pending_events() afterwards matches the unbatched
  /// kernel's.
  std::size_t run();

  /// Runs all events with timestamp <= deadline (or until stop()); the clock
  /// then rests at min(deadline, time of last work). Returns events executed.
  /// Batched like run().
  std::size_t run_until(Time deadline);

  /// Executes exactly one event if any is pending. Returns whether one ran.
  bool step();

  /// Requests run()/run_until() to return after the current callback.
  void stop() noexcept { stopped_ = true; }

  /// Pending (non-cancelled) event count.
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Time of the next pending event (kTimeInfinity if none).
  Time next_event_time() const { return queue_.next_time(); }

  /// Total events executed since construction.
  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  /// Executes the drained ids in batch_ at now_; re-queues the remainder on
  /// stop() or an exception unwinding out of a callback. Returns the number
  /// of events that actually ran. Clears batch_.
  std::size_t run_batch();

  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  // Reused drain buffer for run()/run_until(): grows to the largest
  // equal-time cohort once, then the batch loop is allocation-free.
  std::vector<EventId> batch_;
};

}  // namespace tempriv::sim
