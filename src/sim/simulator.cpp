#include "sim/simulator.h"

namespace tempriv::sim {

bool Simulator::step() {
  auto event = queue_.pop();
  if (!event) return false;
  now_ = event->at;
  ++executed_;
  event->action();
  return true;
}

std::size_t Simulator::run_batch() {
  std::size_t ran = 0;
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    if (stopped_) {
      // Give back everything not yet run so pending_events() matches the
      // unbatched kernel's view after a stop().
      queue_.restore(now_, {batch_.data() + i, batch_.size() - i});
      break;
    }
    auto action = queue_.take(batch_[i]);
    // nullopt: an earlier callback in this batch cancelled the event — the
    // one-pop()-per-event loop would never have surfaced it either.
    if (!action) continue;
    ++executed_;
    ++ran;
    try {
      (*action)();
    } catch (...) {
      queue_.restore(now_, {batch_.data() + i + 1, batch_.size() - i - 1});
      batch_.clear();
      throw;
    }
  }
  batch_.clear();
  return ran;
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t count = 0;
  // Singleton cohorts — the vast majority under continuous random
  // delays — execute straight out of their pool slot (no callback move,
  // no drained-slot bookkeeping); only genuine equal-time runs (batched
  // originate bursts, degenerate grids) pay for the pop_batch/take
  // machinery.
  const auto dispatch = [this, &count](Time at, EventId,
                                       EventQueue::Callback& action) {
    now_ = at;
    ++executed_;
    ++count;
    action();
  };
  while (!stopped_) {
    if (queue_.dispatch_if_single(dispatch)) continue;
    const Time at = queue_.pop_batch(batch_);
    if (batch_.empty()) break;
    now_ = at;
    count += run_batch();
  }
  return count;
}

std::size_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::size_t count = 0;
  const auto dispatch = [this, &count](Time at, EventId,
                                       EventQueue::Callback& action) {
    now_ = at;
    ++executed_;
    ++count;
    action();
  };
  while (!stopped_ && queue_.next_time() <= deadline) {
    if (queue_.dispatch_if_single(dispatch)) continue;
    const Time at = queue_.pop_batch(batch_);
    if (batch_.empty()) break;
    now_ = at;
    count += run_batch();
  }
  if (!stopped_ && now_ < deadline && std::isfinite(deadline)) now_ = deadline;
  return count;
}

}  // namespace tempriv::sim
