#include "sim/simulator.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace tempriv::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> action) {
  if (!std::isfinite(at)) {
    throw std::invalid_argument("Simulator::schedule_at: non-finite time");
  }
  if (at < now_) {
    throw std::invalid_argument(
        "Simulator::schedule_at: cannot schedule in the past");
  }
  return queue_.schedule(at, std::move(action));
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> action) {
  if (!std::isfinite(delay) || delay < 0.0) {
    throw std::invalid_argument(
        "Simulator::schedule_after: delay must be finite and >= 0");
  }
  return queue_.schedule(now_ + delay, std::move(action));
}

bool Simulator::step() {
  auto event = queue_.pop();
  if (!event) return false;
  now_ = event->at;
  ++executed_;
  event->action();
  return true;
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t count = 0;
  while (!stopped_ && step()) ++count;
  return count;
}

std::size_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::size_t count = 0;
  while (!stopped_ && queue_.next_time() <= deadline && step()) ++count;
  if (!stopped_ && now_ < deadline && std::isfinite(deadline)) now_ = deadline;
  return count;
}

}  // namespace tempriv::sim
