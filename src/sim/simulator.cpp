#include "sim/simulator.h"

namespace tempriv::sim {

bool Simulator::step() {
  auto event = queue_.pop();
  if (!event) return false;
  now_ = event->at;
  ++executed_;
  event->action();
  return true;
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t count = 0;
  while (!stopped_ && step()) ++count;
  return count;
}

std::size_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::size_t count = 0;
  while (!stopped_ && queue_.next_time() <= deadline && step()) ++count;
  if (!stopped_ && now_ < deadline && std::isfinite(deadline)) now_ = deadline;
  return count;
}

}  // namespace tempriv::sim
