#pragma once

#include <cstdint>

#include "sim/rng.h"

namespace tempriv::sim {

/// Deterministic, platform-stable random variate samplers on top of
/// Xoshiro256pp. We deliberately avoid std:: distributions: their output is
/// implementation-defined and differs between libstdc++ versions, which
/// would make simulation results irreproducible.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) noexcept : rng_(seed) {}
  explicit RandomStream(Xoshiro256pp rng) noexcept : rng_(rng) {}

  /// Derives an independent stream for subcomponent `stream_id`.
  RandomStream split(std::uint64_t stream_id) const noexcept {
    return RandomStream(rng_.split(stream_id));
  }

  /// Raw 64 uniform bits.
  std::uint64_t bits() noexcept { return rng_.next(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Uniform double in (0, 1]; safe to pass to log().
  double uniform01_open_left() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (Lemire rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with given mean (= 1/rate). Requires mean > 0.
  double exponential_mean(double mean) noexcept;

  /// Exponential with given rate lambda. Requires rate > 0.
  double exponential_rate(double rate) noexcept;

  /// Pareto (Lomax-free classic form): xm * U^{-1/alpha}, support [xm, inf).
  /// Requires xm > 0, alpha > 0. Mean is finite only for alpha > 1.
  double pareto(double xm, double alpha) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev) noexcept;

  /// Erlang(k, rate): sum of k independent Exponential(rate) variates.
  double erlang(unsigned k, double rate) noexcept;

  /// Poisson-distributed count with the given mean. Uses Knuth's product
  /// method for small means and normal approximation with rejection
  /// adjustment (PTRS-lite) avoided: for large means we sum Erlang steps.
  std::uint64_t poisson(double mean) noexcept;

 private:
  Xoshiro256pp rng_;
};

}  // namespace tempriv::sim
