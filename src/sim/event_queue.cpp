#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace tempriv::sim {

std::uint64_t EventQueue::next_aux(std::uint32_t slot) {
  if (next_seq_ >= (1ull << 40)) {
    throw std::length_error("EventQueue: sequence number space exhausted");
  }
  return (next_seq_++ << kSlotBits) | slot;
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    Slot& s = slot_at(slot);
    free_head_ = s.next_free;
#if defined(__GNUC__) || defined(__clang__)
    // Warm the next free slot's line for the next schedule() call.
    if (free_head_ != kNilSlot) __builtin_prefetch(&slot_at(free_head_), 1);
#endif
    s.next_free = kNilSlot;
    return slot;
  }
  if (slot_count_ == kMaxSlots) {
    throw std::length_error("EventQueue: slot pool exhausted");
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slot_at(slot);
  s.action = Callback{};
  // Resetting the occupant word invalidates the outstanding handle and any
  // heap record for this slot's previous event; the next occupant's aux has
  // a fresh sequence number, so stale records can never spring back to life.
  s.aux = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint64_t aux = id.value();
  const std::uint32_t slot = aux_slot(aux);
  if (slot >= slot_count_) return false;
  if (slot_at(slot).aux != aux) return false;
  // A drained event has no lane record to tombstone; just settle the
  // outstanding count. Otherwise the record stays behind as a tombstone in
  // whichever lane holds it.
  if (slot_at(slot).next_free == kDrainedSlot) {
    --outstanding_;
  } else if (slot_at(slot).lane != 0) {
    ++fifo_tomb_;
  } else {
    ++heap_tomb_;
  }
  release_slot(slot);
  --live_count_;
  // Sweep the heads now so next_time() never reports a cancelled event.
  drop_leading_tombstones();
  return true;
}

// Sift up with a hole: the entry is written once at its final position
// instead of swapped level by level.
void EventQueue::heap_push(HeapEntry entry) {
  std::size_t pos = heap_.size();
  heap_.push_back(entry);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!entry.precedes(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = entry;
}

// Removes the root, bottom-up (Wegener): descend along minimum children to
// a leaf unconditionally — the displaced back element almost always belongs
// near the leaves, so comparing against it at every level is wasted work —
// then bubble it up from the leaf hole the few (usually zero) levels it
// deserves. The resulting layout can differ from a classic sift-down, but
// pop order is a property of the (key, aux) multiset — a total order with
// unique aux — so execution order is unchanged.
void EventQueue::heap_pop_front() noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t pos = 0;
  while (true) {
    const std::size_t first_child = 4 * pos + 1;
    if (first_child >= n) break;
#if defined(__GNUC__) || defined(__clang__)
    // Start the grandchildren of the likely path toward memory; the min
    // scan below gives the prefetch one level of lead time.
    if (4 * first_child + 1 < n) __builtin_prefetch(&heap_[4 * first_child + 1]);
#endif
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (heap_[c].precedes(heap_[best])) best = c;
    }
    heap_[pos] = heap_[best];
    pos = best;
  }
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!last.precedes(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = last;
}

void EventQueue::fifo_grow() {
  const std::size_t cap = fifo_.empty() ? 64 : fifo_.size() * 2;
  std::vector<HeapEntry> grown(cap);
  for (std::size_t i = 0; i < fifo_size_; ++i) {
    grown[i] = fifo_[(fifo_head_ + i) & (fifo_.size() - 1)];
  }
  fifo_ = std::move(grown);
  fifo_head_ = 0;
}

void EventQueue::drop_leading_tombstones() noexcept {
  // Each lane's head is probed only while that lane carries dead records —
  // cancel-free lanes (the fifo lane, in practice) cost one counter branch.
  // Tombstones still buried mid-lane surface on later pops.
  while (heap_tomb_ != 0 && !heap_.empty() && !entry_live(heap_.front())) {
    heap_pop_front();
    --heap_tomb_;
    TEMPRIV_TLM_COUNT(kEqTombstoneSkipped);
  }
  while (fifo_tomb_ != 0 && fifo_size_ != 0 && !entry_live(fifo_front())) {
    fifo_pop_front();
    --fifo_tomb_;
    TEMPRIV_TLM_COUNT(kEqTombstoneSkipped);
  }
}

std::optional<EventQueue::Event> EventQueue::pop() {
  drop_leading_tombstones();
  const bool heap_has = !heap_.empty();
  if (!heap_has && fifo_size_ == 0) return std::nullopt;
  const bool from_fifo =
      fifo_size_ != 0 && (!heap_has || fifo_front().precedes(heap_.front()));
  const HeapEntry top = from_fifo ? fifo_front() : heap_.front();
  const std::uint32_t slot = aux_slot(top.aux);
  // Start pulling the slot (a random-access line) into cache while the
  // sift-down below walks the heap; the two latencies overlap.
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(&slot_at(slot), 1);
#endif
  if (from_fifo) {
    fifo_pop_front();
  } else {
    heap_pop_front();
  }
  Event event{key_to_time(top.key), EventId(top.aux),
              std::move(slot_at(slot).action)};
  release_slot(slot);
  --live_count_;
  // The new head may be a tombstone left by an earlier mid-lane cancel.
  drop_leading_tombstones();
  return event;
}

bool EventQueue::pop_if_single(Event& event) {
  // All the singleton logic lives in the dispatch template; here the
  // "dispatch" just moves the callback out into the caller's Event.
  return dispatch_if_single([&event](Time at, EventId id, Callback& action) {
    event.at = at;
    event.id = id;
    event.action = std::move(action);
  });
}

Time EventQueue::pop_batch(std::vector<EventId>& out) {
  out.clear();
  drop_leading_tombstones();
  if (heap_.empty() && fifo_size_ == 0) return kTimeInfinity;
  std::uint64_t key = ~0ull;
  if (!heap_.empty()) key = heap_.front().key;
  if (fifo_size_ != 0 && fifo_front().key < key) key = fifo_front().key;
  while (true) {
    const bool heap_in = !heap_.empty() && heap_.front().key == key;
    const bool fifo_in = fifo_size_ != 0 && fifo_front().key == key;
    if (!heap_in && !fifo_in) break;
    // Equal keys across lanes: the aux word (its high bits are the global
    // sequence number) picks the earlier insertion, exactly as precedes().
    HeapEntry top;
    bool from_fifo;
    if (heap_in && (!fifo_in || heap_.front().aux < fifo_front().aux)) {
      top = heap_.front();
      heap_pop_front();
      from_fifo = false;
    } else {
      top = fifo_front();
      fifo_pop_front();
      from_fifo = true;
    }
    // A mid-lane cancel's tombstone may surface inside the equal-key run;
    // only live records join the batch (their slots stay claimed until
    // take(), marked drained for cancel()'s bookkeeping). Dead records are
    // discharged from their lane's tombstone count here.
    if (entry_live(top)) {
      Slot& s = slot_at(aux_slot(top.aux));
      s.next_free = kDrainedSlot;
      ++outstanding_;
      out.push_back(EventId(top.aux));
    } else if (from_fifo) {
      --fifo_tomb_;
      TEMPRIV_TLM_COUNT(kEqTombstoneSkipped);
    } else {
      --heap_tomb_;
      TEMPRIV_TLM_COUNT(kEqTombstoneSkipped);
    }
  }
  if (!out.empty()) TEMPRIV_TLM_COUNT(kEqPopBatch);
  // The drain may expose a buried tombstone (an earlier mid-lane cancel) at
  // a new head; sweep so next_time() stays truthful, as pop() does.
  drop_leading_tombstones();
  return key_to_time(key);
}

std::optional<EventQueue::Callback> EventQueue::take(EventId id) {
  if (!id.valid()) return std::nullopt;
  const std::uint64_t aux = id.value();
  const std::uint32_t slot = aux_slot(aux);
  if (slot >= slot_count_) return std::nullopt;
  Slot& s = slot_at(slot);
  if (s.aux != aux) return std::nullopt;
  // Taking an id still in a lane (the documented cancel-and-return case)
  // leaves its record behind as a tombstone, like cancel() does.
  if (s.next_free == kDrainedSlot) {
    --outstanding_;
  } else if (s.lane != 0) {
    ++fifo_tomb_;
  } else {
    ++heap_tomb_;
  }
  std::optional<Callback> action(std::move(s.action));
  release_slot(slot);
  --live_count_;
  return action;
}

void EventQueue::restore(Time at, std::span<const EventId> ids) {
  const std::uint64_t key = time_to_key(at);
  for (const EventId id : ids) {
    const std::uint64_t aux = id.value();
    const std::uint32_t slot = aux_slot(aux);
    if (aux == 0 || slot >= slot_count_) continue;
    Slot& s = slot_at(slot);
    // Only drained events re-enter the heap: an id that was cancelled or
    // taken has nothing to restore, and one still in the heap must not gain
    // a duplicate record.
    if (s.aux != aux || s.next_free != kDrainedSlot) continue;
    s.next_free = kNilSlot;
    s.lane = 0;  // the record re-enters via the heap lane
    --outstanding_;
    heap_push(HeapEntry{key, aux});
  }
}

void EventQueue::clear() {
  heap_.clear();
  fifo_head_ = 0;
  fifo_size_ = 0;
  heap_tomb_ = 0;
  fifo_tomb_ = 0;
  free_head_ = kNilSlot;
  for (std::uint32_t i = slot_count_; i-- > 0;) {
    Slot& s = slot_at(i);
    s.action = Callback{};
    s.aux = 0;
    s.next_free = free_head_;
    free_head_ = i;
  }
  live_count_ = 0;
  outstanding_ = 0;
}

void EventQueue::reserve(std::size_t events) {
  heap_.reserve(events);
  while (fifo_.size() < events) fifo_grow();
  const std::size_t chunks =
      (events + kChunkSize - 1) / kChunkSize;
  while (chunks_.size() < chunks) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
}

}  // namespace tempriv::sim
