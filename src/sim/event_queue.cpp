#include "sim/event_queue.h"

#include <utility>

namespace tempriv::sim {

EventId EventQueue::schedule(Time at, std::function<void()> action) {
  const EventId id(next_seq_);
  heap_.push(HeapEntry{at, next_seq_, id});
  actions_.emplace(next_seq_, std::move(action));
  ++next_seq_;
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = actions_.find(id.value());
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id.value());
  --live_count_;
  drop_leading_tombstones();
  return true;
}

void EventQueue::drop_leading_tombstones() {
  while (!heap_.empty()) {
    const auto tomb = cancelled_.find(heap_.top().id.value());
    if (tomb == cancelled_.end()) break;
    cancelled_.erase(tomb);
    heap_.pop();
  }
}

std::optional<EventQueue::Event> EventQueue::pop() {
  drop_leading_tombstones();
  if (heap_.empty()) return std::nullopt;
  const HeapEntry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.id.value());
  Event event{top.at, top.id, std::move(it->second)};
  actions_.erase(it);
  --live_count_;
  // The new head may be a tombstone left by an earlier mid-heap cancel;
  // sweep now so next_time() never reports a cancelled event.
  drop_leading_tombstones();
  return event;
}

Time EventQueue::next_time() const {
  // drop_leading_tombstones() runs on every cancel, so the top is live.
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

void EventQueue::clear() {
  heap_ = {};
  cancelled_.clear();
  actions_.clear();
  live_count_ = 0;
}

}  // namespace tempriv::sim
