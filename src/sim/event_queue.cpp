#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace tempriv::sim {

std::uint64_t EventQueue::next_aux(std::uint32_t slot) {
  if (next_seq_ >= (1ull << 40)) {
    throw std::length_error("EventQueue: sequence number space exhausted");
  }
  return (next_seq_++ << kSlotBits) | slot;
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    Slot& s = slot_at(slot);
    free_head_ = s.next_free;
#if defined(__GNUC__) || defined(__clang__)
    // Warm the next free slot's line for the next schedule() call.
    if (free_head_ != kNilSlot) __builtin_prefetch(&slot_at(free_head_), 1);
#endif
    s.next_free = kNilSlot;
    return slot;
  }
  if (slot_count_ == kMaxSlots) {
    throw std::length_error("EventQueue: slot pool exhausted");
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slot_at(slot);
  s.action = Callback{};
  // Resetting the occupant word invalidates the outstanding handle and any
  // heap record for this slot's previous event; the next occupant's aux has
  // a fresh sequence number, so stale records can never spring back to life.
  s.aux = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint64_t aux = id.value();
  const std::uint32_t slot = aux_slot(aux);
  if (slot >= slot_count_) return false;
  if (slot_at(slot).aux != aux) return false;
  release_slot(slot);
  --live_count_;
  // The cancelled event's heap record stays behind as a tombstone; sweep the
  // head now so next_time() never reports a cancelled event.
  drop_leading_tombstones();
  return true;
}

// Sift up with a hole: the entry is written once at its final position
// instead of swapped level by level.
void EventQueue::heap_push(HeapEntry entry) {
  std::size_t pos = heap_.size();
  heap_.push_back(entry);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!entry.precedes(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = entry;
}

// Removes the root: sift the old back element down through the hole the
// root leaves, moving each level's smallest child up (one 16-byte move per
// level, never a swap).
void EventQueue::heap_pop_front() noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t pos = 0;
  while (true) {
    const std::size_t first_child = 4 * pos + 1;
    if (first_child >= n) break;
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (heap_[c].precedes(heap_[best])) best = c;
    }
    if (!heap_[best].precedes(last)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = last;
}

void EventQueue::drop_leading_tombstones() noexcept {
  // heap_.size() == live_count_ means no cancelled records are in flight, so
  // cancel-free workloads skip the per-pop slot probe entirely.
  while (heap_.size() != live_count_ && !entry_live(heap_.front())) {
    heap_pop_front();
  }
}

std::optional<EventQueue::Event> EventQueue::pop() {
  drop_leading_tombstones();
  if (heap_.empty()) return std::nullopt;
  const HeapEntry top = heap_.front();
  const std::uint32_t slot = aux_slot(top.aux);
  // Start pulling the slot (a random-access line) into cache while the
  // sift-down below walks the heap; the two latencies overlap.
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(&slot_at(slot), 1);
#endif
  heap_pop_front();
  Event event{key_to_time(top.key), EventId(top.aux),
              std::move(slot_at(slot).action)};
  release_slot(slot);
  --live_count_;
  // The new head may be a tombstone left by an earlier mid-heap cancel.
  drop_leading_tombstones();
  return event;
}

void EventQueue::clear() {
  heap_.clear();
  free_head_ = kNilSlot;
  for (std::uint32_t i = slot_count_; i-- > 0;) {
    Slot& s = slot_at(i);
    s.action = Callback{};
    s.aux = 0;
    s.next_free = free_head_;
    free_head_ = i;
  }
  live_count_ = 0;
}

void EventQueue::reserve(std::size_t events) {
  heap_.reserve(events);
  const std::size_t chunks =
      (events + kChunkSize - 1) / kChunkSize;
  while (chunks_.size() < chunks) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
}

}  // namespace tempriv::sim
