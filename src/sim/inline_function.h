#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tempriv::sim {

/// Move-only type-erased callable with a fixed inline buffer, generalized
/// over the call signature. Callables whose state fits in `Capacity` bytes
/// (and is nothrow-movable) are stored in place — invoking, moving, and
/// destroying them never touches the heap. Larger callables transparently
/// fall back to a heap allocation so the API stays general.
///
/// This is the delegate type the simulator uses wherever std::function used
/// to sit on a per-event or per-transmission path: std::function's
/// small-buffer window (16 bytes on libstdc++) is too small for the capture
/// lists the simulator's components use, so every dispatch point it backed
/// paid one heap allocation per stored callable and an extra indirection
/// per call. InlineCallback (sim/inline_callback.h) is the nullary
/// specialization the event kernel stores in its slot pool.
template <class Signature, std::size_t Capacity>
class InlineFunction;  // only the R(Args...) specialization exists

template <class R, class... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  /// Replaces the stored callable in place (no temporary InlineFunction,
  /// no extra buffer move) — the hot path for EventQueue::schedule.
  template <class F>
  void emplace(F&& fn) {
    reset();
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>()) {
      ::new (static_cast<void*>(buf_)) Decayed(std::forward<F>(fn));
      vtable_ = &kInlineVTable<Decayed>;
    } else {
      ::new (static_cast<void*>(buf_))
          Decayed*(new Decayed(std::forward<F>(fn)));
      vtable_ = &kHeapVTable<Decayed>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return vtable_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// Whether `F` would be stored without a heap allocation.
  template <class F>
  static constexpr bool fits_inline() noexcept {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct VTable {
    R (*invoke)(void* buf, Args&&... args);
    void (*move_to)(void* src_buf, void* dst_buf) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <class F>
  static constexpr VTable kInlineVTable{
      [](void* buf, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<F*>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* buf) noexcept { std::launder(reinterpret_cast<F*>(buf))->~F(); },
  };

  template <class F>
  static constexpr VTable kHeapVTable{
      [](void* buf, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<F**>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        F** from = std::launder(reinterpret_cast<F**>(src));
        ::new (dst) F*(*from);
        *from = nullptr;
      },
      [](void* buf) noexcept {
        delete *std::launder(reinterpret_cast<F**>(buf));
      },
  };

  void move_from(InlineFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->move_to(other.buf_, buf_);
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace tempriv::sim
