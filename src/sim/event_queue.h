#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace tempriv::sim {

/// Opaque handle to a scheduled event; used to cancel it later.
/// Value 0 is reserved for "invalid".
class EventId {
 public:
  constexpr EventId() noexcept = default;
  constexpr explicit EventId(std::uint64_t value) noexcept : value_(value) {}

  constexpr bool valid() const noexcept { return value_ != 0; }
  constexpr std::uint64_t value() const noexcept { return value_; }

  friend constexpr bool operator==(EventId, EventId) noexcept = default;

 private:
  std::uint64_t value_ = 0;
};

/// Priority queue of timed callbacks with O(log n) insert/pop and O(1)
/// amortized cancellation (lazy deletion: cancelled ids are tombstoned and
/// skipped at pop time). Ties in time are broken by insertion order so runs
/// are fully deterministic.
class EventQueue {
 public:
  struct Event {
    Time at = kTimeZero;
    EventId id;
    std::function<void()> action;
  };

  /// Inserts `action` to fire at time `at`. Returns a handle for cancel().
  EventId schedule(Time at, std::function<void()> action);

  /// Cancels a pending event. Returns true if the event was still pending
  /// (it will not fire); false if it already fired, was already cancelled,
  /// or the id is invalid.
  bool cancel(EventId id);

  /// Removes and returns the earliest pending event, or nullopt if empty.
  std::optional<Event> pop();

  /// Time of the earliest pending event, or kTimeInfinity if empty.
  Time next_time() const;

  /// Number of pending (non-cancelled) events.
  std::size_t size() const noexcept { return live_count_; }
  bool empty() const noexcept { return live_count_ == 0; }

  /// Drops every pending event.
  void clear();

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;  // insertion order; tie-breaker for determinism
    EventId id;
    // Greater-than so std::priority_queue acts as a min-heap.
    bool operator>(const HeapEntry& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void drop_leading_tombstones();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  // Actions are stored by id so cancel() can free the callback immediately.
  std::unordered_map<std::uint64_t, std::function<void()>> actions_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace tempriv::sim
