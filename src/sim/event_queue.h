#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"
#include "telemetry/probes.h"

namespace tempriv::sim {

/// Opaque handle to a scheduled event; used to cancel it later.
/// Value 0 is reserved for "invalid".
///
/// Internally the value is the event's unique "aux" word: bits [0,24) hold
/// the pool slot index and bits [24,64) the event's global sequence number.
/// The sequence number makes every handle unique for the queue's lifetime,
/// so a handle kept past its event's firing (or cancellation) can never
/// alias the slot's next occupant.
class EventId {
 public:
  constexpr EventId() noexcept = default;
  constexpr explicit EventId(std::uint64_t value) noexcept : value_(value) {}

  constexpr bool valid() const noexcept { return value_ != 0; }
  constexpr std::uint64_t value() const noexcept { return value_; }

  friend constexpr bool operator==(EventId, EventId) noexcept = default;

 private:
  std::uint64_t value_ = 0;
};

/// Priority queue of timed callbacks with O(log n) insert/pop and O(1)
/// cancellation. Ties in time are broken by insertion order so runs are
/// fully deterministic.
///
/// The design is a free-listed slot pool plus a 4-ary implicit heap of
/// 16-byte {key, aux} records:
///  - callbacks live in fixed-size pool slots (InlineCallback — no per-event
///    heap allocation for the capture sizes the simulator uses), stored in
///    1024-slot chunks so pool growth never moves a stored callback;
///  - `key` is the event time's bits mapped monotonically to an unsigned
///    integer (IEEE-754 totally ordered for finite doubles), and `aux`
///    packs {seq:40, slot:24}, so the heap's entire (time, seq) ordering
///    contract is two integer compares on one 16-byte record;
///  - EventId is the aux word itself, so cancel() is an array index plus one
///    8-byte identity compare — no hashing, no tombstone set;
///  - cancelling frees the slot immediately and leaves the heap record
///    behind as a tombstone; records whose aux no longer matches their
///    slot's current occupant are skipped when they surface at the head,
///    and cancel-free workloads skip the check entirely.
/// In steady state (pool and heap at capacity) schedule/cancel/pop perform
/// zero heap allocations (see the allocation-counter test and microbench).
class EventQueue {
 public:
  /// Inline capture budget for scheduled callbacks: enough for the largest
  /// hot-path lambda in the simulator (DelayBuffer's release closure); a
  /// bigger callable still works but falls back to one heap allocation.
  using Callback = InlineCallback<48>;

  struct Event {
    Time at = kTimeZero;
    EventId id;
    Callback action;
  };

  /// Inserts `action` to fire at time `at`. Returns a handle for cancel().
  /// Throws std::length_error if the queue would exceed 2^24 concurrent
  /// events or 2^40 total events (far beyond any simulated workload).
  template <class F>
  EventId schedule(Time at, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    s.action.emplace(std::forward<F>(action));
    const std::uint64_t aux = next_aux(slot);
    s.aux = aux;
    s.lane = 0;
    heap_push(HeapEntry{time_to_key(at), aux});
    ++live_count_;
    TEMPRIV_TLM_COUNT(kEqScheduleHeap);
    TEMPRIV_TLM_GAUGE_MAX(kEqPeakDepth, live_count_);
    return EventId(aux);
  }

  /// schedule() for event streams whose times arrive in non-decreasing
  /// order — constant-latency link arrivals scheduled from a non-decreasing
  /// simulation clock being the canonical case. Such records bypass the
  /// heap entirely: they append to a sorted FIFO ring (O(1) insert, O(1)
  /// pop, one 16-byte slot each) that every pop path merges with the heap
  /// by the same (time, seq) order, so execution order — and therefore
  /// every simulation result — is bit-identical to scheduling through the
  /// heap. Monotonicity is checked, not trusted: a time below the ring's
  /// tail simply routes through the heap lane, keeping correctness
  /// unconditional. cancel()/pop_batch()/restore() work on these events
  /// exactly as on heap-scheduled ones.
  template <class F>
  EventId schedule_monotone(Time at, F&& action) {
    const std::uint64_t key = time_to_key(at);
    if (fifo_size_ != 0 && key < fifo_tail_key_) {
      TEMPRIV_TLM_COUNT(kEqFifoDiverted);
      return schedule(at, std::forward<F>(action));
    }
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    s.action.emplace(std::forward<F>(action));
    const std::uint64_t aux = next_aux(slot);
    s.aux = aux;
    s.lane = 1;
    fifo_push(HeapEntry{key, aux});
    fifo_tail_key_ = key;
    ++live_count_;
    TEMPRIV_TLM_COUNT(kEqScheduleFifo);
    TEMPRIV_TLM_GAUGE_MAX(kEqPeakDepth, live_count_);
    return EventId(aux);
  }

  /// Cancels a pending event. Returns true if the event was still pending
  /// (it will not fire); false if it already fired, was already cancelled,
  /// or the id is invalid.
  bool cancel(EventId id);

  /// Removes and returns the earliest pending event, or nullopt if empty.
  std::optional<Event> pop();

  /// Drains every pending record sharing the earliest time-key into `out`
  /// (cleared first), in insertion order, and returns the shared time
  /// (kTimeInfinity with an empty batch if the queue is empty). One call
  /// replaces a pop() per event: the head sweep, key comparison, and
  /// key→time conversion happen once per *batch* of equal-time events
  /// instead of once per event.
  ///
  /// The drained events' slots are NOT released yet: claim each id with
  /// take() to run it, or hand unrun ids back with restore(). In between,
  /// cancel() on a drained id still works (take() then returns nullopt), and
  /// size() still counts unclaimed events.
  Time pop_batch(std::vector<EventId>& out);

  /// Fast path for the dominant continuous-time case: when the head cohort
  /// is exactly one event, pops it into `event` (exactly as pop() would)
  /// and returns true. Returns false — touching nothing — when the queue is
  /// empty or the head time-key is shared, in which case pop_batch() drains
  /// the cohort. The singleton check inspects only the root's direct
  /// children: heap order forces any entry sharing the head's key to have
  /// an equal-key ancestor there. This spares singleton cohorts — the vast
  /// majority under continuous random delays — the drained-slot
  /// bookkeeping, batch vector traffic, and per-id take() revalidation.
  bool pop_if_single(Event& event);

  /// pop_if_single() without moving the callback out of its pool slot: when
  /// the head cohort is exactly one event, invokes
  /// `dispatch(Time at, EventId id, Callback& action)` with the stored
  /// callback in place, releases the slot afterwards (even if `dispatch`
  /// throws), and returns true. The event's handle dies before `dispatch`
  /// runs, exactly as with pop(); the callback may freely schedule or
  /// cancel other events while executing — pool chunks never move, and the
  /// dispatched slot rejoins the free list only after `dispatch` returns.
  /// This spares the dominant dispatch path one callback move plus a
  /// destructor call per event.
  template <class Dispatch>
  bool dispatch_if_single(Dispatch&& dispatch) {
    drop_leading_tombstones();
    const bool heap_has = !heap_.empty();
    if (!heap_has && fifo_size_ == 0) return false;
    bool from_fifo;
    if (heap_has && fifo_size_ != 0) {
      // The cohort spans both lanes when the lane heads share a key.
      if (fifo_front().key == heap_.front().key) return false;
      from_fifo = fifo_front().precedes(heap_.front());
    } else {
      from_fifo = !heap_has;
    }
    HeapEntry top;
    if (from_fifo) {
      top = fifo_front();
      // The ring is sorted, so only the head's immediate successor can
      // share its key.
      if (fifo_size_ >= 2 &&
          fifo_[(fifo_head_ + 1) & (fifo_.size() - 1)].key == top.key) {
        return false;
      }
    } else {
      top = heap_.front();
      // An entry sharing the head's key must have an equal-key ancestor
      // among the root's direct children (its whole ancestor path carries
      // keys both <= its own and >= the minimum), so these four
      // comparisons decide singleton-ness. An equal-key *tombstone* child
      // sends us down the batch path, where it is merely skipped — rare
      // and still correct.
      const std::size_t n = heap_.size();
      const std::size_t end = n < 5 ? n : 5;
      for (std::size_t c = 1; c < end; ++c) {
        if (heap_[c].key == top.key) return false;
      }
    }
    const std::uint32_t slot = aux_slot(top.aux);
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slot_at(slot), 1);
#endif
    if (from_fifo) {
      fifo_pop_front();
    } else {
      heap_pop_front();
    }
    Slot& s = slot_at(slot);
    s.aux = 0;  // the handle dies before the callback runs, as with pop()
    --live_count_;
    TEMPRIV_TLM_COUNT(kEqDispatchSingle);
    FinishDispatch finisher{*this, slot};
    dispatch(key_to_time(top.key), EventId(top.aux), s.action);
    return true;
  }

  /// Claims an event drained by pop_batch: moves its callback out and frees
  /// its slot. Returns nullopt if the event was cancelled (or already taken)
  /// after the drain. Calling this on an id still in the heap is equivalent
  /// to cancel() plus returning the callback — the heap record tombstones.
  std::optional<Callback> take(EventId id);

  /// Re-queues drained-but-unclaimed events (stop mid-batch, exception
  /// unwind) at time `at` — the time pop_batch returned. Ids that were
  /// cancelled or taken in the meantime are skipped. Relative order among
  /// restored and later-scheduled events is preserved: the heap orders equal
  /// times by the original sequence numbers, which the ids carry.
  void restore(Time at, std::span<const EventId> ids);

  /// Time of the earliest pending event, or kTimeInfinity if empty.
  Time next_time() const noexcept {
    // Leading tombstones are swept on every cancel/pop, so both heads are
    // live; the earliest record is the smaller of the two lane heads.
    std::uint64_t key = ~0ull;
    bool any = false;
    if (!heap_.empty()) {
      key = heap_.front().key;
      any = true;
    }
    if (fifo_size_ != 0) {
      const std::uint64_t fkey = fifo_[fifo_head_].key;
      if (!any || fkey < key) key = fkey;
      any = true;
    }
    return any ? key_to_time(key) : kTimeInfinity;
  }

  /// Number of pending (non-cancelled) events.
  std::size_t size() const noexcept { return live_count_; }
  bool empty() const noexcept { return live_count_ == 0; }

  /// Drops every pending event, frees all pool slots, and discards any
  /// tombstoned heap records. Handles issued before clear() are invalidated
  /// (their slots' occupant words are reset), so they can never cancel an
  /// event scheduled afterwards. Capacity is retained.
  void clear();

  /// Pre-sizes the heap and the slot pool for `events` concurrent events so
  /// the steady state never reallocates.
  void reserve(std::size_t events);

  /// Slots currently allocated in the pool (capacity diagnostics).
  std::size_t slot_count() const noexcept { return slot_count_; }

  /// Monotone bijection from double event times to unsigned keys:
  /// a < b  <=>  time_to_key(a) < time_to_key(b) for all ordered (non-NaN)
  /// doubles. Positive values map above the sign-bit midpoint unchanged;
  /// negative values are bit-complemented to reverse their descending
  /// two's-complement-pattern order.
  static constexpr std::uint64_t time_to_key(Time at) noexcept {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(at);
    return (bits & kSignBit) != 0 ? ~bits : bits | kSignBit;
  }
  static constexpr Time key_to_time(std::uint64_t key) noexcept {
    const std::uint64_t bits = (key & kSignBit) != 0 ? key & ~kSignBit : ~key;
    return std::bit_cast<Time>(bits);
  }

 private:
  static constexpr std::uint64_t kSignBit = 0x8000000000000000ull;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  // Marks an occupied slot whose heap record was drained by pop_batch but
  // not yet claimed/restored. Stored in Slot::next_free (unused while a slot
  // is occupied), so cancel()/take() can tell a drained event from an
  // in-heap one and keep the outstanding_ tombstone accounting exact.
  static constexpr std::uint32_t kDrainedSlot = 0xfffffffeu;
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  // The pool is stored in fixed 1024-slot chunks: growing it allocates a new
  // chunk without moving existing slots (a vector would run every stored
  // callback's move constructor on each reallocation), and slot addresses
  // stay stable for the lifetime of the queue.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct Slot {
    Callback action;
    std::uint64_t aux = 0;  // current occupant's identity; 0 = free
    std::uint32_t next_free = kNilSlot;
    // Which lane holds the occupant's record (0 heap, 1 fifo): cancelling
    // charges the tombstone to the right lane's counter, so pops only probe
    // a lane's head when that lane actually carries dead records.
    std::uint8_t lane = 0;
  };

  struct HeapEntry {
    std::uint64_t key;  // time_to_key(at)
    std::uint64_t aux;  // {seq:40, slot:24}; seq compares in the high bits

    // (time, seq) lexicographic order: seq is unique, so comparing the aux
    // words on key ties is exactly the insertion-order tie-break. The
    // 128-bit composite compiles to a branchless cmp/sbb pair — heap-order
    // comparisons on random delays are near-coinflips, so dodging the
    // branch predictor is worth more than the extra word of arithmetic.
    bool precedes(const HeapEntry& other) const noexcept {
#if defined(__SIZEOF_INT128__)
      const auto mine =
          (static_cast<unsigned __int128>(key) << 64) | aux;
      const auto theirs =
          (static_cast<unsigned __int128>(other.key) << 64) | other.aux;
      return mine < theirs;
#else
      if (key != other.key) return key < other.key;
      return aux < other.aux;
#endif
    }
  };

  Slot& slot_at(std::uint32_t index) noexcept {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& slot_at(std::uint32_t index) const noexcept {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  static constexpr std::uint32_t aux_slot(std::uint64_t aux) noexcept {
    return static_cast<std::uint32_t>(aux & (kMaxSlots - 1));
  }

  std::uint64_t next_aux(std::uint32_t slot);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  // Scope guard for dispatch_if_single: frees the dispatched slot when the
  // callback returns or throws (its aux is already 0, so only the action
  // reset and the free-list push remain), then sweeps any tombstone the
  // callback's cancels left at a lane head.
  struct FinishDispatch {
    EventQueue& queue;
    std::uint32_t slot;
    ~FinishDispatch() {
      Slot& s = queue.slot_at(slot);
      s.action = Callback{};
      s.next_free = queue.free_head_;
      queue.free_head_ = slot;
      queue.drop_leading_tombstones();
    }
  };
  bool entry_live(const HeapEntry& entry) const noexcept {
    return slot_at(aux_slot(entry.aux)).aux == entry.aux;
  }

  void heap_push(HeapEntry entry);
  void heap_pop_front() noexcept;
  void drop_leading_tombstones() noexcept;

  const HeapEntry& fifo_front() const noexcept { return fifo_[fifo_head_]; }
  void fifo_pop_front() noexcept {
    fifo_head_ = (fifo_head_ + 1) & (fifo_.size() - 1);
    if (--fifo_size_ == 0) fifo_head_ = 0;
  }
  void fifo_push(HeapEntry entry) {
    if (fifo_size_ == fifo_.size()) fifo_grow();
    fifo_[(fifo_head_ + fifo_size_) & (fifo_.size() - 1)] = entry;
    ++fifo_size_;
  }
  void fifo_grow();

  // 4-ary implicit min-heap on (key, aux) — i.e. on (time, seq). Compared to
  // a binary heap this halves the levels a pop's sift-down walks (the
  // pop-heavy hot path), and four 16-byte entries are exactly one cache
  // line.
  std::vector<HeapEntry> heap_;
  // Sorted power-of-two ring for schedule_monotone records. Sortedness is an
  // invariant (appends below the tail key divert to the heap), so the lane
  // needs no sifting: the head is always its minimum, and only the head and
  // its successor can ever share the overall minimum key.
  std::vector<HeapEntry> fifo_;
  std::size_t fifo_head_ = 0;  // masked index of the ring's front
  std::size_t fifo_size_ = 0;
  std::uint64_t fifo_tail_key_ = 0;  // key of the most recent append
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;  // slots handed out at least once
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  // Live events drained by pop_batch whose slots are still claimed.
  std::size_t outstanding_ = 0;
  // Dead (cancelled/taken) records still physically present per lane.
  // Zero means pops can skip that lane's head-liveness probe outright —
  // the common case for the fifo lane, whose link-arrival events are never
  // cancelled in practice.
  std::size_t heap_tomb_ = 0;
  std::size_t fifo_tomb_ = 0;
};

}  // namespace tempriv::sim
