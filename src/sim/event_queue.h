#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"

namespace tempriv::sim {

/// Opaque handle to a scheduled event; used to cancel it later.
/// Value 0 is reserved for "invalid".
///
/// Internally the value is the event's unique "aux" word: bits [0,24) hold
/// the pool slot index and bits [24,64) the event's global sequence number.
/// The sequence number makes every handle unique for the queue's lifetime,
/// so a handle kept past its event's firing (or cancellation) can never
/// alias the slot's next occupant.
class EventId {
 public:
  constexpr EventId() noexcept = default;
  constexpr explicit EventId(std::uint64_t value) noexcept : value_(value) {}

  constexpr bool valid() const noexcept { return value_ != 0; }
  constexpr std::uint64_t value() const noexcept { return value_; }

  friend constexpr bool operator==(EventId, EventId) noexcept = default;

 private:
  std::uint64_t value_ = 0;
};

/// Priority queue of timed callbacks with O(log n) insert/pop and O(1)
/// cancellation. Ties in time are broken by insertion order so runs are
/// fully deterministic.
///
/// The design is a free-listed slot pool plus a 4-ary implicit heap of
/// 16-byte {key, aux} records:
///  - callbacks live in fixed-size pool slots (InlineCallback — no per-event
///    heap allocation for the capture sizes the simulator uses), stored in
///    1024-slot chunks so pool growth never moves a stored callback;
///  - `key` is the event time's bits mapped monotonically to an unsigned
///    integer (IEEE-754 totally ordered for finite doubles), and `aux`
///    packs {seq:40, slot:24}, so the heap's entire (time, seq) ordering
///    contract is two integer compares on one 16-byte record;
///  - EventId is the aux word itself, so cancel() is an array index plus one
///    8-byte identity compare — no hashing, no tombstone set;
///  - cancelling frees the slot immediately and leaves the heap record
///    behind as a tombstone; records whose aux no longer matches their
///    slot's current occupant are skipped when they surface at the head,
///    and cancel-free workloads skip the check entirely.
/// In steady state (pool and heap at capacity) schedule/cancel/pop perform
/// zero heap allocations (see the allocation-counter test and microbench).
class EventQueue {
 public:
  /// Inline capture budget for scheduled callbacks: enough for the largest
  /// hot-path lambda in the simulator (DelayBuffer's release closure); a
  /// bigger callable still works but falls back to one heap allocation.
  using Callback = InlineCallback<48>;

  struct Event {
    Time at = kTimeZero;
    EventId id;
    Callback action;
  };

  /// Inserts `action` to fire at time `at`. Returns a handle for cancel().
  /// Throws std::length_error if the queue would exceed 2^24 concurrent
  /// events or 2^40 total events (far beyond any simulated workload).
  template <class F>
  EventId schedule(Time at, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    s.action.emplace(std::forward<F>(action));
    const std::uint64_t aux = next_aux(slot);
    s.aux = aux;
    heap_push(HeapEntry{time_to_key(at), aux});
    ++live_count_;
    return EventId(aux);
  }

  /// Cancels a pending event. Returns true if the event was still pending
  /// (it will not fire); false if it already fired, was already cancelled,
  /// or the id is invalid.
  bool cancel(EventId id);

  /// Removes and returns the earliest pending event, or nullopt if empty.
  std::optional<Event> pop();

  /// Time of the earliest pending event, or kTimeInfinity if empty.
  Time next_time() const noexcept {
    // Leading tombstones are swept on every cancel/pop, so the head is live.
    return heap_.empty() ? kTimeInfinity : key_to_time(heap_.front().key);
  }

  /// Number of pending (non-cancelled) events.
  std::size_t size() const noexcept { return live_count_; }
  bool empty() const noexcept { return live_count_ == 0; }

  /// Drops every pending event, frees all pool slots, and discards any
  /// tombstoned heap records. Handles issued before clear() are invalidated
  /// (their slots' occupant words are reset), so they can never cancel an
  /// event scheduled afterwards. Capacity is retained.
  void clear();

  /// Pre-sizes the heap and the slot pool for `events` concurrent events so
  /// the steady state never reallocates.
  void reserve(std::size_t events);

  /// Slots currently allocated in the pool (capacity diagnostics).
  std::size_t slot_count() const noexcept { return slot_count_; }

  /// Monotone bijection from double event times to unsigned keys:
  /// a < b  <=>  time_to_key(a) < time_to_key(b) for all ordered (non-NaN)
  /// doubles. Positive values map above the sign-bit midpoint unchanged;
  /// negative values are bit-complemented to reverse their descending
  /// two's-complement-pattern order.
  static constexpr std::uint64_t time_to_key(Time at) noexcept {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(at);
    return (bits & kSignBit) != 0 ? ~bits : bits | kSignBit;
  }
  static constexpr Time key_to_time(std::uint64_t key) noexcept {
    const std::uint64_t bits = (key & kSignBit) != 0 ? key & ~kSignBit : ~key;
    return std::bit_cast<Time>(bits);
  }

 private:
  static constexpr std::uint64_t kSignBit = 0x8000000000000000ull;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  // The pool is stored in fixed 1024-slot chunks: growing it allocates a new
  // chunk without moving existing slots (a vector would run every stored
  // callback's move constructor on each reallocation), and slot addresses
  // stay stable for the lifetime of the queue.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct Slot {
    Callback action;
    std::uint64_t aux = 0;  // current occupant's identity; 0 = free
    std::uint32_t next_free = kNilSlot;
  };

  struct HeapEntry {
    std::uint64_t key;  // time_to_key(at)
    std::uint64_t aux;  // {seq:40, slot:24}; seq compares in the high bits

    // (time, seq) lexicographic order: seq is unique, so comparing the aux
    // words on key ties is exactly the insertion-order tie-break.
    bool precedes(const HeapEntry& other) const noexcept {
      if (key != other.key) return key < other.key;
      return aux < other.aux;
    }
  };

  Slot& slot_at(std::uint32_t index) noexcept {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& slot_at(std::uint32_t index) const noexcept {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  static constexpr std::uint32_t aux_slot(std::uint64_t aux) noexcept {
    return static_cast<std::uint32_t>(aux & (kMaxSlots - 1));
  }

  std::uint64_t next_aux(std::uint32_t slot);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  bool entry_live(const HeapEntry& entry) const noexcept {
    return slot_at(aux_slot(entry.aux)).aux == entry.aux;
  }

  void heap_push(HeapEntry entry);
  void heap_pop_front() noexcept;
  void drop_leading_tombstones() noexcept;

  // 4-ary implicit min-heap on (key, aux) — i.e. on (time, seq). Compared to
  // a binary heap this halves the levels a pop's sift-down walks (the
  // pop-heavy hot path), and four 16-byte entries are exactly one cache
  // line.
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;  // slots handed out at least once
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace tempriv::sim
