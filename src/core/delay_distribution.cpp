#include "core/delay_distribution.h"

#include <limits>
#include <stdexcept>

#include "infotheory/entropy.h"
#include "metrics/table.h"

namespace tempriv::core {

namespace {
constexpr double kMinusInfinity = -std::numeric_limits<double>::infinity();
}

double NoDelay::differential_entropy() const noexcept { return kMinusInfinity; }

ConstantDelay::ConstantDelay(double delay) : delay_(delay) {
  if (delay < 0.0) throw std::invalid_argument("ConstantDelay: negative delay");
}

double ConstantDelay::differential_entropy() const noexcept {
  return kMinusInfinity;  // point mass
}

std::string ConstantDelay::name() const {
  return "constant(" + metrics::format_number(delay_, 2) + ")";
}

UniformDelay::UniformDelay(double lo, double hi) : lo_(lo), hi_(hi) {
  if (lo < 0.0 || !(lo < hi)) {
    throw std::invalid_argument("UniformDelay: requires 0 <= lo < hi");
  }
}

double UniformDelay::sample(sim::RandomStream& rng) const {
  return rng.uniform(lo_, hi_);
}

double UniformDelay::differential_entropy() const noexcept {
  return infotheory::uniform_entropy(lo_, hi_);
}

std::string UniformDelay::name() const {
  return "uniform(" + metrics::format_number(lo_, 2) + "," +
         metrics::format_number(hi_, 2) + ")";
}

ExponentialDelay::ExponentialDelay(double mean) : mean_(mean) {
  if (mean <= 0.0) throw std::invalid_argument("ExponentialDelay: mean <= 0");
}

double ExponentialDelay::sample(sim::RandomStream& rng) const {
  return rng.exponential_mean(mean_);
}

double ExponentialDelay::differential_entropy() const noexcept {
  return infotheory::exponential_entropy(mean_);
}

std::string ExponentialDelay::name() const {
  return "exp(mean=" + metrics::format_number(mean_, 2) + ")";
}

ParetoDelay::ParetoDelay(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("ParetoDelay: xm, alpha must be positive");
  }
}

double ParetoDelay::sample(sim::RandomStream& rng) const {
  return rng.pareto(xm_, alpha_);
}

double ParetoDelay::mean() const noexcept {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double ParetoDelay::differential_entropy() const noexcept {
  return infotheory::pareto_entropy(xm_, alpha_);
}

std::string ParetoDelay::name() const {
  return "pareto(xm=" + metrics::format_number(xm_, 2) +
         ",alpha=" + metrics::format_number(alpha_, 2) + ")";
}

}  // namespace tempriv::core
