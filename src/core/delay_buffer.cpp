#include "core/delay_buffer.h"

#include <stdexcept>
#include <utility>

#include "telemetry/probes.h"

namespace tempriv::core {

DelayBuffer::DelayBuffer(std::shared_ptr<const DelayDistribution> delay,
                         VictimPolicy policy)
    : delay_(std::move(delay)), policy_(policy) {
  if (!delay_) throw std::invalid_argument("DelayBuffer: null delay distribution");
}

std::vector<DelayBuffer::Held> DelayBuffer::snapshot() const {
  std::vector<Held> held;
  held.reserve(live_count_);
  for (std::uint32_t slot = head_; slot != kNilSlot; slot = slots_[slot].next) {
    held.push_back(slots_[slot].held);
  }
  return held;
}

void DelayBuffer::reserve(std::size_t capacity) {
  slots_.reserve(capacity);
  if (uses_heap()) heap_.reserve(capacity);
}

std::uint32_t DelayBuffer::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNilSlot;
    slots_[slot].live = true;
    return slot;
  }
  slots_.emplace_back();
  slots_.back().live = true;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void DelayBuffer::link_back(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.prev = tail_;
  s.next = kNilSlot;
  if (tail_ != kNilSlot) {
    slots_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
}

void DelayBuffer::unlink(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  if (s.prev != kNilSlot) {
    slots_[s.prev].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next != kNilSlot) {
    slots_[s.next].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
  s.prev = s.next = kNilSlot;
}

bool DelayBuffer::heap_precedes(const HeapNode& a,
                                const HeapNode& b) const noexcept {
  if (a.key != b.key) return a.key < b.key;
  return a.admit_seq < b.admit_seq;
}

void DelayBuffer::heap_push(std::uint32_t slot) {
  const Slot& s = slots_[slot];
  HeapNode node;
  node.key = policy_ == VictimPolicy::kLongestRemaining
                 ? -s.held.release_time
                 : s.held.release_time;
  node.admit_seq = s.admit_seq;
  node.slot = slot;
  heap_.push_back(node);
  heap_sift(static_cast<std::uint32_t>(heap_.size() - 1), node);
}

void DelayBuffer::heap_sift(std::uint32_t pos, HeapNode node) noexcept {
  // Up first: move parents down into the hole while they order after the
  // node (one node move per level, never a swap).
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!heap_precedes(node, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  // Then down: pull the smaller child up into the hole while it orders
  // before the node. At most one direction actually moves.
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    const std::uint32_t left = 2 * pos + 1;
    if (left >= n) break;
    const std::uint32_t right = left + 1;
    std::uint32_t best = left;
    if (right < n && heap_precedes(heap_[right], heap_[left])) best = right;
    if (!heap_precedes(heap_[best], node)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = node;
  slots_[node.slot].heap_pos = pos;
}

void DelayBuffer::heap_remove(std::uint32_t slot) noexcept {
  const std::uint32_t pos = slots_[slot].heap_pos;
  slots_[slot].heap_pos = kNilSlot;
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos != last) {
    const HeapNode moved = heap_[last];
    heap_.pop_back();
    heap_sift(pos, moved);
  } else {
    heap_.pop_back();
  }
}

void DelayBuffer::admit(net::Packet&& packet, net::NodeContext& ctx) {
  admit_with_delay(std::move(packet), ctx, delay_->sample(ctx.rng()));
}

void DelayBuffer::admit_with_delay(net::Packet&& packet, net::NodeContext& ctx,
                                   double delay) {
  if (delay < 0.0) {
    throw std::invalid_argument("DelayBuffer::admit_with_delay: negative delay");
  }
  const double now = ctx.simulator().now();
  const std::uint64_t uid = packet.uid;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.held.packet = std::move(packet);
  s.held.enqueue_time = now;
  s.held.release_time = now + delay;
  s.admit_seq = next_admit_seq_++;
  s.held.release_event = ctx.simulator().schedule_after(
      delay, [this, slot, uid, &ctx] { release(slot, uid, ctx); });
  link_back(slot);
  if (uses_heap()) heap_push(slot);
  ++live_count_;
  TEMPRIV_TLM_HIST(kBufOccupancy, live_count_);
  TEMPRIV_TLM_GAUGE_MAX(kBufPeakOccupancy, live_count_);
}

std::uint32_t DelayBuffer::victim_slot(sim::RandomStream& rng) const {
  switch (policy_) {
    case VictimPolicy::kShortestRemaining:
    case VictimPolicy::kLongestRemaining:
      return heap_.front().slot;
    case VictimPolicy::kOldest:
      return head_;
    case VictimPolicy::kRandom: {
      // Same draw as the reference scan: a uniform index into the admission
      // order, then a walk to that position.
      std::size_t index = static_cast<std::size_t>(rng.uniform_index(live_count_));
      std::uint32_t slot = head_;
      while (index-- > 0) slot = slots_[slot].next;
      return slot;
    }
  }
  throw std::logic_error("DelayBuffer::victim_slot: unknown policy");
}

net::Packet DelayBuffer::extract(std::uint32_t slot, net::NodeContext& ctx) {
  Slot& s = slots_[slot];
  ctx.simulator().cancel(s.held.release_event);
  net::Packet packet = std::move(s.held.packet);
  unlink(slot);
  if (s.heap_pos != kNilSlot) heap_remove(slot);
  s.live = false;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_count_;
  return packet;
}

net::Packet DelayBuffer::preempt(net::NodeContext& ctx) {
  if (live_count_ == 0) {
    throw std::logic_error("DelayBuffer::preempt: empty buffer");
  }
  TEMPRIV_TLM_COUNT_AT(telemetry::preempt_counter(
      static_cast<std::uint32_t>(policy_)));
  return extract(victim_slot(ctx.rng()), ctx);
}

net::Packet DelayBuffer::eject(std::size_t index, net::NodeContext& ctx) {
  if (index >= live_count_) {
    throw std::out_of_range("DelayBuffer::eject: bad index");
  }
  TEMPRIV_TLM_COUNT(kBufEjected);
  std::uint32_t slot = head_;
  while (index-- > 0) slot = slots_[slot].next;
  return extract(slot, ctx);
}

void DelayBuffer::release(std::uint32_t slot, std::uint64_t uid,
                          net::NodeContext& ctx) {
  // Defensive: eject()/preempt() cancel the release event, so a fired event
  // whose slot was recycled (or freed) indicates a kernel bug — skip rather
  // than transmit the wrong packet.
  if (slot >= slots_.size() || !slots_[slot].live ||
      slots_[slot].held.packet.uid != uid) {
    return;
  }
  // extract() re-cancels the (already fired) release event; that cancel is a
  // cheap no-op returning false.
  ctx.transmit(extract(slot, ctx));
}

std::size_t select_victim(const std::vector<DelayBuffer::Held>& held,
                          VictimPolicy policy, double now,
                          sim::RandomStream& rng) {
  if (held.empty()) throw std::invalid_argument("select_victim: empty buffer");
  auto remaining = [now](const DelayBuffer::Held& h) {
    return h.release_time - now;
  };
  std::size_t best = 0;
  switch (policy) {
    case VictimPolicy::kShortestRemaining:
      for (std::size_t i = 1; i < held.size(); ++i) {
        if (remaining(held[i]) < remaining(held[best])) best = i;
      }
      return best;
    case VictimPolicy::kLongestRemaining:
      for (std::size_t i = 1; i < held.size(); ++i) {
        if (remaining(held[i]) > remaining(held[best])) best = i;
      }
      return best;
    case VictimPolicy::kRandom:
      return static_cast<std::size_t>(rng.uniform_index(held.size()));
    case VictimPolicy::kOldest:
      for (std::size_t i = 1; i < held.size(); ++i) {
        if (held[i].enqueue_time < held[best].enqueue_time) best = i;
      }
      return best;
  }
  throw std::logic_error("select_victim: unknown policy");
}

const char* to_string(VictimPolicy policy) noexcept {
  switch (policy) {
    case VictimPolicy::kShortestRemaining:
      return "shortest-remaining";
    case VictimPolicy::kLongestRemaining:
      return "longest-remaining";
    case VictimPolicy::kRandom:
      return "random";
    case VictimPolicy::kOldest:
      return "oldest";
  }
  return "unknown";
}

}  // namespace tempriv::core
