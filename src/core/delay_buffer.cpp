#include "core/delay_buffer.h"

#include <algorithm>
#include <stdexcept>

namespace tempriv::core {

DelayBuffer::DelayBuffer(std::unique_ptr<DelayDistribution> delay)
    : delay_(std::move(delay)) {
  if (!delay_) throw std::invalid_argument("DelayBuffer: null delay distribution");
}

void DelayBuffer::admit(net::Packet&& packet, net::NodeContext& ctx) {
  admit_with_delay(std::move(packet), ctx, delay_->sample(ctx.rng()));
}

void DelayBuffer::admit_with_delay(net::Packet&& packet, net::NodeContext& ctx,
                                   double delay) {
  if (delay < 0.0) {
    throw std::invalid_argument("DelayBuffer::admit_with_delay: negative delay");
  }
  const double now = ctx.simulator().now();
  const std::uint64_t uid = packet.uid;
  Held held{std::move(packet), sim::EventId{}, now, now + delay};
  held.release_event = ctx.simulator().schedule_after(
      delay, [this, uid, &ctx] { release(uid, ctx); });
  held_.push_back(std::move(held));
}

net::Packet DelayBuffer::eject(std::size_t index, net::NodeContext& ctx) {
  if (index >= held_.size()) {
    throw std::out_of_range("DelayBuffer::eject: bad index");
  }
  ctx.simulator().cancel(held_[index].release_event);
  net::Packet packet = std::move(held_[index].packet);
  held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(index));
  return packet;
}

void DelayBuffer::release(std::uint64_t uid, net::NodeContext& ctx) {
  const auto it = std::find_if(held_.begin(), held_.end(), [uid](const Held& h) {
    return h.packet.uid == uid;
  });
  if (it == held_.end()) return;  // already ejected (defensive; cancel() should prevent this)
  net::Packet packet = std::move(it->packet);
  held_.erase(it);
  ctx.transmit(std::move(packet));
}

std::size_t select_victim(const std::vector<DelayBuffer::Held>& held,
                          VictimPolicy policy, double now,
                          sim::RandomStream& rng) {
  if (held.empty()) throw std::invalid_argument("select_victim: empty buffer");
  auto remaining = [now](const DelayBuffer::Held& h) {
    return h.release_time - now;
  };
  std::size_t best = 0;
  switch (policy) {
    case VictimPolicy::kShortestRemaining:
      for (std::size_t i = 1; i < held.size(); ++i) {
        if (remaining(held[i]) < remaining(held[best])) best = i;
      }
      return best;
    case VictimPolicy::kLongestRemaining:
      for (std::size_t i = 1; i < held.size(); ++i) {
        if (remaining(held[i]) > remaining(held[best])) best = i;
      }
      return best;
    case VictimPolicy::kRandom:
      return static_cast<std::size_t>(rng.uniform_index(held.size()));
    case VictimPolicy::kOldest:
      for (std::size_t i = 1; i < held.size(); ++i) {
        if (held[i].enqueue_time < held[best].enqueue_time) best = i;
      }
      return best;
  }
  throw std::logic_error("select_victim: unknown policy");
}

const char* to_string(VictimPolicy policy) noexcept {
  switch (policy) {
    case VictimPolicy::kShortestRemaining:
      return "shortest-remaining";
    case VictimPolicy::kLongestRemaining:
      return "longest-remaining";
    case VictimPolicy::kRandom:
      return "random";
    case VictimPolicy::kOldest:
      return "oldest";
  }
  return "unknown";
}

}  // namespace tempriv::core
