#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "core/delay_buffer.h"
#include "core/delay_distribution.h"
#include "net/forwarding.h"

namespace tempriv::core {

/// Case 1 of the paper's evaluation: forward every packet the instant it
/// arrives. No privacy effort; latency = hop count × τ exactly.
class ImmediateForwarding final : public net::ForwardingDiscipline {
 public:
  void on_packet(net::Packet&& packet, net::NodeContext& ctx) override {
    ctx.transmit(std::move(packet));
  }
  std::size_t buffered() const noexcept override { return 0; }
  net::DisciplineKind kind() const noexcept override {
    return net::DisciplineKind::kImmediate;
  }
};

/// Case 2: delay every packet by an independent draw from the delay
/// distribution, with unbounded buffer space (the idealized M/M/∞ model of
/// §4 when the delays are exponential).
class UnlimitedDelaying final : public net::ForwardingDiscipline {
 public:
  explicit UnlimitedDelaying(std::shared_ptr<const DelayDistribution> delay)
      : buffer_(std::move(delay)) {}

  void on_packet(net::Packet&& packet, net::NodeContext& ctx) override {
    buffer_.admit(std::move(packet), ctx);
  }
  std::size_t buffered() const noexcept override { return buffer_.size(); }
  net::DisciplineKind kind() const noexcept override {
    return net::DisciplineKind::kUnlimitedDelay;
  }
  /// Surrenders the (empty) buffer so Network can store it in its flat
  /// per-node arrays; the discipline object is discarded afterwards.
  DelayBuffer take_buffer() { return std::move(buffer_); }

 private:
  DelayBuffer buffer_;
};

/// The M/M/k/k model of §4 with plain packet dropping: an arrival that
/// finds all `capacity` slots full is discarded (counted in drops()).
class DropTailDelaying final : public net::ForwardingDiscipline {
 public:
  DropTailDelaying(std::shared_ptr<const DelayDistribution> delay,
                   std::size_t capacity);

  void on_packet(net::Packet&& packet, net::NodeContext& ctx) override;
  std::size_t buffered() const noexcept override { return buffer_.size(); }
  std::uint64_t drops() const noexcept override { return drops_; }
  std::size_t capacity() const noexcept { return capacity_; }
  net::DisciplineKind kind() const noexcept override {
    return net::DisciplineKind::kDropTail;
  }
  DelayBuffer take_buffer() { return std::move(buffer_); }

 private:
  DelayBuffer buffer_;
  std::size_t capacity_;
  std::uint64_t drops_ = 0;
};

/// RCAD — Rate-Controlled Adaptive Delaying (paper §5, the headline
/// contribution). Behaves like DropTailDelaying, except that when the
/// buffer is full the node *preempts* a buffered packet instead of dropping
/// the arrival: the victim (by default the packet with the shortest
/// remaining delay, so realized delays stay closest to the intended
/// distribution) has its release event cancelled and is transmitted
/// immediately; the new packet is then admitted with a fresh delay.
/// Preemption adapts the effective service rate µ to the offered load
/// automatically — no signalling, no parameter changes.
class RcadDiscipline final : public net::ForwardingDiscipline {
 public:
  RcadDiscipline(std::shared_ptr<const DelayDistribution> delay,
                 std::size_t capacity,
                 VictimPolicy victim_policy = VictimPolicy::kShortestRemaining);

  void on_packet(net::Packet&& packet, net::NodeContext& ctx) override;
  std::size_t buffered() const noexcept override { return buffer_.size(); }
  std::uint64_t preemptions() const noexcept override { return preemptions_; }
  std::size_t capacity() const noexcept { return capacity_; }
  VictimPolicy victim_policy() const noexcept { return victim_policy_; }
  net::DisciplineKind kind() const noexcept override {
    return net::DisciplineKind::kRcad;
  }
  DelayBuffer take_buffer() { return std::move(buffer_); }

 private:
  DelayBuffer buffer_;
  std::size_t capacity_;
  VictimPolicy victim_policy_;
  std::uint64_t preemptions_ = 0;
};

}  // namespace tempriv::core
