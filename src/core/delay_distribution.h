#pragma once

#include <memory>
#include <string>

#include "sim/random.h"

namespace tempriv::core {

/// A privacy-delay distribution f_Y (paper §3): each node draws an
/// independent delay Y from it for every packet it handles. The paper
/// argues for the exponential (maximum entropy over non-negative supports
/// with fixed mean); the alternatives here exist so the choice can be
/// evaluated empirically (bench/delay_distribution_leakage).
class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;

  /// Draws one delay (>= 0).
  virtual double sample(sim::RandomStream& rng) const = 0;

  /// E[Y]; used by adversaries (who know the scheme, per Kerckhoff) and by
  /// the queueing dimensioning (µ = 1/mean).
  virtual double mean() const noexcept = 0;

  /// Differential entropy h(Y) in nats (−inf for deterministic delays),
  /// feeding the Eq. (1)/(2) leakage computations.
  virtual double differential_entropy() const noexcept = 0;

  virtual std::string name() const = 0;

  /// Deep copy (distributions are small immutable value-likes).
  virtual std::unique_ptr<DelayDistribution> clone() const = 0;
};

/// Y = 0: forward immediately (the paper's baseline case 1).
class NoDelay final : public DelayDistribution {
 public:
  double sample(sim::RandomStream&) const override { return 0.0; }
  double mean() const noexcept override { return 0.0; }
  double differential_entropy() const noexcept override;
  std::string name() const override { return "none"; }
  std::unique_ptr<DelayDistribution> clone() const override {
    return std::make_unique<NoDelay>(*this);
  }
};

/// Deterministic delay Y = d. Adds latency but zero entropy — provably
/// useless for privacy (the adversary subtracts it exactly).
class ConstantDelay final : public DelayDistribution {
 public:
  explicit ConstantDelay(double delay);
  double sample(sim::RandomStream&) const override { return delay_; }
  double mean() const noexcept override { return delay_; }
  double differential_entropy() const noexcept override;
  std::string name() const override;
  std::unique_ptr<DelayDistribution> clone() const override {
    return std::make_unique<ConstantDelay>(*this);
  }

 private:
  double delay_;
};

/// Y ~ U[lo, hi].
class UniformDelay final : public DelayDistribution {
 public:
  UniformDelay(double lo, double hi);
  double sample(sim::RandomStream& rng) const override;
  double mean() const noexcept override { return 0.5 * (lo_ + hi_); }
  double differential_entropy() const noexcept override;
  std::string name() const override;
  std::unique_ptr<DelayDistribution> clone() const override {
    return std::make_unique<UniformDelay>(*this);
  }

 private:
  double lo_;
  double hi_;
};

/// Y ~ Exp(mean) — the paper's choice (max-entropy, and the M/M/∞ / RCAD
/// analysis of §4–§5 assumes it).
class ExponentialDelay final : public DelayDistribution {
 public:
  explicit ExponentialDelay(double mean);
  double sample(sim::RandomStream& rng) const override;
  double mean() const noexcept override { return mean_; }
  double differential_entropy() const noexcept override;
  std::string name() const override;
  std::unique_ptr<DelayDistribution> clone() const override {
    return std::make_unique<ExponentialDelay>(*this);
  }

 private:
  double mean_;
};

/// Y ~ Pareto(xm, α), a heavy-tailed alternative (finite mean needs α > 1).
class ParetoDelay final : public DelayDistribution {
 public:
  ParetoDelay(double xm, double alpha);
  double sample(sim::RandomStream& rng) const override;
  double mean() const noexcept override;
  double differential_entropy() const noexcept override;
  std::string name() const override;
  std::unique_ptr<DelayDistribution> clone() const override {
    return std::make_unique<ParetoDelay>(*this);
  }

 private:
  double xm_;
  double alpha_;
};

}  // namespace tempriv::core
