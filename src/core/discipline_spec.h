#pragma once

#include <cstddef>
#include <memory>

#include "core/delay_buffer.h"
#include "core/delay_distribution.h"
#include "net/forwarding.h"

namespace tempriv::core {

/// Value-type description of a uniform built-in forwarding policy — the
/// allocation-light alternative to a DisciplineFactory for networks where
/// every node runs the same built-in. Network's spec constructor lays node
/// state out in its flat per-node arrays directly from this description:
/// no per-node discipline objects, no per-node factory std::function calls,
/// and one shared delay-distribution object for the whole network — the
/// construction path a 10⁶-node simulation needs.
struct DisciplineSpec {
  net::DisciplineKind kind = net::DisciplineKind::kImmediate;
  /// Shared across all nodes; required unless kind == kImmediate.
  std::shared_ptr<const DelayDistribution> delay;
  /// Buffer slots per node (kDropTail / kRcad; ignored otherwise).
  std::size_t capacity = 0;
  /// RCAD victim-selection rule (kRcad only).
  VictimPolicy victim = VictimPolicy::kShortestRemaining;

  static DisciplineSpec immediate();
  static DisciplineSpec unlimited(
      std::shared_ptr<const DelayDistribution> delay);
  static DisciplineSpec unlimited_exponential(double mean_delay);
  static DisciplineSpec droptail(
      std::shared_ptr<const DelayDistribution> delay, std::size_t capacity);
  static DisciplineSpec droptail_exponential(double mean_delay,
                                             std::size_t capacity);
  static DisciplineSpec rcad(
      std::shared_ptr<const DelayDistribution> delay, std::size_t capacity,
      VictimPolicy victim = VictimPolicy::kShortestRemaining);
  static DisciplineSpec rcad_exponential(
      double mean_delay, std::size_t capacity,
      VictimPolicy victim = VictimPolicy::kShortestRemaining);
};

}  // namespace tempriv::core
