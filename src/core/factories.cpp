#include "core/factories.h"

#include <memory>
#include <utility>

#include "core/disciplines.h"

namespace tempriv::core {

net::DisciplineFactory immediate_factory() {
  return [](net::NodeId, std::uint16_t) {
    return std::make_unique<ImmediateForwarding>();
  };
}

net::DisciplineFactory unlimited_factory(const DelayDistribution& prototype) {
  // One clone shared by every node — the distribution is immutable and
  // sample() is const, so per-node clones bought nothing but heap churn.
  return [proto = std::shared_ptr<const DelayDistribution>(prototype.clone())](
             net::NodeId, std::uint16_t)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<UnlimitedDelaying>(proto);
  };
}

net::DisciplineFactory unlimited_exponential_factory(double mean_delay) {
  return unlimited_factory(ExponentialDelay(mean_delay));
}

net::DisciplineFactory droptail_factory(const DelayDistribution& prototype,
                                        std::size_t capacity) {
  return [proto = std::shared_ptr<const DelayDistribution>(prototype.clone()),
          capacity](net::NodeId, std::uint16_t)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<DropTailDelaying>(proto, capacity);
  };
}

net::DisciplineFactory droptail_exponential_factory(double mean_delay,
                                                    std::size_t capacity) {
  return droptail_factory(ExponentialDelay(mean_delay), capacity);
}

net::DisciplineFactory rcad_factory(const DelayDistribution& prototype,
                                    std::size_t capacity,
                                    VictimPolicy victim_policy) {
  return [proto = std::shared_ptr<const DelayDistribution>(prototype.clone()),
          capacity, victim_policy](net::NodeId, std::uint16_t)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<RcadDiscipline>(proto, capacity, victim_policy);
  };
}

net::DisciplineFactory rcad_exponential_factory(double mean_delay,
                                                std::size_t capacity,
                                                VictimPolicy victim_policy) {
  return rcad_factory(ExponentialDelay(mean_delay), capacity, victim_policy);
}

net::DisciplineFactory unlimited_exponential_profile_factory(DelayProfile profile) {
  return [profile = std::move(profile)](net::NodeId, std::uint16_t hops)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<UnlimitedDelaying>(
        std::make_unique<ExponentialDelay>(profile(hops)));
  };
}

net::DisciplineFactory rcad_exponential_profile_factory(
    DelayProfile profile, std::size_t capacity, VictimPolicy victim_policy) {
  return [profile = std::move(profile), capacity, victim_policy](
             net::NodeId, std::uint16_t hops)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<RcadDiscipline>(
        std::make_unique<ExponentialDelay>(profile(hops)), capacity,
        victim_policy);
  };
}

}  // namespace tempriv::core
