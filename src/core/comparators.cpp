#include "core/comparators.h"

#include <stdexcept>
#include <utility>

namespace tempriv::core {

FifoDelaying::FifoDelaying(std::unique_ptr<DelayDistribution> service)
    : service_(std::move(service)) {
  if (!service_) throw std::invalid_argument("FifoDelaying: null distribution");
}

void FifoDelaying::on_packet(net::Packet&& packet, net::NodeContext& ctx) {
  queue_.push_back(std::move(packet));
  if (!serving_) begin_service(ctx);
}

void FifoDelaying::begin_service(net::NodeContext& ctx) {
  serving_ = true;
  const double service_time = service_->sample(ctx.rng());
  ctx.simulator().schedule_after(service_time,
                                 [this, &ctx] { complete_service(ctx); });
}

void FifoDelaying::complete_service(net::NodeContext& ctx) {
  net::Packet packet = std::move(queue_.front());
  queue_.pop_front();
  ctx.transmit(std::move(packet));
  if (!queue_.empty()) {
    begin_service(ctx);
  } else {
    serving_ = false;
  }
}

TimedPoolMix::TimedPoolMix(double interval, std::size_t pool_keep)
    : interval_(interval), pool_keep_(pool_keep) {
  if (interval <= 0.0) {
    throw std::invalid_argument("TimedPoolMix: interval must be positive");
  }
}

void TimedPoolMix::on_packet(net::Packet&& packet, net::NodeContext& ctx) {
  pool_.push_back(std::move(packet));
  if (!timer_armed_) {
    timer_armed_ = true;
    ctx.simulator().schedule_after(interval_, [this, &ctx] { flush(ctx); });
  }
}

void TimedPoolMix::flush(net::NodeContext& ctx) {
  ++flushes_;
  // Uniform random subset of size pool_keep stays behind: shuffle by
  // repeatedly swapping a random survivor to the front, then transmit the
  // tail in random order.
  while (pool_.size() > pool_keep_) {
    const std::size_t pick =
        static_cast<std::size_t>(ctx.rng().uniform_index(pool_.size()));
    net::Packet packet = std::move(pool_[pick]);
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(pick));
    ctx.transmit(std::move(packet));
  }
  // After a flush the pool holds at most pool_keep packets, which no timer
  // tick could release; disarm and re-arm on the next arrival (this also
  // lets an idle network drain its event queue and terminate).
  timer_armed_ = false;
}

net::DisciplineFactory fifo_exponential_factory(double mean_service) {
  return [mean_service](net::NodeId, std::uint16_t)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<FifoDelaying>(
        std::make_unique<ExponentialDelay>(mean_service));
  };
}

net::DisciplineFactory timed_pool_mix_factory(double interval,
                                              std::size_t pool_keep) {
  return [interval, pool_keep](net::NodeId, std::uint16_t)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<TimedPoolMix>(interval, pool_keep);
  };
}

}  // namespace tempriv::core
