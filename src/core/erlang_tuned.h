#pragma once

#include <cstdint>
#include <memory>

#include "core/delay_buffer.h"
#include "net/forwarding.h"

namespace tempriv::core {

/// Online Erlang-tuned RCAD — §4's dimensioning rule made self-adjusting
/// (extension beyond the paper, which applies the rule statically at
/// deployment time).
///
/// The paper observes that for a target drop/preemption budget α, a node
/// with k buffer slots can afford offered load up to ρ* = E⁻¹(α, k), i.e.
/// mean delay 1/µ = ρ*/λ — "as we approach the sink and the traffic rate λ
/// increases, we must decrease the average delay time 1/µ". This
/// discipline measures λ online (EWMA over packet inter-arrival gaps) and
/// retunes its exponential delay mean to ρ*/λ̂ on every arrival, clamped to
/// `max_mean_delay` so an almost-idle node does not hold packets forever.
///
/// The payoff over static RCAD: at low traffic it stretches delays far
/// beyond a fixed 1/µ (more privacy for the same buffers), and at high
/// traffic it backs off *before* the buffer saturates, so the realized
/// delay distribution stays close to exponential instead of being
/// truncated by preemption — which also denies the §5.4 adaptive adversary
/// its sharp preemption-regime signal. Preemption remains as the safety
/// net for bursts the EWMA has not caught up with.
///
/// Calibration note: the realized preemption rate sits a near-constant
/// ~2× above E(ρ*, k) across all loads, because RCAD's preempt-and-admit
/// refreshes residual delays and keeps the buffer fuller than the pure
/// M/M/k/k loss model predicts (see
/// QueueingValidation.RcadPreemptionRateExceedsErlangLoss). Target α/2 if
/// the budget must hold in absolute terms.
class ErlangTunedRcad final : public net::ForwardingDiscipline {
 public:
  struct Config {
    std::size_t capacity = 10;      ///< k buffer slots
    double target_loss = 0.1;       ///< α, the preemption budget
    double max_mean_delay = 120.0;  ///< delay cap when traffic is light
    double ewma_weight = 0.1;       ///< weight of the newest gap in λ̂
    VictimPolicy victim = VictimPolicy::kShortestRemaining;
  };

  explicit ErlangTunedRcad(const Config& config);

  void on_packet(net::Packet&& packet, net::NodeContext& ctx) override;
  std::size_t buffered() const noexcept override { return buffer_.size(); }
  std::uint64_t preemptions() const noexcept override { return preemptions_; }

  /// The mean delay currently in force (max_mean_delay until the rate
  /// estimate warms up).
  double current_mean_delay() const noexcept { return current_mean_; }

  /// The node's current arrival-rate estimate (0 before two arrivals).
  double rate_estimate() const noexcept { return rate_estimate_; }

 private:
  void retune(double now);

  Config config_;
  double admissible_rho_;  ///< ρ* = E⁻¹(α, k), precomputed
  DelayBuffer buffer_;
  double current_mean_;
  double ewma_gap_ = 0.0;
  double rate_estimate_ = 0.0;
  double last_arrival_ = 0.0;
  bool has_arrival_ = false;
  std::uint64_t preemptions_ = 0;
};

/// Factory mirroring core/factories.h.
net::DisciplineFactory erlang_tuned_rcad_factory(
    const ErlangTunedRcad::Config& config);

}  // namespace tempriv::core
