#include "core/disciplines.h"

#include <stdexcept>
#include <utility>

namespace tempriv::core {

DropTailDelaying::DropTailDelaying(
    std::shared_ptr<const DelayDistribution> delay, std::size_t capacity)
    : buffer_(std::move(delay)), capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("DropTailDelaying: capacity must be >= 1");
  }
  buffer_.reserve(capacity);
}

void DropTailDelaying::on_packet(net::Packet&& packet, net::NodeContext& ctx) {
  if (buffer_.size() >= capacity_) {
    ++drops_;
    return;  // packet destroyed; the Erlang-loss event of Eq. (5)
  }
  buffer_.admit(std::move(packet), ctx);
}

RcadDiscipline::RcadDiscipline(std::shared_ptr<const DelayDistribution> delay,
                               std::size_t capacity, VictimPolicy victim_policy)
    : buffer_(std::move(delay), victim_policy),
      capacity_(capacity),
      victim_policy_(victim_policy) {
  if (capacity == 0) {
    throw std::invalid_argument("RcadDiscipline: capacity must be >= 1");
  }
  buffer_.reserve(capacity);
}

void RcadDiscipline::on_packet(net::Packet&& packet, net::NodeContext& ctx) {
  if (buffer_.size() >= capacity_) {
    net::Packet early = buffer_.preempt(ctx);
    ++preemptions_;
    ctx.transmit(std::move(early));
  }
  buffer_.admit(std::move(packet), ctx);
}

}  // namespace tempriv::core
