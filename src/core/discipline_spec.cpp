#include "core/discipline_spec.h"

#include <stdexcept>
#include <utility>

namespace tempriv::core {

DisciplineSpec DisciplineSpec::immediate() {
  return {net::DisciplineKind::kImmediate, nullptr, 0,
          VictimPolicy::kShortestRemaining};
}

DisciplineSpec DisciplineSpec::unlimited(
    std::shared_ptr<const DelayDistribution> delay) {
  if (!delay) throw std::invalid_argument("DisciplineSpec: null distribution");
  return {net::DisciplineKind::kUnlimitedDelay, std::move(delay), 0,
          VictimPolicy::kShortestRemaining};
}

DisciplineSpec DisciplineSpec::unlimited_exponential(double mean_delay) {
  return unlimited(std::make_shared<const ExponentialDelay>(mean_delay));
}

DisciplineSpec DisciplineSpec::droptail(
    std::shared_ptr<const DelayDistribution> delay, std::size_t capacity) {
  if (!delay) throw std::invalid_argument("DisciplineSpec: null distribution");
  if (capacity == 0) {
    throw std::invalid_argument("DisciplineSpec: capacity must be >= 1");
  }
  return {net::DisciplineKind::kDropTail, std::move(delay), capacity,
          VictimPolicy::kShortestRemaining};
}

DisciplineSpec DisciplineSpec::droptail_exponential(double mean_delay,
                                                    std::size_t capacity) {
  return droptail(std::make_shared<const ExponentialDelay>(mean_delay),
                  capacity);
}

DisciplineSpec DisciplineSpec::rcad(
    std::shared_ptr<const DelayDistribution> delay, std::size_t capacity,
    VictimPolicy victim) {
  if (!delay) throw std::invalid_argument("DisciplineSpec: null distribution");
  if (capacity == 0) {
    throw std::invalid_argument("DisciplineSpec: capacity must be >= 1");
  }
  return {net::DisciplineKind::kRcad, std::move(delay), capacity, victim};
}

DisciplineSpec DisciplineSpec::rcad_exponential(double mean_delay,
                                                std::size_t capacity,
                                                VictimPolicy victim) {
  return rcad(std::make_shared<const ExponentialDelay>(mean_delay), capacity,
              victim);
}

}  // namespace tempriv::core
