#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "core/delay_distribution.h"
#include "net/forwarding.h"

namespace tempriv::core {

/// Order-preserving delaying — the strategy §3.2 considers and rejects:
/// "have packets released in the same order as their creation, which would
/// correspond to choosing Yj to be at least the wait time needed to flush
/// out all previous packets". Concretely an M/M/1-style FIFO: one packet
/// in service at a time, service time drawn from the delay distribution;
/// later packets queue behind it. Compared with independent per-packet
/// delays (UnlimitedDelaying, the M/M/∞ model) it never reorders — which
/// is exactly why it protects less: the adversary keeps the creation order
/// for free, and queueing couples consecutive delays.
///
/// Stability caveat (classic M/M/1): if the arrival rate exceeds 1/mean,
/// the queue grows without bound; the caller picks parameters.
class FifoDelaying final : public net::ForwardingDiscipline {
 public:
  explicit FifoDelaying(std::unique_ptr<DelayDistribution> service);

  void on_packet(net::Packet&& packet, net::NodeContext& ctx) override;
  std::size_t buffered() const noexcept override { return queue_.size(); }

 private:
  void begin_service(net::NodeContext& ctx);
  void complete_service(net::NodeContext& ctx);

  std::unique_ptr<DelayDistribution> service_;
  std::deque<net::Packet> queue_;  // front = in service
  bool serving_ = false;
};

/// Timed pool mix (Chaum-style, per the taxonomy the paper cites in §6):
/// arrivals accumulate in the pool; every `interval` time units (while the
/// pool is non-empty) the node flushes the pool *except* for up to
/// `pool_keep` packets chosen uniformly at random, transmitting the rest
/// in random order. The retained pool decouples flush membership from
/// arrival time.
///
/// Inherent cost, faithfully modeled: up to `pool_keep` packets per node
/// can remain in the pool indefinitely (undelivered when traffic stops) —
/// one reason mix designs are awkward for sensor networks, and part of the
/// paper's motivation for per-packet delays instead.
class TimedPoolMix final : public net::ForwardingDiscipline {
 public:
  /// Requires interval > 0.
  TimedPoolMix(double interval, std::size_t pool_keep);

  void on_packet(net::Packet&& packet, net::NodeContext& ctx) override;
  std::size_t buffered() const noexcept override { return pool_.size(); }

  std::uint64_t flushes() const noexcept { return flushes_; }

 private:
  void flush(net::NodeContext& ctx);

  double interval_;
  std::size_t pool_keep_;
  std::deque<net::Packet> pool_;
  bool timer_armed_ = false;
  std::uint64_t flushes_ = 0;
};

/// Factory helpers mirroring core/factories.h.
net::DisciplineFactory fifo_exponential_factory(double mean_service);
net::DisciplineFactory timed_pool_mix_factory(double interval,
                                              std::size_t pool_keep);

}  // namespace tempriv::core
