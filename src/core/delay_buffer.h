#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/delay_distribution.h"
#include "net/forwarding.h"

namespace tempriv::core {

/// RCAD victim-selection rule (paper §5 uses shortest-remaining-delay; the
/// alternatives exist for the ablation bench).
enum class VictimPolicy {
  kShortestRemaining,  ///< paper: closest to its natural departure
  kLongestRemaining,   ///< adversarial ablation: most premature release
  kRandom,             ///< uniformly random buffered packet
  kOldest,             ///< earliest enqueue time (FIFO-style)
};

const char* to_string(VictimPolicy policy) noexcept;

/// Shared machinery for the buffering disciplines: holds packets, schedules
/// their future release through the simulation kernel, and supports
/// cancelling a scheduled release so a packet can be ejected early (the
/// RCAD preemption primitive).
///
/// Packets live in a free-listed slot pool threaded onto an intrusive
/// admission-order list, plus — for the kShortestRemaining /
/// kLongestRemaining policies — a position-tracked binary heap keyed on
/// (release_time, admission order). preempt() is therefore O(log n) for the
/// heap-indexed policies, O(1) for kOldest (the admission-list head), and a
/// single RNG draw plus a list walk for kRandom — never the old O(n) scan +
/// O(n) vector erase. Victim choice is bit-identical to a linear first-wins
/// scan over the admission order (see select_victim, kept as the reference
/// implementation), so simulation outputs are unchanged.
///
/// The heap stores its ordering keys (release_time, admit_seq) inline in
/// each node rather than slot indices alone: a Slot spans two cache lines
/// (the packet payload lives inline), so keyed nodes keep every sift
/// comparison inside the heap array instead of chasing two random slots
/// per compare.
class DelayBuffer {
 public:
  struct Held {
    net::Packet packet;
    sim::EventId release_event;
    double enqueue_time = 0.0;
    double release_time = 0.0;
  };

  /// The distribution is shared-const so a whole network of identically
  /// configured nodes holds one distribution object instead of a clone per
  /// node (sample() is const). unique_ptr arguments convert implicitly.
  explicit DelayBuffer(std::shared_ptr<const DelayDistribution> delay,
                       VictimPolicy policy = VictimPolicy::kShortestRemaining);

  /// Movable while empty (moving parks no events); an admitted packet's
  /// release closure captures `this`, so a non-empty buffer must stay put.
  DelayBuffer(DelayBuffer&&) = default;
  DelayBuffer& operator=(DelayBuffer&&) = default;

  std::size_t size() const noexcept { return live_count_; }

  /// Heap bytes held by the slot pool and the policy heap (capacity-based;
  /// the shared distribution is not counted — it is shared).
  std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) +
           heap_.capacity() * sizeof(HeapNode);
  }
  const DelayDistribution& delay_distribution() const noexcept { return *delay_; }
  VictimPolicy victim_policy() const noexcept { return policy_; }

  /// Copies the held packets in admission order (oldest first) — the same
  /// order the pre-slot-pool vector kept. For tests and diagnostics; O(n).
  std::vector<Held> snapshot() const;

  /// Pre-sizes the slot pool (and the policy heap, if any) for `capacity`
  /// concurrently-held packets, e.g. the M/M/k/k capacity k, so the steady
  /// state never reallocates.
  void reserve(std::size_t capacity);

  /// Draws a delay Y for the packet and schedules its transmission at
  /// now + Y. The packet leaves the buffer (and is transmitted via `ctx`)
  /// when the event fires.
  void admit(net::Packet&& packet, net::NodeContext& ctx);

  /// Like admit(), but with a caller-chosen delay (>= 0) instead of a draw
  /// from the distribution — used by disciplines that retune their delay
  /// parameters online (see ErlangTunedRcad).
  void admit_with_delay(net::Packet&& packet, net::NodeContext& ctx,
                        double delay);

  /// Selects the victim under this buffer's policy, cancels its scheduled
  /// release, and returns it to the caller (RCAD transmits it immediately).
  /// O(log n) for the heap-indexed policies. Throws std::logic_error if the
  /// buffer is empty.
  net::Packet preempt(net::NodeContext& ctx);

  /// Cancels the scheduled release of the packet at admission-order position
  /// `index` (0 = oldest) and returns it. O(n) list walk; preempt() is the
  /// hot-path primitive. Throws std::out_of_range on a bad index.
  net::Packet eject(std::size_t index, net::NodeContext& ctx);

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Slot {
    Held held;
    std::uint64_t admit_seq = 0;    // admission order; heap tie-breaker
    std::uint32_t heap_pos = kNilSlot;
    std::uint32_t prev = kNilSlot;  // admission-order list links
    std::uint32_t next = kNilSlot;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };

  /// Heap node: the ordering keys ride along with the slot index, so sift
  /// compares stay inside the (dense) heap array. A live slot's
  /// release_time and admit_seq never change, so the copies cannot go
  /// stale. `key` is the release time, negated under kLongestRemaining so
  /// both policies compare ascending with no branch (negation is exact and
  /// preserves ties, so victim choice is unchanged).
  struct HeapNode {
    double key = 0.0;
    std::uint64_t admit_seq = 0;
    std::uint32_t slot = kNilSlot;
  };

  bool uses_heap() const noexcept {
    return policy_ == VictimPolicy::kShortestRemaining ||
           policy_ == VictimPolicy::kLongestRemaining;
  }
  /// Heap order: the policy's victim at the root, admission order (first
  /// admitted wins) breaking release-time ties — exactly the element a
  /// first-strict-win linear scan over admission order selects.
  bool heap_precedes(const HeapNode& a, const HeapNode& b) const noexcept;

  std::uint32_t acquire_slot();
  void link_back(std::uint32_t slot) noexcept;
  void unlink(std::uint32_t slot) noexcept;
  void heap_push(std::uint32_t slot);
  void heap_remove(std::uint32_t slot) noexcept;
  /// Re-sites `node` starting at hole `pos`, whichever direction it must
  /// move; writes it once at its final position (hole-based, no swaps).
  void heap_sift(std::uint32_t pos, HeapNode node) noexcept;

  std::uint32_t victim_slot(sim::RandomStream& rng) const;
  /// Removes the packet in `slot` from every structure and returns it.
  net::Packet extract(std::uint32_t slot, net::NodeContext& ctx);
  void release(std::uint32_t slot, std::uint64_t uid, net::NodeContext& ctx);

  std::shared_ptr<const DelayDistribution> delay_;
  VictimPolicy policy_;
  std::vector<Slot> slots_;
  std::vector<HeapNode> heap_;  // keyed nodes; only for heap policies
  std::uint32_t free_head_ = kNilSlot;
  std::uint32_t head_ = kNilSlot;  // oldest admission
  std::uint32_t tail_ = kNilSlot;  // newest admission
  std::uint64_t next_admit_seq_ = 1;
  std::size_t live_count_ = 0;
};

/// Reference victim selection: index of the victim in `held` (admission
/// order) per `policy`. Linear scan, first-wins on ties — the behavioral
/// contract DelayBuffer::preempt's indexed selection must match; tests
/// cross-check the two. Requires non-empty `held`.
std::size_t select_victim(const std::vector<DelayBuffer::Held>& held,
                          VictimPolicy policy, double now,
                          sim::RandomStream& rng);

}  // namespace tempriv::core
