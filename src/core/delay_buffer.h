#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/delay_distribution.h"
#include "net/forwarding.h"

namespace tempriv::core {

/// Shared machinery for the buffering disciplines: holds packets, schedules
/// their future release through the simulation kernel, and supports
/// cancelling a scheduled release so a packet can be ejected early (the
/// RCAD preemption primitive).
class DelayBuffer {
 public:
  struct Held {
    net::Packet packet;
    sim::EventId release_event;
    double enqueue_time = 0.0;
    double release_time = 0.0;
  };

  explicit DelayBuffer(std::unique_ptr<DelayDistribution> delay);

  std::size_t size() const noexcept { return held_.size(); }
  const std::vector<Held>& held() const noexcept { return held_; }
  const DelayDistribution& delay_distribution() const noexcept { return *delay_; }

  /// Draws a delay Y for the packet and schedules its transmission at
  /// now + Y. The packet leaves the buffer (and is transmitted via `ctx`)
  /// when the event fires.
  void admit(net::Packet&& packet, net::NodeContext& ctx);

  /// Like admit(), but with a caller-chosen delay (>= 0) instead of a draw
  /// from the distribution — used by disciplines that retune their delay
  /// parameters online (see ErlangTunedRcad).
  void admit_with_delay(net::Packet&& packet, net::NodeContext& ctx,
                        double delay);

  /// Cancels the scheduled release of the buffered packet at `index` and
  /// returns it to the caller (who decides what to do with it — RCAD
  /// transmits it immediately). Throws std::out_of_range on a bad index.
  net::Packet eject(std::size_t index, net::NodeContext& ctx);

 private:
  void release(std::uint64_t uid, net::NodeContext& ctx);

  std::unique_ptr<DelayDistribution> delay_;
  std::vector<Held> held_;
};

/// RCAD victim-selection rule (paper §5 uses shortest-remaining-delay; the
/// alternatives exist for the ablation bench).
enum class VictimPolicy {
  kShortestRemaining,  ///< paper: closest to its natural departure
  kLongestRemaining,   ///< adversarial ablation: most premature release
  kRandom,             ///< uniformly random buffered packet
  kOldest,             ///< earliest enqueue time (FIFO-style)
};

/// Index of the victim in `held` per `policy`. Requires non-empty `held`.
std::size_t select_victim(const std::vector<DelayBuffer::Held>& held,
                          VictimPolicy policy, double now,
                          sim::RandomStream& rng);

const char* to_string(VictimPolicy policy) noexcept;

}  // namespace tempriv::core
