#pragma once

#include <cstdint>
#include <functional>

#include "core/delay_buffer.h"
#include "core/delay_distribution.h"
#include "net/forwarding.h"

namespace tempriv::core {

/// Maps a node's hop distance from the sink to its mean privacy delay —
/// the §3.3 knob for decomposing the end-to-end delay process across the
/// path (e.g. more delay far from the sink, where buffers are idler).
using DelayProfile = std::function<double(std::uint16_t hops_to_sink)>;

/// Every node forwards immediately (evaluation case 1).
net::DisciplineFactory immediate_factory();

/// Every node delays from a clone of `prototype` with unlimited buffers
/// (evaluation case 2).
net::DisciplineFactory unlimited_factory(const DelayDistribution& prototype);

/// Convenience: unlimited buffers, Exp(mean_delay) at every node.
net::DisciplineFactory unlimited_exponential_factory(double mean_delay);

/// Every node delays from a clone of `prototype` with a k-slot drop-tail
/// buffer (the §4 M/M/k/k model with plain dropping).
net::DisciplineFactory droptail_factory(const DelayDistribution& prototype,
                                        std::size_t capacity);

/// Convenience: drop-tail, Exp(mean_delay).
net::DisciplineFactory droptail_exponential_factory(double mean_delay,
                                                    std::size_t capacity);

/// Every node runs RCAD over a clone of `prototype` (evaluation case 3).
net::DisciplineFactory rcad_factory(
    const DelayDistribution& prototype, std::size_t capacity,
    VictimPolicy victim_policy = VictimPolicy::kShortestRemaining);

/// Convenience: RCAD, Exp(mean_delay).
net::DisciplineFactory rcad_exponential_factory(
    double mean_delay, std::size_t capacity,
    VictimPolicy victim_policy = VictimPolicy::kShortestRemaining);

/// Per-node exponential means from a DelayProfile, unlimited buffers.
net::DisciplineFactory unlimited_exponential_profile_factory(DelayProfile profile);

/// Per-node exponential means from a DelayProfile, RCAD buffers.
net::DisciplineFactory rcad_exponential_profile_factory(
    DelayProfile profile, std::size_t capacity,
    VictimPolicy victim_policy = VictimPolicy::kShortestRemaining);

}  // namespace tempriv::core
