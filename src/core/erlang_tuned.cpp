#include "core/erlang_tuned.h"

#include <algorithm>
#include <stdexcept>

#include "queueing/erlang.h"

namespace tempriv::core {

ErlangTunedRcad::ErlangTunedRcad(const Config& config)
    : config_(config),
      admissible_rho_(0.0),
      buffer_(std::make_unique<ExponentialDelay>(
                  std::max(config.max_mean_delay, 1e-9)),
              config.victim),
      current_mean_(config.max_mean_delay) {
  if (config.capacity == 0) {
    throw std::invalid_argument("ErlangTunedRcad: capacity must be >= 1");
  }
  if (config.target_loss <= 0.0 || config.target_loss >= 1.0) {
    throw std::invalid_argument("ErlangTunedRcad: target_loss outside (0,1)");
  }
  if (config.max_mean_delay <= 0.0) {
    throw std::invalid_argument("ErlangTunedRcad: max_mean_delay <= 0");
  }
  if (config.ewma_weight <= 0.0 || config.ewma_weight > 1.0) {
    throw std::invalid_argument("ErlangTunedRcad: ewma_weight outside (0,1]");
  }
  admissible_rho_ = queueing::max_rho_for_loss(config.target_loss,
                                               config.capacity);
  buffer_.reserve(config.capacity);
}

void ErlangTunedRcad::retune(double now) {
  if (has_arrival_) {
    const double gap = now - last_arrival_;
    ewma_gap_ = ewma_gap_ <= 0.0
                    ? gap
                    : (1.0 - config_.ewma_weight) * ewma_gap_ +
                          config_.ewma_weight * gap;
    if (ewma_gap_ > 0.0) {
      rate_estimate_ = 1.0 / ewma_gap_;
      current_mean_ =
          std::min(config_.max_mean_delay, admissible_rho_ / rate_estimate_);
    }
  }
  has_arrival_ = true;
  last_arrival_ = now;
}

void ErlangTunedRcad::on_packet(net::Packet&& packet, net::NodeContext& ctx) {
  retune(ctx.simulator().now());
  if (buffer_.size() >= config_.capacity) {
    // Safety net for bursts the EWMA lags behind: classic RCAD preemption.
    net::Packet early = buffer_.preempt(ctx);
    ++preemptions_;
    ctx.transmit(std::move(early));
  }
  buffer_.admit_with_delay(std::move(packet), ctx,
                           ctx.rng().exponential_mean(current_mean_));
}

net::DisciplineFactory erlang_tuned_rcad_factory(
    const ErlangTunedRcad::Config& config) {
  return [config](net::NodeId, std::uint16_t)
             -> std::unique_ptr<net::ForwardingDiscipline> {
    return std::make_unique<ErlangTunedRcad>(config);
  };
}

}  // namespace tempriv::core
