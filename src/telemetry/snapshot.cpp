#include "telemetry/snapshot.h"

#include <ostream>
#include <sstream>

namespace tempriv::telemetry {

const char* name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kEqScheduleHeap:
      return "eq.schedule_heap";
    case Counter::kEqScheduleFifo:
      return "eq.schedule_fifo";
    case Counter::kEqFifoDiverted:
      return "eq.fifo_diverted";
    case Counter::kEqTombstoneSkipped:
      return "eq.tombstone_skipped";
    case Counter::kEqDispatchSingle:
      return "eq.dispatch_single";
    case Counter::kEqPopBatch:
      return "eq.pop_batch";
    case Counter::kBufPreemptShortest:
      return "buf.preempt.shortest_remaining";
    case Counter::kBufPreemptLongest:
      return "buf.preempt.longest_remaining";
    case Counter::kBufPreemptRandom:
      return "buf.preempt.random";
    case Counter::kBufPreemptOldest:
      return "buf.preempt.oldest";
    case Counter::kBufEjected:
      return "buf.ejected";
    case Counter::kNetForwardImmediate:
      return "net.forward.immediate";
    case Counter::kNetForwardUnlimited:
      return "net.forward.unlimited";
    case Counter::kNetForwardDropTail:
      return "net.forward.droptail";
    case Counter::kNetForwardRcad:
      return "net.forward.rcad";
    case Counter::kNetForwardCustom:
      return "net.forward.custom";
    case Counter::kNetDropTailDropped:
      return "net.droptail_dropped";
    case Counter::kCampaignJobs:
      return "campaign.jobs";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

const char* name(Gauge gauge) noexcept {
  switch (gauge) {
    case Gauge::kEqPeakDepth:
      return "eq.peak_depth";
    case Gauge::kBufPeakOccupancy:
      return "buf.peak_occupancy";
    case Gauge::kMemNetworkBytes:
      return "mem.network_bytes";
    case Gauge::kMemTopologyBytes:
      return "mem.topology_bytes";
    case Gauge::kMemRoutingBytes:
      return "mem.routing_bytes";
    case Gauge::kCount:
      break;
  }
  return "unknown";
}

const char* name(Hist hist) noexcept {
  switch (hist) {
    case Hist::kBufOccupancy:
      return "buf.occupancy";
    case Hist::kNetBatchLaneFill:
      return "net.batch_lane_fill";
    case Hist::kCampaignJobWallUs:
      return "campaign.job_wall_us";
    case Hist::kCount:
      break;
  }
  return "unknown";
}

void Snapshot::merge(const Snapshot& other) {
  enabled = enabled || other.enabled;
  for (const auto& [key, value] : other.counters) counters[key] += value;
  for (const auto& [key, value] : other.gauges) {
    std::uint64_t& gauge = gauges[key];
    if (value > gauge) gauge = value;
  }
  for (const auto& [key, value] : other.histograms) {
    HistogramCounts& hist = histograms[key];
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      hist.buckets[b] += value.buckets[b];
    }
  }
  for (const auto& [key, value] : other.spans) {
    SpanStat& span = spans[key];
    span.count += value.count;
    span.nanos += value.nanos;
  }
}

namespace {

void write_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    // Metric names and span paths are plain identifiers; escape the two
    // JSON-mandatory characters anyway so the writer is safe for any key.
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void write_snapshot_json(std::ostream& os, const Snapshot& snapshot) {
  os << "{\"telemetry\": {\"schema\": 1,\n"
     << " \"enabled\": " << (snapshot.enabled ? "true" : "false") << ",\n"
     << " \"counters\": {";
  const char* sep = "\n  ";
  for (const auto& [key, value] : snapshot.counters) {
    os << sep;
    write_string(os, key);
    os << ": " << value;
    sep = ",\n  ";
  }
  os << "\n },\n \"gauges\": {";
  sep = "\n  ";
  for (const auto& [key, value] : snapshot.gauges) {
    os << sep;
    write_string(os, key);
    os << ": " << value;
    sep = ",\n  ";
  }
  os << "\n },\n \"histograms\": {";
  sep = "\n  ";
  for (const auto& [key, hist] : snapshot.histograms) {
    os << sep;
    write_string(os, key);
    os << ": [";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (b != 0) os << ",";
      os << hist.buckets[b];
    }
    os << "]";
    sep = ",\n  ";
  }
  os << "\n },\n \"spans\": {";
  sep = "\n  ";
  for (const auto& [key, span] : snapshot.spans) {
    os << sep;
    write_string(os, key);
    os << ": {\"count\": " << span.count << ", \"nanos\": " << span.nanos
       << "}";
    sep = ",\n  ";
  }
  os << "\n }\n}}\n";
}

std::string snapshot_to_json(const Snapshot& snapshot) {
  std::ostringstream os;
  write_snapshot_json(os, snapshot);
  return os.str();
}

}  // namespace tempriv::telemetry
