#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace tempriv::telemetry {

/// Whether this build compiled the probe macros into the hot paths
/// (-DTEMPRIV_TELEMETRY=ON). Snapshot/merge machinery exists either way so
/// an OFF-build tempriv-merge can still combine ON-build shard snapshots.
constexpr bool compiled_in() noexcept {
#if defined(TEMPRIV_TELEMETRY_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Metric identity is a compile-time enum, not a string registry: probe
/// sites index fixed per-thread arrays, so an enabled probe is a couple of
/// plain increments with no registration, hashing, or allocation anywhere.
/// Names (the JSON snapshot keys) live in name(); the two lists must stay
/// in sync — collect() iterates the enums and asks name() for each.
enum class Counter : std::uint32_t {
  // sim::EventQueue lanes
  kEqScheduleHeap,      ///< schedule() insertions into the 4-ary heap lane
  kEqScheduleFifo,      ///< schedule_monotone() appends to the FIFO ring
  kEqFifoDiverted,      ///< monotone calls below the ring tail, rerouted to the heap
  kEqTombstoneSkipped,  ///< dead (cancelled/taken) records dropped by pops
  kEqDispatchSingle,    ///< dispatch_if_single() fast-path hits
  kEqPopBatch,          ///< pop_batch() calls that drained a non-empty cohort
  // core::DelayBuffer preemption/ejection, per victim policy
  kBufPreemptShortest,  ///< preempt() under kShortestRemaining
  kBufPreemptLongest,   ///< preempt() under kLongestRemaining
  kBufPreemptRandom,    ///< preempt() under kRandom
  kBufPreemptOldest,    ///< preempt() under kOldest
  kBufEjected,          ///< eject() by admission-order index
  // net::Network per-role packet handling
  kNetForwardImmediate,
  kNetForwardUnlimited,
  kNetForwardDropTail,
  kNetForwardRcad,
  kNetForwardCustom,
  kNetDropTailDropped,  ///< packets destroyed by a full drop-tail buffer
  // campaign
  kCampaignJobs,        ///< scenario jobs completed by runner workers
  kCount,
};

enum class Gauge : std::uint32_t {
  kEqPeakDepth,        ///< max concurrent pending events in one EventQueue
  kBufPeakOccupancy,   ///< max packets concurrently held by one DelayBuffer
  kMemNetworkBytes,    ///< net::Network::memory_bytes() at end of run
  kMemTopologyBytes,   ///< net::Topology::memory_bytes() at end of run
  kMemRoutingBytes,    ///< net::RoutingTable::memory_bytes() at end of run
  kCount,
};

enum class Hist : std::uint32_t {
  kBufOccupancy,      ///< DelayBuffer size after each admit
  kNetBatchLaneFill,  ///< payloads per seal_batch lane group in originate_batch
  kCampaignJobWallUs, ///< per-job wall time, microseconds
  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kHistCount =
    static_cast<std::size_t>(Hist::kCount);

/// Fixed power-of-two histogram geometry: bucket b counts values whose
/// bit_width is b, i.e. bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2,3},
/// bucket b = [2^(b-1), 2^b). The last bucket absorbs everything wider.
/// Fixed geometry is what makes shard merges a plain element-wise sum.
inline constexpr std::size_t kHistBuckets = 32;

constexpr std::size_t hist_bucket(std::uint64_t value) noexcept {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistBuckets ? width : kHistBuckets - 1;
}

/// The DelayBuffer preempt counter for a core::VictimPolicy, relying on the
/// two enums declaring the policies in the same order (checked by test).
constexpr Counter preempt_counter(std::uint32_t policy_index) noexcept {
  return static_cast<Counter>(
      static_cast<std::uint32_t>(Counter::kBufPreemptShortest) + policy_index);
}

/// Snapshot key for each metric (stable across builds; the merge contract).
const char* name(Counter counter) noexcept;
const char* name(Gauge gauge) noexcept;
const char* name(Hist hist) noexcept;

}  // namespace tempriv::telemetry
