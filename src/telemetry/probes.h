#pragma once

// Probe macros for the hot subsystems. With the default build
// (TEMPRIV_TELEMETRY=OFF) every macro expands to ((void)0) — no code, no
// includes beyond metrics.h, no argument evaluation — so instrumented hot
// paths are bit-for-bit the uninstrumented ones (the alloc-guard and
// bench-gate suites hold the contract). With -DTEMPRIV_TELEMETRY=ON each
// probe is a couple of plain (unsynchronized) integer operations on a
// per-thread metric block; blocks are registered once per thread and
// summed by telemetry::collect() after workers quiesce, so the hot path
// carries no atomics and no locks.
//
// Telemetry is measurement-only by contract: probes never touch RNG state,
// event ordering, or result bytes — golden CSVs and shard artifacts are
// byte-identical in ON and OFF builds (tested in CI).

#include "telemetry/metrics.h"

#if defined(TEMPRIV_TELEMETRY_ENABLED)

#include <cstdint>

namespace tempriv::telemetry {

/// One thread's accumulation arrays. Allocated on a thread's first probe,
/// registered globally, and deliberately never freed: a pool worker's
/// counts must survive its exit so end-of-run collection sees them.
struct MetricBlock {
  std::uint64_t counters[kCounterCount] = {};
  std::uint64_t gauges[kGaugeCount] = {};
  std::uint64_t hists[kHistCount][kHistBuckets] = {};
};

MetricBlock* register_thread_block();

inline MetricBlock& block() noexcept {
  thread_local MetricBlock* tl_block = register_thread_block();
  return *tl_block;
}

inline void probe_count(Counter counter, std::uint64_t n = 1) noexcept {
  block().counters[static_cast<std::size_t>(counter)] += n;
}

inline void probe_gauge_max(Gauge gauge, std::uint64_t value) noexcept {
  std::uint64_t& current = block().gauges[static_cast<std::size_t>(gauge)];
  if (value > current) current = value;
}

inline void probe_hist(Hist hist, std::uint64_t value) noexcept {
  ++block().hists[static_cast<std::size_t>(hist)][hist_bucket(value)];
}

std::uint64_t monotonic_nanos() noexcept;

/// RAII wall-time span. Nested spans record under slash-joined paths
/// ("job/simulate"); the per-thread path stack assumes strictly LIFO
/// begin/end, which scoped usage guarantees. Recording takes a global
/// mutex — spans mark phases (build/simulate/score/merge), not packets.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name);
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
  ~PhaseSpan() { end(); }

  /// Records the span now instead of at scope exit; idempotent.
  void end() noexcept;

 private:
  std::uint64_t start_ns_ = 0;
  std::size_t prev_path_size_ = 0;
  bool active_ = false;
};

}  // namespace tempriv::telemetry

#define TEMPRIV_TLM_CAT2(a, b) a##b
#define TEMPRIV_TLM_CAT(a, b) TEMPRIV_TLM_CAT2(a, b)

#define TEMPRIV_TLM_COUNT(counter) \
  (tempriv::telemetry::probe_count(tempriv::telemetry::Counter::counter))
#define TEMPRIV_TLM_COUNT_N(counter, n) \
  (tempriv::telemetry::probe_count(tempriv::telemetry::Counter::counter, (n)))
/// Like TEMPRIV_TLM_COUNT but for a runtime-computed telemetry::Counter
/// (e.g. telemetry::preempt_counter(policy)).
#define TEMPRIV_TLM_COUNT_AT(counter_expr) \
  (tempriv::telemetry::probe_count((counter_expr)))
#define TEMPRIV_TLM_GAUGE_MAX(gauge, value) \
  (tempriv::telemetry::probe_gauge_max(tempriv::telemetry::Gauge::gauge, (value)))
#define TEMPRIV_TLM_HIST(hist, value) \
  (tempriv::telemetry::probe_hist(tempriv::telemetry::Hist::hist, (value)))
/// Whole-scope span.
#define TEMPRIV_TLM_SPAN(name) \
  tempriv::telemetry::PhaseSpan TEMPRIV_TLM_CAT(tempriv_tlm_span_, __LINE__){name}
/// Explicit begin/end pair for phases that do not own a scope; ends must
/// nest LIFO with respect to other spans on the same thread.
#define TEMPRIV_TLM_SPAN_BEGIN(var, name) tempriv::telemetry::PhaseSpan var{name}
#define TEMPRIV_TLM_SPAN_END(var) ((var).end())

#else  // telemetry compiled out: every probe vanishes, arguments unevaluated

#define TEMPRIV_TLM_COUNT(counter) ((void)0)
#define TEMPRIV_TLM_COUNT_N(counter, n) ((void)0)
#define TEMPRIV_TLM_COUNT_AT(counter_expr) ((void)0)
#define TEMPRIV_TLM_GAUGE_MAX(gauge, value) ((void)0)
#define TEMPRIV_TLM_HIST(hist, value) ((void)0)
#define TEMPRIV_TLM_SPAN(name) ((void)0)
#define TEMPRIV_TLM_SPAN_BEGIN(var, name) ((void)0)
#define TEMPRIV_TLM_SPAN_END(var) ((void)0)

#endif
