#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/probes.h"
#include "telemetry/snapshot.h"

namespace tempriv::telemetry {

namespace {

// The span table is global (not per-thread): spans are phase-granular and
// rare, so a mutex per record costs nothing, and collection needs no
// cross-thread array walk. Compiled in both builds — an OFF build's table
// simply stays empty.
std::mutex g_span_mutex;
std::map<std::string, SpanStat>& span_table() {
  static std::map<std::string, SpanStat> table;
  return table;
}

#if defined(TEMPRIV_TELEMETRY_ENABLED)

std::mutex g_block_mutex;
std::vector<MetricBlock*>& block_list() {
  static std::vector<MetricBlock*> blocks;
  return blocks;
}

// Per-thread slash-joined path of the open spans ("job/simulate" while the
// simulate span is live inside a job span).
thread_local std::string t_span_path;

void record_span(const std::string& path, std::uint64_t nanos) {
  std::lock_guard<std::mutex> lock(g_span_mutex);
  SpanStat& stat = span_table()[path];
  ++stat.count;
  stat.nanos += nanos;
}

#endif  // TEMPRIV_TELEMETRY_ENABLED

}  // namespace

#if defined(TEMPRIV_TELEMETRY_ENABLED)

MetricBlock* register_thread_block() {
  // Leaked by design: a worker thread's counts must outlive the thread so
  // end-of-run collection still sees them. Bounded by thread count.
  MetricBlock* block = new MetricBlock();
  std::lock_guard<std::mutex> lock(g_block_mutex);
  block_list().push_back(block);
  return block;
}

std::uint64_t monotonic_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

PhaseSpan::PhaseSpan(const char* name) {
  prev_path_size_ = t_span_path.size();
  if (!t_span_path.empty()) t_span_path += '/';
  t_span_path += name;
  active_ = true;
  start_ns_ = monotonic_nanos();
}

void PhaseSpan::end() noexcept {
  if (!active_) return;
  active_ = false;
  const std::uint64_t elapsed = monotonic_nanos() - start_ns_;
  try {
    record_span(t_span_path, elapsed);
  } catch (...) {
    // Out-of-memory recording a measurement must not take the run down.
  }
  t_span_path.resize(prev_path_size_);
}

#endif  // TEMPRIV_TELEMETRY_ENABLED

Snapshot collect() {
  Snapshot snap;
  snap.enabled = compiled_in();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    snap.counters[name(static_cast<Counter>(i))] = 0;
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    snap.gauges[name(static_cast<Gauge>(i))] = 0;
  }
  for (std::size_t i = 0; i < kHistCount; ++i) {
    snap.histograms[name(static_cast<Hist>(i))] = HistogramCounts{};
  }
#if defined(TEMPRIV_TELEMETRY_ENABLED)
  {
    std::lock_guard<std::mutex> lock(g_block_mutex);
    for (const MetricBlock* block : block_list()) {
      for (std::size_t i = 0; i < kCounterCount; ++i) {
        snap.counters[name(static_cast<Counter>(i))] += block->counters[i];
      }
      for (std::size_t i = 0; i < kGaugeCount; ++i) {
        std::uint64_t& gauge = snap.gauges[name(static_cast<Gauge>(i))];
        if (block->gauges[i] > gauge) gauge = block->gauges[i];
      }
      for (std::size_t i = 0; i < kHistCount; ++i) {
        HistogramCounts& hist = snap.histograms[name(static_cast<Hist>(i))];
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
          hist.buckets[b] += block->hists[i][b];
        }
      }
    }
  }
#endif
  {
    std::lock_guard<std::mutex> lock(g_span_mutex);
    snap.spans = span_table();
  }
  return snap;
}

void reset() {
#if defined(TEMPRIV_TELEMETRY_ENABLED)
  {
    std::lock_guard<std::mutex> lock(g_block_mutex);
    for (MetricBlock* block : block_list()) *block = MetricBlock{};
  }
#endif
  std::lock_guard<std::mutex> lock(g_span_mutex);
  span_table().clear();
}

}  // namespace tempriv::telemetry
