#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "telemetry/metrics.h"

namespace tempriv::telemetry {

/// Bucket counts of one fixed-geometry histogram (see hist_bucket()).
struct HistogramCounts {
  std::array<std::uint64_t, kHistBuckets> buckets{};

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : buckets) sum += b;
    return sum;
  }

  friend bool operator==(const HistogramCounts&,
                         const HistogramCounts&) = default;
};

/// Accumulated wall time of one phase-span path ("job/simulate", "merge").
/// Durations are integer nanoseconds, not doubles, so merging shard
/// snapshots is exactly associative (tested).
struct SpanStat {
  std::uint64_t count = 0;
  std::uint64_t nanos = 0;

  friend bool operator==(const SpanStat&, const SpanStat&) = default;
};

/// A run's (or shard's) metrics at one collection point. String-keyed maps,
/// not enum arrays: a snapshot parsed from a newer or older build's file
/// merges by key union, and std::map keeps JSON output deterministically
/// sorted. Merge semantics — the shard-combination contract — are: sum
/// counters, max gauges, element-wise-sum histograms, sum spans.
struct Snapshot {
  bool enabled = false;  ///< producing build had TEMPRIV_TELEMETRY=ON
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, HistogramCounts> histograms;
  std::map<std::string, SpanStat> spans;

  /// Folds `other` into this snapshot. Commutative and associative in
  /// every field, so any shard merge order produces the same bytes.
  void merge(const Snapshot& other);

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Sums every registered per-thread metric block plus the global span table
/// into a Snapshot carrying all known metrics (zeros included, so the file
/// schema is identical whatever the run did). Callers must quiesce worker
/// threads first — collection is meant for end-of-run, not mid-flight.
/// In an OFF build the counters exist but are all zero and enabled=false.
Snapshot collect();

/// Zeroes every registered block and clears the span table. For tests (one
/// process runs many scenarios); not safe concurrently with active probes.
void reset();

/// Deterministic JSON: fixed field order, sorted keys, integers only.
void write_snapshot_json(std::ostream& os, const Snapshot& snapshot);
std::string snapshot_to_json(const Snapshot& snapshot);

}  // namespace tempriv::telemetry
