#pragma once

#include <cstdint>

#include "workload/source.h"

namespace tempriv::workload {

/// ON/OFF bursty source (two-state Markov-modulated Poisson process).
///
/// Real sensed phenomena are bursty — an animal lingers near one sensor,
/// a vehicle convoy passes a checkpoint — which is *harder* for delaying
/// schemes than smooth traffic: bursts slam the buffers (forcing RCAD into
/// its preemption regime) and then go quiet (letting buffers drain with
/// full-length delays). The source alternates exponentially-distributed
/// ON periods, during which packets are created as a Poisson process with
/// `burst_rate`, and OFF periods with no traffic at all.
class BurstSource final : public Source {
 public:
  struct Config {
    double burst_rate = 1.0;      ///< packet rate while ON
    double mean_on_time = 20.0;   ///< exponential mean of ON periods
    double mean_off_time = 80.0;  ///< exponential mean of OFF periods
    std::uint32_t count = 1000;   ///< total packets to create

    /// Long-run average rate: burst_rate * on / (on + off).
    double average_rate() const noexcept {
      return burst_rate * mean_on_time / (mean_on_time + mean_off_time);
    }
  };

  BurstSource(net::Network& network, const crypto::PayloadCodec& codec,
              net::NodeId origin, sim::RandomStream rng, const Config& config);

  void start(double at) override;

  std::uint64_t bursts_started() const noexcept { return bursts_; }

 private:
  void begin_burst();
  void tick(double burst_ends);

  Config config_;
  std::uint64_t bursts_ = 0;
};

}  // namespace tempriv::workload
