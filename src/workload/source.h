#pragma once

#include <cstdint>

#include "crypto/payload.h"
#include "net/network.h"
#include "sim/random.h"

namespace tempriv::workload {

/// Base for traffic sources: owns the application sequence counter, seals
/// each reading (so its creation time-stamp and sequence number are
/// encrypted end-to-end) and injects it into the network. Subclasses decide
/// *when* packets are created.
class Source {
 public:
  /// `network` and `codec` are kept by reference and must outlive the run.
  Source(net::Network& network, const crypto::PayloadCodec& codec,
         net::NodeId origin, sim::RandomStream rng);

  virtual ~Source() = default;
  Source(const Source&) = delete;
  Source& operator=(const Source&) = delete;

  /// Schedules the first packet creation. Call once before running the
  /// simulator; `at` is an absolute simulation time.
  virtual void start(double at) = 0;

  net::NodeId origin() const noexcept { return origin_; }
  std::uint32_t packets_created() const noexcept { return app_seq_; }

 protected:
  /// Creates one packet *now*: samples a reading, seals
  /// (reading, app_seq, now) and originates it. Returns the packet uid.
  std::uint64_t emit();

  /// Creates `n` packets *now* as one burst: readings are sampled in the
  /// same RNG order n emit() calls would use, all share this instant as
  /// creation time, and the burst is sealed in batched lane groups through
  /// Network::originate_batch (one key-schedule pass per group of
  /// PayloadCodec::kBatchLanes packets). Returns the first packet's uid
  /// (0 with no effect when n == 0).
  std::uint64_t emit_burst(std::uint32_t n);

  net::Network& network() noexcept { return network_; }
  sim::RandomStream& rng() noexcept { return rng_; }

 private:
  net::Network& network_;
  const crypto::PayloadCodec& codec_;
  net::NodeId origin_;
  sim::RandomStream rng_;
  std::uint32_t app_seq_ = 0;
};

/// The paper's evaluation traffic (§5.2): packets created at fixed periodic
/// intervals of 1/λ time units, `count` packets total.
class PeriodicSource final : public Source {
 public:
  PeriodicSource(net::Network& network, const crypto::PayloadCodec& codec,
                 net::NodeId origin, sim::RandomStream rng, double interval,
                 std::uint32_t count);

  void start(double at) override;

 private:
  void tick();

  double interval_;
  std::uint32_t count_;
};

/// Poisson traffic (rate λ), matching the §3/§4 analytic model: i.i.d.
/// exponential inter-creation times.
class PoissonSource final : public Source {
 public:
  PoissonSource(net::Network& network, const crypto::PayloadCodec& codec,
                net::NodeId origin, sim::RandomStream rng, double rate,
                std::uint32_t count);

  void start(double at) override;

 private:
  void tick();

  double rate_;
  std::uint32_t count_;
};

}  // namespace tempriv::workload
