#include "workload/scenario.h"

#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "adversary/estimator.h"
#include "adversary/ground_truth.h"
#include "adversary/path_aware.h"
#include "core/factories.h"
#include "crypto/payload.h"
#include "net/network.h"
#include "net/topology.h"
#include "net/tracer.h"
#include "sim/simulator.h"
#include "telemetry/probes.h"
#include "workload/burst_source.h"
#include "workload/source.h"

namespace tempriv::workload {

const char* to_string(SourceKind kind) noexcept {
  switch (kind) {
    case SourceKind::kPeriodic:
      return "periodic";
    case SourceKind::kPoisson:
      return "poisson";
    case SourceKind::kBursty:
      return "bursty";
  }
  return "unknown";
}

const char* to_string(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kNoDelay:
      return "no-delay";
    case Scheme::kUnlimitedDelay:
      return "delay+unlimited-buffers";
    case Scheme::kDropTail:
      return "delay+drop-tail";
    case Scheme::kRcad:
      return "delay+limited-buffers(RCAD)";
  }
  return "unknown";
}

Scheme scheme_from_string(const std::string& name) {
  if (name == "nodelay" || name == "no-delay") return Scheme::kNoDelay;
  if (name == "unlimited" || name == "delay+unlimited-buffers") {
    return Scheme::kUnlimitedDelay;
  }
  if (name == "droptail" || name == "delay+drop-tail") return Scheme::kDropTail;
  if (name == "rcad" || name == "delay+limited-buffers(RCAD)") {
    return Scheme::kRcad;
  }
  throw std::invalid_argument("unknown scheme: " + name);
}

SourceKind source_kind_from_string(const std::string& name) {
  if (name == "periodic") return SourceKind::kPeriodic;
  if (name == "poisson") return SourceKind::kPoisson;
  if (name == "bursty") return SourceKind::kBursty;
  throw std::invalid_argument("unknown source kind: " + name);
}

namespace {

net::DisciplineFactory make_factory(const PaperScenario& s) {
  if (s.scheme == Scheme::kNoDelay) return core::immediate_factory();

  if (s.sink_weighting > 0.0) {
    // §3.3 ablation: scale a node's mean delay linearly with its distance
    // from the sink. The reference path length is the mean configured hop
    // count, so the end-to-end delay budget is approximately preserved.
    const double h_ref =
        std::accumulate(s.hop_counts.begin(), s.hop_counts.end(), 0.0) /
        static_cast<double>(s.hop_counts.size());
    const double weighting = s.sink_weighting;
    const double base = s.mean_delay;
    core::DelayProfile profile = [weighting, base, h_ref](std::uint16_t hops) {
      const double ramp = 2.0 * static_cast<double>(hops) / (h_ref + 1.0);
      return base * ((1.0 - weighting) + weighting * ramp);
    };
    switch (s.scheme) {
      case Scheme::kUnlimitedDelay:
        return core::unlimited_exponential_profile_factory(std::move(profile));
      case Scheme::kRcad:
        return core::rcad_exponential_profile_factory(std::move(profile),
                                                      s.buffer_slots, s.victim);
      default:
        throw std::invalid_argument(
            "run_paper_scenario: sink_weighting supports unlimited/RCAD only");
    }
  }

  switch (s.scheme) {
    case Scheme::kUnlimitedDelay:
      return core::unlimited_exponential_factory(s.mean_delay);
    case Scheme::kDropTail:
      return core::droptail_exponential_factory(s.mean_delay, s.buffer_slots);
    case Scheme::kRcad:
      return core::rcad_exponential_factory(s.mean_delay, s.buffer_slots,
                                            s.victim);
    case Scheme::kNoDelay:
      break;  // handled above
  }
  throw std::logic_error("run_paper_scenario: unknown scheme");
}

}  // namespace

ScenarioResult run_paper_scenario(const PaperScenario& scenario) {
  if (scenario.interarrival <= 0.0) {
    throw std::invalid_argument("run_paper_scenario: interarrival must be > 0");
  }
  if (scenario.hop_counts.empty()) {
    throw std::invalid_argument("run_paper_scenario: no flows configured");
  }

  TEMPRIV_TLM_SPAN_BEGIN(build_span, "build");

  sim::Simulator simulator;
  sim::RandomStream root(scenario.seed);

  auto built = net::Topology::converging_paths(scenario.hop_counts,
                                               scenario.shared_tail);
  net::NetworkConfig net_config;
  net_config.hop_tx_delay = scenario.hop_tx_delay;
  net_config.hop_jitter = scenario.hop_jitter;
  net::Network network(simulator, std::move(built.topology), make_factory(scenario),
                       net_config, root.split(0x6e65));
  // Size the in-flight pool for the worst case of every routed node having
  // one packet on the wire at once, so steady state never grows it.
  network.reserve(network.topology().node_count());

  // Tracing is opt-in: untraced runs never construct the tracer, so the
  // transmit-probe list stays empty and the hot path is one branch.
  std::optional<net::PacketTracer> tracer;
  if (scenario.trace) {
    tracer.emplace(network);
    const std::size_t total_packets =
        scenario.hop_counts.size() * scenario.packets_per_source;
    std::size_t total_hops = 0;
    for (const std::uint16_t hops : scenario.hop_counts) {
      total_hops += static_cast<std::size_t>(hops) * scenario.packets_per_source;
    }
    tracer->reserve(total_packets, total_hops);
  }

  const crypto::Speck64_128::Key master_key{0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                            0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                            0xcc, 0xdd, 0xee, 0xff};
  const crypto::PayloadCodec codec(master_key);

  const double known_mean_delay =
      scenario.scheme == Scheme::kNoDelay ? 0.0 : scenario.mean_delay;
  const double known_tx_delay =
      scenario.hop_tx_delay + scenario.hop_jitter / 2.0;
  adversary::BaselineAdversary baseline(known_tx_delay, known_mean_delay);
  adversary::AdaptiveAdversary adaptive({known_tx_delay, known_mean_delay,
                                         scenario.buffer_slots,
                                         scenario.adaptive_threshold});
  adversary::PathAwareAdversary path_aware(
      {known_tx_delay, known_mean_delay, scenario.buffer_slots,
       scenario.adaptive_threshold},
      network.topology(), network.routing());
  adversary::GroundTruthRecorder truth(codec);
  network.add_sink_observer(&baseline);
  network.add_sink_observer(&adaptive);
  network.add_sink_observer(&path_aware);
  network.add_sink_observer(&truth);

  std::vector<std::unique_ptr<Source>> sources;
  sim::RandomStream phase_rng = root.split(0x7068);
  for (std::size_t i = 0; i < built.sources.size(); ++i) {
    const double rate = 1.0 / scenario.interarrival;
    switch (scenario.source) {
      case SourceKind::kPeriodic:
        sources.push_back(std::make_unique<PeriodicSource>(
            network, codec, built.sources[i], root.split(0x1000 + i),
            scenario.interarrival, scenario.packets_per_source));
        break;
      case SourceKind::kPoisson:
        sources.push_back(std::make_unique<PoissonSource>(
            network, codec, built.sources[i], root.split(0x1000 + i), rate,
            scenario.packets_per_source));
        break;
      case SourceKind::kBursty: {
        // ON/OFF with duty cycle 1/4 and 4x in-burst rate: the long-run
        // average matches the other kinds.
        BurstSource::Config config;
        config.burst_rate = 4.0 * rate;
        config.mean_on_time = 10.0 * scenario.interarrival;
        config.mean_off_time = 30.0 * scenario.interarrival;
        config.count = scenario.packets_per_source;
        sources.push_back(std::make_unique<BurstSource>(
            network, codec, built.sources[i], root.split(0x1000 + i), config));
        break;
      }
    }
    // Independent phases avoid artificial synchronization among the
    // periodic flows (the paper does not specify phasing).
    sources.back()->start(phase_rng.uniform(0.0, scenario.interarrival));
  }

  TEMPRIV_TLM_SPAN_END(build_span);

  {
    TEMPRIV_TLM_SPAN("simulate");
    simulator.run();
  }

  TEMPRIV_TLM_GAUGE_MAX(kMemNetworkBytes, network.memory_bytes());
  TEMPRIV_TLM_GAUGE_MAX(kMemTopologyBytes, network.topology().memory_bytes());
  TEMPRIV_TLM_GAUGE_MAX(kMemRoutingBytes, network.routing().memory_bytes());

  TEMPRIV_TLM_SPAN_BEGIN(score_span, "score");

  ScenarioResult result;
  result.events_executed = simulator.events_executed();
  result.originated = network.packets_originated();
  result.delivered = network.packets_delivered();
  result.preemptions = network.total_preemptions();
  result.drops = network.total_drops();
  result.mean_latency_all = truth.total_latency().mean();
  result.sim_end_time = simulator.now();
  if (tracer) {
    result.transmissions = tracer->transmissions();
    result.packets_traced = tracer->packets_traced();
  }
  for (std::size_t i = 0; i < built.sources.size(); ++i) {
    FlowResult flow;
    flow.source = built.sources[i];
    flow.hops = scenario.hop_counts[i];
    const auto mse_b = truth.score_flow(baseline, built.sources[i]);
    const auto mse_a = truth.score_flow(adaptive, built.sources[i]);
    flow.delivered = mse_b.count();
    flow.mse_baseline = mse_b.mse();
    flow.mse_adaptive = mse_a.mse();
    flow.mse_path_aware = truth.score_flow(path_aware, built.sources[i]).mse();
    if (flow.delivered > 0) {
      const auto& lat = truth.latency(built.sources[i]);
      flow.mean_latency = lat.mean();
      flow.max_latency = lat.max();
    }
    result.flows.push_back(flow);
  }
  return result;
}

}  // namespace tempriv::workload
