#pragma once

#include <cstdint>
#include <vector>

#include "crypto/payload.h"
#include "net/network.h"
#include "sim/random.h"

namespace tempriv::workload {

/// The paper's motivating scenario (§1–§2): a mobile asset (endangered
/// animal, tactical vehicle) moves through a monitored field; whenever a
/// sensing epoch elapses, the sensor nearest to the asset observes it and
/// reports to the sink. The adversary's goal is the asset's spatio-temporal
/// track; temporal ambiguity in packet creation times translates directly
/// into spatial ambiguity about the moving asset.
///
/// Movement is random-waypoint: pick a uniform destination in the field,
/// travel at constant speed, repeat.
class MobileAssetWorkload {
 public:
  struct Config {
    double field_side = 10.0;     ///< field is [0, side]²
    double speed = 0.5;           ///< distance units per time unit
    double sense_interval = 5.0;  ///< time units between observations
    double duration = 500.0;      ///< stop sensing after this time
  };

  /// One ground-truth observation: where the asset really was, when, and
  /// which sensor reported it (the packet uid links it to deliveries).
  struct TrackPoint {
    double time = 0.0;
    double x = 0.0;
    double y = 0.0;
    net::NodeId sensor = net::kInvalidNode;
    std::uint64_t packet_uid = 0;
  };

  /// Sensors are the non-sink nodes of `network`'s topology; the asset
  /// starts at a uniform random position.
  MobileAssetWorkload(net::Network& network, const crypto::PayloadCodec& codec,
                      const Config& config, sim::RandomStream rng);

  MobileAssetWorkload(const MobileAssetWorkload&) = delete;
  MobileAssetWorkload& operator=(const MobileAssetWorkload&) = delete;

  /// Schedules the sensing process from simulation time 0.
  void start();

  const std::vector<TrackPoint>& track() const noexcept { return track_; }

 private:
  void sense();
  void advance_to(double time);
  net::NodeId nearest_sensor(double x, double y) const;

  net::Network& network_;
  const crypto::PayloadCodec& codec_;
  Config config_;
  sim::RandomStream rng_;
  std::vector<TrackPoint> track_;
  std::vector<std::uint32_t> app_seq_;  ///< per-sensor sequence numbers

  // Random-waypoint state.
  double x_ = 0.0;
  double y_ = 0.0;
  double waypoint_x_ = 0.0;
  double waypoint_y_ = 0.0;
  double last_update_ = 0.0;
};

}  // namespace tempriv::workload
