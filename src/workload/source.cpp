#include "workload/source.h"

#include <algorithm>
#include <stdexcept>

namespace tempriv::workload {

Source::Source(net::Network& network, const crypto::PayloadCodec& codec,
               net::NodeId origin, sim::RandomStream rng)
    : network_(network), codec_(codec), origin_(origin), rng_(rng) {}

std::uint64_t Source::emit() {
  crypto::SensorPayload payload;
  payload.reading = rng_.normal(20.0, 2.0);  // e.g. a temperature reading
  payload.app_seq = app_seq_++;
  payload.creation_time = network_.simulator().now();
  return network_.originate(origin_, codec_.seal(payload, origin_));
}

std::uint64_t Source::emit_burst(std::uint32_t n) {
  constexpr std::size_t kGroup = crypto::PayloadCodec::kBatchLanes;
  crypto::SensorPayload group[kGroup];
  const double now = network_.simulator().now();
  std::uint64_t first_uid = 0;
  bool have_first = false;
  for (std::uint32_t done = 0; done < n;) {
    const std::size_t k =
        std::min<std::size_t>(kGroup, static_cast<std::size_t>(n - done));
    for (std::size_t j = 0; j < k; ++j) {
      group[j].reading = rng_.normal(20.0, 2.0);
      group[j].app_seq = app_seq_++;
      group[j].creation_time = now;
    }
    const std::uint64_t uid =
        network_.originate_batch(origin_, codec_, {group, k});
    if (!have_first) {
      first_uid = uid;
      have_first = true;
    }
    done += static_cast<std::uint32_t>(k);
  }
  return first_uid;
}

PeriodicSource::PeriodicSource(net::Network& network,
                               const crypto::PayloadCodec& codec,
                               net::NodeId origin, sim::RandomStream rng,
                               double interval, std::uint32_t count)
    : Source(network, codec, origin, rng), interval_(interval), count_(count) {
  if (interval <= 0.0) {
    throw std::invalid_argument("PeriodicSource: interval must be positive");
  }
}

void PeriodicSource::start(double at) {
  if (count_ == 0) return;
  network().simulator().schedule_at(at, [this] { tick(); });
}

void PeriodicSource::tick() {
  emit();
  if (packets_created() < count_) {
    network().simulator().schedule_after(interval_, [this] { tick(); });
  }
}

PoissonSource::PoissonSource(net::Network& network,
                             const crypto::PayloadCodec& codec,
                             net::NodeId origin, sim::RandomStream rng,
                             double rate, std::uint32_t count)
    : Source(network, codec, origin, rng), rate_(rate), count_(count) {
  if (rate <= 0.0) {
    throw std::invalid_argument("PoissonSource: rate must be positive");
  }
}

void PoissonSource::start(double at) {
  if (count_ == 0) return;
  // The first creation is itself one exponential step after `at`, so the
  // whole creation process is Poisson from `at` on.
  network().simulator().schedule_at(
      at + rng().exponential_rate(rate_), [this] { tick(); });
}

void PoissonSource::tick() {
  emit();
  if (packets_created() < count_) {
    network().simulator().schedule_after(rng().exponential_rate(rate_),
                                         [this] { tick(); });
  }
}

}  // namespace tempriv::workload
