#include "workload/source.h"

#include <stdexcept>

namespace tempriv::workload {

Source::Source(net::Network& network, const crypto::PayloadCodec& codec,
               net::NodeId origin, sim::RandomStream rng)
    : network_(network), codec_(codec), origin_(origin), rng_(rng) {}

std::uint64_t Source::emit() {
  crypto::SensorPayload payload;
  payload.reading = rng_.normal(20.0, 2.0);  // e.g. a temperature reading
  payload.app_seq = app_seq_++;
  payload.creation_time = network_.simulator().now();
  return network_.originate(origin_, codec_.seal(payload, origin_));
}

PeriodicSource::PeriodicSource(net::Network& network,
                               const crypto::PayloadCodec& codec,
                               net::NodeId origin, sim::RandomStream rng,
                               double interval, std::uint32_t count)
    : Source(network, codec, origin, rng), interval_(interval), count_(count) {
  if (interval <= 0.0) {
    throw std::invalid_argument("PeriodicSource: interval must be positive");
  }
}

void PeriodicSource::start(double at) {
  if (count_ == 0) return;
  network().simulator().schedule_at(at, [this] { tick(); });
}

void PeriodicSource::tick() {
  emit();
  if (packets_created() < count_) {
    network().simulator().schedule_after(interval_, [this] { tick(); });
  }
}

PoissonSource::PoissonSource(net::Network& network,
                             const crypto::PayloadCodec& codec,
                             net::NodeId origin, sim::RandomStream rng,
                             double rate, std::uint32_t count)
    : Source(network, codec, origin, rng), rate_(rate), count_(count) {
  if (rate <= 0.0) {
    throw std::invalid_argument("PoissonSource: rate must be positive");
  }
}

void PoissonSource::start(double at) {
  if (count_ == 0) return;
  // The first creation is itself one exponential step after `at`, so the
  // whole creation process is Poisson from `at` on.
  network().simulator().schedule_at(
      at + rng().exponential_rate(rate_), [this] { tick(); });
}

void PoissonSource::tick() {
  emit();
  if (packets_created() < count_) {
    network().simulator().schedule_after(rng().exponential_rate(rate_),
                                         [this] { tick(); });
  }
}

}  // namespace tempriv::workload
