#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/delay_buffer.h"
#include "net/packet.h"

namespace tempriv::workload {

/// Which privacy scheme every node on the forwarding paths runs — the three
/// situations of the paper's §5.3 plus the plain-dropping M/M/k/k variant.
enum class Scheme {
  kNoDelay,         ///< case 1: forward immediately
  kUnlimitedDelay,  ///< case 2: Exp(1/µ) delays, unlimited buffers
  kDropTail,        ///< §4: Exp(1/µ) delays, k slots, drop on overflow
  kRcad,            ///< case 3: Exp(1/µ) delays, k slots, RCAD preemption
};

const char* to_string(Scheme scheme) noexcept;

/// Inverse of to_string(Scheme); also accepts the CLI short names
/// ("nodelay", "unlimited", "droptail", "rcad"). Throws
/// std::invalid_argument on unknown names.
Scheme scheme_from_string(const std::string& name);

/// Which creation process drives the sources: the paper's periodic
/// generators, the Poisson process its analysis assumes, or ON/OFF bursts
/// at the same average rate (see workload/burst_source.h).
enum class SourceKind {
  kPeriodic,
  kPoisson,
  kBursty,
};

const char* to_string(SourceKind kind) noexcept;

/// Inverse of to_string(SourceKind). Throws std::invalid_argument on
/// unknown names.
SourceKind source_kind_from_string(const std::string& name);

/// The paper's simulation setup (§5.2), parameterized for sweeps: the
/// Figure-1 topology (four sources with hop counts 15/22/9/11 converging on
/// a sink), periodic sources with inter-arrival 1/λ, per-hop transmission
/// delay τ = 1, Exp(1/µ = 30) privacy delays and 10-slot (Mica-2-sized)
/// buffers.
struct PaperScenario {
  double interarrival = 2.0;            ///< 1/λ, swept 2..20 in the paper
  std::uint32_t packets_per_source = 1000;
  double mean_delay = 30.0;             ///< 1/µ
  std::size_t buffer_slots = 10;        ///< k
  double hop_tx_delay = 1.0;            ///< τ
  Scheme scheme = Scheme::kRcad;
  core::VictimPolicy victim = core::VictimPolicy::kShortestRemaining;
  double adaptive_threshold = 0.1;      ///< adversary's Erlang-loss threshold
  std::uint64_t seed = 0x7e3970c1;
  std::vector<std::uint16_t> hop_counts = {15, 22, 9, 11};
  std::uint16_t shared_tail = 3;
  /// §3.3 ablation: 0 = same mean delay at every node (the paper's setup),
  /// 1 = mean delay linearly biased away from the sink, preserving the
  /// expected end-to-end delay per flow.
  double sink_weighting = 0.0;
  /// Creation process; all kinds share the average rate 1/interarrival.
  SourceKind source = SourceKind::kPeriodic;
  /// Optional per-link MAC jitter (see net::NetworkConfig::hop_jitter);
  /// the adversaries' known per-hop transmission delay becomes τ + jitter/2.
  double hop_jitter = 0.0;
  /// Opt-in packet tracing (net::PacketTracer). Off by default so untraced
  /// runs never construct the tracer or pay its per-transmission probe;
  /// when on, ScenarioResult::transmissions/packets_traced are filled in.
  bool trace = false;
};

/// Everything the evaluation section reports, per flow and network-wide.
struct FlowResult {
  net::NodeId source = net::kInvalidNode;
  std::uint16_t hops = 0;
  std::uint64_t delivered = 0;
  double mse_baseline = 0.0;    ///< Fig. 2(a) / Fig. 3 baseline-adversary MSE
  double mse_adaptive = 0.0;    ///< Fig. 3 adaptive-adversary MSE
  double mse_path_aware = 0.0;  ///< extension: per-node path-aware adversary
  double mean_latency = 0.0;   ///< Fig. 2(b)
  double max_latency = 0.0;
};

struct ScenarioResult {
  std::vector<FlowResult> flows;  ///< in hop_counts order (S1 first)
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t drops = 0;
  double mean_latency_all = 0.0;
  double sim_end_time = 0.0;
  std::uint64_t events_executed = 0;  ///< simulator events (throughput metric)
  /// Filled only when PaperScenario::trace is set; 0 otherwise.
  std::uint64_t transmissions = 0;   ///< link-layer transmissions traced
  std::uint64_t packets_traced = 0;  ///< distinct packets seen by the tracer
};

/// Builds the network, runs it to completion (all sources exhausted, all
/// buffers drained), and scores both adversary models against ground truth.
ScenarioResult run_paper_scenario(const PaperScenario& scenario);

}  // namespace tempriv::workload
