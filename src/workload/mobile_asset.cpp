#include "workload/mobile_asset.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tempriv::workload {

MobileAssetWorkload::MobileAssetWorkload(net::Network& network,
                                         const crypto::PayloadCodec& codec,
                                         const Config& config,
                                         sim::RandomStream rng)
    : network_(network),
      codec_(codec),
      config_(config),
      rng_(rng),
      app_seq_(network.topology().node_count(), 0) {
  if (config.field_side <= 0.0 || config.speed <= 0.0 ||
      config.sense_interval <= 0.0 || config.duration <= 0.0) {
    throw std::invalid_argument("MobileAssetWorkload: non-positive config value");
  }
  x_ = rng_.uniform(0.0, config_.field_side);
  y_ = rng_.uniform(0.0, config_.field_side);
  waypoint_x_ = rng_.uniform(0.0, config_.field_side);
  waypoint_y_ = rng_.uniform(0.0, config_.field_side);
}

void MobileAssetWorkload::start() {
  network_.simulator().schedule_after(config_.sense_interval, [this] { sense(); });
}

void MobileAssetWorkload::advance_to(double time) {
  double remaining = (time - last_update_) * config_.speed;
  last_update_ = time;
  while (remaining > 0.0) {
    const double dx = waypoint_x_ - x_;
    const double dy = waypoint_y_ - y_;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist <= remaining) {
      // Reached the waypoint; pick the next one and keep moving.
      x_ = waypoint_x_;
      y_ = waypoint_y_;
      remaining -= dist;
      waypoint_x_ = rng_.uniform(0.0, config_.field_side);
      waypoint_y_ = rng_.uniform(0.0, config_.field_side);
      if (dist == 0.0) break;  // degenerate waypoint on current position
    } else {
      x_ += dx / dist * remaining;
      y_ += dy / dist * remaining;
      remaining = 0.0;
    }
  }
}

net::NodeId MobileAssetWorkload::nearest_sensor(double x, double y) const {
  const net::Topology& topo = network_.topology();
  net::NodeId best = net::kInvalidNode;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    if (id == topo.sink() || !network_.routing().reachable(id)) continue;
    const net::Position& p = topo.position(id);
    const double dx = p.x - x;
    const double dy = p.y - y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = id;
    }
  }
  return best;
}

void MobileAssetWorkload::sense() {
  const double now = network_.simulator().now();
  advance_to(now);
  const net::NodeId sensor = nearest_sensor(x_, y_);
  if (sensor != net::kInvalidNode) {
    crypto::SensorPayload payload;
    payload.reading = std::hypot(x_ - network_.topology().position(sensor).x,
                                 y_ - network_.topology().position(sensor).y);
    payload.app_seq = app_seq_[sensor]++;
    payload.creation_time = now;
    const std::uint64_t uid =
        network_.originate(sensor, codec_.seal(payload, sensor));
    track_.push_back({now, x_, y_, sensor, uid});
  }
  if (now + config_.sense_interval <= config_.duration) {
    network_.simulator().schedule_after(config_.sense_interval,
                                        [this] { sense(); });
  }
}

}  // namespace tempriv::workload
