#pragma once

#include <string>
#include <vector>

#include "workload/source.h"

namespace tempriv::workload {

/// Replays a recorded creation-time trace — for users who have real sensor
/// logs (e.g. the great-duck-island habitat data the paper's motivation
/// cites) rather than synthetic traffic models. Creation times must be
/// non-negative and non-decreasing.
class TraceSource final : public Source {
 public:
  /// Takes the creation times (simulation units, relative to start()).
  /// Throws std::invalid_argument on unsorted or negative times.
  TraceSource(net::Network& network, const crypto::PayloadCodec& codec,
              net::NodeId origin, sim::RandomStream rng,
              std::vector<double> creation_times);

  void start(double at) override;

  std::size_t trace_length() const noexcept { return creation_times_.size(); }

 private:
  std::vector<double> creation_times_;
};

/// Parses a one-column CSV (optional header line "time"; blank lines and
/// '#' comments ignored) into a creation-time trace for TraceSource.
/// Throws std::runtime_error on I/O failure, std::invalid_argument on
/// malformed content.
std::vector<double> load_trace_csv(const std::string& path);

}  // namespace tempriv::workload
